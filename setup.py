"""Legacy setup shim so `pip install -e . --no-build-isolation` works offline
(the sandbox has setuptools but no `wheel`, which PEP 517 editable installs
require)."""

from setuptools import setup

setup()
