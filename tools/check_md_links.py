#!/usr/bin/env python
"""Fail on broken intra-repo markdown links (used by the CI docs job).

Checks every tracked ``*.md`` file for inline links/images whose target
is a relative path: the target must exist relative to the linking file
(query strings are not allowed; ``#anchors`` are checked against the
target file's headings).  External links (``http://``, ``https://``,
``mailto:``) are not fetched.

Run:  python tools/check_md_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
#: archival scraped content (paper dumps with OCR artifacts) — not ours
#: to fix, so not ours to check
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md"}

#: inline markdown links/images: [text](target) / ![alt](target)
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: inline code spans, stripped before link scanning (`[x](y)` is prose)
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def heading_anchor(title: str) -> str:
    """GitHub-style anchor slug for a heading title."""
    slug = re.sub(r"[`*_~\[\]()!]", "", title.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if path.name in SKIP_FILES:
            continue
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def anchors_of(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(heading_anchor(match.group(1)))
    return anchors


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
            yield lineno, match.group(1)


def check(root: Path) -> list:
    problems = []
    for md in markdown_files(root):
        for lineno, target in links_of(md):
            if EXTERNAL_RE.match(target):
                continue  # external URL
            where = f"{md.relative_to(root)}:{lineno}"
            target_path, _, fragment = target.partition("#")
            if not target_path:  # pure in-file anchor
                if fragment and heading_anchor(fragment) not in anchors_of(md):
                    problems.append(f"{where}: no heading for #{fragment}")
                continue
            resolved = (md.parent / target_path).resolve()
            if not resolved.exists():
                problems.append(f"{where}: missing target {target_path}")
                continue
            if fragment and resolved.suffix == ".md":
                if heading_anchor(fragment) not in anchors_of(resolved):
                    problems.append(
                        f"{where}: {target_path} has no heading for #{fragment}"
                    )
    return problems


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    problems = check(root)
    n_files = len(list(markdown_files(root)))
    if problems:
        for p in problems:
            print(f"BROKEN: {p}")
        print(f"{len(problems)} broken intra-repo link(s) in {n_files} files")
        return 1
    print(f"OK: markdown links intact across {n_files} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
