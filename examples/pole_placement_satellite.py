#!/usr/bin/env python
"""Satellite attitude control by static output feedback (cf. paper ref [21],
"Numerical Homotopy Algorithms for Satellite Trajectory Control by Pole
Placement").

A small rigid satellite with two reaction-wheel torque inputs and two
attitude-sensor outputs, linearized about a nominal orientation.  The
linearized dynamics are double integrators with gyroscopic coupling — a
4-state, 2-input, 2-output plant, exactly the well-posed m=p=2, q=0 pole
placement geometry with d(2,2,0) = 2 feedback laws.

We ask for a critically-damped-ish stable pole set and compare the two
resulting gain matrices: enumerate *all* solutions, then pick by gain norm
— something one-solution methods cannot do.

Run:  python examples/pole_placement_satellite.py
"""

import numpy as np

from repro.control import StateSpace, place_poles

# linearized satellite attitude dynamics about the pitch/roll axes:
# state x = (theta1, omega1, theta2, omega2)
# gyroscopic cross-coupling kappa ties the two axes together.
kappa = 0.3   # gyroscopic cross-coupling between the two axes
zeta = 0.15   # wheel-bearing friction / residual atmospheric drag
a = np.array(
    [
        [0.0, 1.0, 0.0, 0.0],
        [0.0, -zeta, 0.0, kappa],
        [0.0, 0.0, 0.0, 1.0],
        [0.0, -kappa, 0.0, -zeta],
    ]
)
# Wheel torques enter the velocities; the small first-row terms model the
# actuator tilt of an imperfectly mounted wheel.  An idealized lossless
# double integrator (zeta = 0, no tilt, pure-angle sensing) is *structurally
# degenerate* for static output feedback: C B = 0 freezes the pole sum and
# a further relation empties the solution set entirely — every Pieri path
# correctly runs to infinity.  The imperfections make the plant generic.
b = np.array(
    [
        [0.05, 0.0],
        [1.0, 0.1],   # wheel 1 mostly drives axis 1
        [0.0, 0.05],
        [0.1, 1.0],   # wheel 2 mostly drives axis 2
    ]
)
# each output blends the attitude angle with its rate gyro
c = np.array(
    [
        [1.0, 0.4, 0.0, 0.0],
        [0.0, 0.0, 1.0, 0.4],
    ]
)
plant = StateSpace(a, b, c)
print("satellite plant:", plant)
print("open-loop poles:", np.round(plant.open_loop_poles(), 4), "(undamped!)")

# target: damped oscillatory response on both axes
poles = [-0.8 + 0.8j, -0.8 - 0.8j, -1.2 + 0.4j, -1.2 - 0.4j]
print("prescribed poles:", poles)

result = place_poles(plant, poles, q=0, seed=7)
print(f"\nfound {result.n_laws} feedback laws, "
      f"worst pole error {result.max_pole_error():.2e}")

best = min(result.laws, key=lambda law: np.linalg.norm(law.f))
for i, law in enumerate(result.laws):
    tag = "  <- smallest gain" if law is best else ""
    print(f"\nlaw #{i}: ||F|| = {np.linalg.norm(law.f):.3f}{tag}")
    print(np.round(law.f, 4))
    print("closed-loop poles:",
          np.round(np.sort_complex(law.closed_loop_poles(plant)), 4))

# a real plant with a self-conjugate pole set: laws are real or conjugate
fs = [law.f for law in result.laws]
real_or_conj = all(
    np.max(np.abs(f.imag)) < 1e-8
    or any(np.max(np.abs(f.conj() - g)) < 1e-6 for g in fs)
    for f in fs
)
print(f"\nlaws real-or-conjugate-paired: {real_or_conj}")
assert result.max_pole_error() < 1e-6
print("OK: the satellite's attitude dynamics are stabilized as prescribed.")
