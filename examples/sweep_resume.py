#!/usr/bin/env python
"""Checkpointed sweeps: kill a run mid-flight, resume, get identical results.

Runs a small mixed sweep three ways: uninterrupted (the reference), then
killed after 4 journaled jobs (the engine's --max-jobs switch drops
in-flight work exactly like a SIGKILL), then resumed from the journal.
The resume re-runs only the jobs the kill lost, and because every job is
seeded the merged result set matches the reference record for record.

The CLI equivalent (with a real kill -9) is walked through in
docs/sweep_tutorial.md:

    python -m repro.sweep run sweep.json --checkpoint ck --workers 4

Run:  python examples/sweep_resume.py
"""

import tempfile

from repro.sweep import JobSpec, SweepSpec, run_sweep

spec = SweepSpec(
    "resume-demo",
    [JobSpec("katsura", {"n": 2}, seed=s) for s in range(6)]
    + [
        JobSpec("noon", {"n": 3}, seed=0),
        JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=0),
        JobSpec("cyclic", {"n": 4}, seed=0),
        # the PR-10 predictor axis: same system, higher-order pipeline
        JobSpec("katsura", {"n": 3}, seed=0, predictor="hermite"),
    ],
)
print(f"sweep {spec.name!r}: {spec.n_jobs} jobs "
      f"({', '.join(sorted({j.kind for j in spec.jobs}))})")

with tempfile.TemporaryDirectory() as ref_dir:
    reference = run_sweep(spec, ref_dir, mode="serial")
assert reference.complete

with tempfile.TemporaryDirectory() as checkpoint:
    killed = run_sweep(
        spec, checkpoint, n_workers=2, mode="thread", abort_after=4
    )
    print(f"\nkilled run: journaled {len(killed.ran_job_ids)} of "
          f"{spec.n_jobs} jobs, then died (aborted={killed.aborted})")

    resumed = run_sweep(spec, checkpoint, n_workers=2, mode="thread")
    print(f"resume:     skipped {resumed.skipped} already-journaled, "
          f"ran the remaining {len(resumed.ran_job_ids)}")
    assert resumed.complete
    assert set(resumed.ran_job_ids).isdisjoint(killed.ran_job_ids)

match = all(
    resumed.records[jid]["result"] == reference.records[jid]["result"]
    for jid in spec.job_ids()
)
print(f"\nresult records identical to the uninterrupted run: {match}")
assert match

print("\nOK: the resumed sweep re-ran only unfinished jobs and "
      "reproduced the uninterrupted result set.")
