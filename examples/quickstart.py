#!/usr/bin/env python
"""Quickstart: compute all feedback laws placing prescribed poles.

The paper's headline application in ~30 lines: a machine with m=2 inputs,
p=2 outputs and 4 internal states has d(2,2,0) = 2 static output feedback
laws placing any 4 generic closed-loop poles.  We compute both with the
Pieri homotopy and verify them by eigenvalue computation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.control import place_poles, random_plant
from repro.schubert import pieri_root_count

rng = np.random.default_rng(2004)

# a random well-posed plant: 2 inputs, 2 outputs, m*p = 4 states
plant = random_plant(m=2, p=2, q=0, rng=rng)
print(f"plant: {plant}")
print(f"open-loop poles: {np.round(plant.open_loop_poles(), 3)}")

# prescribe 4 closed-loop poles (stable half-plane, self-chosen)
poles = [-1 + 1j, -1 - 1j, -2 + 0.5j, -2 - 0.5j]
print(f"prescribed poles: {poles}")
print(f"expected number of feedback laws: {pieri_root_count(2, 2, 0)}")

result = place_poles(plant, poles, q=0, seed=1)
print(f"\nfound {result.n_laws} feedback laws "
      f"in {result.total_seconds:.2f}s; worst pole error "
      f"{result.max_pole_error():.2e}")

for i, law in enumerate(result.laws):
    print(f"\nfeedback law #{i}: u = F y with F =")
    print(np.round(law.f, 4))
    achieved = np.sort_complex(law.closed_loop_poles(plant))
    print(f"eigenvalues of A + BFC: {np.round(achieved, 6)}")

assert result.max_pole_error() < 1e-6, "verification failed"
print("\nOK: every law places the poles exactly (up to roundoff).")
