#!/usr/bin/env python
"""Parallel path tracking on cyclic n-roots: static vs dynamic (paper §II).

Tracks all Bezout paths of cyclic-5 (120 paths, 70 finite roots, 50
divergent) serially, with static pre-assignment, and with the dynamic
master/slave executor, then prints the speedup/imbalance contrast the
paper's Table I makes at cluster scale.

Run:  python examples/cyclic_parallel.py [n_workers]
"""

import sys

import numpy as np

from repro.homotopy import distinct_solutions, make_homotopy_and_starts
from repro.parallel import track_paths_parallel
from repro.systems import CYCLIC_FINITE_ROOTS, cyclic_roots_system
from repro.tracker import summarize_results

n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4

target = cyclic_roots_system(5)
homotopy, starts = make_homotopy_and_starts(
    target, rng=np.random.default_rng(0)
)
print(f"cyclic-5: {len(starts)} paths "
      f"(expected finite roots: {CYCLIC_FINITE_ROOTS[5]})")

serial = track_paths_parallel(homotopy, starts, mode="serial")
summary = summarize_results(serial.results)
print(f"\nserial:  wall {serial.wall_seconds:6.2f}s  "
      f"success {summary['success']}, diverged {summary['diverged']}")

static = track_paths_parallel(
    homotopy, starts, n_workers=n_workers, schedule="static", mode="thread"
)
print(f"static:  wall {static.wall_seconds:6.2f}s  "
      f"imbalance {static.load_imbalance:.2f} on {n_workers} workers")

dynamic = track_paths_parallel(
    homotopy, starts, n_workers=n_workers, schedule="dynamic", mode="thread"
)
print(f"dynamic: wall {dynamic.wall_seconds:6.2f}s  "
      f"imbalance {dynamic.load_imbalance:.2f} on {n_workers} workers")

roots = distinct_solutions(serial.results)
print(f"\ndistinct finite roots found: {len(roots)}")
worst = max(target.residual_norm(r) for r in roots)
print(f"worst residual over all roots: {worst:.2e}")

# all three schedules saw the same paths
assert len(static.results) == len(dynamic.results) == len(serial.results)
print("OK: static, dynamic and serial agree on the path set.")
