#!/usr/bin/env python
"""Dynamic output feedback: compensators with internal states (q > 0).

For a 7-state plant with m = p = 2, a compensator with q = 1 internal
state gives N = m*p + q*(m+p) = 8 assignable closed-loop poles and
d(2,2,1) = 8 distinct compensators.  Each one is a 2x2 rational transfer
matrix C(s) = Z(s) Y(s)^{-1} of McMillan degree 1, verified through the
determinant identity det [X(s_i) | K(s_i)] = 0 at every prescribed pole.

Run:  python examples/dynamic_feedback.py
"""

import numpy as np

from repro.control import place_poles, random_plant, verify_law
from repro.schubert import pieri_root_count

rng = np.random.default_rng(7)
plant = random_plant(m=2, p=2, q=1, rng=rng)
print(f"plant: {plant} (7 states: N - q = 8 - 1)")

poles = [complex(-1.0 - 0.25 * k, 0.6 * (-1) ** k) for k in range(8)]
print(f"prescribing {len(poles)} closed-loop poles")
print(f"expected compensators: d(2,2,1) = {pieri_root_count(2, 2, 1)}")

result = place_poles(plant, poles, q=1, seed=3)
print(f"\nfound {result.n_laws} dynamic compensators in "
      f"{result.total_seconds:.1f}s")

for i, comp in enumerate(result.laws):
    err = verify_law(plant, comp, poles)
    c0 = comp.transfer(0.0)
    print(f"compensator #{i}: det-residual {err:.2e}, "
          f"|C(0)| = {np.linalg.norm(c0):.3f}, proper: {comp.is_proper_at()}")

assert result.n_laws == 8
assert result.max_pole_error() < 1e-6
print("\nOK: all 8 degree-1 compensators place all 8 poles.")
