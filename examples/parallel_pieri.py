#!/usr/bin/env python
"""The parallel Pieri homotopy with the master/slave tree scheduler (Fig 6).

Solves a (3,2,0) Pieri instance — 5 solution planes meeting 6 general
3-planes — sequentially and with the tree scheduler on several worker
counts, printing the per-level job profile (the structure of Table III)
and verifying that parallel and sequential solutions agree exactly.

Run:  python examples/parallel_pieri.py
"""

import numpy as np

from repro.parallel import solve_pieri_parallel
from repro.schubert import PieriInstance, PieriSolver, pieri_root_count

M, P, Q = 3, 2, 0
instance = PieriInstance.random(M, P, Q, np.random.default_rng(42))
print(f"Pieri problem (m={M}, p={P}, q={Q}): "
      f"{instance.problem.num_conditions} conditions, "
      f"{pieri_root_count(M, P, Q)} expected solutions")

seq = PieriSolver(instance, seed=1).solve()
print(f"\nsequential: {seq.n_solutions} solutions in {seq.total_seconds:.2f}s, "
      f"max residual {seq.max_residual():.2e}")

print("\nper-level profile (jobs, seconds):")
for lvl in sorted(seq.jobs_per_level):
    print(f"  level {lvl:2d}: {seq.jobs_per_level[lvl]:3d} jobs  "
          f"{seq.seconds_per_level[lvl]:6.2f}s")

key = lambda c: str(np.round(c.ravel(), 6).tolist())
for workers in (2, 4):
    par = solve_pieri_parallel(
        instance, n_workers=workers, mode="thread", seed=1
    )
    same = sorted(map(key, par.solutions)) == sorted(map(key, seq.solutions))
    print(f"\n{workers} workers: {par.n_solutions} solutions in "
          f"{par.wall_seconds:.2f}s "
          f"(parallelism {par.speedup_vs_cpu_time:.2f}x), "
          f"identical to sequential: {same}")
    assert same

print("\nOK: the tree scheduler reproduces the sequential solution set.")
