#!/usr/bin/env python
"""Regenerate the paper's cluster results on the simulator (Tables I & II,
Figs 1 & 2) — no 128-CPU cluster required.

Run:  python examples/cluster_simulation.py
"""

from repro.experiments import fig1, fig2, table1, table2

for fn in (table1, fig1, table2, fig2):
    text, _ = fn()
    print(text)
    print()

print(
    "Reading guide: on the high-variance cyclic workload dynamic load\n"
    "balancing wins everywhere and its edge grows with the CPU count; on\n"
    "the RPS workload (divergent paths dominate at near-constant cost)\n"
    "static is already balanced and the improvement nearly vanishes —\n"
    "the two observations of the paper's Section II."
)
