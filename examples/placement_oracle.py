#!/usr/bin/env python
"""Offline/online pole placement with a pre-solved Pieri oracle.

The Pieri tree's cost depends only on (m, p, q), not on the plant: solve
one *general* instance offline (the paper's cluster job), then answer any
concrete pole placement query by coefficient-parameter continuation —
d(m, p, q) paths instead of the whole tree.

Run:  python examples/placement_oracle.py
"""

import time

import numpy as np

from repro.control import PolePlacementOracle, random_plant
from repro.schubert import pieri_root_count

M, P, Q = 2, 2, 1

print(f"training oracle for (m={M}, p={P}, q={Q})...")
t0 = time.perf_counter()
oracle = PolePlacementOracle.train(M, P, Q, seed=1)
t_train = time.perf_counter() - t0
print(f"offline: {oracle.offline_paths} tree paths, {t_train:.2f}s, "
      f"{oracle.n_solutions} base solutions "
      f"(= d({M},{P},{Q}) = {pieri_root_count(M, P, Q)})")

rng = np.random.default_rng(0)
total_online = 0.0
for k in range(3):
    plant = random_plant(M, P, Q, rng)
    poles = [complex(-1.0 - 0.15 * (k + 1) * j, 0.7 * (-1) ** j)
             for j in range(oracle.problem.num_conditions)]
    t0 = time.perf_counter()
    result = oracle.place(plant, poles, seed=k)
    dt = time.perf_counter() - t0
    total_online += dt
    print(f"query {k}: {result.n_laws} compensators in {dt:.2f}s "
          f"({pieri_root_count(M, P, Q)} paths), "
          f"max verification error {result.max_pole_error():.1e}")
    assert result.max_pole_error() < 1e-6

print(f"\noffline once: {t_train:.2f}s; online per query: "
      f"{total_online / 3:.2f}s — the paper's cluster/PC split in miniature.")
