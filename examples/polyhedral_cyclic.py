"""Polyhedral vs total-degree starts on cyclic-5: same roots, fewer paths.

The paper's "why parallelism" argument in miniature: the mixed volume
(BKK bound) of cyclic-5 is 70 while its Bezout number is 120, so the
polyhedral homotopy tracks 50 fewer paths for the identical solution
set.  The script prints the root-count table, solves the system both
ways, and checks the distinct finite solutions agree to 1e-8.

Run: PYTHONPATH=src python examples/polyhedral_cyclic.py
"""

import numpy as np

from repro.homotopy import format_table, root_counts, solve
from repro.systems import cyclic_roots_system

TOL = 1e-8


def main() -> None:
    target = cyclic_roots_system(5)
    counts = root_counts(target, name="cyclic-5",
                         rng=np.random.default_rng(0), known=70)
    print(format_table([counts]))
    assert counts.mixed_volume == 70 < counts.total_degree == 120

    poly = solve(target, start="polyhedral", mode="batch",
                 rng=np.random.default_rng(1))
    td = solve(target, mode="batch", rng=np.random.default_rng(2))
    print(f"\npolyhedral start: {poly.n_paths} paths "
          f"({poly.summary['n_cells']} mixed cells, "
          f"{poly.summary['phase1_failures']} phase-1 failures) "
          f"-> {poly.n_solutions} distinct solutions")
    print(f"total degree:     {td.n_paths} paths "
          f"-> {td.n_solutions} distinct solutions")

    assert poly.n_paths == counts.mixed_volume
    assert poly.n_solutions == td.n_solutions == 70

    # every polyhedral solution appears in the total-degree set (1e-8)
    unmatched = [
        x for x in poly.solutions
        if not any(np.max(np.abs(x - y)) < TOL for y in td.solutions)
    ]
    assert not unmatched, f"{len(unmatched)} solutions disagree"

    saved = td.n_paths - poly.n_paths
    print(f"\nOK: both starts find the same 70 roots; polyhedral tracked "
          f"{saved} fewer paths ({td.n_paths}/{poly.n_paths} = "
          f"{td.n_paths / poly.n_paths:.2f}x)")


if __name__ == "__main__":
    main()
