"""Property-based tests (hypothesis) on the core data structures.

These check algebraic laws and structural invariants over randomized
inputs: the polynomial ring axioms, pattern/poset combinatorics, the
determinant/cofactor identities, tracker exactness on linear homotopies,
and simulator conservation laws.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.linalg import adjugate, cofactor_matrix, det_and_cofactors
from repro.polynomials import Polynomial, constant, variables
from repro.schubert import (
    LocalizationPattern,
    PieriPoset,
    PieriProblem,
    pieri_root_count,
)
from repro.simcluster import (
    ClusterSpec,
    Workload,
    simulate_dynamic,
    simulate_static,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

small_complex = st.complex_numbers(
    max_magnitude=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def polynomials(draw, nvars=2, max_terms=6, max_exp=4):
    n_terms = draw(st.integers(0, max_terms))
    coeffs = {}
    for _ in range(n_terms):
        expo = tuple(
            draw(st.integers(0, max_exp)) for _ in range(nvars)
        )
        coeffs[expo] = draw(small_complex)
    return Polynomial(coeffs, nvars=nvars)


@st.composite
def mpq(draw):
    m = draw(st.integers(1, 4))
    p = draw(st.integers(1, 4))
    q = draw(st.integers(0, 2))
    assume(m * p + q * (m + p) <= 16)  # keep posets small
    return m, p, q


# ---------------------------------------------------------------------------
# polynomial ring axioms
# ---------------------------------------------------------------------------


class TestPolynomialAlgebra:
    @given(polynomials(), polynomials())
    def test_addition_commutes(self, f, g):
        assert f + g == g + f

    @given(polynomials(), polynomials(), polynomials())
    def test_multiplication_distributes(self, f, g, h):
        lhs = f * (g + h)
        rhs = f * g + f * h
        assert lhs.almost_equal(rhs, tol=1e-6)

    @given(polynomials(), polynomials())
    def test_multiplication_commutes(self, f, g):
        assert (f * g).almost_equal(g * f, tol=1e-9)

    @given(polynomials())
    def test_additive_inverse(self, f):
        assert (f - f).is_zero()

    @given(polynomials())
    def test_one_is_identity(self, f):
        assert (f * constant(1, f.nvars)) == f

    @given(polynomials(), polynomials())
    def test_degree_of_product(self, f, g):
        assume(not f.is_zero() and not g.is_zero())
        prod = f * g
        # cancellation can only lower the degree
        assert prod.total_degree() <= f.total_degree() + g.total_degree()

    @given(polynomials(), polynomials())
    def test_diff_is_linear(self, f, g):
        # almost_equal: float addition before/after differentiation can
        # differ in the last ulp
        assert (f + g).diff(0).almost_equal(f.diff(0) + g.diff(0), tol=1e-6)

    @given(polynomials(), polynomials())
    def test_diff_product_rule(self, f, g):
        lhs = (f * g).diff(1)
        rhs = f.diff(1) * g + f * g.diff(1)
        assert lhs.almost_equal(rhs, tol=1e-6)

    @given(polynomials())
    def test_eval_matches_horner_free_sum(self, f):
        rng = np.random.default_rng(0)
        pt = rng.standard_normal(2) + 1j * rng.standard_normal(2)
        direct = sum(
            c * pt[0] ** e[0] * pt[1] ** e[1] for e, c in f.terms()
        )
        assert abs(f.evaluate(pt) - direct) <= 1e-6 * max(1.0, abs(direct))


# ---------------------------------------------------------------------------
# determinant calculus
# ---------------------------------------------------------------------------


class TestDeterminantProperties:
    @given(st.integers(1, 6), st.integers(0, 2**31 - 1))
    def test_adjugate_identity(self, n, seed):
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        det = np.linalg.det(m)
        assert np.allclose(
            adjugate(m) @ m, det * np.eye(n), atol=1e-8 * max(1, abs(det))
        )

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    def test_det_consistent_with_numpy(self, n, seed):
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        det, _ = det_and_cofactors(m)
        assert abs(det - np.linalg.det(m)) < 1e-8 * max(1.0, abs(det))

    @given(st.integers(2, 5), st.integers(0, 2**31 - 1))
    def test_cofactor_transpose_row_expansion(self, n, seed):
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        det, cof = det_and_cofactors(m)
        # expansion along *every* row gives the same determinant
        for i in range(n):
            assert abs(np.dot(m[i], cof[i]) - det) < 1e-8 * max(1, abs(det))


# ---------------------------------------------------------------------------
# localization patterns and posets
# ---------------------------------------------------------------------------


class TestPatternProperties:
    @given(mpq())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_poset_reaches_unique_root(self, cell):
        m, p, q = cell
        poset = PieriPoset.build(PieriProblem(m, p, q))
        assert poset.depth == PieriProblem(m, p, q).num_conditions + 1
        assert poset.root().is_root

    @given(mpq())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_level_counts_monotone(self, cell):
        m, p, q = cell
        counts = PieriPoset.build(PieriProblem(m, p, q)).job_counts()
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == pieri_root_count(m, p, q)

    @given(mpq())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_pattern_has_distinct_corners(self, cell):
        m, p, q = cell
        poset = PieriPoset.build(PieriProblem(m, p, q))
        for lv in poset.levels:
            for pat in lv:
                corners = pat.corner_rows()
                assert len(set(corners)) == len(corners)

    @given(mpq())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_children_increase_level_by_one(self, cell):
        m, p, q = cell
        prob = PieriProblem(m, p, q)
        for lv in PieriPoset.build(prob).levels:
            for pat in lv:
                for col, child in pat.children():
                    assert child.level == pat.level + 1
                    assert child.bottom_pivots[col] == pat.bottom_pivots[col] + 1

    @given(mpq())
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_star_count_is_level_plus_p(self, cell):
        m, p, q = cell
        prob = PieriProblem(m, p, q)
        for lv in PieriPoset.build(prob).levels:
            for pat in lv:
                assert pat.star_count() == pat.level + p

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_duality_q0(self, m, p):
        assume(m * p <= 16)
        assert pieri_root_count(m, p, 0) == pieri_root_count(p, m, 0)


# ---------------------------------------------------------------------------
# simulator conservation laws
# ---------------------------------------------------------------------------


class TestSimulatorProperties:
    @given(
        st.lists(st.floats(0.01, 10.0), min_size=1, max_size=200),
        st.integers(1, 32),
        st.booleans(),
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_work_is_conserved(self, costs, n_cpus, overlap):
        wl = Workload("prop", np.array(costs))
        spec = ClusterSpec(overlap_comm=overlap)
        st_res = simulate_static(wl, n_cpus, spec)
        dy_res = simulate_dynamic(wl, n_cpus, spec)
        assert st_res.jobs_done == dy_res.jobs_done == wl.n_paths
        assert abs(st_res.total_cpu_seconds - wl.total_seconds) < 1e-6
        assert abs(dy_res.total_cpu_seconds - wl.total_seconds) < 1e-6

    @given(
        st.lists(st.floats(0.01, 10.0), min_size=1, max_size=100),
        st.integers(1, 16),
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_wall_time_bounds(self, costs, n_cpus):
        """max(cost) <= wall <= total + overheads for any schedule."""
        wl = Workload("prop", np.array(costs))
        for result in (simulate_static(wl, n_cpus), simulate_dynamic(wl, n_cpus)):
            assert result.wall_seconds >= max(costs) - 1e-9
            overhead = 1.0 + 0.01 * len(costs)
            assert result.wall_seconds <= wl.total_seconds + overhead

    @given(st.lists(st.floats(0.05, 5.0), min_size=4, max_size=100))
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_graham_bound_dynamic(self, costs):
        """List scheduling can suffer anomalies (more CPUs occasionally a
        bit slower — Graham 1969), but never beyond the 2x bound relative
        to the work/width lower bound.

        The bound applies to *greedy* list scheduling, i.e. the protocol
        without communication overlap (a worker requests its next job
        only when idle).  The overlap variant prefetches one job into
        each worker's buffer — a committed assignment that can sit
        behind a long job while another worker idles — so it is only
        within one further max-cost job of the greedy bound.
        """
        wl = Workload("prop", np.array(costs))
        greedy = ClusterSpec(
            latency_seconds=0.0, master_service_seconds=0.0,
            overlap_comm=False,
        )
        prefetch = ClusterSpec(
            latency_seconds=0.0, master_service_seconds=0.0,
        )
        for n in (1, 2, 4, 8):
            lower = max(max(costs), wl.total_seconds / n)
            wall = simulate_dynamic(wl, n, greedy).wall_seconds
            assert wall <= 2.0 * lower + 1e-9
            assert wall >= lower - 1e-9
            wall = simulate_dynamic(wl, n, prefetch).wall_seconds
            assert wall <= 2.0 * lower + max(costs) + 1e-9
            assert wall >= lower - 1e-9
