"""Tests for the control layer: pole placement end to end."""

import numpy as np
import pytest

from repro.control import (
    DynamicCompensator,
    StateSpace,
    StaticFeedbackLaw,
    extract_feedback,
    place_poles,
    pole_planes,
    random_plant,
    required_state_dimension,
    split_map_matrix,
    verify_law,
)
from repro.schubert import PieriPoset, PieriProblem


class TestStateSpace:
    def test_construction_and_shapes(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(0))
        assert plant.n_states == 4
        assert plant.n_inputs == 2
        assert plant.n_outputs == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StateSpace(np.ones((2, 3)), np.ones((2, 1)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpace(np.eye(2), np.ones((3, 1)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpace(np.eye(2), np.ones((2, 1)), np.ones((1, 3)))

    def test_transfer_matches_definition(self):
        rng = np.random.default_rng(1)
        plant = random_plant(2, 2, 0, rng)
        s = 1.3 - 0.7j
        g = plant.transfer(s)
        n = plant.n_states
        expected = plant.c @ np.linalg.inv(s * np.eye(n) - plant.a) @ plant.b
        assert np.allclose(g, expected)

    def test_required_state_dimension(self):
        assert required_state_dimension(2, 2, 0) == 4
        assert required_state_dimension(2, 2, 1) == 7  # 8 - 1
        assert required_state_dimension(3, 2, 1) == 10  # 11 - 1

    def test_is_pole(self):
        a = np.diag([1.0, 2.0])
        plant = StateSpace(a, np.ones((2, 1)), np.ones((1, 2)))
        assert plant.is_pole(1.0)
        assert not plant.is_pole(5.0)

    def test_closed_loop_matrix(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(2))
        f = np.zeros((2, 2))
        assert np.allclose(plant.closed_loop_matrix(f), plant.a)
        with pytest.raises(ValueError):
            plant.closed_loop_matrix(np.zeros((3, 3)))

    def test_real_plant(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(3), real=True)
        assert np.allclose(plant.a.imag, 0)


class TestPolePlanes:
    def test_shape_and_span(self):
        rng = np.random.default_rng(4)
        plant = random_plant(2, 2, 0, rng)
        poles = [-1.0, -2.0, -3.0, -4.0]
        planes = pole_planes(plant, poles)
        assert len(planes) == 4
        for k, s in zip(planes, poles):
            assert k.shape == (4, 2)
            # span contains [G(s); I]: residual of projection is zero
            g = plant.transfer(s)
            raw = np.vstack([g, np.eye(2)])
            proj = k @ (k.conj().T @ raw)
            assert np.allclose(proj, raw, atol=1e-10)

    def test_open_loop_pole_rejected(self):
        a = np.diag([1.0, 2.0, 3.0, 4.0])
        plant = StateSpace(a, np.ones((4, 2)), np.ones((2, 4)))
        with pytest.raises(ValueError):
            pole_planes(plant, [1.0, -2.0, -3.0, -4.0])


class TestStaticPlacement:
    def test_all_laws_place_poles(self):
        """Eigenvalues of A + BFC match prescribed poles for every law."""
        plant = random_plant(2, 2, 0, np.random.default_rng(5))
        poles = [-1 + 0.5j, -2 - 0.3j, -0.5 + 1j, -3 + 0j]
        result = place_poles(plant, poles, q=0, seed=6)
        assert result.n_laws == result.expected_count == 2
        assert result.max_pole_error() < 1e-6
        for law in result.laws:
            assert isinstance(law, StaticFeedbackLaw)
            assert law.f.shape == (2, 2)

    def test_laws_are_distinct(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(7))
        poles = [-1.0, -2.0, -3.0 + 1j, -4.0 - 1j]
        result = place_poles(plant, poles, q=0, seed=8)
        f0, f1 = result.laws[0].f, result.laws[1].f
        assert np.max(np.abs(f0 - f1)) > 1e-6

    def test_wrong_state_dimension_rejected(self):
        plant = random_plant(2, 2, 1, np.random.default_rng(9))  # 7 states
        with pytest.raises(ValueError):
            place_poles(plant, [-1, -2, -3, -4], q=0)

    def test_wrong_pole_count_rejected(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(10))
        with pytest.raises(ValueError):
            place_poles(plant, [-1, -2, -3], q=0)

    def test_real_plant_conjugate_pole_set(self):
        """Real plant + self-conjugate poles: laws close under conjugation."""
        plant = random_plant(2, 2, 0, np.random.default_rng(11), real=True)
        poles = [-1 + 1j, -1 - 1j, -2 + 0.5j, -2 - 0.5j]
        result = place_poles(plant, poles, q=0, seed=12)
        assert result.n_laws == 2
        assert result.max_pole_error() < 1e-6
        fs = [law.f for law in result.laws]
        for f in fs:
            conj_matches = any(np.max(np.abs(f.conj() - g)) < 1e-6 for g in fs)
            assert conj_matches


class TestDynamicPlacement:
    def test_q1_compensators(self):
        plant = random_plant(2, 2, 1, np.random.default_rng(13))
        poles = [complex(-1 - 0.2 * k, 0.3 * (-1) ** k) for k in range(8)]
        result = place_poles(plant, poles, q=1, seed=14)
        assert result.n_laws == result.expected_count == 8
        assert result.max_pole_error() < 1e-6
        for law in result.laws:
            assert isinstance(law, DynamicCompensator)
            assert law.q == 1

    def test_compensator_transfer_well_defined(self):
        plant = random_plant(2, 2, 1, np.random.default_rng(15))
        poles = [complex(-2 - 0.3 * k, 0.4 * (-1) ** k) for k in range(8)]
        result = place_poles(plant, poles, q=1, seed=16)
        law = result.laws[0]
        val = law.transfer(0.123 + 0.456j)
        assert val.shape == (2, 2)
        assert np.all(np.isfinite(val))

    def test_verify_law_flags_bad_law(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(17))
        poles = [-1.0, -2.0, -3.0, -4.0]
        bad = StaticFeedbackLaw(np.zeros((2, 2), dtype=complex))
        err = verify_law(plant, bad, poles)
        assert err > 1e-3


class TestExtraction:
    def test_split_map_matrix_q0(self):
        prob = PieriProblem(2, 2, 0)
        root = PieriPoset.build(prob).root()
        x = np.zeros((4, 2), dtype=complex)
        x[:2, :] = np.eye(2)
        x[2:, :] = np.array([[1.0, 2.0], [3.0, 4.0]])
        y, z = split_map_matrix(x, root)
        assert np.allclose(y(0.0), np.eye(2))
        assert np.allclose(z(0.0), [[1, 2], [3, 4]])

    def test_extract_static(self):
        prob = PieriProblem(2, 2, 0)
        root = PieriPoset.build(prob).root()
        x = np.zeros((4, 2), dtype=complex)
        x[:2, :] = np.eye(2)
        x[2:, :] = np.array([[1.0, 2.0], [3.0, 4.0]])
        law = extract_feedback(x, root)
        assert isinstance(law, StaticFeedbackLaw)
        assert np.allclose(law.f, [[1, 2], [3, 4]])

    def test_extract_singular_y_raises(self):
        prob = PieriProblem(2, 2, 0)
        root = PieriPoset.build(prob).root()
        x = np.zeros((4, 2), dtype=complex)
        x[0, 0] = 1.0  # Y = [[1,0],[0,0]] singular
        x[3, :] = 1.0
        with pytest.raises(ValueError):
            extract_feedback(x, root)
