"""Failure injection: worker crashes and simulated job failures.

The master/slave protocol must never silently lose a job (and with the
Pieri tree, a lost internal job loses its entire subtree of solutions).
These tests crash workers deliberately and check the schedulers recover.
"""

import numpy as np
import pytest

import repro.parallel.pieri_scheduler as scheduler_mod
from repro.parallel import solve_pieri_parallel
from repro.schubert import PieriInstance, pieri_root_count, verify_solutions
from repro.simcluster import (
    ClusterSpec,
    simulate_dynamic,
    simulate_static,
    uniform_workload,
)


class FlakyWorker:
    """Wraps the real Pieri worker; crashes on the first k distinct jobs."""

    def __init__(self, real, crash_times: int):
        self.real = real
        self.remaining = crash_times
        self.crashes = 0

    def __call__(self, args):
        if self.remaining > 0:
            self.remaining -= 1
            self.crashes += 1
            raise RuntimeError("injected worker crash")
        return self.real(args)


class TestPieriSchedulerFaults:
    def test_recovers_from_crashes(self, monkeypatch):
        """Crashed jobs are re-enqueued; the full solution set survives."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
        flaky = FlakyWorker(scheduler_mod._run_pieri_job, crash_times=3)
        monkeypatch.setattr(scheduler_mod, "_run_pieri_job", flaky)
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=1, max_job_retries=5
        )
        assert flaky.crashes == 3
        assert report.worker_crashes == 3
        assert report.n_solutions == pieri_root_count(2, 2, 0)
        assert verify_solutions(instance, report.solutions).ok

    def test_retry_budget_exhaustion_counts_failures(self, monkeypatch):
        """A permanently crashing job is eventually abandoned, not hung."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(2))

        def always_crash(args):
            raise RuntimeError("permanent crash")

        monkeypatch.setattr(scheduler_mod, "_run_pieri_job", always_crash)
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=3, max_job_retries=1
        )
        assert report.n_solutions == 0
        assert report.failures >= 1
        assert report.worker_crashes > 0

    def test_no_crashes_zero_counter(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(4))
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=5
        )
        assert report.worker_crashes == 0


class TestSimulatedFailures:
    def test_failure_rate_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(failure_rate=1.0)
        with pytest.raises(ValueError):
            ClusterSpec(failure_rate=-0.1)

    def test_failures_cost_time_but_finish_all_jobs(self):
        wl = uniform_workload(200, 1.0)
        clean = ClusterSpec(failure_rate=0.0)
        faulty = ClusterSpec(failure_rate=0.2, failure_seed=7)
        for sim in (simulate_static, simulate_dynamic):
            ok = sim(wl, 8, clean)
            bad = sim(wl, 8, faulty)
            assert bad.jobs_done == ok.jobs_done == 200
            assert bad.failed_attempts > 0
            assert bad.wall_seconds > ok.wall_seconds

    def test_expected_overhead_matches_geometric_retries(self):
        """Mean attempts are 1/(1-r); total work scales accordingly."""
        wl = uniform_workload(5000, 1.0)
        rate = 0.25
        res = simulate_dynamic(wl, 4, ClusterSpec(failure_rate=rate, failure_seed=8))
        expected_factor = 1.0 / (1.0 - rate)
        measured = res.total_cpu_seconds / wl.total_seconds
        assert abs(measured - expected_factor) < 0.05 * expected_factor

    def test_zero_rate_identical_to_default(self):
        wl = uniform_workload(50, 0.5)
        a = simulate_dynamic(wl, 4, ClusterSpec())
        b = simulate_dynamic(wl, 4, ClusterSpec(failure_rate=0.0))
        assert a.wall_seconds == b.wall_seconds
        assert a.failed_attempts == b.failed_attempts == 0

    def test_deterministic_given_seed(self):
        wl = uniform_workload(100, 1.0)
        spec = ClusterSpec(failure_rate=0.3, failure_seed=9)
        r1 = simulate_static(wl, 4, spec)
        r2 = simulate_static(wl, 4, spec)
        assert r1.wall_seconds == r2.wall_seconds
        assert r1.failed_attempts == r2.failed_attempts
