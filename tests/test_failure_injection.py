"""Failure injection: worker crashes and simulated job failures.

The master/slave protocol must never silently lose a job (and with the
Pieri tree, a lost internal job loses its entire subtree of solutions).
These tests crash workers deliberately and check the schedulers recover.

``TestFleetSocketFaults`` stages the same failures over *real* asyncio
sockets: ``SIGKILL`` of the fleet master mid-lease, a worker process
dying mid-job, and a torn journal line — in every case the resumed run
must reach a result set identical to an uninterrupted one, with each
job journaled exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro.parallel.pieri_scheduler as scheduler_mod
from repro.parallel import solve_pieri_parallel
from repro.schubert import PieriInstance, pieri_root_count, verify_solutions
from repro.simcluster import (
    ClusterSpec,
    simulate_dynamic,
    simulate_static,
    uniform_workload,
)


class FlakyWorker:
    """Wraps the real Pieri worker; crashes on the first k distinct jobs."""

    def __init__(self, real, crash_times: int):
        self.real = real
        self.remaining = crash_times
        self.crashes = 0

    def __call__(self, args):
        if self.remaining > 0:
            self.remaining -= 1
            self.crashes += 1
            raise RuntimeError("injected worker crash")
        return self.real(args)


class TestPieriSchedulerFaults:
    def test_recovers_from_crashes(self, monkeypatch):
        """Crashed jobs are re-enqueued; the full solution set survives."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
        flaky = FlakyWorker(scheduler_mod._run_pieri_job, crash_times=3)
        monkeypatch.setattr(scheduler_mod, "_run_pieri_job", flaky)
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=1, max_job_retries=5
        )
        assert flaky.crashes == 3
        assert report.worker_crashes == 3
        assert report.n_solutions == pieri_root_count(2, 2, 0)
        assert verify_solutions(instance, report.solutions).ok

    def test_retry_budget_exhaustion_counts_failures(self, monkeypatch):
        """A permanently crashing job is eventually abandoned, not hung."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(2))

        def always_crash(args):
            raise RuntimeError("permanent crash")

        monkeypatch.setattr(scheduler_mod, "_run_pieri_job", always_crash)
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=3, max_job_retries=1
        )
        assert report.n_solutions == 0
        assert report.failures >= 1
        assert report.worker_crashes > 0

    def test_no_crashes_zero_counter(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(4))
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=5
        )
        assert report.worker_crashes == 0


class TestDispatcherPoolBreakage:
    """The generic dispatcher under a job that kills its worker process."""

    @staticmethod
    def _fake_submit():
        from concurrent.futures import BrokenExecutor, Future

        def submit(job):
            fut = Future()
            if job == "poison":
                fut.set_exception(BrokenExecutor("worker died"))
            else:
                fut.set_result(job.upper())
            return fut

        return submit

    def test_poison_job_is_abandoned_but_the_rest_complete(self):
        from repro.parallel import dispatch_jobs

        done, lost = [], []
        telemetry = dispatch_jobs(
            ["poison", "a", "b", "c"],
            self._fake_submit(),
            lambda job, result: done.append(result),
            n_workers=2,
            max_retries=1,
            on_abandoned=lost.append,
            rebuild_pool=self._fake_submit,
        )
        # healthy jobs all finish exactly once; their retry budgets are
        # never charged for breakage they did not cause
        assert sorted(done) == ["A", "B", "C"]
        assert lost == ["poison"]
        assert telemetry.jobs_abandoned == 1
        assert telemetry.pool_rebuilds >= 2
        assert telemetry.jobs_done == 3

    def test_poison_submit_raise_terminates(self):
        """A submit() that raises BrokenExecutor synchronously must hit
        the same fruitless-breakage cap, not rebuild forever."""
        from concurrent.futures import BrokenExecutor, Future

        from repro.parallel import dispatch_jobs

        def make_submit():
            def submit(job):
                if job == "poison":
                    raise BrokenExecutor("died at submit")
                fut = Future()
                fut.set_result(job.upper())
                return fut

            return submit

        done, lost = [], []
        telemetry = dispatch_jobs(
            ["a", "poison", "b"],
            make_submit(),
            lambda job, result: done.append(result),
            n_workers=2,
            max_retries=1,
            on_abandoned=lost.append,
            rebuild_pool=make_submit,
        )
        assert sorted(done) == ["A", "B"]
        assert lost == ["poison"]
        assert telemetry.jobs_done == 2

    def test_result_completing_in_cancel_race_window_runs_once(self):
        """Regression: a future that completes between the ``done()``
        check and ``cancel()`` during breakage reclaim must be harvested,
        not requeued — requeueing executed (and committed) the job twice.
        """
        from concurrent.futures import BrokenExecutor, Future

        from repro.parallel import dispatch_jobs

        class SlipperyFuture(Future):
            """Already completed, but ``done()`` lies once — modelling
            completion inside the done()/cancel() race window (a real
            completed Future's ``cancel()`` genuinely returns False)."""

            def __init__(self, value):
                super().__init__()
                self.set_result(value)
                self._lied = False

            def done(self):
                if not self._lied:
                    self._lied = True
                    return False
                return super().done()

        executions = []

        def make_submit():
            def submit(job):
                if job == "poison":
                    raise BrokenExecutor("died at submit")
                executions.append(job)
                return SlipperyFuture(job.upper())

            return submit

        done, lost = [], []
        telemetry = dispatch_jobs(
            ["a", "poison"],
            make_submit(),
            lambda job, result: done.append(result),
            n_workers=2,
            max_retries=1,
            on_abandoned=lost.append,
            rebuild_pool=make_submit,
        )
        assert executions.count("a") == 1, "the race window re-ran the job"
        assert done == ["A"], "the in-window result must commit exactly once"
        assert lost == ["poison"]
        assert telemetry.jobs_done == 1

    def test_breakage_without_rebuilder_raises(self):
        from concurrent.futures import BrokenExecutor

        import pytest as _pytest

        from repro.parallel import dispatch_jobs

        with _pytest.raises(BrokenExecutor):
            dispatch_jobs(
                ["poison"],
                self._fake_submit(),
                lambda job, result: None,
                n_workers=1,
            )


class TestSimulatedFailures:
    def test_failure_rate_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(failure_rate=1.0)
        with pytest.raises(ValueError):
            ClusterSpec(failure_rate=-0.1)

    def test_failures_cost_time_but_finish_all_jobs(self):
        wl = uniform_workload(200, 1.0)
        clean = ClusterSpec(failure_rate=0.0)
        faulty = ClusterSpec(failure_rate=0.2, failure_seed=7)
        for sim in (simulate_static, simulate_dynamic):
            ok = sim(wl, 8, clean)
            bad = sim(wl, 8, faulty)
            assert bad.jobs_done == ok.jobs_done == 200
            assert bad.failed_attempts > 0
            assert bad.wall_seconds > ok.wall_seconds

    def test_expected_overhead_matches_geometric_retries(self):
        """Mean attempts are 1/(1-r); total work scales accordingly."""
        wl = uniform_workload(5000, 1.0)
        rate = 0.25
        res = simulate_dynamic(wl, 4, ClusterSpec(failure_rate=rate, failure_seed=8))
        expected_factor = 1.0 / (1.0 - rate)
        measured = res.total_cpu_seconds / wl.total_seconds
        assert abs(measured - expected_factor) < 0.05 * expected_factor

    def test_zero_rate_identical_to_default(self):
        wl = uniform_workload(50, 0.5)
        a = simulate_dynamic(wl, 4, ClusterSpec())
        b = simulate_dynamic(wl, 4, ClusterSpec(failure_rate=0.0))
        assert a.wall_seconds == b.wall_seconds
        assert a.failed_attempts == b.failed_attempts == 0

    def test_deterministic_given_seed(self):
        wl = uniform_workload(100, 1.0)
        spec = ClusterSpec(failure_rate=0.3, failure_seed=9)
        r1 = simulate_static(wl, 4, spec)
        r2 = simulate_static(wl, 4, spec)
        assert r1.wall_seconds == r2.wall_seconds
        assert r1.failed_attempts == r2.failed_attempts


# ---------------------------------------------------------------------------
# fleet faults over real sockets (ISSUE-7)
# ---------------------------------------------------------------------------

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def results_only(records):
    """The deterministic part of a record set (drops timing/worker info)."""
    return {jid: rec["result"] for jid, rec in records.items()}


def fleet_spec(name, n=8):
    from repro.sweep import JobSpec, SweepSpec

    return SweepSpec(name, [JobSpec("katsura", {"n": 2}, seed=s)
                            for s in range(n)])


def journal_job_ids(checkpoint):
    """Every decodable job id in journal order (duplicates included)."""
    path = os.path.join(str(checkpoint), "journal.jsonl")
    ids = []
    with open(path) as fh:
        for line in fh:
            try:
                ids.append(json.loads(line)["job_id"])
            except (ValueError, KeyError):
                continue
    return ids


class TestFleetSocketFaults:
    """Real subprocesses, real TCP, real SIGKILL."""

    @staticmethod
    def _env(**extra):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        env.update({k: str(v) for k, v in extra.items()})
        return env

    def _start_master(self, spec_path, checkpoint, env=None,
                      heartbeat_timeout=2.0):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.sweep", "run", str(spec_path),
                "--checkpoint", str(checkpoint), "--fleet", "master",
                "--bind", "127.0.0.1:0",
                "--heartbeat-timeout", str(heartbeat_timeout),
                "--lease-seconds", "1.0",
            ],
            env=env or self._env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        line = proc.stdout.readline()
        assert "listening on" in line, f"master failed to bind: {line!r}"
        port = int(line.rsplit(":", 1)[1])
        return proc, port

    def _start_worker(self, port, worker_id, env=None, reconnect=30):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.sweep", "run",
                "--fleet", "worker", "--connect", f"127.0.0.1:{port}",
                "--worker-id", worker_id,
                "--reconnect-seconds", str(reconnect),
            ],
            env=env or self._env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigkill_master_mid_lease_resumes_identically(self, tmp_path):
        """SIGKILL the master while a worker holds a lease and is busy;
        the restarted master adopts the worker's held jobs and the merged
        journal equals an uninterrupted run, every job exactly once."""
        from repro.sweep import SweepJournal, run_sweep

        spec = fleet_spec("fleet-sigkill")
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        checkpoint = tmp_path / "ck"
        journal_path = checkpoint / "journal.jsonl"
        marker = tmp_path / "stalled.marker"
        # the worker stalls (once) on job 3, holding its lease open so
        # the SIGKILL below is guaranteed to land mid-lease
        worker_env = self._env(
            REPRO_SWEEP_STALL_JOB=spec.jobs[3].job_id,
            REPRO_SWEEP_STALL_SECONDS="6",
            REPRO_SWEEP_KILL_MARKER=marker,
        )
        master, port = self._start_master(spec_path, checkpoint)
        worker = self._start_worker(port, "faulty-w0", env=worker_env)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if marker.exists() and journal_path.exists() and (
                    journal_path.read_text().count("\n") >= 1
                ):
                    break
                assert master.poll() is None, "master finished too early"
                time.sleep(0.05)
            assert marker.exists(), "the stall never fired"
            os.kill(master.pid, signal.SIGKILL)
            master.wait(timeout=30)

            killed = SweepJournal(checkpoint).load_records()
            assert 0 < len(killed) < spec.n_jobs, "kill should land mid-sweep"

            # same command, same checkpoint: the resume
            master2, port2 = self._start_master(spec_path, checkpoint)
            # the stalled worker is still alive and reconnecting; add a
            # helper so the resume also exercises a second registration
            worker2 = self._start_worker(port2, "helper-w1")
            out, _ = master2.communicate(timeout=120)
            assert master2.returncode == 0, out
            assert "complete" in out
            worker.wait(timeout=60)
            worker2.wait(timeout=60)
        finally:
            for proc in (master, worker):
                if proc.poll() is None:
                    proc.kill()

        final = SweepJournal(checkpoint).load_records()
        reference = run_sweep(spec, tmp_path / "ref", mode="serial")
        assert results_only(final) == results_only(reference.records)
        # exactly once: no job id ever journaled twice, even with the
        # stalled worker resending its unsent result after the restart
        ids = journal_job_ids(checkpoint)
        assert sorted(ids) == sorted(set(ids))

    def test_worker_killed_mid_job_is_survived(self, tmp_path):
        """A worker process that dies mid-job (os._exit) loses nothing:
        the heartbeat timeout requeues its lease and the surviving
        worker finishes the sweep."""
        from repro.sweep import SweepJournal, run_sweep

        spec = fleet_spec("fleet-worker-death")
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        checkpoint = tmp_path / "ck"
        marker = tmp_path / "died.marker"
        # both workers carry the kill hook with a shared marker, so
        # whichever one leases job 2 dies — exactly once
        worker_env = self._env(
            REPRO_SWEEP_KILL_JOB=spec.jobs[2].job_id,
            REPRO_SWEEP_KILL_MARKER=marker,
        )
        master, port = self._start_master(spec_path, checkpoint,
                                          heartbeat_timeout=1.5)
        workers = [
            self._start_worker(port, f"mortal-w{i}", env=worker_env)
            for i in range(2)
        ]
        try:
            out, _ = master.communicate(timeout=180)
            assert master.returncode == 0, out
            assert "complete" in out
            codes = [w.wait(timeout=60) for w in workers]
        finally:
            for proc in [master] + workers:
                if proc.poll() is None:
                    proc.kill()

        assert marker.exists(), "the injected worker death never fired"
        assert codes.count(13) == 1, f"exactly one worker dies: {codes}"
        final = SweepJournal(checkpoint).load_records()
        reference = run_sweep(spec, tmp_path / "ref", mode="serial")
        assert results_only(final) == results_only(reference.records)
        ids = journal_job_ids(checkpoint)
        assert sorted(ids) == sorted(set(ids))

    def test_torn_journal_line_rerun_resumes_identically(self, tmp_path):
        """A journal whose final line was torn by a kill mid-append is
        not a crash: the resume re-runs exactly the torn job."""
        from repro.sweep import SweepJournal, run_sweep

        spec = fleet_spec("fleet-torn", n=5)
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        checkpoint = tmp_path / "ck"
        master, port = self._start_master(spec_path, checkpoint)
        worker = self._start_worker(port, "torn-w0")
        try:
            out, _ = master.communicate(timeout=120)
            assert master.returncode == 0, out
            worker.wait(timeout=60)
        finally:
            for proc in (master, worker):
                if proc.poll() is None:
                    proc.kill()

        journal_path = checkpoint / "journal.jsonl"
        lines = journal_path.read_text().splitlines(keepends=True)
        torn_id = json.loads(lines[-1])["job_id"]
        journal_path.write_text(
            "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        )
        with pytest.warns(RuntimeWarning):
            partial = SweepJournal(checkpoint).load_records()
        assert set(partial) == {j.job_id for j in spec.jobs} - {torn_id}

        master2, port2 = self._start_master(spec_path, checkpoint)
        worker2 = self._start_worker(port2, "torn-w1")
        try:
            out, _ = master2.communicate(timeout=120)
            assert master2.returncode == 0, out
            assert "ran 1 jobs" in out
            worker2.wait(timeout=60)
        finally:
            for proc in (master2, worker2):
                if proc.poll() is None:
                    proc.kill()

        # the torn mid-file line still warns on load — expected
        with pytest.warns(RuntimeWarning):
            final = SweepJournal(checkpoint).load_records()
        reference = run_sweep(spec, tmp_path / "ref", mode="serial")
        assert results_only(final) == results_only(reference.records)
