"""Failure injection: worker crashes and simulated job failures.

The master/slave protocol must never silently lose a job (and with the
Pieri tree, a lost internal job loses its entire subtree of solutions).
These tests crash workers deliberately and check the schedulers recover.
"""

import numpy as np
import pytest

import repro.parallel.pieri_scheduler as scheduler_mod
from repro.parallel import solve_pieri_parallel
from repro.schubert import PieriInstance, pieri_root_count, verify_solutions
from repro.simcluster import (
    ClusterSpec,
    simulate_dynamic,
    simulate_static,
    uniform_workload,
)


class FlakyWorker:
    """Wraps the real Pieri worker; crashes on the first k distinct jobs."""

    def __init__(self, real, crash_times: int):
        self.real = real
        self.remaining = crash_times
        self.crashes = 0

    def __call__(self, args):
        if self.remaining > 0:
            self.remaining -= 1
            self.crashes += 1
            raise RuntimeError("injected worker crash")
        return self.real(args)


class TestPieriSchedulerFaults:
    def test_recovers_from_crashes(self, monkeypatch):
        """Crashed jobs are re-enqueued; the full solution set survives."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
        flaky = FlakyWorker(scheduler_mod._run_pieri_job, crash_times=3)
        monkeypatch.setattr(scheduler_mod, "_run_pieri_job", flaky)
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=1, max_job_retries=5
        )
        assert flaky.crashes == 3
        assert report.worker_crashes == 3
        assert report.n_solutions == pieri_root_count(2, 2, 0)
        assert verify_solutions(instance, report.solutions).ok

    def test_retry_budget_exhaustion_counts_failures(self, monkeypatch):
        """A permanently crashing job is eventually abandoned, not hung."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(2))

        def always_crash(args):
            raise RuntimeError("permanent crash")

        monkeypatch.setattr(scheduler_mod, "_run_pieri_job", always_crash)
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=3, max_job_retries=1
        )
        assert report.n_solutions == 0
        assert report.failures >= 1
        assert report.worker_crashes > 0

    def test_no_crashes_zero_counter(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(4))
        report = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=5
        )
        assert report.worker_crashes == 0


class TestDispatcherPoolBreakage:
    """The generic dispatcher under a job that kills its worker process."""

    @staticmethod
    def _fake_submit():
        from concurrent.futures import BrokenExecutor, Future

        def submit(job):
            fut = Future()
            if job == "poison":
                fut.set_exception(BrokenExecutor("worker died"))
            else:
                fut.set_result(job.upper())
            return fut

        return submit

    def test_poison_job_is_abandoned_but_the_rest_complete(self):
        from repro.parallel import dispatch_jobs

        done, lost = [], []
        telemetry = dispatch_jobs(
            ["poison", "a", "b", "c"],
            self._fake_submit(),
            lambda job, result: done.append(result),
            n_workers=2,
            max_retries=1,
            on_abandoned=lost.append,
            rebuild_pool=self._fake_submit,
        )
        # healthy jobs all finish exactly once; their retry budgets are
        # never charged for breakage they did not cause
        assert sorted(done) == ["A", "B", "C"]
        assert lost == ["poison"]
        assert telemetry.jobs_abandoned == 1
        assert telemetry.pool_rebuilds >= 2
        assert telemetry.jobs_done == 3

    def test_poison_submit_raise_terminates(self):
        """A submit() that raises BrokenExecutor synchronously must hit
        the same fruitless-breakage cap, not rebuild forever."""
        from concurrent.futures import BrokenExecutor, Future

        from repro.parallel import dispatch_jobs

        def make_submit():
            def submit(job):
                if job == "poison":
                    raise BrokenExecutor("died at submit")
                fut = Future()
                fut.set_result(job.upper())
                return fut

            return submit

        done, lost = [], []
        telemetry = dispatch_jobs(
            ["a", "poison", "b"],
            make_submit(),
            lambda job, result: done.append(result),
            n_workers=2,
            max_retries=1,
            on_abandoned=lost.append,
            rebuild_pool=make_submit,
        )
        assert sorted(done) == ["A", "B"]
        assert lost == ["poison"]
        assert telemetry.jobs_done == 2

    def test_breakage_without_rebuilder_raises(self):
        from concurrent.futures import BrokenExecutor

        import pytest as _pytest

        from repro.parallel import dispatch_jobs

        with _pytest.raises(BrokenExecutor):
            dispatch_jobs(
                ["poison"],
                self._fake_submit(),
                lambda job, result: None,
                n_workers=1,
            )


class TestSimulatedFailures:
    def test_failure_rate_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(failure_rate=1.0)
        with pytest.raises(ValueError):
            ClusterSpec(failure_rate=-0.1)

    def test_failures_cost_time_but_finish_all_jobs(self):
        wl = uniform_workload(200, 1.0)
        clean = ClusterSpec(failure_rate=0.0)
        faulty = ClusterSpec(failure_rate=0.2, failure_seed=7)
        for sim in (simulate_static, simulate_dynamic):
            ok = sim(wl, 8, clean)
            bad = sim(wl, 8, faulty)
            assert bad.jobs_done == ok.jobs_done == 200
            assert bad.failed_attempts > 0
            assert bad.wall_seconds > ok.wall_seconds

    def test_expected_overhead_matches_geometric_retries(self):
        """Mean attempts are 1/(1-r); total work scales accordingly."""
        wl = uniform_workload(5000, 1.0)
        rate = 0.25
        res = simulate_dynamic(wl, 4, ClusterSpec(failure_rate=rate, failure_seed=8))
        expected_factor = 1.0 / (1.0 - rate)
        measured = res.total_cpu_seconds / wl.total_seconds
        assert abs(measured - expected_factor) < 0.05 * expected_factor

    def test_zero_rate_identical_to_default(self):
        wl = uniform_workload(50, 0.5)
        a = simulate_dynamic(wl, 4, ClusterSpec())
        b = simulate_dynamic(wl, 4, ClusterSpec(failure_rate=0.0))
        assert a.wall_seconds == b.wall_seconds
        assert a.failed_attempts == b.failed_attempts == 0

    def test_deterministic_given_seed(self):
        wl = uniform_workload(100, 1.0)
        spec = ClusterSpec(failure_rate=0.3, failure_seed=9)
        r1 = simulate_static(wl, 4, spec)
        r2 = simulate_static(wl, 4, spec)
        assert r1.wall_seconds == r2.wall_seconds
        assert r1.failed_attempts == r2.failed_attempts
