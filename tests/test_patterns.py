"""Unit tests for localization patterns (paper §III-B, Fig 3)."""

import pytest

from repro.schubert import LocalizationPattern, PieriProblem


class TestPieriProblem:
    def test_basic_quantities(self):
        prob = PieriProblem(2, 2, 1)
        assert prob.ambient == 4
        assert prob.num_conditions == 8  # mp + q(m+p) = 4 + 4

    def test_column_caps_q0(self):
        prob = PieriProblem(3, 2, 0)
        assert prob.column_caps == (5, 5)
        assert prob.nrows == 5

    def test_column_caps_q1_p2(self):
        # q = 0*2 + 1: first column one block, second column two blocks
        prob = PieriProblem(2, 2, 1)
        assert prob.column_caps == (4, 8)

    def test_column_caps_q2_p2(self):
        # q = 1*2 + 0: both columns two blocks
        prob = PieriProblem(2, 2, 2)
        assert prob.column_caps == (8, 8)

    def test_column_caps_q3_p2(self):
        # q = 1*2 + 1: caps (2 blocks, 3 blocks)
        prob = PieriProblem(2, 2, 3)
        assert prob.column_caps == (8, 12)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PieriProblem(0, 2)
        with pytest.raises(ValueError):
            PieriProblem(2, 0)
        with pytest.raises(ValueError):
            PieriProblem(2, 2, -1)

    def test_trivial_pattern(self):
        pat = PieriProblem(2, 3).trivial_pattern()
        assert pat.bottom_pivots == (1, 2, 3)
        assert pat.is_trivial
        assert pat.level == 0


class TestValidity:
    def test_figure3_pattern(self):
        # the paper's Fig 3 example: m=2, p=2, q=1, shorthand [4 7]
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        assert pat.level == 8 == prob.num_conditions
        assert pat.is_root
        assert pat.star_count() == 10

    def test_strictly_increasing_required(self):
        prob = PieriProblem(2, 2, 0)
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (2, 2))

    def test_top_pivot_bound(self):
        prob = PieriProblem(2, 2, 0)
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (0, 2))
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (3, 1))

    def test_cap_bound(self):
        prob = PieriProblem(2, 2, 1)
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (5, 7))  # col-1 cap is 4
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (4, 9))  # col-2 cap is 8

    def test_gap_rule(self):
        # no two bottom pivots differ by m+p or more
        prob = PieriProblem(2, 2, 1)
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (2, 7))  # differ by 5 >= 4
        LocalizationPattern(prob, (4, 7))  # differ by 3: fine

    def test_is_valid_helper(self):
        prob = PieriProblem(2, 2, 1)
        assert LocalizationPattern.is_valid(prob, (4, 7))
        assert not LocalizationPattern.is_valid(prob, (2, 7))

    def test_wrong_length(self):
        prob = PieriProblem(2, 2, 0)
        with pytest.raises(ValueError):
            LocalizationPattern(prob, (1, 2, 3))


class TestDerivedData:
    def test_level_counts_conditions(self):
        prob = PieriProblem(3, 2, 0)
        pat = LocalizationPattern(prob, (3, 5))
        assert pat.level == (3 - 1) + (5 - 2) == 5

    def test_column_degrees(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        assert pat.column_degrees() == (0, 1)
        pat2 = LocalizationPattern(prob, (1, 2))
        assert pat2.column_degrees() == (0, 0)

    def test_corner_rows_distinct(self):
        prob = PieriProblem(2, 2, 1)
        for pivots in [(4, 7), (1, 2), (3, 6), (4, 5)]:
            pat = LocalizationPattern(prob, pivots)
            rows = pat.corner_rows()
            assert len(set(rows)) == len(rows)
            assert all(1 <= r <= prob.ambient for r in rows)

    def test_support_contiguous(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        sup = pat.support()
        col1 = sorted(r for r, j in sup if j == 1)
        col2 = sorted(r for r, j in sup if j == 2)
        assert col1 == list(range(1, 5))
        assert col2 == list(range(2, 8))

    def test_shorthand(self):
        prob = PieriProblem(2, 2, 1)
        assert LocalizationPattern(prob, (4, 7)).shorthand() == "[4 7]"

    def test_ascii_art_star_count(self):
        prob = PieriProblem(2, 2, 1)
        art = LocalizationPattern(prob, (4, 7)).ascii_art()
        assert art.count("*") == 10


class TestChildrenParents:
    def test_trivial_children_match_fig5(self):
        # Fig 5: the root [1 2] of the (2,2,1) tree has single child [1 3]
        prob = PieriProblem(2, 2, 1)
        kids = list(prob.trivial_pattern().children())
        assert len(kids) == 1
        assert kids[0][0] == 1  # column index (0-based)
        assert kids[0][1].bottom_pivots == (1, 3)

    def test_children_parents_inverse(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (2, 4))
        for col, child in pat.children():
            back = dict(child.parents())
            assert any(
                par.bottom_pivots == pat.bottom_pivots
                for par in back.values()
            )

    def test_child_via(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (1, 3))
        child = pat.child_via(0)
        assert child.bottom_pivots == (2, 3)
        with pytest.raises(ValueError):
            pat.child_via(1).child_via(1).child_via(1).child_via(1).child_via(1).child_via(1)

    def test_root_has_no_children(self):
        prob = PieriProblem(2, 2, 1)
        root = LocalizationPattern(prob, (4, 7))
        assert root.is_root
        assert list(root.children()) == []

    def test_level_increases_by_one(self):
        prob = PieriProblem(3, 2, 1)
        pat = prob.trivial_pattern()
        seen = 0
        while not pat.is_root:
            nxt = next(iter(pat.children()))[1]
            assert nxt.level == pat.level + 1
            pat = nxt
            seen += 1
        assert seen == prob.num_conditions
