"""Doctests for the documented public entry points run as tier-1 tests.

CI additionally runs ``pytest --doctest-modules`` over the homotopy and
tracker packages; this file pins the same examples (plus the executor
and Pieri-solver ones) inside the main suite so a doc regression fails
everywhere, not just in the docs job.
"""

import doctest
import importlib

import pytest

DOCUMENTED_MODULES = [
    "repro.homotopy.solve",
    "repro.homotopy.counts",
    "repro.tracker",
    "repro.tracker.stacked",
    "repro.tracker.predictor",
    "repro.linalg.dets",
    "repro.parallel.executors",
    "repro.schubert.solver",
    "repro.polyhedral.supports",
    "repro.polyhedral.cells",
    "repro.polyhedral.binomial",
    "repro.polyhedral.lp",
    "repro.polyhedral.homotopy",
    "repro.endgame",
    "repro.systems.deficient",
    "repro.kernels",
    "repro.telemetry",
    "repro.telemetry.core",
    "repro.parallel.fleet.protocol",
    "repro.parallel.fleet.messages",
    "repro.simcluster.fleet_sim",
    "repro.artifacts",
    "repro.artifacts.fingerprints",
    "repro.homotopy.coefficient",
    "repro.serve",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its doctest examples"
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failures"
