"""Unit tests for repro.polynomials.system (compiled evaluation)."""

import numpy as np
import pytest

from repro.polynomials import Polynomial, PolynomialSystem, variables


def _random_point(nvars, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(nvars) + 1j * rng.standard_normal(nvars)


class TestBasics:
    def setup_method(self):
        self.x, self.y = variables(2, ["x", "y"])
        self.sys = PolynomialSystem([self.x**2 + self.y - 1, self.x - self.y])

    def test_shape(self):
        assert self.sys.neqs == 2
        assert self.sys.nvars == 2
        assert self.sys.is_square()
        assert len(self.sys) == 2

    def test_indexing_iteration(self):
        assert self.sys[0] == self.x**2 + self.y - 1
        assert list(self.sys)[1] == self.x - self.y

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PolynomialSystem([])

    def test_mixed_nvars_rejected(self):
        (z,) = variables(1)
        with pytest.raises(ValueError):
            PolynomialSystem([self.x, z])

    def test_degrees_and_bezout(self):
        assert self.sys.degrees() == (2, 1)
        assert self.sys.total_degree_bound() == 2


class TestEvaluation:
    def setup_method(self):
        x, y, z = variables(3)
        self.polys = [
            x**3 - 2 * y * z + 1,
            x * y * z - 4j,
            y**2 + z**2 - x,
        ]
        self.sys = PolynomialSystem(self.polys)

    def test_matches_termwise(self):
        pt = _random_point(3, seed=3)
        fast = self.sys.evaluate(pt)
        slow = np.array([p.evaluate(pt) for p in self.polys])
        assert np.allclose(fast, slow)

    def test_jacobian_matches_symbolic(self):
        pt = _random_point(3, seed=4)
        jac = self.sys.jacobian_at(pt)
        sym = self.sys.jacobian_system()
        expected = np.array([[sym[i][j].evaluate(pt) for j in range(3)] for i in range(3)])
        assert np.allclose(jac, expected)

    def test_jacobian_finite_difference(self):
        pt = _random_point(3, seed=5)
        jac = self.sys.jacobian_at(pt)
        h = 1e-7
        for v in range(3):
            pt_p = pt.copy()
            pt_p[v] += h
            fd = (self.sys.evaluate(pt_p) - self.sys.evaluate(pt)) / h
            assert np.allclose(jac[:, v], fd, atol=1e-5)

    def test_evaluate_and_jacobian_consistent(self):
        pt = _random_point(3, seed=6)
        res, jac = self.sys.evaluate_and_jacobian(pt)
        assert np.allclose(res, self.sys.evaluate(pt))
        assert np.allclose(jac, self.sys.jacobian_at(pt))

    def test_evaluate_many(self):
        rng = np.random.default_rng(7)
        pts = rng.standard_normal((11, 3)) + 1j * rng.standard_normal((11, 3))
        bulk = self.sys.evaluate_many(pts)
        assert bulk.shape == (11, 3)
        for k in range(11):
            assert np.allclose(bulk[k], self.sys.evaluate(pts[k]))

    def test_zero_at_zero_exponent_point(self):
        # monomial with exponent zero at coordinate zero must not produce 0**0 issues
        x, y = variables(2)
        sys = PolynomialSystem([x + 1, y**2 + x])
        res = sys.evaluate([0, 0])
        assert np.allclose(res, [1, 0])
        jac = sys.jacobian_at([0, 0])
        assert np.allclose(jac, [[1, 0], [1, 0]])

    def test_residual_norm(self):
        x, y = variables(2)
        sys = PolynomialSystem([x - 1, y - 2])
        assert sys.residual_norm([1, 2]) < 1e-15
        assert sys.residual_norm([0, 0]) == 2.0

    def test_wrong_point_shape(self):
        with pytest.raises(ValueError):
            self.sys.evaluate([1, 2])
        with pytest.raises(ValueError):
            self.sys.jacobian_at([1, 2])


class TestTransforms:
    def test_scale_equations(self):
        x, y = variables(2)
        sys = PolynomialSystem([x, y])
        scaled = sys.scale_equations([2, 3j])
        assert scaled[0] == 2 * x
        assert scaled[1] == 3j * y
        with pytest.raises(ValueError):
            sys.scale_equations([1])

    def test_map(self):
        x, y = variables(2)
        sys = PolynomialSystem([x, y]).map(lambda p: p + 1)
        assert sys[0] == x + 1

    def test_repr_str(self):
        x, y = variables(2, ["x", "y"])
        sys = PolynomialSystem([x + y])
        assert "PolynomialSystem" in repr(sys)
        assert "x" in str(sys)


class TestScratchBuffers:
    def test_batched_evaluation_is_thread_safe(self):
        # the per-shape scratch buffers (powers / gather / product) are
        # thread-local: the thread executors share one compiled-tables
        # object across workers, and a shared ``out=`` target makes
        # np.take raise "WRITEBACKIFCOPY base is read-only" under
        # contention (and would silently corrupt results otherwise)
        import concurrent.futures

        from repro.systems import cyclic_roots_system

        system = cyclic_roots_system(5)
        rng = np.random.default_rng(7)
        X = rng.standard_normal((12, 5)) + 1j * rng.standard_normal((12, 5))
        res0, jac0 = system.evaluate_and_jacobian_many(X)

        def work(_):
            out = []
            for _ in range(50):
                out.append(system.evaluate_and_jacobian_many(X))
            return out

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            rounds = list(pool.map(work, range(4)))
        for batch in rounds:
            for res, jac in batch:
                np.testing.assert_array_equal(res, res0)
                np.testing.assert_array_equal(jac, jac0)
