"""Unit tests for repro.polynomials.poly."""

import numpy as np
import pytest

from repro.polynomials import Polynomial, constant, variables


class TestConstruction:
    def test_basic_dict(self):
        p = Polynomial({(2, 0): 1, (0, 1): -3})
        assert p.nvars == 2
        assert p.coefficient((2, 0)) == 1
        assert p.coefficient((0, 1)) == -3
        assert p.coefficient((1, 1)) == 0

    def test_zero_coefficients_pruned(self):
        p = Polynomial({(1, 0): 0.0, (0, 1): 2.0})
        assert len(p) == 1

    def test_duplicate_keys_not_possible_but_merge_on_add(self):
        p = Polynomial({(1,): 2}) + Polynomial({(1,): 3})
        assert p.coefficient((1,)) == 5

    def test_empty_needs_nvars(self):
        with pytest.raises(ValueError):
            Polynomial({})
        z = Polynomial({}, nvars=3)
        assert z.is_zero() and z.nvars == 3

    def test_bad_exponent_length(self):
        with pytest.raises(ValueError):
            Polynomial({(1, 2): 1}, nvars=3)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Polynomial({(-1,): 1})

    def test_names(self):
        x, y = variables(2, ["x", "y"])
        assert (x * y).names in (("x", "y"),)
        with pytest.raises(ValueError):
            Polynomial({(1,): 1}, names=["a", "b"])


class TestArithmetic:
    def setup_method(self):
        self.x, self.y = variables(2, ["x", "y"])

    def test_add_sub(self):
        p = self.x + self.y - self.x
        assert p == self.y

    def test_scalar_ops(self):
        p = 2 * self.x + 1
        assert p.coefficient((1, 0)) == 2
        assert p.constant_term() == 1
        q = 1 - self.x
        assert q.coefficient((1, 0)) == -1

    def test_mul(self):
        p = (self.x + self.y) * (self.x - self.y)
        assert p == self.x**2 - self.y**2

    def test_pow(self):
        p = (self.x + 1) ** 3
        assert p.coefficient((3, 0)) == 1
        assert p.coefficient((2, 0)) == 3
        assert p.coefficient((1, 0)) == 3
        assert p.constant_term() == 1

    def test_pow_zero(self):
        assert (self.x**0) == constant(1, 2)

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            self.x ** (-1)

    def test_div_scalar(self):
        p = (2 * self.x) / 2
        assert p == self.x
        with pytest.raises(TypeError):
            self.x / self.y

    def test_nvars_mismatch(self):
        (z,) = variables(1)
        with pytest.raises(ValueError):
            self.x + z

    def test_complex_coefficients(self):
        p = 1j * self.x
        assert p.coefficient((1, 0)) == 1j
        assert (p * p).coefficient((2, 0)) == -1


class TestCalculus:
    def setup_method(self):
        self.x, self.y = variables(2, ["x", "y"])

    def test_diff(self):
        p = self.x**3 * self.y + 2 * self.y
        assert p.diff(0) == 3 * self.x**2 * self.y
        assert p.diff(1) == self.x**3 + 2

    def test_diff_constant_is_zero(self):
        assert constant(5, 2).diff(0).is_zero()

    def test_diff_out_of_range(self):
        with pytest.raises(IndexError):
            self.x.diff(5)

    def test_gradient(self):
        g = (self.x * self.y).gradient()
        assert g == (self.y, self.x)

    def test_product_rule_numeric(self):
        rng = np.random.default_rng(0)
        p = self.x**2 + 3 * self.y
        q = self.x * self.y - 1
        point = rng.standard_normal(2) + 1j * rng.standard_normal(2)
        lhs = (p * q).diff(0).evaluate(point)
        rhs = (p.diff(0) * q + p * q.diff(0)).evaluate(point)
        assert abs(lhs - rhs) < 1e-12


class TestEvaluation:
    def setup_method(self):
        self.x, self.y = variables(2, ["x", "y"])

    def test_evaluate_simple(self):
        p = self.x**2 + self.y
        assert p.evaluate([2, 3]) == 7

    def test_evaluate_complex(self):
        p = self.x**2 + 1
        assert abs(p.evaluate([1j, 0])) < 1e-15

    def test_call_alias(self):
        assert (self.x * self.y)([2, 5]) == 10

    def test_evaluate_many_matches_single(self):
        rng = np.random.default_rng(1)
        p = self.x**3 - 2j * self.x * self.y + 4
        pts = rng.standard_normal((20, 2)) + 1j * rng.standard_normal((20, 2))
        bulk = p.evaluate_many(pts)
        single = np.array([p.evaluate(pt) for pt in pts])
        assert np.allclose(bulk, single)

    def test_evaluate_many_zero_poly(self):
        z = Polynomial({}, nvars=2)
        assert np.all(z.evaluate_many(np.ones((4, 2))) == 0)

    def test_wrong_point_length(self):
        with pytest.raises(ValueError):
            self.x.evaluate([1, 2, 3])


class TestStructure:
    def setup_method(self):
        self.x, self.y = variables(2, ["x", "y"])

    def test_degrees(self):
        p = self.x**2 * self.y + self.y
        assert p.total_degree() == 3
        assert p.degree_in(0) == 2
        assert p.degree_in(1) == 1
        assert Polynomial({}, nvars=2).total_degree() == -1

    def test_substitute(self):
        p = self.x**2 * self.y + self.y
        q = p.substitute(0, 2)
        assert q == 5 * self.y

    def test_extend(self):
        p = self.x + self.y
        q = p.extend(4)
        assert q.nvars == 4
        assert q.coefficient((1, 0, 0, 0)) == 1

    def test_extend_shrink_rejected(self):
        with pytest.raises(ValueError):
            (self.x + self.y).extend(1)

    def test_homogenize(self):
        p = self.x**2 + self.y + 1
        h = p.homogenize()
        assert h.nvars == 3
        degs = {sum(e) for e, _ in h.terms()}
        assert degs == {2}
        # dehomogenize: set the new variable to 1
        back = h.substitute(2, 1)
        assert all(
            back.coefficient(e + (0,)) == c for e, c in p.terms()
        )

    def test_almost_equal(self):
        p = self.x + constant(1e-14, 2)
        assert p.almost_equal(self.x, tol=1e-12)
        assert not p.almost_equal(self.y, tol=1e-12)

    def test_str_roundtrip_sanity(self):
        p = self.x**2 - 3 * self.y + 1
        s = str(p)
        assert "x**2" in s and "y" in s

    def test_hash_consistency(self):
        assert hash(self.x + self.y) == hash(self.y + self.x)

    def test_max_norm(self):
        p = 3 * self.x - 4j * self.y
        assert p.max_norm() == 4.0
        assert Polynomial({}, nvars=2).max_norm() == 0.0

    def test_conjugate(self):
        p = (2 + 3j) * self.x
        assert p.conjugate().coefficient((1, 0)) == 2 - 3j
