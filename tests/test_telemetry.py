"""Telemetry layer: spans, traces, determinism segregation, zero-cost off.

Three contracts under test:

1. **Mechanics** — counters/histograms/spans aggregate correctly, trace
   events nest, exported files round-trip through the tolerant loader,
   and the B/E replay in :func:`layer_report` attributes self vs total
   time the way a flame graph would.
2. **Determinism** — ``deterministic_summary()`` carries no wall-clock
   field anywhere, and ``trace_paths=True`` changes *zero* tracking
   decisions: statuses, endpoints, and effort counters are bitwise
   identical with and without instrumentation (the whole point of
   keeping telemetry out of the numerics).
3. **Cost** — with no ambient context the hooks are one contextvar read;
   an opt-in overhead gate (``REPRO_RUN_OVERHEAD=1``) pins the <3%
   budget the docs promise.
"""

import json
import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.homotopy import make_homotopy_and_starts, solve
from repro.systems import cyclic_roots_system, katsura_system
from repro.telemetry import (
    Telemetry,
    active_tracer,
    current_telemetry,
    format_report,
    layer_report,
    load_trace,
    maybe_span,
    merge_summaries,
    use_telemetry,
)
from repro.telemetry.__main__ import main as telemetry_main
from repro.tracker import BatchTracker, PathTracker, TrackerOptions


class TestTelemetryCore:
    def test_counters_accumulate(self):
        tel = Telemetry(name="t")
        tel.count("paths")
        tel.count("paths", 4)
        assert tel.counters == {"paths": 5}

    def test_histograms_decade_bucketed(self):
        tel = Telemetry()
        for v in (0.05, 0.07, 0.005, 3.0, 0.0, -1.0):
            tel.observe("dt", v)
        assert tel.histograms["dt"] == {
            "1e-02": 2, "1e-03": 1, "1e+00": 1, "<=0": 2,
        }

    def test_span_aggregates_without_events(self):
        tel = Telemetry()
        with tel.span("newton", layer="corrector"):
            pass
        with tel.span("newton", layer="corrector"):
            pass
        assert tel.events == []  # not tracing: no per-event cost
        summ = tel.summary()
        assert summ["spans"]["corrector/newton"]["calls"] == 2
        assert summ["spans"]["corrector/newton"]["seconds"] >= 0.0

    def test_trace_records_nested_b_e_events(self):
        tel = Telemetry()
        with tel.trace():
            with tel.span("outer", layer="solve"):
                with tel.span("inner", layer="kernel"):
                    tel.instant("hit", "kernel", path=3)
        phases = [(e["ph"], e["name"]) for e in tel.events]
        assert phases == [
            ("B", "outer"), ("B", "inner"), ("i", "hit"),
            ("E", "inner"), ("E", "outer"),
        ]
        ts = [e["ts"] for e in tel.events]
        assert ts == sorted(ts)

    def test_trace_toggle_is_nest_safe(self):
        tel = Telemetry()
        with tel.trace():
            with tel.trace():
                assert tel.tracing
            assert tel.tracing  # inner exit must not switch it off
        assert not tel.tracing

    def test_instant_is_noop_outside_trace(self):
        tel = Telemetry()
        tel.instant("step_accept", "tracker", path=0)
        assert tel.events == [] and tel.counters == {}
        with tel.trace():
            tel.instant("step_accept", "tracker", path=0)
        assert tel.counters == {"tracker.step_accept": 1}

    def test_deterministic_summary_has_no_wallclock(self):
        tel = Telemetry()
        with tel.trace(), tel.span("track", layer="tracker"):
            tel.count("paths", 2)
            tel.observe("dt", 0.1)
            tel.instant("step_accept", "tracker")
        det = tel.deterministic_summary()
        assert det["spans"] == {"tracker/track": 1}

        def no_floats(obj):
            if isinstance(obj, dict):
                return all(no_floats(v) for v in obj.values())
            return not isinstance(obj, float)

        assert no_floats(det)  # nothing wall-clock-shaped anywhere
        assert "seconds" not in json.dumps(det)

    def test_wall_summary_is_the_other_half(self):
        tel = Telemetry()
        with tel.span("track", layer="tracker"):
            time.sleep(0.002)
        wall = tel.wall_summary()
        assert set(wall) == {"tracker/track"}
        assert wall["tracker/track"] > 0.0

    def test_contextvar_plumbing(self):
        assert current_telemetry() is None
        assert active_tracer() is None
        tel = Telemetry()
        with use_telemetry(tel):
            assert current_telemetry() is tel
            assert active_tracer() is None  # not tracing yet
            with tel.trace():
                assert active_tracer() is tel
        assert current_telemetry() is None

    def test_maybe_span_accepts_none(self):
        with maybe_span(None, "x", "y"):
            pass
        tel = Telemetry()
        with maybe_span(tel, "x", layer="y"):
            pass
        assert tel.summary()["spans"]["y/x"]["calls"] == 1


class TestTraceRoundTrip:
    def test_write_trace_is_valid_json_and_loads(self, tmp_path):
        tel = Telemetry(name="rt")
        with tel.trace():
            with tel.span("a", layer="solve"):
                tel.instant("mark", "solve")
        path = tmp_path / "trace.json"
        n = tel.write_trace(path)
        assert n == 3
        # the whole file must parse as one JSON array (Perfetto/
        # about:tracing compatibility), not just line-by-line
        payload = json.loads(path.read_text())
        assert isinstance(payload, list) and len(payload) == 4
        assert payload[0]["ph"] == "M"
        events = load_trace(path)  # loader drops metadata
        assert [e["ph"] for e in events] == ["B", "i", "E"]

    def test_load_trace_skips_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"ph": "B", "name": "a", "cat": "l", "ts": 0}\n'
            '{"ph": "E", "name": "a", "cat": "l", "ts"\n'  # torn mid-write
            '{"ph": "E", "name": "a", "cat": "l", "ts": 5}\n'
        )
        events = load_trace(path)
        assert [e["ph"] for e in events] == ["B", "E"]

    def test_layer_report_self_vs_total(self):
        # solve [0, 100us] wraps kernel [20, 60us]: solve self = 60us
        events = [
            {"ph": "B", "name": "solve", "cat": "solve", "ts": 0.0},
            {"ph": "B", "name": "eval", "cat": "kernel", "ts": 20.0},
            {"ph": "E", "name": "eval", "cat": "kernel", "ts": 60.0},
            {"ph": "i", "name": "hit", "cat": "kernel", "ts": 61.0},
            {"ph": "E", "name": "solve", "cat": "solve", "ts": 100.0},
        ]
        report = layer_report(events)
        assert report["n_events"] == 5
        assert report["wall_seconds"] == pytest.approx(100e-6)
        solve_layer = report["layers"]["solve"]
        assert solve_layer["total_seconds"] == pytest.approx(100e-6)
        assert solve_layer["self_seconds"] == pytest.approx(60e-6)
        kernel = report["layers"]["kernel"]
        assert kernel["self_seconds"] == pytest.approx(40e-6)
        assert kernel["names"]["eval"]["calls"] == 1
        assert report["instants"] == {"kernel.hit": 1}

    def test_format_report_renders_shares(self):
        events = [
            {"ph": "B", "name": "a", "cat": "solve", "ts": 0.0},
            {"ph": "E", "name": "a", "cat": "solve", "ts": 100.0},
        ]
        text = format_report(layer_report(events))
        assert "solve" in text and "100.0%" in text

    def test_unbalanced_end_is_ignored(self):
        report = layer_report(
            [{"ph": "E", "name": "x", "cat": "l", "ts": 1.0}]
        )
        assert report["layers"] == {}


class TestMergeSummaries:
    def test_merges_deterministic_and_full_shapes(self):
        det = {"counters": {"paths": 2}, "spans": {"solve/track": 1}}
        full = {
            "counters": {"paths": 3},
            "histograms": {"dt": {"1e-02": 4}},
            "spans": {"solve/track": {"calls": 2, "seconds": 0.5}},
        }
        merged = merge_summaries([det, None, full])
        assert merged["n_sources"] == 2
        assert merged["counters"] == {"paths": 5}
        assert merged["histograms"] == {"dt": {"1e-02": 4}}
        assert merged["spans"]["solve/track"] == {
            "calls": 3, "seconds": 0.5,
        }

    def test_empty_returns_none(self):
        assert merge_summaries([]) is None
        assert merge_summaries([None, {}]) is None


class TestReportCLI:
    def _trace_file(self, tmp_path):
        tel = Telemetry(name="cli")
        with tel.trace(), tel.span("track", layer="tracker"):
            tel.instant("step_accept", "tracker")
        path = tmp_path / "t.json"
        tel.write_trace(path)
        return path

    def test_text_report(self, tmp_path, capsys):
        assert telemetry_main(["report", str(self._trace_file(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "tracker" in out and "events" in out

    def test_json_report(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert telemetry_main(["report", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["instants"] == {"tracker.step_accept": 1}

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("[]\n")
        assert telemetry_main(["report", str(path)]) == 1
        assert "no trace events" in capsys.readouterr().err


class TestTracedSolve:
    def test_trace_paths_exports_layer_breakdown(self, tmp_path, capsys):
        system = katsura_system(3)
        report = solve(system, rng=np.random.default_rng(7), mode="batch",
                       kernel="slp", trace_paths=True)
        assert report.trace is not None
        assert report.telemetry is not None
        spans = report.telemetry["spans"]
        # every layer of the stack shows up in one trace
        for key in ("solve/track", "predictor/tangent", "corrector/newton",
                    "kernel/evaluate_and_jacobian"):
            assert key in spans, f"missing span {key}"
        assert report.telemetry["counters"]["solve.paths"] == len(
            report.results
        )
        assert report.summary["kernel"]["cache"]["kernels"] >= 1

        path = tmp_path / "solve.trace.json"
        n = report.trace.write_trace(path)
        assert n == len(report.trace.events) > 0
        assert telemetry_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        for layer in ("predictor", "corrector", "kernel"):
            assert layer in out

    def test_default_solve_records_nothing(self):
        system = katsura_system(2)
        report = solve(system, rng=np.random.default_rng(3), mode="batch")
        assert report.trace is None
        assert report.telemetry is None

    def test_ambient_context_aggregates_without_tracing(self):
        tel = Telemetry(name="job")
        with use_telemetry(tel):
            solve(katsura_system(2), rng=np.random.default_rng(3), mode="batch")
        det = tel.deterministic_summary()
        assert det["spans"]["solve/track"] == 1
        assert tel.events == []  # no trace_paths: aggregates only


def _solve_fingerprint(report):
    """Everything decision-shaped about a solve, bitwise."""
    return [
        (
            r.path_id,
            r.status.name,
            r.solution.tobytes(),
            r.stats.steps_accepted,
            r.stats.steps_rejected,
            r.stats.newton_iterations,
            r.stats.t_reached,
            r.winding_number,
        )
        for r in sorted(report.results, key=lambda r: r.path_id)
    ]


class TestDecisionParity:
    """trace_paths must never change what the tracker *does*."""

    @pytest.mark.parametrize("mode", ["batch", "per_path"])
    def test_solve_parity(self, mode):
        system = cyclic_roots_system(4)
        plain = solve(system, rng=np.random.default_rng(11), mode=mode)
        traced = solve(system, rng=np.random.default_rng(11), mode=mode,
                       trace_paths=True)
        assert _solve_fingerprint(plain) == _solve_fingerprint(traced)

    @settings(deadline=None, max_examples=8,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_batch_tracker_parity_over_seeds(self, seed):
        system = katsura_system(2)
        homotopy, starts = make_homotopy_and_starts(
            system, rng=np.random.default_rng(seed)
        )
        opts_off = TrackerOptions()
        opts_on = TrackerOptions(trace_paths=True)
        plain = BatchTracker(opts_off).track_batch(homotopy, starts)
        tel = Telemetry()
        with use_telemetry(tel):
            traced = BatchTracker(opts_on).track_batch(homotopy, starts)
        assert tel.counters.get("tracker.step_accept", 0) > 0
        for a, b in zip(plain, traced):
            assert a.status == b.status
            assert np.array_equal(a.solution, b.solution)
            assert a.stats.steps_accepted == b.stats.steps_accepted
            assert a.stats.steps_rejected == b.stats.steps_rejected
            assert a.stats.newton_iterations == b.stats.newton_iterations

    def test_per_path_tracker_parity(self):
        system = katsura_system(2)
        homotopy, starts = make_homotopy_and_starts(
            system, rng=np.random.default_rng(5)
        )
        plain = [
            PathTracker(TrackerOptions()).track(homotopy, s, path_id=i)
            for i, s in enumerate(starts)
        ]
        tel = Telemetry()
        with use_telemetry(tel):
            traced = [
                PathTracker(TrackerOptions(trace_paths=True)).track(
                    homotopy, s, path_id=i
                )
                for i, s in enumerate(starts)
            ]
        for a, b in zip(plain, traced):
            assert a.status == b.status
            assert np.array_equal(a.solution, b.solution)
            assert a.stats.newton_iterations == b.stats.newton_iterations


class TestBatchSecondsAmortization:
    """Satellite: per-path ``stats.seconds`` must sum to the batch wall."""

    def test_seconds_partition_batch_wall(self):
        system = katsura_system(3)
        homotopy, starts = make_homotopy_and_starts(
            system, rng=np.random.default_rng(2)
        )
        t0 = time.perf_counter()
        results = BatchTracker(TrackerOptions()).track_batch(homotopy, starts)
        wall = time.perf_counter() - t0
        seconds = [r.stats.seconds for r in results]
        assert all(s > 0.0 for s in seconds)  # every path carries a charge
        total = sum(seconds)
        # charges are slices of measured wall time: they can never exceed
        # it, and the loop body dominates so they cover most of it
        assert total <= wall * 1.01
        assert total >= wall * 0.5

    def test_one_path_batch_comparable_to_amortized_share(self):
        system = katsura_system(3)
        homotopy, starts = make_homotopy_and_starts(
            system, rng=np.random.default_rng(9)
        )
        tracker = BatchTracker(TrackerOptions())
        full = tracker.track_batch(homotopy, starts)
        single = tracker.track_batch(homotopy, starts[:1])
        mean_full = sum(r.stats.seconds for r in full) / len(full)
        s1 = single[0].stats.seconds
        # the old accounting charged every path the *whole batch's* wall
        # clock, so an 8-path batch reported ~8x a 1-path batch per path;
        # amortized, both figures are one path's share of its front
        assert s1 > 0 and mean_full > 0
        assert mean_full < s1 * 25
        assert s1 < mean_full * 25

    def test_seconds_comparable_to_per_path_tracker(self):
        system = katsura_system(2)
        homotopy, starts = make_homotopy_and_starts(
            system, rng=np.random.default_rng(2)
        )
        batch = BatchTracker(TrackerOptions()).track_batch(homotopy, starts)
        scalar = [
            PathTracker(TrackerOptions()).track(homotopy, s, path_id=i)
            for i, s in enumerate(starts)
        ]
        total_batch = sum(r.stats.seconds for r in batch)
        total_scalar = sum(r.stats.seconds for r in scalar)
        # both now measure "wall time spent on this front" — same order
        # of magnitude, not the old per-batch-total-in-every-path bug
        # where each path reported the whole batch wall
        assert total_batch > 0 and total_scalar > 0
        n = len(batch)
        assert max(r.stats.seconds for r in batch) < total_batch
        assert total_batch < n * max(r.stats.seconds for r in batch) * 1.01


@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_OVERHEAD"),
    reason="wall-clock gate; set REPRO_RUN_OVERHEAD=1 (the full cyclic-7 "
    "gate lives in benchmarks/bench_telemetry.py; CI runs its --quick mode)",
)
class TestOverheadGate:
    def test_ambient_telemetry_under_three_percent(self):
        system = cyclic_roots_system(6)

        def run(with_tel):
            if with_tel:
                with use_telemetry(Telemetry()):
                    solve(system, rng=np.random.default_rng(1), mode="batch",
                          kernel="slp")
            else:
                solve(system, rng=np.random.default_rng(1), mode="batch",
                          kernel="slp")

        run(True)  # warm kernel caches out of the measurement
        base, instr = [], []
        for rep in range(4):  # alternate pair order to cancel drift
            order = (False, True) if rep % 2 == 0 else (True, False)
            for with_tel in order:
                t0 = time.perf_counter()
                run(with_tel)
                (instr if with_tel else base).append(
                    time.perf_counter() - t0
                )
        assert min(instr) <= min(base) * 1.03 + 0.03


class TestSweepTelemetryJournal:
    def test_records_segregate_deterministic_and_wall(self, tmp_path):
        from repro.sweep.engine import run_sweep
        from repro.sweep.spec import JobSpec, SweepSpec

        spec = SweepSpec(name="tj", jobs=(
            JobSpec(kind="katsura", params=(("n", 2),), seed=1),
        ))
        report = run_sweep(spec, tmp_path, mode="serial")
        rec = next(iter(report.records.values()))
        det = rec["result"]["telemetry"]
        assert det["spans"]["solve/track"] == 1
        assert "seconds" not in json.dumps(det)
        assert rec["telemetry_seconds"]["solve/track"] >= 0.0
        assert rec["kernel_cache"]["kernels"] >= 0
        assert "cache" not in rec["result"]["kernel"]
        assert report.telemetry["spans"]["solve/track"]["calls"] == 1

    def test_rerun_telemetry_is_identical(self, tmp_path):
        from repro.sweep.engine import run_sweep
        from repro.sweep.spec import JobSpec, SweepSpec

        spec = SweepSpec(name="tj", jobs=(
            JobSpec(kind="katsura", params=(("n", 2),), seed=4),
        ))
        a = run_sweep(spec, tmp_path / "a", mode="serial")
        b = run_sweep(spec, tmp_path / "b", mode="serial")
        rec_a = next(iter(a.records.values()))
        rec_b = next(iter(b.records.values()))
        assert rec_a["result"]["telemetry"] == rec_b["result"]["telemetry"]


class TestFleetStatus:
    def _drain_worker(self, port):
        """Minimal protocol worker: lease, report results, exit on drain."""
        import asyncio

        from repro.parallel.fleet.messages import decode_line, encode_frame

        async def work():
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_frame(
                {"type": "hello", "worker": "w0", "held": []}
            ))
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    break
                msg = decode_line(line)
                if msg is None:
                    continue
                if msg["type"] == "lease":
                    for item in msg["jobs"]:
                        writer.write(encode_frame({
                            "type": "result", "worker": "w0",
                            "job_id": item["job_id"],
                            "record": {"job_id": item["job_id"]},
                            "seconds": 0.01,
                        }))
                    await writer.drain()
                elif msg["type"] == "drain":
                    writer.write(encode_frame(
                        {"type": "goodbye", "worker": "w0"}
                    ))
                    await writer.drain()
                    break
            writer.close()

        return work

    def test_status_snapshot_unit(self):
        from repro.parallel.fleet import FleetMaster

        jobs = [{"job_id": f"j{i}", "job": {}} for i in range(3)]
        master = FleetMaster(jobs, lambda jid, rec: None)
        snap = master.status_snapshot(0.0)
        assert snap["n_jobs"] == 3 and snap["backlog"] == 3
        assert snap["workers"] == {}
        master.handle({"type": "hello", "worker": "w0", "held": []}, 1.0)
        snap = master.status_snapshot(2.5)
        view = snap["workers"]["w0"]
        assert view["leased"] >= 1
        assert view["silent_seconds"] == pytest.approx(1.5)
        assert snap["stats"]["registrations"] == 1

    def test_status_frame_round_trip(self):
        import asyncio
        import json as json_module

        from repro.parallel.fleet import fetch_fleet_status, serve_fleet

        committed = {}
        holder = {}

        async def scenario():
            loop = asyncio.get_running_loop()
            port_fut = loop.create_future()

            async def observe_then_drain():
                port = await port_fut
                holder["status"] = await asyncio.to_thread(
                    fetch_fleet_status, "127.0.0.1", port
                )
                await self._drain_worker(port)()

            side = asyncio.create_task(observe_then_drain())
            master = await serve_fleet(
                [{"job_id": f"j{i}", "job": {}} for i in range(4)],
                lambda jid, rec: committed.__setitem__(jid, rec),
                on_listening=lambda h, p: port_fut.set_result(p),
                linger_seconds=0.05,
            )
            await side
            return master

        master = asyncio.run(scenario())
        status = holder["status"]
        assert status["type"] == "status_reply"
        assert status["n_jobs"] == 4
        assert status["backlog"] == 4  # queried before the worker joined
        json_module.dumps(status)  # wire-safe
        assert master.done and len(committed) == 4

    def test_report_json_surfaces_fleet_stats(self, tmp_path, capsys):
        from repro.sweep.cli import main as sweep_main
        from repro.sweep.journal import SweepJournal
        from repro.sweep.spec import JobSpec, SweepSpec

        spec = SweepSpec(name="fs", jobs=(
            JobSpec(kind="katsura", params=(("n", 2),), seed=1),
        ))
        from repro.sweep.engine import run_job

        journal = SweepJournal(tmp_path)
        journal.initialize(spec.to_dict())
        with journal:
            journal.append(run_job(spec.jobs[0]))
        fleet_stats = {
            "workers_seen": ["w0"],
            "busy_by_worker": {"w0": 1.25},
            "steals": 2, "requeues": 1, "duplicates": 0,
        }
        journal.write_manifest(1, 1, "complete",
                               {"name": "fs", "fleet": fleet_stats})
        assert sweep_main(["report", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["busy_by_worker"] == {"w0": 1.25}
        assert payload["fleet"]["steals"] == 2
        # text mode prints the same stats plus per-worker busy lines
        assert sweep_main(["report", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert "steals 2" in text and "w0: busy 1.25s" in text

    def test_report_telemetry_flag(self, tmp_path, capsys):
        from repro.sweep.cli import main as sweep_main
        from repro.sweep.engine import run_sweep
        from repro.sweep.spec import JobSpec, SweepSpec

        spec = SweepSpec(name="tf", jobs=(
            JobSpec(kind="katsura", params=(("n", 2),), seed=1),
        ))
        run_sweep(spec, tmp_path, mode="serial")
        assert sweep_main(["report", str(tmp_path), "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "solve/track" in out and "solve.paths" in out
