"""Batch tracking layer: masked batch Newton, SoA tracker, scalar parity.

The contract under test: :class:`BatchTracker` is a *drop-in* for
:class:`PathTracker` — same per-path decisions, same statuses, endpoints
agreeing to 1e-8 — whether the homotopy implements the batch protocol
natively (ConvexHomotopy) or is wrapped by :class:`ScalarBatchAdapter`
(the Pieri determinant homotopy).
"""

import doctest

import numpy as np
import pytest

import repro.polynomials.poly as poly_module
from repro.homotopy import ConvexHomotopy, make_homotopy_and_starts, solve
from repro.schubert import PieriInstance, PieriSolver, trivial_solution_matrix
from repro.systems import cyclic_roots_system, katsura_system
from repro.tracker import (
    BatchHomotopy,
    BatchTracker,
    HomotopyFunction,
    PathStatus,
    PathTracker,
    ScalarBatchAdapter,
    as_batch,
    batch_newton_correct,
    newton_correct,
)


class SqrtHomotopy(HomotopyFunction):
    """H(x, t) = x^2 - (1 + 3t): paths x(t) = +/- sqrt(1 + 3t)."""

    @property
    def dim(self):
        return 1

    def evaluate(self, x, t):
        return np.array([x[0] ** 2 - (1 + 3 * t)])

    def jacobian_x(self, x, t):
        return np.array([[2 * x[0]]])

    def jacobian_t(self, x, t):
        return np.array([-3.0 + 0j])


def _assert_parity(serial, batch, tol=1e-8):
    assert len(serial) == len(batch)
    for a, b in zip(serial, batch):
        assert a.path_id == b.path_id
        assert a.status == b.status, (
            f"path {a.path_id}: scalar {a.status} vs batch {b.status}"
        )
        if a.success:
            assert np.max(np.abs(a.solution - b.solution)) < tol


class TestBatchInterface:
    def test_as_batch_wraps_scalar(self):
        h = SqrtHomotopy()
        bh = as_batch(h)
        assert isinstance(bh, ScalarBatchAdapter)
        assert bh.dim == 1
        # a native batch homotopy passes through untouched
        assert as_batch(bh) is bh

    def test_as_batch_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_batch(object())

    def test_adapter_matches_scalar_pointwise(self):
        h = SqrtHomotopy()
        bh = ScalarBatchAdapter(h)
        X = np.array([[1.0 + 0j], [-1.5 + 0.5j], [2.0 + 0j]])
        t = np.array([0.0, 0.3, 1.0])
        res = bh.evaluate_batch(X, t)
        jac = bh.jacobian_x_batch(X, t)
        jt = bh.jacobian_t_batch(X, t)
        res2, jac2 = bh.evaluate_and_jacobian_batch(X, t)
        for i in range(3):
            assert np.allclose(res[i], h.evaluate(X[i], t[i]))
            assert np.allclose(jac[i], h.jacobian_x(X[i], t[i]))
            assert np.allclose(jt[i], h.jacobian_t(X[i], t[i]))
            assert np.allclose(res2[i], res[i]) and np.allclose(jac2[i], jac[i])

    def test_scalar_t_broadcasts(self):
        bh = ScalarBatchAdapter(SqrtHomotopy())
        X = np.array([[1.0 + 0j], [-1.0 + 0j]])
        assert np.allclose(
            bh.evaluate_batch(X, 0.5), bh.evaluate_batch(X, np.array([0.5, 0.5]))
        )

    def test_convex_is_native_batch(self):
        target = cyclic_roots_system(3)
        homotopy, _ = make_homotopy_and_starts(
            target, rng=np.random.default_rng(0)
        )
        assert isinstance(homotopy, ConvexHomotopy)
        assert isinstance(homotopy, BatchHomotopy)
        assert as_batch(homotopy) is homotopy


class TestBatchedSystemEvaluation:
    def test_evaluate_and_jacobian_many_matches_scalar(self):
        rng = np.random.default_rng(7)
        sys = katsura_system(4)
        pts = rng.standard_normal((9, 5)) + 1j * rng.standard_normal((9, 5))
        res, jac = sys.evaluate_and_jacobian_many(pts)
        assert res.shape == (9, 5) and jac.shape == (9, 5, 5)
        for i in range(9):
            r, j = sys.evaluate_and_jacobian(pts[i])
            assert np.allclose(res[i], r, atol=1e-10)
            assert np.allclose(jac[i], j, atol=1e-10)

    def test_evaluate_many_shares_the_scatter_path(self):
        rng = np.random.default_rng(8)
        sys = cyclic_roots_system(5)
        pts = rng.standard_normal((6, 5)) + 1j * rng.standard_normal((6, 5))
        res, _ = sys.evaluate_and_jacobian_many(pts)
        np.testing.assert_array_equal(sys.evaluate_many(pts), res)

    def test_shape_validation(self):
        sys = cyclic_roots_system(3)
        with pytest.raises(ValueError):
            sys.evaluate_and_jacobian_many(np.zeros((2, 4), dtype=complex))


class TestBatchNewton:
    def test_converges_like_scalar(self):
        h = SqrtHomotopy()
        X = np.array([[1.9 + 0j], [-1.9 + 0j], [2.2 + 0j]])
        out = batch_newton_correct(as_batch(h), X, 1.0, tol=1e-12)
        assert out.converged.all()
        assert np.allclose(np.abs(out.x[:, 0]), 2.0, atol=1e-10)
        for i, x0 in enumerate(X):
            scalar = newton_correct(h, x0, 1.0, tol=1e-12)
            assert np.allclose(out.x[i], scalar.x)
            assert out.iterations[i] == scalar.iterations

    def test_singular_member_is_masked_not_fatal(self):
        """One singular path must not poison the rest of the batch."""
        h = SqrtHomotopy()
        # x = 0 has a singular Jacobian; its neighbours are fine
        X = np.array([[1.9 + 0j], [0.0 + 0j], [-2.1 + 0j]])
        out = batch_newton_correct(as_batch(h), X, 1.0, tol=1e-12)
        assert out.singular[1] and not out.converged[1]
        assert not out.singular[0] and not out.singular[2]
        assert out.converged[0] and out.converged[2]
        assert abs(out.x[0, 0] - 2.0) < 1e-10
        assert abs(out.x[2, 0] + 2.0) < 1e-10
        # the singular path is left where Newton abandoned it
        assert out.x[1, 0] == 0.0

    def test_active_mask_skips_paths(self):
        h = SqrtHomotopy()
        X = np.array([[1.9 + 0j], [1.9 + 0j]])
        out = batch_newton_correct(
            as_batch(h), X, 1.0, active=np.array([True, False])
        )
        assert out.converged[0] and not out.converged[1]
        assert out.x[1, 0] == 1.9  # untouched
        assert np.isinf(out.residual[1])

    def test_matches_scalar_on_polynomial_homotopy(self):
        target = cyclic_roots_system(4)
        homotopy, starts = make_homotopy_and_starts(
            target, rng=np.random.default_rng(3)
        )
        X = np.array(starts)
        out = batch_newton_correct(homotopy, X, 0.0, tol=1e-10)
        for i, s in enumerate(starts):
            scalar = newton_correct(homotopy, s, 0.0, tol=1e-10)
            assert out.converged[i] == scalar.converged
            assert np.allclose(out.x[i], scalar.x, atol=1e-10)


class TestBatchTrackerBasics:
    def test_empty_batch(self):
        assert BatchTracker().track_batch(SqrtHomotopy(), []) == []

    def test_two_branches(self):
        results = BatchTracker().track_batch(SqrtHomotopy(), [[1.0], [-1.0]])
        assert [r.path_id for r in results] == [0, 1]
        assert all(r.success for r in results)
        assert abs(results[0].solution[0] - 2.0) < 1e-9
        assert abs(results[1].solution[0] + 2.0) < 1e-9

    def test_stats_populated(self):
        (r,) = BatchTracker().track_batch(SqrtHomotopy(), [[1.0]])
        assert r.stats.steps_accepted > 0
        assert r.stats.newton_iterations > 0
        assert r.stats.seconds >= 0
        assert r.stats.t_reached == pytest.approx(1.0)

    def test_bad_start_fails_without_stalling_batch(self):
        results = BatchTracker().track_batch(SqrtHomotopy(), [[0.0], [1.0]])
        assert results[0].status is PathStatus.FAILED
        assert results[1].success
        # like PathTracker, a path failing the initial check reports its
        # original start point, not a partially-Newton-iterated one
        assert results[0].solution[0] == 0.0

    def test_failed_initial_check_keeps_start_point(self):
        """Newton halves x each sweep from a far start but cannot converge
        within the iteration cap; the FAILED result must still carry the
        caller's start point, exactly as PathTracker reports it."""
        far = [1e6]
        scalar = PathTracker().track(SqrtHomotopy(), far)
        (batch,) = BatchTracker().track_batch(SqrtHomotopy(), [far])
        assert scalar.status is PathStatus.FAILED
        assert batch.status is PathStatus.FAILED
        assert scalar.solution[0] == 1e6
        assert batch.solution[0] == 1e6

    def test_t_start_validation(self):
        with pytest.raises(ValueError):
            BatchTracker().track_batch(SqrtHomotopy(), [[1.0]], t_start=1.0)

    def test_custom_path_ids(self):
        results = BatchTracker().track_batch(
            SqrtHomotopy(), [[1.0], [-1.0]], path_ids=[7, 9]
        )
        assert [r.path_id for r in results] == [7, 9]


class TestScalarParity:
    """ISSUE acceptance: statuses and endpoints agree to 1e-8."""

    def test_cyclic5_parity(self):
        target = cyclic_roots_system(5)
        homotopy, starts = make_homotopy_and_starts(
            target, rng=np.random.default_rng(11)
        )
        serial = PathTracker().track_many(homotopy, starts)
        batch = BatchTracker().track_batch(homotopy, starts)
        _assert_parity(serial, batch)
        # the workload exercises divergence culling, not just successes
        assert any(r.status is not PathStatus.SUCCESS for r in serial)

    def test_katsura_parity(self):
        target = katsura_system(5)
        homotopy, starts = make_homotopy_and_starts(
            target, rng=np.random.default_rng(12)
        )
        serial = PathTracker().track_many(homotopy, starts)
        batch = BatchTracker().track_batch(homotopy, starts)
        _assert_parity(serial, batch)
        assert sum(r.success for r in batch) == len(starts)

    def test_pieri_edge_parity_via_adapter(self):
        """A determinant homotopy runs through ScalarBatchAdapter."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(21))
        solver = PieriSolver(instance, seed=22)
        jobs = solver.initial_jobs()
        for job in jobs:
            homotopy = solver.make_homotopy(job.node)
            start = homotopy.start_vector(
                trivial_solution_matrix(instance.problem)
            )
            serial = [PathTracker().track(homotopy, start, path_id=0)]
            batch = BatchTracker().track_batch(
                ScalarBatchAdapter(homotopy), [start]
            )
            _assert_parity(serial, batch)

    def test_solve_mode_batch_matches_per_path(self):
        target = cyclic_roots_system(4)
        per_path = solve(target, rng=np.random.default_rng(5), mode="per_path")
        batch = solve(target, rng=np.random.default_rng(5), mode="batch")
        assert per_path.n_solutions == batch.n_solutions
        assert per_path.summary["success"] == batch.summary["success"]

    def test_solve_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            solve(cyclic_roots_system(3), mode="bogus")


def test_polynomial_doctests():
    """Run the poly-module doctests (complex coefficient printing etc.)."""
    failures, _ = doctest.testmod(poly_module)
    assert failures == 0
