"""Tests for the discrete-event cluster simulator."""

import numpy as np
import pytest

from repro.schubert import PieriProblem
from repro.simcluster import (
    ClusterSpec,
    EventQueue,
    Workload,
    cyclic10_workload,
    default_level_cost,
    rps_workload,
    simulate_dynamic,
    simulate_pieri_tree,
    simulate_static,
    speedup_table,
    uniform_workload,
    workload_from_results,
)


class TestEngine:
    def test_event_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(2.0, lambda: order.append("b"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(3.0, lambda: order.append("c"))
        end = q.run()
        assert order == ["a", "b", "c"]
        assert end == 3.0

    def test_ties_fifo(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, lambda: order.append(1))
        q.schedule(1.0, lambda: order.append(2))
        q.run()
        assert order == [1, 2]

    def test_nested_scheduling(self):
        q = EventQueue()
        hits = []

        def first():
            hits.append(q.now)
            q.schedule(0.5, lambda: hits.append(q.now))

        q.schedule(1.0, first)
        q.run()
        assert hits == [1.0, 1.5]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0, lambda: None)

    def test_at_absolute(self):
        q = EventQueue()
        seen = []
        q.at(2.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [2.5]


class TestWorkloads:
    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("x", np.array([]))
        with pytest.raises(ValueError):
            Workload("x", np.array([1.0, -1.0]))

    def test_cyclic10_calibration(self):
        wl = cyclic10_workload(np.random.default_rng(0))
        assert wl.n_paths == 35_940
        assert abs(wl.total_cpu_minutes - 480.0) < 1e-6
        assert wl.variance_ratio > 0.5  # heavy spread

    def test_rps_calibration(self):
        wl = rps_workload(np.random.default_rng(1))
        assert wl.n_paths == 9_216
        assert abs(wl.total_cpu_minutes - 3111.2) < 1e-6
        # low variance: divergent paths dominate and cost nearly the same
        assert wl.variance_ratio < 0.5

    def test_uniform(self):
        wl = uniform_workload(10, 2.0)
        assert wl.total_seconds == 20.0
        assert wl.variance_ratio == 0.0

    def test_scaled(self):
        wl = uniform_workload(10).scaled_to_total_minutes(1.0)
        assert abs(wl.total_seconds - 60.0) < 1e-9

    def test_from_results(self):
        from repro.tracker import PathResult, PathStatus, TrackStats

        results = [
            PathResult(
                PathStatus.SUCCESS,
                np.array([0j]),
                np.array([0j]),
                0.0,
                TrackStats(seconds=0.5),
            )
        ]
        wl = workload_from_results(results)
        assert wl.n_paths == 1
        with pytest.raises(ValueError):
            workload_from_results([])

    def test_divergent_bounds(self):
        with pytest.raises(ValueError):
            cyclic10_workload(n_paths=10, n_divergent=10)


class TestStaticVsDynamic:
    def test_work_conservation(self):
        wl = cyclic10_workload(np.random.default_rng(2), n_paths=2000,
                               n_divergent=100, n_clusters=5)
        for n in (1, 4, 16):
            st = simulate_static(wl, n)
            dy = simulate_dynamic(wl, n)
            assert abs(st.total_cpu_seconds - wl.total_seconds) < 1e-6
            assert abs(dy.total_cpu_seconds - wl.total_seconds) < 1e-6
            assert st.jobs_done == dy.jobs_done == wl.n_paths

    def test_single_cpu_equal(self):
        wl = uniform_workload(100)
        st = simulate_static(wl, 1)
        dy = simulate_dynamic(wl, 1)
        assert abs(st.wall_seconds - dy.wall_seconds) < 1e-3

    def test_dynamic_beats_static_on_high_variance(self):
        wl = cyclic10_workload(np.random.default_rng(3), n_paths=5000,
                               n_divergent=300, n_clusters=4)
        st = simulate_static(wl, 32)
        dy = simulate_dynamic(wl, 32)
        assert dy.wall_seconds < st.wall_seconds

    def test_static_competitive_on_low_variance(self):
        """The paper's RPS observation: no large dynamic advantage."""
        wl = rps_workload(np.random.default_rng(4), n_paths=4096,
                          n_divergent=3600)
        st = simulate_static(wl, 32)
        dy = simulate_dynamic(wl, 32)
        gap = (st.wall_seconds - dy.wall_seconds) / st.wall_seconds
        assert abs(gap) < 0.10  # within ten percent of each other

    def test_speedup_monotone_in_cpus(self):
        wl = cyclic10_workload(np.random.default_rng(5), n_paths=3000,
                               n_divergent=150, n_clusters=3)
        walls = [simulate_dynamic(wl, n).wall_seconds for n in (1, 4, 16, 64)]
        assert all(b < a for a, b in zip(walls, walls[1:]))

    def test_dynamic_near_optimal_small_counts(self):
        """Fig 1: dynamic speedup is near-optimal below 32 CPUs."""
        wl = cyclic10_workload(np.random.default_rng(6), n_paths=8000,
                               n_divergent=400)
        t1 = simulate_static(wl, 1).wall_seconds
        dy = simulate_dynamic(wl, 16)
        assert dy.speedup(t1) > 0.9 * 16

    def test_overlap_helps_or_equal(self):
        wl = uniform_workload(500, 0.01)
        with_ov = simulate_dynamic(wl, 8, ClusterSpec(overlap_comm=True))
        without = simulate_dynamic(wl, 8, ClusterSpec(overlap_comm=False))
        assert with_ov.wall_seconds <= without.wall_seconds

    def test_chunking_modes(self):
        wl = cyclic10_workload(np.random.default_rng(7), n_paths=1000,
                               n_divergent=100, n_clusters=2)
        block = simulate_static(wl, 8, chunking="block")
        rr = simulate_static(wl, 8, chunking="round_robin")
        # round robin decorrelates the clusters: at least as balanced
        assert rr.load_imbalance <= block.load_imbalance + 1e-9
        with pytest.raises(ValueError):
            simulate_static(wl, 8, chunking="bogus")

    def test_invalid_cpus(self):
        wl = uniform_workload(10)
        with pytest.raises(ValueError):
            simulate_static(wl, 0)
        with pytest.raises(ValueError):
            simulate_dynamic(wl, 0)

    def test_speedup_table_rows(self):
        wl = uniform_workload(256, 0.05)
        rows = speedup_table(wl, [1, 4, 8])
        assert [r["cpus"] for r in rows] == [1, 4, 8]
        assert rows[0]["static_speedup"] == pytest.approx(1.0, rel=1e-3)
        for r in rows:
            assert r["dynamic_minutes"] > 0
            assert -100 < r["improvement_pct"] < 100


class TestPieriTreeSim:
    def test_job_counts_match_dp(self):
        res = simulate_pieri_tree(PieriProblem(3, 2, 1), 8)
        assert sum(res.jobs_per_level.values()) == 252

    def test_last_level_dominates(self):
        """Paper §III-D: about half the time sits at the last level."""
        res = simulate_pieri_tree(PieriProblem(3, 2, 1), 8)
        frac = res.level_work_fraction(11)
        assert 0.3 < frac < 0.6

    def test_speedup_grows_with_cpus(self):
        prob = PieriProblem(3, 2, 1)
        t1 = simulate_pieri_tree(prob, 1).wall_seconds
        t4 = simulate_pieri_tree(prob, 4).wall_seconds
        t8 = simulate_pieri_tree(prob, 8).wall_seconds
        assert t8 < t4 < t1

    def test_concurrency_bounded_by_tree_width(self):
        res = simulate_pieri_tree(PieriProblem(2, 2, 0), 64)
        # the (2,2,0) tree is at most 2 wide
        assert res.max_concurrency <= 2

    def test_ramp_up_positive(self):
        res = simulate_pieri_tree(PieriProblem(3, 2, 1), 16)
        assert res.ramp_up_seconds > 0

    def test_work_conservation(self):
        prob = PieriProblem(2, 2, 1)
        r1 = simulate_pieri_tree(prob, 1)
        r8 = simulate_pieri_tree(prob, 8)
        assert abs(r1.total_cpu_seconds - sum(r1.work_per_level.values())) < 1e-6
        assert abs(
            sum(r1.work_per_level.values()) - sum(r8.work_per_level.values())
        ) < 1e-6

    def test_default_cost_monotone(self):
        costs = [default_level_cost(n) for n in range(1, 12)]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_invalid_cpus(self):
        with pytest.raises(ValueError):
            simulate_pieri_tree(PieriProblem(2, 2, 0), 0)
