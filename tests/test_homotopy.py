"""Integration tests: start systems + gamma homotopy + tracker = solver."""

import numpy as np
import pytest

from repro.homotopy import (
    ConvexHomotopy,
    LinearProductStart,
    distinct_solutions,
    random_gamma,
    solve,
    total_degree_start_solutions,
    total_degree_start_system,
)
from repro.polynomials import PolynomialSystem, variables
from repro.systems import random_dense_system


class TestStartSystems:
    def test_total_degree_roots_solve_start_system(self):
        x, y = variables(2)
        target = PolynomialSystem([x**2 + y - 1, x * y**3 - 2])
        rng = np.random.default_rng(0)
        start, consts = total_degree_start_system(target, rng)
        assert start.degrees() == (2, 4)
        roots = list(total_degree_start_solutions(target.degrees(), consts))
        assert len(roots) == 8
        for r in roots:
            assert start.residual_norm(r) < 1e-10

    def test_total_degree_rejects_non_square(self):
        x, y = variables(2)
        with pytest.raises(ValueError):
            total_degree_start_system(PolynomialSystem([x + y]))

    def test_total_degree_rejects_constant_equation(self):
        x, y = variables(2)
        from repro.polynomials import constant

        with pytest.raises(ValueError):
            total_degree_start_system(
                PolynomialSystem([constant(1, 2), x + y])
            )

    def test_linear_product_roots_solve_start_system(self):
        x, y = variables(2)
        target = PolynomialSystem([x**2 + y**2 - 1, x * y - 1])
        lp = LinearProductStart(target, np.random.default_rng(1))
        start = lp.system()
        sols = list(lp.solutions())
        assert len(sols) == lp.solution_count() == 4
        for s in sols:
            assert start.residual_norm(s) < 1e-8

    def test_gamma_on_unit_circle(self):
        g = random_gamma(np.random.default_rng(2))
        assert abs(abs(g) - 1) < 1e-12


class TestConvexHomotopy:
    def test_endpoints(self):
        x, y = variables(2)
        f = PolynomialSystem([x - 1, y - 2])
        g = PolynomialSystem([x + 1, y + 2])
        h = ConvexHomotopy(g, f, gamma=1.0)
        pt = np.array([5.0, 7.0], dtype=complex)
        assert np.allclose(h.evaluate(pt, 0.0), g.evaluate(pt))
        assert np.allclose(h.evaluate(pt, 1.0), f.evaluate(pt))

    def test_jacobian_t_analytic(self):
        x, y = variables(2)
        f = PolynomialSystem([x**2 - 1, y - 2])
        g = PolynomialSystem([x + 1, y**2 + 2])
        h = ConvexHomotopy(g, f, gamma=0.5 + 0.1j)
        pt = np.array([0.3 + 0.2j, -0.4j])
        fd = (h.evaluate(pt, 0.5 + 1e-7) - h.evaluate(pt, 0.5)) / 1e-7
        assert np.allclose(h.jacobian_t(pt, 0.5), fd, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        x, y = variables(2)
        (z,) = variables(1)
        with pytest.raises(ValueError):
            ConvexHomotopy(PolynomialSystem([z]), PolynomialSystem([x, y]))

    def test_zero_gamma_rejected(self):
        x, y = variables(2)
        f = PolynomialSystem([x, y])
        with pytest.raises(ValueError):
            ConvexHomotopy(f, f, gamma=0.0)


class TestSolve:
    def test_univariate_roots(self):
        (x,) = variables(1)
        target = PolynomialSystem([x**3 - 1])
        report = solve(target, rng=np.random.default_rng(3))
        assert report.n_paths == 3
        assert report.n_solutions == 3
        for s in report.solutions:
            assert abs(s[0] ** 3 - 1) < 1e-9

    def test_two_circles(self):
        x, y = variables(2)
        target = PolynomialSystem([x**2 + y**2 - 4, (x - 1) ** 2 + y**2 - 4])
        report = solve(target, rng=np.random.default_rng(4))
        # two finite intersection points; 2 of 4 paths diverge
        assert report.n_solutions == 2
        for s in report.solutions:
            assert target.residual_norm(s) < 1e-8

    def test_random_dense_reaches_bezout(self):
        target = random_dense_system(2, degree=2, rng=np.random.default_rng(5))
        report = solve(target, rng=np.random.default_rng(6))
        assert report.n_paths == 4
        assert report.n_solutions == 4
        assert report.summary["diverged"] == 0

    def test_linear_product_start(self):
        x, y = variables(2)
        target = PolynomialSystem([x**2 + y**2 - 4, (x - 1) ** 2 + y**2 - 4])
        report = solve(
            target, start_kind="linear_product", rng=np.random.default_rng(7)
        )
        assert report.n_solutions == 2

    def test_unknown_start_kind(self):
        x, y = variables(2)
        target = PolynomialSystem([x, y])
        with pytest.raises(ValueError):
            solve(target, start_kind="bogus")

    def test_distinct_solutions_dedup(self):
        from repro.tracker import PathResult, PathStatus, TrackStats

        a = PathResult(
            PathStatus.SUCCESS, np.array([1.0 + 0j]), np.array([0j]), 0.0, TrackStats()
        )
        b = PathResult(
            PathStatus.SUCCESS,
            np.array([1.0 + 1e-9j]),
            np.array([0j]),
            0.0,
            TrackStats(),
        )
        c = PathResult(
            PathStatus.DIVERGED, np.array([9e9 + 0j]), np.array([0j]), 1.0, TrackStats()
        )
        assert len(distinct_solutions([a, b, c])) == 1
