"""Tests for coefficient-parameter continuation and the placement oracle."""

import numpy as np
import pytest

from repro.control import PolePlacementOracle, random_plant
from repro.schubert import (
    PieriInstance,
    PieriParameterHomotopy,
    PieriSolver,
    continue_to_instance,
    pieri_root_count,
    verify_solutions,
)


@pytest.fixture(scope="module")
def solved_base():
    base = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
    report = PieriSolver(base, seed=1).solve()
    assert report.n_solutions == 2
    return base, report.solutions


class TestParameterHomotopy:
    def test_start_solutions_are_exact_roots(self, solved_base):
        base, sols = solved_base
        target = PieriInstance.random(2, 2, 0, np.random.default_rng(2))
        hom = PieriParameterHomotopy(base, target, np.random.default_rng(3))
        for sol in sols:
            x0 = hom.from_matrix(sol)
            assert np.max(np.abs(hom.evaluate(x0, 0.0))) < 1e-8

    def test_target_conditions_at_t1(self, solved_base):
        base, _ = solved_base
        target = PieriInstance.random(2, 2, 0, np.random.default_rng(4))
        hom = PieriParameterHomotopy(base, target, np.random.default_rng(5))
        ks, ss = hom._paths_at(1.0)
        for k, kt in zip(ks, target.planes):
            assert np.allclose(k, kt)
        for s, st in zip(ss, target.points):
            assert abs(s - st) < 1e-12

    def test_jacobian_finite_difference(self, solved_base):
        base, sols = solved_base
        target = PieriInstance.random(2, 2, 0, np.random.default_rng(6))
        hom = PieriParameterHomotopy(base, target, np.random.default_rng(7))
        rng = np.random.default_rng(8)
        x = rng.standard_normal(hom.dim) + 1j * rng.standard_normal(hom.dim)
        t = 0.3
        jac = hom.jacobian_x(x, t)
        h = 1e-7
        for k in range(hom.dim):
            xp = x.copy()
            xp[k] += h
            fd = (hom.evaluate(xp, t) - hom.evaluate(x, t)) / h
            assert np.allclose(jac[:, k], fd, atol=1e-5)

    def test_mismatched_problems_rejected(self):
        a = PieriInstance.random(2, 2, 0, np.random.default_rng(9))
        b = PieriInstance.random(3, 2, 0, np.random.default_rng(10))
        with pytest.raises(ValueError):
            PieriParameterHomotopy(a, b)

    def test_chart_roundtrip(self, solved_base):
        base, sols = solved_base
        target = PieriInstance.random(2, 2, 0, np.random.default_rng(11))
        hom = PieriParameterHomotopy(base, target, np.random.default_rng(12))
        x = hom.from_matrix(sols[0])
        assert np.allclose(hom.from_matrix(hom.to_matrix(x)), x)


class TestContinuation:
    @pytest.mark.parametrize("m,p,q", [(2, 2, 0), (3, 2, 0), (2, 2, 1)])
    def test_full_solution_set_transported(self, m, p, q):
        base = PieriInstance.random(m, p, q, np.random.default_rng(13))
        report = PieriSolver(base, seed=14).solve()
        target = PieriInstance.random(m, p, q, np.random.default_rng(15))
        sols, results = continue_to_instance(
            base, report.solutions, target, rng=np.random.default_rng(16)
        )
        v = verify_solutions(target, sols)
        assert v.ok, str(v)
        assert len(sols) == pieri_root_count(m, p, q)
        assert all(r.success for r in results)

    def test_fewer_paths_than_tree(self):
        """The offline/online asymmetry: d(m,p,q) << total tree jobs."""
        base = PieriInstance.random(2, 2, 1, np.random.default_rng(17))
        report = PieriSolver(base, seed=18).solve()
        tree_jobs = sum(report.jobs_per_level.values())
        assert tree_jobs == 37  # sum of (2,2,1) level counts
        assert pieri_root_count(2, 2, 1) == 8 < tree_jobs


class TestOracle:
    def test_train_and_place(self):
        oracle = PolePlacementOracle.train(2, 2, 0, seed=19)
        assert oracle.n_solutions == 2
        assert oracle.offline_paths == 7
        plant = random_plant(2, 2, 0, np.random.default_rng(20))
        poles = [-1 + 1j, -1 - 1j, -2.5, -3.5]
        result = oracle.place(plant, poles, seed=21)
        assert result.n_laws == 2
        assert result.max_pole_error() < 1e-6

    def test_many_queries_same_oracle(self):
        oracle = PolePlacementOracle.train(2, 2, 0, seed=22)
        for k in range(3):
            plant = random_plant(2, 2, 0, np.random.default_rng(30 + k))
            poles = [-1 - 0.2 * k + 1j, -1 - 0.2 * k - 1j, -2.0, -3.0 - 1j]
            result = oracle.place(plant, poles, seed=k)
            assert result.n_laws == 2
            assert result.max_pole_error() < 1e-6

    def test_validation_errors(self):
        oracle = PolePlacementOracle.train(2, 2, 0, seed=23)
        wrong_shape = random_plant(3, 2, 0, np.random.default_rng(24))
        with pytest.raises(ValueError):
            oracle.place(wrong_shape, [-1, -2, -3, -4, -5, -6])
        plant = random_plant(2, 2, 0, np.random.default_rng(25))
        with pytest.raises(ValueError):
            oracle.place(plant, [-1, -2, -3])  # wrong pole count

    def test_dynamic_oracle(self):
        oracle = PolePlacementOracle.train(2, 2, 1, seed=26)
        assert oracle.n_solutions == 8
        plant = random_plant(2, 2, 1, np.random.default_rng(27))
        poles = [complex(-1.2 - 0.3 * k, 0.8 * (-1) ** k) for k in range(8)]
        result = oracle.place(plant, poles, seed=28)
        assert result.n_laws >= 7  # rare boundary cases tolerated
        assert result.max_pole_error() < 1e-6
