"""The artifact store: atomicity, corruption fallback, warm routes.

The PR-9 correctness pins: a corrupted or missing artifact falls back
to the ab-initio solve (never a wrong answer), concurrent writers are
safe via atomic rename, and a warm Pieri query tracks exactly
``d(m, p, q)`` paths — asserted from the report itself.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactStore,
    load_pieri_generic,
    load_polyhedral_start,
    load_subdivision,
    pieri_fingerprint,
    pieri_key,
    polyhedral_key,
    resolve_store,
    supports_fingerprint,
    validate_lifting_seed,
)
from repro.homotopy import solve
from repro.polyhedral.supports import coefficient_system, supports_of
from repro.schubert import PieriInstance, PieriSolver, pieri_root_count
from repro.systems import cyclic_roots_system, katsura_system


# ---------------------------------------------------------------- store
class TestStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = {"x": np.arange(4) + 1j, "y": np.eye(2, dtype=complex)}
        store.put("k", {"kind": "demo", "note": 7}, arrays)
        meta, loaded = store.get("k")
        assert meta["kind"] == "demo" and meta["note"] == 7
        assert meta["version"] == 1
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        np.testing.assert_array_equal(loaded["y"], arrays["y"])
        assert store.stats["stores"] == 1 and store.stats["hits"] == 1
        assert "k" in store and store.keys() == ["k"]

    def test_miss_and_bad_keys(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("absent") is None
        assert store.stats["misses"] == 1
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.put(bad, {"kind": "x"}, {})

    def test_meta_requires_kind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("k", {"no": "kind"}, {})

    def test_torn_marker_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        # a JSON marker without its NPZ payload: writer died mid-commit
        (tmp_path / "torn.json").write_text(json.dumps({"kind": "demo"}))
        assert store.get("torn") is None
        assert store.stats["corrupt"] == 1

    def test_corrupt_payload_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {"kind": "demo"}, {"x": np.arange(3) + 0j})
        (tmp_path / "k.npz").write_bytes(b"not an npz archive")
        assert store.get("k") is None
        assert store.stats["corrupt"] == 1

    def test_corrupt_json_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {"kind": "demo"}, {"x": np.arange(3) + 0j})
        (tmp_path / "k.json").write_text('{"kind": "demo", trunca')
        assert store.get("k") is None
        assert store.stats["corrupt"] == 1

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {"kind": "demo", "gen": 1}, {"x": np.zeros(2) + 0j})
        store.put("k", {"kind": "demo", "gen": 2}, {"x": np.ones(2) + 0j})
        meta, arrays = store.get("k")
        assert meta["gen"] == 2
        np.testing.assert_array_equal(arrays["x"], np.ones(2) + 0j)

    def test_concurrent_writers(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(3) as pool:
            pool.map(_put_one, [(str(tmp_path), g) for g in range(6)])
        store = ArtifactStore(tmp_path)
        loaded = store.get("shared")
        # racing writers never leave a torn/unreadable artifact: whatever
        # interleaving happened, the committed pair parses as a complete
        # artifact from *some* writer (real callers of one key write
        # equivalent content, so any complete pair is a right answer)
        assert loaded is not None
        meta, arrays = loaded
        assert meta["kind"] == "demo" and 0 <= meta["gen"] < 6
        assert arrays["x"].shape == (256,)
        assert store.stats["corrupt"] == 0

    def test_resolve_store(self, tmp_path, monkeypatch):
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        store = ArtifactStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path / "sub")).root.exists()
        monkeypatch.delenv("REPRO_ARTIFACT_STORE", raising=False)
        assert resolve_store(True) is None
        monkeypatch.setenv("REPRO_ARTIFACT_STORE", str(tmp_path / "env"))
        assert resolve_store(True).root == tmp_path / "env"


def _put_one(args):
    root, gen = args
    store = ArtifactStore(root)
    store.put(
        "shared",
        {"kind": "demo", "gen": gen},
        {"x": np.full(256, complex(gen))},
    )
    return os.getpid()


# --------------------------------------------------------- fingerprints
class TestFingerprints:
    def test_supports_fingerprint_row_order_invariant(self):
        a = [np.array([[0, 0], [1, 0], [0, 1]])]
        b = [np.array([[0, 1], [0, 0], [1, 0]])]
        assert supports_fingerprint(a) == supports_fingerprint(b)

    def test_supports_fingerprint_distinguishes_structures(self):
        a = [np.array([[0, 0], [1, 0]])]
        b = [np.array([[0, 0], [2, 0]])]
        assert supports_fingerprint(a) != supports_fingerprint(b)

    def test_same_structure_different_coefficients_share_key(self):
        sups = [np.asarray(s) for s in supports_of(katsura_system(2))]
        rng = np.random.default_rng(0)
        sys1 = coefficient_system(
            sups, [rng.standard_normal(len(s)) + 0j for s in sups]
        )
        sys2 = coefficient_system(
            sups, [rng.standard_normal(len(s)) + 0j for s in sups]
        )
        assert polyhedral_key(sys1) == polyhedral_key(sys2)

    def test_pieri_fingerprint_shapes_distinct(self):
        keys = {
            pieri_fingerprint(m, p, q)
            for m, p, q in [(2, 2, 0), (2, 2, 1), (2, 3, 0), (3, 2, 0)]
        }
        assert len(keys) == 4


# ---------------------------------------------------------------- pieri
class TestPieriRoute:
    def test_cold_populates_then_warm_tracks_exactly_d_paths(self, tmp_path):
        store = ArtifactStore(tmp_path)
        m, p, q = 2, 2, 0
        d = pieri_root_count(m, p, q)
        cold = PieriSolver(
            PieriInstance.random(m, p, q, np.random.default_rng(0)), seed=1
        ).solve(mode="batch", cache=store)
        assert cold.cache["status"] == "cold" and cold.cache["stored"]
        assert cold.cache["key"] == pieri_key(m, p, q)
        assert pieri_key(m, p, q) in store

        query = PieriInstance.random(m, p, q, np.random.default_rng(7))
        warm = PieriSolver(query, seed=1).solve(mode="batch", cache=store)
        assert warm.cache["status"] == "warm"
        # the acceptance pin: exactly d(m, p, q) online paths, asserted
        # from the report — not the tree's sum-of-level-counts
        assert warm.cache["n_paths"] == d
        (online,) = warm.level_batches
        assert online["level"] == "online" and online["n_paths"] == d
        assert warm.n_solutions == d == warm.expected_count()

    def test_warm_matches_fresh_solve(self, tmp_path):
        store = ArtifactStore(tmp_path)
        PieriSolver(
            PieriInstance.random(2, 2, 0, np.random.default_rng(0)), seed=1
        ).solve(mode="batch", cache=store)
        query = PieriInstance.random(2, 2, 0, np.random.default_rng(5))
        warm = PieriSolver(query, seed=1).solve(mode="batch", cache=store)
        fresh = PieriSolver(query, seed=1).solve(mode="batch")
        assert warm.n_solutions == fresh.n_solutions
        fresh_flat = np.stack([s.ravel() for s in fresh.solutions])
        for w in warm.solutions:
            gap = np.min(np.max(np.abs(fresh_flat - w.ravel()), axis=1))
            assert gap < 1e-8

    def test_corrupted_artifact_falls_back_ab_initio(self, tmp_path):
        store = ArtifactStore(tmp_path)
        PieriSolver(
            PieriInstance.random(2, 2, 0, np.random.default_rng(0)), seed=1
        ).solve(mode="batch", cache=store)
        (tmp_path / f"{pieri_key(2, 2, 0)}.npz").write_bytes(b"garbage")
        query = PieriInstance.random(2, 2, 0, np.random.default_rng(5))
        report = PieriSolver(query, seed=1).solve(mode="batch", cache=store)
        # never a wrong answer: the route degrades to cold and re-stores
        assert report.cache["status"] == "cold"
        assert report.n_solutions == report.expected_count()
        assert store.stats["corrupt"] >= 1
        # the re-store healed the artifact
        assert load_pieri_generic(store, 2, 2, 0) is not None

    def test_pieri_store_roundtrip_shapes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        PieriSolver(
            PieriInstance.random(2, 2, 1, np.random.default_rng(3)), seed=2
        ).solve(mode="batch", cache=store)
        instance, solutions, meta = load_pieri_generic(store, 2, 2, 1)
        d = pieri_root_count(2, 2, 1)
        assert len(solutions) == d
        assert meta["m"] == 2 and meta["p"] == 2 and meta["q"] == 1
        n = instance.problem.num_conditions
        assert len(instance.planes) == n and len(instance.points) == n
        assert load_pieri_generic(store, 3, 3, 0) is None  # other shape


# ----------------------------------------------------------- polyhedral
class TestPolyhedralRoute:
    def _family(self, seed=42):
        target = cyclic_roots_system(4)
        sups = [np.asarray(s) for s in supports_of(target)]
        rng = np.random.default_rng(seed)
        coeffs = [
            rng.standard_normal(len(s)) + 1j * rng.standard_normal(len(s))
            for s in sups
        ]
        return target, coefficient_system(sups, coeffs)

    def test_cold_populates_then_warm_skips_phase1(self, tmp_path):
        store = ArtifactStore(tmp_path)
        target, query = self._family()
        cold = solve(target, start="polyhedral", mode="batch",
                     rng=np.random.default_rng(0), cache=store)
        assert cold.summary["cache"]["status"] == "cold"
        assert cold.summary["cache"]["stored"]
        assert cold.summary["lifting_seed"] is not None

        warm = solve(query, start="polyhedral", mode="batch",
                     rng=np.random.default_rng(1), cache=store)
        assert warm.summary["cache"]["status"] == "warm"
        # warm paths == mixed volume, and the summary still reports the
        # cached subdivision's facts (including the journaled seed)
        assert warm.summary["cache"]["n_paths"] == warm.summary["mixed_volume"]
        assert warm.summary["mixed_volume"] == cold.summary["mixed_volume"]
        assert warm.summary["lifting_seed"] == cold.summary["lifting_seed"]
        assert warm.summary["phase1_failures"] == 0

    def test_warm_matches_fresh(self, tmp_path):
        store = ArtifactStore(tmp_path)
        target, query = self._family()
        solve(target, start="polyhedral", mode="batch",
              rng=np.random.default_rng(0), cache=store)
        warm = solve(query, start="polyhedral", mode="batch",
                     rng=np.random.default_rng(1), cache=store)
        fresh = solve(query, start="polyhedral", mode="batch",
                      rng=np.random.default_rng(1))
        assert "cache" not in fresh.summary
        assert len(warm.solutions) == len(fresh.solutions)
        fresh_flat = np.stack([s.ravel() for s in fresh.solutions])
        for w in warm.solutions:
            gap = np.min(np.max(np.abs(fresh_flat - w.ravel()), axis=1))
            assert gap < 1e-8

    def test_corrupted_endpoints_fall_back_ab_initio(self, tmp_path):
        store = ArtifactStore(tmp_path)
        target, query = self._family()
        solve(target, start="polyhedral", mode="batch",
              rng=np.random.default_rng(0), cache=store)
        key = polyhedral_key(query)
        # poison the cached endpoints with parseable-but-wrong numbers:
        # shape checks pass, the residual check must catch it
        meta, arrays = store.get(key)
        arrays["starts"] = np.full_like(arrays["starts"], 123.0)
        store.put(key, meta, arrays)
        report = solve(query, start="polyhedral", mode="batch",
                       rng=np.random.default_rng(1), cache=store)
        assert report.summary["cache"]["status"] == "cold"
        assert report.summary["success"] == report.summary["mixed_volume"]

    def test_structure_mismatch_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        target, query = self._family()
        solve(target, start="polyhedral", mode="batch",
              rng=np.random.default_rng(0), cache=store)
        other = katsura_system(3)
        assert load_polyhedral_start(store, other) is None

    def test_subdivision_and_lifting_seed_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        target, _ = self._family()
        cold = solve(target, start="polyhedral", mode="batch",
                     rng=np.random.default_rng(0), cache=store)
        sub = load_subdivision(store, target)
        assert sub is not None
        assert sub.mixed_volume == cold.summary["mixed_volume"]
        assert sub.lifting_seed == cold.summary["lifting_seed"]
        # the journaled seed really reproduces the stored lifting
        assert validate_lifting_seed(store, target) is True
