"""Tests for the compensator state-space realization and closed loops."""

import numpy as np
import pytest

from repro.control import (
    DynamicCompensator,
    place_poles,
    random_plant,
)
from repro.control.realization import (
    CompensatorRealization,
    closed_loop_matrix,
    realize_compensator,
)
from repro.linalg import PolyMatrix


def _simple_compensator():
    """C(s) = Z(s) Y(s)^{-1} with Y = [[s+2, 0], [0, 1]], Z = [[1, 0], [0, 3]]."""
    y = PolyMatrix(
        [np.array([[2.0, 0.0], [0.0, 1.0]]), np.array([[1.0, 0.0], [0.0, 0.0]])]
    )
    z = PolyMatrix([np.array([[1.0, 0.0], [0.0, 3.0]])])
    return DynamicCompensator(y, z, q=1)


class TestRealization:
    def test_simple_known_case(self):
        comp = _simple_compensator()
        real = realize_compensator(comp)
        assert real.n_states == 1
        # C(s) = diag(1/(s+2), 3)
        for s in (0.0, 1.0 + 1j, -0.5j):
            expected = np.diag([1.0 / (s + 2.0), 3.0])
            assert np.allclose(real.transfer(s), expected, atol=1e-12)

    def test_transfer_matches_mfd(self):
        plant = random_plant(2, 2, 1, np.random.default_rng(0))
        poles = [complex(-1.5 - 0.3 * k, 0.7 * (-1) ** k) for k in range(8)]
        result = place_poles(plant, poles, q=1, seed=1)
        for comp in result.proper_laws():
            real = realize_compensator(comp)
            assert real.n_states == 1
            for s in (0.3 + 0.7j, -1.1 + 0.2j, 2.0):
                assert np.allclose(
                    real.transfer(s), comp.transfer(s), atol=1e-6
                )

    def test_closed_loop_eigenvalues_match_poles(self):
        """The definitive dynamic-feedback verification."""
        plant = random_plant(2, 2, 1, np.random.default_rng(2))
        poles = [complex(-2.0 - 0.4 * k, 0.9 * (-1) ** k) for k in range(8)]
        result = place_poles(plant, poles, q=1, seed=3)
        target = np.sort_complex(np.array(poles))
        checked = 0
        for comp in result.proper_laws():
            real = realize_compensator(comp)
            acl = closed_loop_matrix(plant, real)
            assert acl.shape == (8, 8)  # 7 plant + 1 compensator states
            eigs = np.sort_complex(np.linalg.eigvals(acl))
            assert np.max(np.abs(eigs - target)) < 1e-5
            checked += 1
        assert checked >= 6  # generically all 8; allow rare degenerates

    def test_degenerate_law_detection(self):
        """A compensator whose Y(s) vanishes at a pole is flagged."""
        y = PolyMatrix(
            [np.array([[1.0, 0.0], [0.0, 1.0]]), np.eye(2)]
        )  # Y = (s+1) I: singular at s = -1
        z = PolyMatrix([np.eye(2)])
        comp = DynamicCompensator(y, z, q=2)
        assert comp.is_degenerate([-1.0])
        assert not comp.is_degenerate([-2.0])

    def test_zero_state_realization(self):
        y = PolyMatrix([np.eye(2)])
        z = PolyMatrix([np.array([[1.0, 2.0], [3.0, 4.0]])])
        comp = DynamicCompensator(y, z, q=0)
        real = realize_compensator(comp)
        assert real.n_states == 0
        assert np.allclose(real.transfer(1.23), [[1, 2], [3, 4]])

    def test_non_column_reduced_raises(self):
        # Y's highest-column-degree matrix is singular
        y = PolyMatrix(
            [np.eye(2), np.array([[1.0, 1.0], [1.0, 1.0]])]
        )
        z = PolyMatrix([np.eye(2)])
        comp = DynamicCompensator(y, z, q=2)
        with pytest.raises(ValueError):
            realize_compensator(comp)

    def test_brunovsky_identity(self):
        """(sI - A0)^{-1} B0 = Psi(s) S(s)^{-1} through the realization."""
        rng = np.random.default_rng(4)
        # random column-reduced Y with degrees (1, 2), strictly-lower Z
        y = PolyMatrix(
            [
                rng.standard_normal((2, 2)),
                np.column_stack(
                    [rng.standard_normal(2), rng.standard_normal(2)]
                ),
                np.column_stack([np.zeros(2), rng.standard_normal(2)]),
            ]
        )
        z = PolyMatrix(
            [rng.standard_normal((2, 2)), np.column_stack([np.zeros(2), rng.standard_normal(2)])]
        )
        comp = DynamicCompensator(y, z, q=3)
        real = realize_compensator(comp)
        assert real.n_states == 3
        for s in (0.7, 1.3 - 0.4j):
            assert np.allclose(
                real.transfer(s), comp.transfer(s), atol=1e-8
            )


class TestProperLawFiltering:
    def test_all_proper_for_generic_input(self):
        plant = random_plant(2, 2, 1, np.random.default_rng(5))
        poles = [complex(-1.0 - 0.37 * k, 0.83 * (-1) ** k) for k in range(8)]
        result = place_poles(plant, poles, q=1, seed=6)
        assert len(result.proper_laws()) >= 7
        assert result.max_pole_error() < 1e-6

    def test_static_laws_never_filtered(self):
        plant = random_plant(2, 2, 0, np.random.default_rng(7))
        poles = [-1.0, -2.0, -3.0 + 1j, -3.0 - 1j]
        result = place_poles(plant, poles, q=0, seed=8)
        assert len(result.proper_laws()) == result.n_laws == 2
