"""The batching solve service: framing, grouping, stacked fronts, parity.

The PR-9 serve acceptance pins: N concurrent same-shape queries form
one group tracked as one stacked front (asserted via the service's
group log / telemetry counters), and every per-query result is
identical to solving the same queries sequentially.
"""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    SERVE_MESSAGE_TYPES,
    SolveService,
    complex_from_json,
    complex_to_json,
    decode_serve_line,
    encode_serve_frame,
    request_many,
)
from repro.artifacts import ArtifactStore
from repro.schubert import pieri_root_count
from repro.telemetry import Telemetry, use_telemetry


# -------------------------------------------------------------- framing
class TestFraming:
    def test_roundtrip(self):
        frame = encode_serve_frame(
            {"type": "query", "kind": "pieri", "m": 2, "p": 2, "q": 0}
        )
        assert frame.endswith(b"\n")
        message = decode_serve_line(frame)
        assert message["type"] == "query" and message["m"] == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            encode_serve_frame({"type": "lease"})  # fleet type, not serve

    def test_tolerant_decode(self):
        assert decode_serve_line(b"") is None
        assert decode_serve_line(b"   \n") is None
        assert decode_serve_line(b'{"type": "query", trunca') is None
        assert decode_serve_line(b'{"type": "welcome"}') is None  # foreign
        assert decode_serve_line(b"[1, 2]") is None
        assert "query" in SERVE_MESSAGE_TYPES

    def test_complex_codec(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 2)) + 1j * rng.standard_normal((3, 2))
        b = complex_from_json(complex_to_json(a))
        np.testing.assert_array_equal(a, b)


def _serve_and_query(service, query_rounds):
    """Run the service on an ephemeral port, fire each round of queries
    concurrently, return the per-round replies."""

    async def run():
        server = await service.start("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        rounds = []
        try:
            for queries in query_rounds:
                rounds.append(
                    await request_many("127.0.0.1", port, queries)
                )
        finally:
            server.close()
            await server.wait_closed()
            await service.aclose()
        return rounds

    return asyncio.run(run())


def _pieri_queries(n, label, m=2, p=2, q=0):
    return [
        {"type": "query", "id": f"{label}-{k}", "kind": "pieri",
         "m": m, "p": p, "q": q, "seed": 50 + k}
        for k in range(n)
    ]


def _solutions(reply):
    return [complex_from_json(s) for s in reply["solutions"]]


# -------------------------------------------------------------- service
class TestService:
    def test_concurrent_same_shape_queries_one_stacked_front(self, tmp_path):
        n, d = 4, pieri_root_count(2, 2, 0)
        tel = Telemetry(name="serve-test")
        with use_telemetry(tel):
            service = SolveService(
                store=ArtifactStore(tmp_path), batch_window=0.15
            )
            cold_round, warm_round = _serve_and_query(
                service,
                [_pieri_queries(n, "cold"), _pieri_queries(n, "warm")],
            )
        assert all(r["ok"] for r in cold_round + warm_round)
        assert all(r["n_solutions"] == d for r in cold_round + warm_round)
        # one group per round, each the size of the whole round
        assert [g["size"] for g in service.group_log] == [n, n]
        cold_group, warm_group = service.group_log
        assert cold_group["route"] == "cold"
        # cold round: query 0 pays the tree, the other n-1 ride one stack
        assert cold_group["stack_paths"] == (n - 1) * d
        # warm round: ALL n queries in one stacked front of n*d paths
        assert warm_group["route"] == "warm"
        assert warm_group["stack_paths"] == n * d
        assert service.stats["queries"] == 2 * n
        assert service.stats["groups"] == 2
        assert service.stats["fallbacks"] == 0
        counters = tel.summary()["counters"]
        assert counters["serve.query"] == 2 * n
        assert counters["serve.group"] == 2
        assert counters["serve.stack_paths"] == (n - 1) * d + n * d

    def test_batched_results_match_sequential(self, tmp_path):
        n = 3
        store_root = tmp_path / "store"
        # sequential reference: same store contents, same queries, one
        # at a time (each its own batch window)
        seq_service = SolveService(
            store=ArtifactStore(store_root), batch_window=0.01, seed=0
        )
        seq_rounds = _serve_and_query(
            seq_service,
            [[q] for q in _pieri_queries(n, "s")],
        )
        seq = [r[0] for r in seq_rounds]
        # batched run against a fresh store (cold + stack) — answers
        # must agree with the sequential ones to tracking accuracy
        batch_service = SolveService(
            store=ArtifactStore(tmp_path / "store2"), batch_window=0.15,
            seed=0,
        )
        (batch,) = _serve_and_query(
            batch_service, [_pieri_queries(n, "s")]
        )
        by_id = {r["id"]: r for r in batch}
        for ref in seq:
            got = by_id[ref["id"].replace("s-", "s-")]
            assert got["n_solutions"] == ref["n_solutions"]
            ref_flat = np.stack(
                [s.ravel() for s in _solutions(ref)]
            )
            for sol in _solutions(got):
                gap = np.min(
                    np.max(np.abs(ref_flat - sol.ravel()), axis=1)
                )
                assert gap < 1e-8

    def test_mixed_shapes_split_into_groups(self, tmp_path):
        service = SolveService(
            store=ArtifactStore(tmp_path), batch_window=0.15
        )
        queries = _pieri_queries(2, "a", m=2, p=2, q=0) + _pieri_queries(
            2, "b", m=2, p=3, q=0
        )
        (replies,) = _serve_and_query(service, [queries])
        assert all(r["ok"] for r in replies)
        assert len(service.group_log) == 2
        assert sorted(g["size"] for g in service.group_log) == [2, 2]
        keys = {g["key"] for g in service.group_log}
        assert len(keys) == 2  # distinct shapes, distinct fingerprints

    def test_malformed_query_gets_error_reply(self, tmp_path):
        service = SolveService(
            store=ArtifactStore(tmp_path), batch_window=0.05
        )
        (replies,) = _serve_and_query(
            service, [[{"type": "query", "id": "bad", "kind": "nope"}]]
        )
        assert replies[0]["type"] == "error"
        assert replies[0]["id"] == "bad"
        assert service.stats["errors"] == 1

    def test_cache_disabled_still_answers(self, tmp_path):
        d = pieri_root_count(2, 2, 0)
        service = SolveService(store=None, batch_window=0.1)
        (replies,) = _serve_and_query(service, [_pieri_queries(2, "x")])
        assert all(r["ok"] and r["n_solutions"] == d for r in replies)
