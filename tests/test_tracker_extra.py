"""Additional tracker behaviours: resume, refinement, step control."""

import numpy as np
import pytest

from repro.polynomials import PolynomialSystem, variables
from repro.tracker import (
    HomotopyFunction,
    PathStatus,
    PathTracker,
    TrackerOptions,
    refine_solutions,
)


class CubicHomotopy(HomotopyFunction):
    """H(x,t) = x^3 - (1 + 7t): single smooth path from 1 to 2."""

    @property
    def dim(self):
        return 1

    def evaluate(self, x, t):
        return np.array([x[0] ** 3 - (1 + 7 * t)])

    def jacobian_x(self, x, t):
        return np.array([[3 * x[0] ** 2]])

    def jacobian_t(self, x, t):
        return np.array([-7.0 + 0j])


class TestResume:
    def test_t_start_resume_matches_full_track(self):
        h = CubicHomotopy()
        tracker = PathTracker()
        full = tracker.track(h, [1.0])
        # track halfway, then resume from there
        half_point = np.array([(1 + 7 * 0.5) ** (1 / 3)])
        resumed = tracker.track(h, half_point, t_start=0.5)
        assert resumed.success
        assert np.allclose(resumed.solution, full.solution, atol=1e-9)

    def test_t_start_validation(self):
        h = CubicHomotopy()
        with pytest.raises(ValueError):
            PathTracker().track(h, [1.0], t_start=1.0)
        with pytest.raises(ValueError):
            PathTracker().track(h, [1.0], t_start=-0.1)

    def test_t_start_bad_point_fails(self):
        h = CubicHomotopy()
        result = PathTracker().track(h, [-5.0], t_start=0.5)
        # Newton at t=0.5 from -5 converges to a different cube root or
        # fails; either way the endpoint must solve H(., 1) if SUCCESS
        if result.success:
            assert abs(result.solution[0] ** 3 - 8) < 1e-6


class TestStepControl:
    def test_max_steps_enforced(self):
        h = CubicHomotopy()
        opts = TrackerOptions(max_steps=2, initial_step=1e-4, max_step=1e-4,
                              min_step=1e-9)
        result = PathTracker(opts).track(h, [1.0])
        assert result.status is PathStatus.FAILED
        assert result.stats.total_steps <= 3

    def test_small_max_step_still_succeeds(self):
        h = CubicHomotopy()
        opts = TrackerOptions(initial_step=0.01, max_step=0.02)
        result = PathTracker(opts).track(h, [1.0])
        assert result.success
        # small steps -> many accepted steps
        assert result.stats.steps_accepted >= 40

    def test_expansion_reduces_steps(self):
        h = CubicHomotopy()
        slow = TrackerOptions(initial_step=0.01, max_step=0.01)
        fast = TrackerOptions(initial_step=0.01, max_step=0.2, expand=2.0,
                              expand_after=2)
        n_slow = PathTracker(slow).track(h, [1.0]).stats.steps_accepted
        n_fast = PathTracker(fast).track(h, [1.0]).stats.steps_accepted
        assert n_fast < n_slow


class TestRefineSolutions:
    def test_refines_success_results(self):
        (x,) = variables(1)
        target = PolynomialSystem([x**3 - 8])
        h = CubicHomotopy()
        results = PathTracker().track_many(h, [[1.0]])
        # blur the solution, then refine against the target system
        results[0].solution = results[0].solution + 1e-5
        refined = refine_solutions(target, results, tol=1e-13)
        assert abs(refined[0].solution[0] - 2.0) < 1e-12
        assert refined[0].residual < 1e-12

    def test_leaves_failures_untouched(self):
        (x,) = variables(1)
        target = PolynomialSystem([x**3 - 8])
        from repro.tracker import PathResult, TrackStats

        fail = PathResult(
            PathStatus.FAILED,
            np.array([123.0 + 0j]),
            np.array([1.0 + 0j]),
            1.0,
            TrackStats(),
        )
        out = refine_solutions(target, [fail])
        assert out[0].solution[0] == 123.0


class TestStatsBookkeeping:
    def test_total_steps_sum(self):
        from repro.tracker import TrackStats

        s = TrackStats(steps_accepted=5, steps_rejected=2)
        assert s.total_steps == 7

    def test_seconds_recorded(self):
        result = PathTracker().track(CubicHomotopy(), [1.0])
        assert result.stats.seconds > 0

    def test_path_repr(self):
        result = PathTracker().track(CubicHomotopy(), [1.0], path_id=42)
        assert "42" in repr(result)
        assert "success" in repr(result)
