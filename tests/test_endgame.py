"""The pluggable endgame layer: strategies, rescue pipeline, satellites.

Contracts under test:

- ``RefineEndgame`` is the default everywhere and reproduces the seed
  trackers' terminal phase decision for decision.
- ``CauchyEndgame`` measures winding numbers on the deficient-systems
  family, recovers singular endpoints accurately, and makes the same
  accept/reject decisions path by path in scalar and batch mode (the
  hypothesis property test — same contract PRs 1/4 pinned for
  stepping).
- The tracker-level rescue pipeline re-patches escaping paths: Pieri
  chart switches ride ``PieriEdgeHomotopy.rescale_patch``, plain
  polynomial homotopies ride the projective patch and classify
  AT_INFINITY.
- ``retrack_duplicate_clusters`` (the hoisted no-progress bail-out)
  escalates while re-tracks move endpoints and stops the moment a round
  reproduces them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.endgame import CauchyEndgame, EndgameStrategy, RefineEndgame, make_endgame
from repro.homotopy import (
    ConvexHomotopy,
    make_homotopy_and_starts,
    multiplicity_clusters,
    solve,
)
from repro.polynomials import PolynomialSystem, variables
from repro.systems import (
    cyclic_deficient_system,
    griewank_osborne_system,
    katsura_system,
    multiple_root_system,
)
from repro.tracker import (
    BatchTracker,
    HomotopyFunction,
    PathResult,
    PathStatus,
    PathTracker,
    TrackerOptions,
    TrackStats,
    rescue_diverged,
    retrack_duplicate_clusters,
    track_with_rescue,
)


class Collapse(HomotopyFunction):
    """H(x, t) = x^2 - (1 - t): branches collapsing to a double root."""

    @property
    def dim(self):
        return 1

    def evaluate(self, x, t):
        return np.array([x[0] ** 2 - (1 - t)])

    def jacobian_x(self, x, t):
        return np.array([[2 * x[0]]])

    def jacobian_t(self, x, t):
        return np.array([1.0 + 0j])


def _diverging_system():
    """[x^2 + x, x*y - 1]: one finite root (-1, -1), 3 paths at infinity."""
    x, y = variables(2)
    return PolynomialSystem([x * x + x, x * y - 1])


class TestStrategySelection:
    def test_default_is_refine(self):
        assert isinstance(PathTracker().endgame, RefineEndgame)
        assert isinstance(BatchTracker().endgame, RefineEndgame)

    def test_make_endgame_coercions(self):
        assert isinstance(make_endgame(None), RefineEndgame)
        assert isinstance(make_endgame("refine"), RefineEndgame)
        assert isinstance(make_endgame("cauchy"), CauchyEndgame)
        strategy = CauchyEndgame(operating_radius=0.02)
        assert make_endgame(strategy) is strategy
        with pytest.raises(ValueError):
            make_endgame("newton-homotopy-deluxe")

    def test_refine_radius_is_zero(self):
        # radius 0 = stalled paths never reach the strategy: the exact
        # seed behavior
        assert RefineEndgame.operating_radius == 0.0
        assert issubclass(CauchyEndgame, EndgameStrategy)

    def test_cauchy_knob_validation(self):
        with pytest.raises(ValueError):
            CauchyEndgame(operating_radius=1.5)
        with pytest.raises(ValueError):
            CauchyEndgame(samples_per_loop=2)
        with pytest.raises(ValueError):
            CauchyEndgame(max_winding=0)


class TestRefineIdentity:
    """The refactor must not change a single default decision."""

    def test_refine_statuses_and_endpoints_match_seed_semantics(self):
        # katsura-4: all paths regular; residual classification only
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(0)
        )
        scalar = PathTracker().track_many(homotopy, starts)
        batch = BatchTracker().track_batch(homotopy, starts)
        for a, b in zip(scalar, batch):
            assert a.status == b.status
            assert a.winding_number is None and b.winding_number is None
            if a.success:
                assert np.max(np.abs(a.solution - b.solution)) < 1e-8

    def test_refine_results_carry_endgame_tag(self):
        result = PathTracker().track(Collapse(), [1.0])
        assert result.endgame == "refine"
        assert result.multiplicity is None


class TestCauchyWinding:
    @pytest.mark.parametrize("w", [2, 3, 4])
    def test_measures_multiplicity_w(self, w):
        report = solve(
            multiple_root_system(w),
            mode="batch",
            rng=np.random.default_rng(0),
            endgame="cauchy",
        )
        assert report.summary["multiplicity_histogram"] == {w: 1}
        assert len(report.singular_solutions) == 1
        assert abs(report.singular_solutions[0][0] - 1.0) < 1e-6
        for r in report.results:
            assert r.status is PathStatus.SINGULAR
            assert r.winding_number == w
            assert r.multiplicity == w
            assert r.endgame == "cauchy"

    def test_griewank_osborne_triple_root(self):
        report = solve(
            griewank_osborne_system(),
            rng=np.random.default_rng(0),
            endgame="cauchy",
        )
        assert report.summary["multiplicity_histogram"] == {3: 1}
        root = report.singular_solutions[0]
        assert np.max(np.abs(root)) < 1e-6  # the origin, recovered
        windings = [r.winding_number for r in report.results if r.winding_number]
        assert windings and all(w == 3 for w in windings)

    def test_cyclic_deficient_double_roots(self):
        report = solve(
            cyclic_deficient_system(3),
            mode="batch",
            rng=np.random.default_rng(0),
            endgame="cauchy",
        )
        assert report.summary["multiplicity_histogram"] == {2: 6}
        assert len(report.singular_solutions) == 6

    def test_regular_systems_unchanged_by_cauchy(self):
        # on a system with only regular roots the two strategies agree
        ref = solve(katsura_system(3), mode="batch", rng=np.random.default_rng(0))
        cau = solve(
            katsura_system(3),
            mode="batch",
            rng=np.random.default_rng(0),
            endgame="cauchy",
        )
        assert [r.status for r in ref.results] == [r.status for r in cau.results]
        assert ref.n_solutions == cau.n_solutions
        assert cau.summary["multiplicity_histogram"] == {1: ref.n_solutions}

    def test_stall_handover_recovers_throughout_the_radius(self):
        # regression, twice over: the walk-back gate once compared the
        # loop mean against a point stuck at the stall radius (rejecting
        # every recovery deeper than ~verify_tol^w), and its snapshot
        # grid once skipped stalls in the (rho/2, rho] band (t ~ 0.97
        # failed while 0.975 and 0.965 passed) — so sweep the whole
        # hand-over radius densely, band boundaries included
        eg = CauchyEndgame()
        opts = TrackerOptions()
        for t in (0.999, 0.995, 0.99, 0.98, 0.975, 0.97, 0.965, 0.96, 0.955):
            x = np.array([np.sqrt(1 - t)], dtype=complex)
            out = eg.finish(Collapse(), x, t, opts)
            assert out.status is PathStatus.SINGULAR, t
            assert out.winding_number == 2, t
            assert abs(out.x[0]) < 1e-9, t

    def test_walk_back_verifies_at_retry_radius_below_stall(self):
        # regression: a retry attempt shrinks the loop radius 4x, which
        # can put it *below* a handed-over stall's reference radius; the
        # hop gate must then walk UP to the reference radius instead of
        # comparing the near-limit bottom point against the stall point
        # (which once rejected every clean retry-radius recovery)
        from repro.tracker import as_batch
        from repro.tracker.newton import batch_newton_correct

        eg = CauchyEndgame()
        opts = TrackerOptions()
        bh = as_batch(Collapse())
        rho = eg.operating_radius / 4  # the first retry's radius
        stall = np.array([[np.sqrt(0.04)]], dtype=complex)  # rho_ref 0.04
        z = stall.copy()
        for rr in (0.02, rho):  # anchor walked down to the retry radius
            z = batch_newton_correct(
                bh, z, 1.0 - rr, tol=opts.corrector_tol, max_iterations=30
            ).x
        loopers = np.array([0])
        iters = np.zeros(1, dtype=np.int64)
        w, mean, closed = eg._loop_at_radius(
            bh, loopers, np.array([0]), z.copy(), rho, opts, iters
        )
        assert closed[0] and w[0] == 2
        ok = eg._walk_back_verify(
            bh, loopers, np.array([0]), z.copy(), mean, stall,
            np.array([1.0]), rho, np.array([0.04]), opts, iters,
        )
        assert ok[0]

    def test_unrecovered_stall_falls_back_to_failed(self):
        # regression: a handed-over stall whose recovery fails must not
        # inherit the t=1 sharpen's deceptive SUCCESS — pre-endgame
        # semantics (stall = FAILED) stand until something positively
        # classifies the endpoint, and the reported state is the honest
        # stall point with an infinite residual, not the sharpen's
        # unverified jump wearing a tiny |x - x*|^w residual
        eg = CauchyEndgame(max_winding=1)  # a w=2 loop can never close
        stall_x = np.array([np.sqrt(0.01)], dtype=complex)
        out = eg.finish(Collapse(), stall_x, 0.99, TrackerOptions())
        assert out.status is PathStatus.FAILED
        assert out.winding_number is None
        assert np.array_equal(out.x, stall_x)
        assert out.residual == np.inf

    def test_deceptive_success_is_reclassified(self):
        # plain refinement "succeeds" on the collapse toy with an
        # endpoint ~1e-6 off; the stall detector catches it
        plain = PathTracker().track(Collapse(), [1.0])
        assert plain.success and abs(plain.solution[0]) > 1e-8
        cauchy = PathTracker(endgame=CauchyEndgame()).track(Collapse(), [1.0])
        assert cauchy.status is PathStatus.SINGULAR
        assert cauchy.winding_number == 2
        assert abs(cauchy.solution[0]) < 1e-9


class TestScalarBatchEndgameParity:
    """Satellite: bit-identical accept/reject decisions, scalar vs batch."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        w=st.integers(min_value=1, max_value=4),
        strategy=st.sampled_from(["refine", "cauchy"]),
    )
    def test_property_parity_on_multiplicity_family(self, seed, w, strategy):
        homotopy, starts = make_homotopy_and_starts(
            multiple_root_system(w, root=0.5), rng=np.random.default_rng(seed)
        )
        scalar = PathTracker(endgame=strategy).track_many(homotopy, starts)
        batch = BatchTracker(endgame=strategy).track_batch(homotopy, starts)
        for a, b in zip(scalar, batch):
            # accept/reject decisions are bit-identical path by path;
            # endpoints agree to a conditioning-aware tolerance (near a
            # multiplicity-w root the scalar and stacked LAPACK solves'
            # last-bit differences amplify by residual^(-(w-1)/w), so
            # the PR-1 regular-root tolerance of 1e-8 would be unfair)
            assert a.status == b.status
            assert a.winding_number == b.winding_number
            assert a.multiplicity == b.multiplicity
            assert a.stats.steps_accepted == b.stats.steps_accepted
            assert a.stats.steps_rejected == b.stats.steps_rejected
            assert np.max(np.abs(a.solution - b.solution)) < 1e-6

    def test_parity_on_deficient_cyclic(self):
        homotopy, starts = make_homotopy_and_starts(
            cyclic_deficient_system(3), rng=np.random.default_rng(1)
        )
        scalar = PathTracker(endgame="cauchy").track_many(homotopy, starts)
        batch = BatchTracker(endgame="cauchy").track_batch(homotopy, starts)
        for a, b in zip(scalar, batch):
            assert a.status == b.status
            assert a.winding_number == b.winding_number
            assert np.max(np.abs(a.solution - b.solution)) < 1e-8


class TestRescuePipeline:
    def test_projective_rescue_classifies_infinity(self):
        target = _diverging_system()
        homotopy, starts = make_homotopy_and_starts(
            target, rng=np.random.default_rng(0)
        )
        results = BatchTracker().track_batch(homotopy, starts)
        n_diverged = sum(
            1 for r in results if r.status is PathStatus.DIVERGED
        )
        assert n_diverged == 3
        results, changed = rescue_diverged(PathTracker(), homotopy, results)
        assert changed == 3
        statuses = [r.status for r in results]
        assert statuses.count(PathStatus.AT_INFINITY) == 3
        # the projective representative is unit-normalized with a tiny
        # last (homogenizing) coordinate
        for r in results:
            if r.status is PathStatus.AT_INFINITY:
                y = r.solution
                assert y.shape == (3,)
                assert abs(np.linalg.norm(y) - 1.0) < 1e-8
                assert abs(y[-1]) < 1e-3
                assert r.stats.rescues == 1

    def test_solve_rescue_flag(self):
        report = solve(
            _diverging_system(),
            mode="batch",
            rng=np.random.default_rng(0),
            rescue=True,
        )
        assert report.summary["rescued"] == 3
        assert report.summary["at_infinity"] == 3
        assert report.summary["diverged"] == 0
        assert report.n_solutions == 1
        sol = report.solutions[0]
        assert np.max(np.abs(sol - np.array([-1.0, -1.0]))) < 1e-8

    def test_rescue_hook_default_is_none(self):
        class Nothing(HomotopyFunction):
            @property
            def dim(self):
                return 1

            def evaluate(self, x, t):
                return np.array([x[0]])

            def jacobian_x(self, x, t):
                return np.array([[1.0 + 0j]])

        assert Nothing().rescale_patch(np.array([1.0]), 0.5) is None

    def test_track_with_rescue_keeps_original_on_no_patch(self):
        # a homotopy without rescale_patch: the diverged result stands
        x, y = variables(2)
        target = _diverging_system()
        homotopy, starts = make_homotopy_and_starts(
            target, rng=np.random.default_rng(0)
        )
        tracker = PathTracker()
        for s in starts:
            result, hom = track_with_rescue(tracker, homotopy, s)
            if result.status is PathStatus.AT_INFINITY:
                assert hom is not homotopy  # finished in patch coordinates
            else:
                assert hom is homotopy

    def test_pieri_chart_switch_via_hook(self):
        # the Pieri edge homotopy offers a re-pinned chart for a path
        # with large moving-column entries
        from repro.schubert import PieriInstance, PieriSolver

        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(3))
        solver = PieriSolver(instance, seed=5)
        jobs = solver.initial_jobs()
        hom = solver.make_homotopy(jobs[0].node)
        x0 = hom.start_vector(jobs[0].start_matrix)
        # craft a point whose largest column entry is off the pin
        c = hom.to_matrix(np.asarray(x0, dtype=complex) + 50.0)
        patch = hom.rescale_patch(hom.from_matrix(c), 0.5)
        assert patch is not None
        new_hom, x1 = patch
        assert new_hom.pin_row != hom.pin_row
        assert new_hom.gamma_s == hom.gamma_s and new_hom.gamma_k == hom.gamma_k
        # re-pinned coordinates are bounded by construction
        assert np.max(np.abs(new_hom.to_matrix(x1))) <= np.max(np.abs(c)) + 1e-9


class TestRetrackDuplicateClusters:
    def _result(self, pid, x):
        x = np.asarray([x], dtype=complex)
        return PathResult(PathStatus.SUCCESS, x, x, 0.0, TrackStats(), pid)

    def test_separates_colliding_endpoints(self):
        results = [self._result(0, 1.0), self._result(1, 1.0)]
        calls = []

        def retrack(pid, opts):
            calls.append(pid)
            # the re-track separates path 1 to its true endpoint
            return self._result(pid, 2.0 if pid == 1 else 1.0)

        retrack_duplicate_clusters(
            results, retrack, lambda o: o, TrackerOptions()
        )
        assert sorted(calls) == [0, 1]
        assert abs(results[1].solution[0] - 2.0) < 1e-12

    def test_no_progress_bails_out_after_one_round(self):
        # a genuine multiple root: every re-track reproduces its
        # endpoint, so escalation stops after the first round instead
        # of burning all three
        results = [self._result(0, 1.0), self._result(1, 1.0)]
        calls = []

        def retrack(pid, opts):
            calls.append(pid)
            return self._result(pid, 1.0)

        retrack_duplicate_clusters(
            results, retrack, lambda o: o, TrackerOptions()
        )
        assert len(calls) == 2  # one round over the cluster, then stop

    def test_escalates_while_moving(self):
        # endpoints keep moving (together, so they stay a collision):
        # every escalation round runs
        results = [self._result(0, 1.0), self._result(1, 1.0)]
        calls = []

        def retrack(pid, opts):
            calls.append(pid)
            round_no = (len(calls) - 1) // 2
            return self._result(pid, 1.0 + 1e-3 * (round_no + 1))

        retrack_duplicate_clusters(
            results, retrack, lambda o: o, TrackerOptions(), rounds=3
        )
        assert len(calls) == 6  # three rounds over the two-path cluster


class TestMultiplicityClusters:
    def _path(self, pid, x, status=PathStatus.SUCCESS, w=None):
        x = np.asarray(x, dtype=complex)
        return PathResult(
            status, x, x, 0.0, TrackStats(), pid, winding_number=w,
            multiplicity=w,
        )

    def test_success_only_cluster_counts_paths(self):
        recs = multiplicity_clusters(
            [self._path(0, [1.0]), self._path(1, [1.0 + 1e-9])]
        )
        assert len(recs) == 1
        assert recs[0]["multiplicity"] == 2
        assert not recs[0]["singular"]

    def test_winding_outranks_path_count(self):
        # a jumped path parks near a measured triple root: the
        # monodromy-certified winding wins over the path count of 4
        recs = multiplicity_clusters(
            [
                self._path(0, [0.0], PathStatus.SINGULAR, w=3),
                self._path(1, [1e-9], PathStatus.SINGULAR, w=3),
                self._path(2, [0.0], PathStatus.SINGULAR, w=3),
                self._path(3, [2e-5]),  # sloppy success, absorbed
            ]
        )
        assert len(recs) == 1
        assert recs[0]["multiplicity"] == 3
        assert recs[0]["singular"]
        assert sorted(recs[0]["path_ids"]) == [0, 1, 2, 3]

    def test_distant_roots_stay_separate(self):
        recs = multiplicity_clusters(
            [
                self._path(0, [0.0], PathStatus.SINGULAR, w=2),
                self._path(1, [1.0]),
            ]
        )
        assert len(recs) == 2

    def test_unclassified_failures_ignored(self):
        recs = multiplicity_clusters(
            [
                self._path(0, [0.0], PathStatus.FAILED),
                self._path(1, [0.0], PathStatus.SINGULAR),  # no winding
            ]
        )
        assert recs == []


class TestEndgameVerdictGating:
    def test_classified_singular_is_final(self):
        r = PathResult(
            PathStatus.SINGULAR,
            np.zeros(1, dtype=complex),
            np.zeros(1, dtype=complex),
            0.0,
            TrackStats(),
            0,
            winding_number=2,
        )
        assert r.endgame_classified
        r2 = PathResult(
            PathStatus.SINGULAR,
            np.zeros(1, dtype=complex),
            np.zeros(1, dtype=complex),
            0.0,
        )
        assert not r2.endgame_classified  # refine SINGULAR: still retryable

    def test_polyhedral_phase1_accepts_endgame(self):
        from repro.polyhedral import PolyhedralStart
        from repro.systems import cyclic_roots_system

        ps = PolyhedralStart(cyclic_roots_system(3), np.random.default_rng(0))
        starts, results = ps.track_starts(endgame="cauchy")
        assert len(starts) == ps.mixed_volume
        assert all(r.success for r in results)
