"""Tests for the Pieri poset, root counts (Table IV) and tree (Table III)."""

import pytest

from repro.schubert import (
    PieriPoset,
    PieriProblem,
    PieriTree,
    PieriTreeNode,
    level_job_counts,
    memory_profile,
    pieri_root_count,
)


class TestRootCounts:
    """The paper's Table IV, column by column."""

    def test_q0_grassmannian_degrees(self):
        assert pieri_root_count(2, 2, 0) == 2
        assert pieri_root_count(3, 2, 0) == 5
        assert pieri_root_count(3, 3, 0) == 42
        assert pieri_root_count(4, 3, 0) == 462
        assert pieri_root_count(4, 4, 0) == 24024

    def test_q1(self):
        assert pieri_root_count(2, 2, 1) == 8
        assert pieri_root_count(3, 2, 1) == 55
        assert pieri_root_count(3, 3, 1) == 2730
        assert pieri_root_count(4, 3, 1) == 135660

    def test_q2(self):
        assert pieri_root_count(2, 2, 2) == 32
        assert pieri_root_count(3, 2, 2) == 610
        # the paper prints 17462 here; the DP (and the closed-form q-analogue
        # growth) give 174762 — a dropped digit in the paper's table
        assert pieri_root_count(3, 3, 2) == 174762

    def test_q3(self):
        assert pieri_root_count(2, 2, 3) == 128
        assert pieri_root_count(3, 2, 3) == 6765

    def test_symmetry_m_p(self):
        # d(m, p, 0) is symmetric in m and p (Grassmann duality)
        assert pieri_root_count(2, 3, 0) == pieri_root_count(3, 2, 0)
        assert pieri_root_count(2, 4, 0) == pieri_root_count(4, 2, 0)

    def test_q22_powers_of_four(self):
        # d(2,2,q) = 2 * 4^q
        for q in range(4):
            assert pieri_root_count(2, 2, q) == 2 * 4**q

    def test_fibonacci_for_32(self):
        # d(3,2,q) = Fibonacci(5q + 5): 5, 55, 610, 6765
        fibs = [1, 1]
        while len(fibs) < 25:
            fibs.append(fibs[-1] + fibs[-2])
        for q in range(4):
            assert pieri_root_count(3, 2, q) == fibs[5 * q + 4]

    def test_p1_single_solution_count(self):
        # p=1, q=0: one column, chain is forced: exactly one solution
        assert pieri_root_count(4, 1, 0) == 1


class TestPoset:
    def test_table3_level_counts(self):
        """Table III: jobs per level for m=3, p=2, q=1."""
        counts = level_job_counts(3, 2, 1)
        assert counts == [1, 2, 3, 5, 8, 13, 21, 34, 55, 55, 55]
        assert sum(counts) == 252

    def test_fig4_poset(self):
        """Fig 4: the (2,2,1) poset counts 8 solutions at root [4 7]."""
        poset = PieriPoset.build(PieriProblem(2, 2, 1))
        root = poset.root()
        assert root.bottom_pivots == (4, 7)
        assert poset.root_count() == 8
        assert poset.depth == 9  # levels 0..8

    def test_unique_root(self):
        for m, p, q in [(2, 2, 0), (3, 2, 1), (2, 3, 1), (4, 2, 0)]:
            poset = PieriPoset.build(PieriProblem(m, p, q))
            assert poset.root().is_root

    def test_job_counts_monotone_then_flat(self):
        # counts grow towards the leaves (the paper: "jobs closest to the
        # root are the smallest") and the last levels repeat the root count
        counts = level_job_counts(3, 2, 1)
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == pieri_root_count(3, 2, 1)

    def test_total_paths(self):
        poset = PieriPoset.build(PieriProblem(3, 2, 1))
        assert poset.total_paths() == 252

    def test_patterns_at(self):
        poset = PieriPoset.build(PieriProblem(2, 2, 1))
        assert len(poset.patterns_at(0)) == 1
        assert all(p.level == 3 for p in poset.patterns_at(3))

    def test_ascii_art(self):
        art = PieriPoset.build(PieriProblem(2, 2, 1)).ascii_art()
        assert "[1 2]:1" in art
        assert "[4 7]:8" in art


class TestTree:
    def test_fig5_tree_shape(self):
        """Fig 5: the (2,2,1) Pieri tree has 8 leaves, all at [4 7]."""
        tree = PieriTree(PieriProblem(2, 2, 1))
        leaves = [n for n in tree.walk_dfs() if n.is_leaf()]
        assert len(leaves) == 8
        assert all(n.pattern().bottom_pivots == (4, 7) for n in leaves)

    def test_leaf_count_equals_root_count(self):
        for m, p, q in [(2, 2, 0), (3, 2, 0), (2, 2, 1)]:
            tree = PieriTree(PieriProblem(m, p, q))
            explicit = sum(1 for n in tree.walk_dfs() if n.is_leaf())
            assert explicit == tree.leaf_count() == pieri_root_count(m, p, q)

    def test_edge_count_equals_total_jobs(self):
        tree = PieriTree(PieriProblem(2, 2, 1))
        explicit = sum(1 for _ in tree.walk_dfs()) - 1  # edges = nodes - root
        assert explicit == tree.edge_count()

    def test_bfs_levels_match_poset(self):
        tree = PieriTree(PieriProblem(2, 2, 1))
        from collections import Counter

        per_level = Counter(n.level for n in tree.walk_bfs())
        expected = tree.node_count_per_level()
        assert [per_level[i] for i in range(len(expected))] == expected

    def test_node_navigation(self):
        prob = PieriProblem(2, 2, 1)
        root = PieriTreeNode(prob)
        child = next(root.children())
        assert child.parent() == root
        assert root.parent() is None
        assert child.level == 1
        assert str(child).startswith("[1 3]")

    def test_ascii_art_truncates(self):
        tree = PieriTree(PieriProblem(2, 2, 1))
        art = tree.ascii_art(max_depth=2)
        assert "[1 2]" in art
        assert "..." in art


class TestMemoryProfile:
    def test_tree_beats_poset(self):
        """§III-C: tree releases nodes quickly, poset keeps levels alive."""
        prof = memory_profile(PieriProblem(3, 2, 1))
        assert prof["tree_high_water"] < prof["poset_high_water"]
        assert prof["total_solutions"] == 55
        assert prof["total_jobs"] == 252

    def test_tree_high_water_near_depth(self):
        prob = PieriProblem(2, 2, 1)
        prof = memory_profile(prob)
        # DFS keeps at most one chain plus branching alive
        assert prof["tree_high_water"] <= prob.num_conditions + 1
