"""The sweep engine: specs, journals, checkpoint/resume, failure injection.

The centerpiece is the ISSUE-2 acceptance property: a sweep of >= 20
mixed jobs killed mid-run (both a simulated kill via ``abort_after`` and
a real ``SIGKILL`` of the CLI process) resumes from the checkpoint
journal, re-runs only unfinished jobs, and produces a result set
identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.simcluster import ClusterSpec, replay_sweep_dynamic, resume_replay
from repro.sweep import (
    JobSpec,
    SweepJournal,
    SweepSpec,
    mixed_demo_spec,
    run_job,
    run_sweep,
    solutions_fingerprint,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def small_mixed_spec(name="mixed-small"):
    """20 mixed jobs, fast ones first and the heavy ones last (so a kill
    early in the run always leaves work for the resume to do)."""
    jobs = [JobSpec("katsura", {"n": 2}, seed=s) for s in range(8)]
    jobs += [JobSpec("katsura", {"n": 3}, seed=s) for s in range(4)]
    jobs += [JobSpec("noon", {"n": 3}, seed=s) for s in range(2)]
    jobs += [JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=s) for s in range(2)]
    jobs += [JobSpec("cyclic", {"n": 4}, seed=s) for s in range(2)]
    jobs += [JobSpec("cyclic", {"n": 5}, seed=0), JobSpec("rps", {"n": 5}, seed=0)]
    return SweepSpec(name=name, jobs=jobs)


def results_only(records):
    """The deterministic part of a record set (drops timing/worker info)."""
    return {jid: rec["result"] for jid, rec in records.items()}


class TestJobSpec:
    def test_job_id_is_canonical(self):
        a = JobSpec("pieri", {"q": 1, "m": 2, "p": 2}, seed=3)
        b = JobSpec("pieri", {"m": 2, "p": 2, "q": 1}, seed=3)
        assert a.job_id == b.job_id == "pieri-m2-p2-q1-s3"
        assert JobSpec("cyclic", {"n": 5}).job_id == "cyclic-n5-s0"

    def test_rejects_unknown_kind_and_bad_params(self):
        with pytest.raises(ValueError):
            JobSpec("bogus", {"n": 3})
        with pytest.raises(ValueError):
            JobSpec("cyclic", {"m": 3})
        with pytest.raises(ValueError):
            JobSpec("pieri", {"m": 2, "p": 2})

    def test_roundtrip(self):
        job = JobSpec("katsura", {"n": 4}, seed=7)
        assert JobSpec.from_dict(job.to_dict()) == job


class TestSweepSpec:
    def test_grid_expansion(self):
        spec = SweepSpec.from_dict(
            {
                "name": "grid",
                "grids": [
                    {"kind": "pieri", "m": [2, 3], "p": [2], "q": [0, 1],
                     "seeds": [0, 1]},
                    {"kind": "cyclic", "n": [4, 5]},
                ],
            }
        )
        assert spec.n_jobs == 2 * 1 * 2 * 2 + 2
        assert "pieri-m3-p2-q1-s1" in spec.job_ids()
        assert "cyclic-n4-s0" in spec.job_ids()

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec("dup", [JobSpec("cyclic", {"n": 4})] * 2)

    def test_save_load_roundtrip(self, tmp_path):
        spec = small_mixed_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = SweepSpec.load(path)
        assert loaded.name == spec.name
        assert loaded.job_ids() == spec.job_ids()

    def test_demo_spec_has_twenty_mixed_jobs(self):
        spec = mixed_demo_spec()
        assert spec.n_jobs >= 20
        assert len({j.kind for j in spec.jobs}) >= 3


class TestStartStrategies:
    def test_default_leaves_job_id_and_dict_unchanged(self):
        job = JobSpec("cyclic", {"n": 5})
        assert job.start == "total_degree"
        assert job.job_id == "cyclic-n5-s0"  # pre-start journals still match
        assert "start" not in job.to_dict()

    def test_start_joins_job_id_and_roundtrips(self):
        job = JobSpec("cyclic", {"n": 7}, seed=2, start="polyhedral")
        assert job.job_id == "cyclic-n7-polyhedral-s2"
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_unknown_start_and_pieri_start_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("cyclic", {"n": 5}, start="bogus")
        with pytest.raises(ValueError):
            JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, start="polyhedral")

    def test_grid_start_axis(self):
        spec = SweepSpec.from_dict(
            {
                "name": "starts",
                "grids": [
                    {"kind": "cyclic", "n": [5, 6],
                     "start": ["total_degree", "polyhedral"]},
                ],
            }
        )
        assert spec.n_jobs == 4
        assert "cyclic-n5-s0" in spec.job_ids()
        assert "cyclic-n5-polyhedral-s0" in spec.job_ids()

    def test_polyhedral_job_tracks_mixed_volume_paths(self):
        record = run_job(JobSpec("katsura", {"n": 3}, start="polyhedral"))
        result = record["result"]
        assert result["start"] == "polyhedral"
        assert result["n_paths"] == result["mixed_volume"] == 8
        assert result["n_solutions"] == 8
        # same solution count as the default strategy (set-level parity
        # to 1e-8 is pinned in tests/test_polyhedral.py; fingerprints
        # round at 1e-6 so refinement noise can flip their last digit)
        default = run_job(JobSpec("katsura", {"n": 3}))["result"]
        assert default["start"] == "total_degree"
        assert default["n_solutions"] == result["n_solutions"]


class TestEndgameStrategies:
    def test_default_leaves_job_id_and_dict_unchanged(self):
        job = JobSpec("cyclic", {"n": 5})
        assert job.endgame == "refine"
        assert job.job_id == "cyclic-n5-s0"  # pre-endgame journals match
        assert "endgame" not in job.to_dict()

    def test_endgame_joins_job_id_and_roundtrips(self):
        job = JobSpec("katsura", {"n": 3}, seed=1, endgame="cauchy")
        assert job.job_id == "katsura-n3-cauchy-s1"
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_unknown_endgame_and_pieri_endgame_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("cyclic", {"n": 5}, endgame="bogus")
        with pytest.raises(ValueError):
            JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, endgame="cauchy")

    def test_grid_endgame_axis(self):
        spec = SweepSpec.from_dict(
            {
                "name": "endgames",
                "grids": [
                    {"kind": "katsura", "n": [2, 3],
                     "endgame": ["refine", "cauchy"]},
                ],
            }
        )
        assert spec.n_jobs == 4
        assert "katsura-n2-s0" in spec.job_ids()
        assert "katsura-n2-cauchy-s0" in spec.job_ids()

    def test_cauchy_job_journals_multiplicity_columns(self):
        record = run_job(JobSpec("katsura", {"n": 2}, endgame="cauchy"))
        result = record["result"]
        assert result["endgame"] == "cauchy"
        assert result["multiplicity_histogram"] == {"1": 4}
        # regular system: same solution set as the refine run
        default = run_job(JobSpec("katsura", {"n": 2}))["result"]
        assert default["endgame"] == "refine"
        assert default["fingerprint"] == result["fingerprint"]


class TestJournal:
    def test_append_and_load(self, tmp_path):
        journal = SweepJournal(tmp_path / "ck")
        journal.initialize({"name": "j", "jobs": []})
        with journal:
            journal.append({"job_id": "a", "x": 1})
            journal.append({"job_id": "b", "x": 2})
        records = journal.load_records()
        assert set(records) == {"a", "b"}
        assert records["a"]["x"] == 1

    def test_torn_tail_is_ignored_with_warning(self, tmp_path):
        journal = SweepJournal(tmp_path / "ck")
        journal.initialize({"name": "j", "jobs": []})
        with journal:
            journal.append({"job_id": "a", "x": 1})
        # simulate a SIGKILL mid-append: a truncated trailing line
        with open(journal.journal_path, "a") as fh:
            fh.write('{"job_id": "b", "x"')
        with pytest.warns(RuntimeWarning, match="torn or corrupt"):
            records = journal.load_records()
        assert set(records) == {"a"}

    def test_torn_tail_does_not_block_resume_appends(self, tmp_path):
        """After a torn line the journal must still accept appends and a
        re-load must see old + new records (the resume path)."""
        journal = SweepJournal(tmp_path / "ck")
        journal.initialize({"name": "j", "jobs": []})
        with journal:
            journal.append({"job_id": "a", "x": 1})
        with open(journal.journal_path, "a") as fh:
            fh.write('{"job_id": "b", "x"')  # no trailing newline either
        with SweepJournal(tmp_path / "ck") as again:
            again.append({"job_id": "b", "x": 2})
        with pytest.warns(RuntimeWarning):
            records = SweepJournal(tmp_path / "ck").load_records()
        assert records["a"]["x"] == 1 and records["b"]["x"] == 2

    def test_clean_journal_loads_without_warning(self, tmp_path):
        journal = SweepJournal(tmp_path / "ck")
        journal.initialize({"name": "j", "jobs": []})
        with journal:
            journal.append({"job_id": "a", "x": 1})
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            records = journal.load_records()
        assert set(records) == {"a"}

    def test_spec_mismatch_rejected(self, tmp_path):
        journal = SweepJournal(tmp_path / "ck")
        journal.initialize({"name": "one", "jobs": []})
        with pytest.raises(ValueError):
            SweepJournal(tmp_path / "ck").initialize({"name": "two", "jobs": []})

    def test_manifest_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path / "ck")
        journal.initialize({"name": "j", "jobs": []})
        journal.write_manifest(10, 3, "running", {"name": "j"})
        manifest = journal.read_manifest()
        assert manifest["n_jobs"] == 10
        assert manifest["n_done"] == 3
        assert manifest["status"] == "running"
        assert not journal.manifest_path.with_suffix(".json.tmp").exists()


class TestRunJob:
    def test_results_are_deterministic(self):
        job = JobSpec("cyclic", {"n": 4}, seed=5)
        assert run_job(job)["result"] == run_job(job)["result"]

    def test_pieri_job_finds_expected_solutions(self):
        record = run_job(JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=0))
        assert record["result"]["n_solutions"] == record["result"]["expected"] == 2
        assert record["result"]["failures"] == 0

    def test_fingerprint_order_independent(self):
        a = np.array([1.0 + 1e-9j, 2.0])
        b = np.array([3.0, 4.0])
        assert solutions_fingerprint([a, b]) == solutions_fingerprint([b, a])
        assert solutions_fingerprint([a]) != solutions_fingerprint([b])

    def test_fingerprint_reordering_stability(self):
        # invariant under any permutation of the solution *set*; three
        # orders of a three-solution set must all agree
        rng = np.random.default_rng(7)
        sols = [rng.standard_normal(3) + 1j * rng.standard_normal(3)
                for _ in range(3)]
        ref = solutions_fingerprint(sols)
        assert solutions_fingerprint(sols[::-1]) == ref
        assert solutions_fingerprint([sols[1], sols[2], sols[0]]) == ref
        # ...but NOT invariant to shuffling coordinates within a solution
        swapped = sols[0][[1, 0, 2]]
        assert solutions_fingerprint([swapped, *sols[1:]]) != ref

    def test_fingerprint_digits_sensitivity(self):
        # tracking noise below the rounding threshold hashes identically;
        # tightening `digits` re-exposes it
        a = np.array([1.0 + 2.0j])
        jittered = np.array([1.0 + 4e-7 + 2.0j])
        assert solutions_fingerprint([a]) == solutions_fingerprint([jittered])
        assert solutions_fingerprint([a], digits=8) != solutions_fingerprint(
            [jittered], digits=8
        )

    def test_fingerprint_near_collision_distinct(self):
        # values that differ just above the rounding threshold stay
        # distinct — rounding coarsens, it does not merge neighbours
        a = np.array([1.0 + 0.5j, -2.0])
        above = np.array([1.0 + 2e-6 + 0.5j, -2.0])
        assert solutions_fingerprint([a]) != solutions_fingerprint([above])
        # real and imaginary parts hash independently: moving the same
        # perturbation between them changes the key
        imag_shift = np.array([1.0 + (0.5 + 2e-6) * 1j, -2.0])
        assert solutions_fingerprint([above]) != solutions_fingerprint(
            [imag_shift]
        )


class TestEngine:
    def test_serial_run_and_resume(self, tmp_path):
        spec = SweepSpec(
            "tiny",
            [JobSpec("katsura", {"n": 2}, seed=s) for s in range(3)],
        )
        report = run_sweep(spec, tmp_path / "ck", mode="serial")
        assert report.complete
        assert len(report.ran_job_ids) == 3
        again = run_sweep(spec, tmp_path / "ck", mode="serial")
        assert again.complete
        assert again.skipped == 3
        assert again.ran_job_ids == []
        manifest = SweepJournal(tmp_path / "ck").read_manifest()
        assert manifest["status"] == "complete"

    def test_schedules_and_modes_agree(self, tmp_path):
        """Same deterministic results no matter how the sweep is sharded."""
        spec = SweepSpec(
            "agree",
            [
                JobSpec("katsura", {"n": 2}, seed=0),
                JobSpec("katsura", {"n": 3}, seed=1),
                JobSpec("cyclic", {"n": 4}, seed=0),
                JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=0),
            ],
        )
        reference = run_sweep(spec, tmp_path / "serial", mode="serial")
        dynamic = run_sweep(
            spec, tmp_path / "dyn", mode="thread", n_workers=3
        )
        static = run_sweep(
            spec, tmp_path / "st", mode="thread", n_workers=3,
            schedule="static",
        )
        assert results_only(dynamic.records) == results_only(reference.records)
        assert results_only(static.records) == results_only(reference.records)
        assert len(dynamic.worker_busy_seconds) == 3
        assert dynamic.total_cpu_seconds > 0

    def test_invalid_arguments(self, tmp_path):
        spec = SweepSpec("bad", [JobSpec("katsura", {"n": 2})])
        with pytest.raises(ValueError):
            run_sweep(spec, tmp_path / "ck", n_workers=0)
        with pytest.raises(ValueError):
            run_sweep(spec, tmp_path / "ck", schedule="bogus")
        with pytest.raises(ValueError):
            run_sweep(spec, tmp_path / "ck", mode="bogus")
        with pytest.raises(ValueError):
            run_sweep(spec, tmp_path / "ck", abort_after=0)


class TestKillResumeIdentity:
    """The acceptance property, staged two ways."""

    def test_aborted_dynamic_sweep_resumes_identically(self, tmp_path):
        spec = small_mixed_spec()
        assert spec.n_jobs >= 20
        reference = run_sweep(spec, tmp_path / "ref", mode="serial")
        assert reference.complete

        # "kill" the run after 5 journaled jobs: in-flight work is dropped
        killed = run_sweep(
            spec, tmp_path / "ck", mode="thread", n_workers=3, abort_after=5
        )
        assert killed.aborted
        assert len(killed.ran_job_ids) == 5
        assert SweepJournal(tmp_path / "ck").read_manifest()["status"] == "aborted"

        resumed = run_sweep(spec, tmp_path / "ck", mode="thread", n_workers=3)
        assert resumed.complete
        assert resumed.skipped == 5
        # only unfinished jobs were re-run ...
        assert set(resumed.ran_job_ids).isdisjoint(killed.ran_job_ids)
        assert len(resumed.ran_job_ids) == spec.n_jobs - 5
        # ... and the merged result set is identical to the clean run
        assert results_only(resumed.records) == results_only(reference.records)

    def test_sigkilled_cli_sweep_resumes_identically(self, tmp_path):
        """Real SIGKILL of a running CLI sweep; resume completes it."""
        spec = small_mixed_spec(name="sigkill")
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        checkpoint = tmp_path / "ck"
        journal_path = checkpoint / "journal.jsonl"
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.sweep", "run", str(spec_path),
                "--checkpoint", str(checkpoint), "--workers", "2",
                "--mode", "process",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if journal_path.exists() and len(
                    journal_path.read_text().splitlines()
                ) >= 3:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert proc.poll() is None, "sweep finished before it was killed"
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=60)

        killed_records = SweepJournal(checkpoint).load_records()
        assert 0 < len(killed_records) < spec.n_jobs, (
            "the kill should land mid-sweep"
        )
        resumed = run_sweep(spec, checkpoint, mode="thread", n_workers=3)
        assert resumed.complete
        assert resumed.skipped == len(killed_records)
        assert set(resumed.ran_job_ids).isdisjoint(killed_records)

        reference = run_sweep(spec, tmp_path / "ref", mode="serial")
        assert results_only(resumed.records) == results_only(reference.records)


class TestWorkerFailureInjection:
    def test_dead_worker_process_is_survived(self, tmp_path, monkeypatch):
        """A worker that dies mid-job (os._exit) kills the process pool;
        the engine rebuilds it, retries the job, and loses nothing."""
        spec = SweepSpec(
            "death",
            [JobSpec("katsura", {"n": 2}, seed=s) for s in range(6)],
        )
        victim = spec.jobs[3].job_id
        marker = tmp_path / "crashed.marker"
        monkeypatch.setenv("REPRO_SWEEP_KILL_JOB", victim)
        monkeypatch.setenv("REPRO_SWEEP_KILL_MARKER", str(marker))
        report = run_sweep(
            spec, tmp_path / "ck", mode="process", n_workers=2
        )
        assert marker.exists(), "the injected death must have fired"
        assert report.complete
        assert report.worker_crashes >= 1
        assert report.pool_rebuilds >= 1
        reference = run_sweep(spec, tmp_path / "ref", mode="serial")
        assert results_only(report.records) == results_only(reference.records)

    def test_crashing_job_is_retried_in_threads(self, tmp_path, monkeypatch):
        spec = SweepSpec(
            "flaky",
            [JobSpec("katsura", {"n": 2}, seed=s) for s in range(4)],
        )
        marker = tmp_path / "raised.marker"
        monkeypatch.setenv("REPRO_SWEEP_FAIL_JOB", spec.jobs[1].job_id)
        monkeypatch.setenv("REPRO_SWEEP_KILL_MARKER", str(marker))
        report = run_sweep(spec, tmp_path / "ck", mode="thread", n_workers=2)
        assert marker.exists()
        assert report.complete
        assert report.worker_crashes == 1


class TestCLI:
    def run_cli(self, *args):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.sweep", *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_help(self):
        proc = self.run_cli("--help")
        assert proc.returncode == 0
        assert "run" in proc.stdout and "report" in proc.stdout

    def test_two_job_dry_run_and_report(self, tmp_path):
        spec = SweepSpec(
            "two",
            [
                JobSpec("katsura", {"n": 2}, seed=0),
                JobSpec("katsura", {"n": 2}, seed=1),
            ],
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        checkpoint = tmp_path / "ck"

        dry = self.run_cli(
            "run", str(spec_path), "--checkpoint", str(checkpoint), "--dry-run"
        )
        assert dry.returncode == 0
        assert "2 pending" in dry.stdout
        assert dry.stdout.count("would run") == 2
        assert not (checkpoint / "journal.jsonl").exists()

        ran = self.run_cli(
            "run", str(spec_path), "--checkpoint", str(checkpoint),
            "--mode", "serial",
        )
        assert ran.returncode == 0, ran.stderr
        assert "complete" in ran.stdout

        rep = self.run_cli("report", str(checkpoint))
        assert rep.returncode == 0
        assert "2/2 jobs" in rep.stdout
        assert "nothing pending" in rep.stdout

    def test_example_spec_is_valid(self, tmp_path):
        out = tmp_path / "spec.json"
        proc = self.run_cli("example-spec", "--out", str(out))
        assert proc.returncode == 0
        spec = SweepSpec.load(out)
        assert spec.n_jobs >= 20

    def test_report_format_json(self, tmp_path):
        spec = SweepSpec(
            "json-demo",
            [
                JobSpec("katsura", {"n": 2}, seed=0),
                JobSpec("katsura", {"n": 2}, seed=0, endgame="cauchy"),
                JobSpec("katsura", {"n": 2}, seed=1),
            ],
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        checkpoint = tmp_path / "ck"
        ran = self.run_cli(
            "run", str(spec_path), "--checkpoint", str(checkpoint),
            "--mode", "serial", "--max-jobs", "2",
        )
        assert ran.returncode == 3  # aborted by --max-jobs, resumable

        rep = self.run_cli("report", str(checkpoint), "--format", "json")
        assert rep.returncode == 0, rep.stderr
        payload = json.loads(rep.stdout)  # machine-readable, parses clean
        assert payload["name"] == "json-demo"
        assert payload["n_jobs"] == 3
        assert payload["n_done"] == 2
        assert len(payload["pending"]) == 1
        by_id = {row["job_id"]: row for row in payload["jobs"]}
        cauchy = by_id["katsura-n2-cauchy-s0"]["result"]
        assert cauchy["endgame"] == "cauchy"
        assert cauchy["multiplicity_histogram"] == {"1": 4}
        refine = by_id["katsura-n2-s0"]["result"]
        assert refine["endgame"] == "refine"


class TestSimulatedReplay:
    """The simcluster failure-injection replay of the same scheduler."""

    COSTS = list(np.random.default_rng(42).lognormal(0.0, 1.0, 80) * 5.0)

    def test_kill_and_resume_cover_all_jobs_exactly_once(self):
        full = replay_sweep_dynamic(self.COSTS, 4)
        assert full.jobs_done == len(self.COSTS)
        killed = replay_sweep_dynamic(
            self.COSTS, 4, kill_at=full.wall_seconds / 3
        )
        assert 0 < killed.jobs_done < len(self.COSTS)
        resumed = resume_replay(self.COSTS, 4, killed)
        done = killed.done_jobs() + resumed.done_jobs()
        assert sorted(done) == list(range(len(self.COSTS)))

    def test_worker_death_requeues_and_completes(self):
        clean = replay_sweep_dynamic(self.COSTS, 4)
        hurt = replay_sweep_dynamic(
            self.COSTS, 4, worker_deaths={1: 10.0, 3: 25.0}
        )
        assert hurt.jobs_done == len(self.COSTS)
        assert hurt.requeues >= 1
        assert hurt.wall_seconds > clean.wall_seconds
        # dead workers stop accumulating busy time
        assert hurt.busy_seconds[1] <= 10.0
        assert hurt.busy_seconds[3] <= 25.0

    def test_all_workers_dead_rejected(self):
        with pytest.raises(ValueError):
            replay_sweep_dynamic(self.COSTS, 2, worker_deaths={0: 1.0, 1: 2.0})
