"""Tests for the polyhedral subsystem: supports, cells, binomials, solve.

Pins the classic mixed volumes (cyclic-5 = 70, cyclic-7 = 924,
noon-3 = 21, katsura-n = Bezout), property-tests the root-count chain
``mixed_volume <= best m-homogeneous <= total degree``, exercises the
Smith-normal-form binomial solver, and runs the parity suite asserting
``solve(start="polyhedral")`` finds the same distinct finite solutions
as the total-degree homotopy.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.homotopy import best_partition, solve
from repro.polyhedral import (
    DegenerateLiftingError,
    MixedCell,
    PolyhedralStart,
    augment_with_origin,
    induced_subdivision,
    inequalities_feasible,
    lp_feasible,
    mixed_cells,
    mixed_volume,
    monomial_map,
    smith_normal_form,
    solve_binomial_system,
    supports_of,
)
from repro.polynomials import Polynomial, PolynomialSystem, variables
from repro.systems import (
    cyclic_roots_system,
    katsura_system,
    noon_system,
)


class TestSupports:
    def test_supports_sorted_and_exact(self):
        x, y = variables(2)
        sys_ = PolynomialSystem([x**2 * y + y - 1, x + y])
        s = supports_of(sys_)
        assert s[0].tolist() == [[0, 0], [0, 1], [2, 1]]
        assert s[1].tolist() == [[0, 1], [1, 0]]

    def test_zero_polynomial_rejected(self):
        sys_ = PolynomialSystem([Polynomial({}, 2), Polynomial({}, 2)])
        with pytest.raises(ValueError):
            supports_of(sys_)

    def test_augment_adds_origin_once(self):
        a = augment_with_origin([np.array([[1, 0], [1, 1]])])[0]
        assert a.tolist() == [[0, 0], [1, 0], [1, 1]]
        again = augment_with_origin([a])[0]
        assert again.tolist() == a.tolist()


class TestLpKernel:
    def test_box_feasible(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        assert inequalities_feasible(A, np.array([1.0, 1.0, 1.0, 1.0]))

    def test_contradiction_infeasible(self):
        A = np.array([[1.0], [-1.0]])
        assert not inequalities_feasible(A, np.array([-2.0, 1.0]))

    def test_equalities_eliminated(self):
        # x + y = 2 with x <= 0 and y <= 0 cannot hold
        assert not lp_feasible(
            np.array([[1.0, 1.0]]), np.array([2.0]),
            np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([0.0, 0.0]),
        )

    def test_inconsistent_equalities(self):
        assert not lp_feasible(
            np.array([[1.0, 0.0], [2.0, 0.0]]), np.array([1.0, 3.0]),
            None, None,
        )


class TestSmithNormalForm:
    @pytest.mark.parametrize(
        "mat",
        [
            [[2, 4], [6, 8]],
            [[1, 0], [0, 1]],
            [[0, 1], [1, 0]],
            [[3, 5, 7], [2, 0, -4], [1, 1, 1]],
            [[6, 0], [0, 10]],
        ],
    )
    def test_decomposition_invariants(self, mat):
        U, S, W = smith_normal_form(mat)
        m = np.array(mat)
        assert (U @ m @ W == S).all()
        # unimodular transforms, diagonal S with divisibility chain
        assert abs(round(np.linalg.det(U))) == 1
        assert abs(round(np.linalg.det(W))) == 1
        n = min(S.shape)
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert S[i, j] == 0
        diag = [int(S[i, i]) for i in range(n)]
        for a, b in zip(diag, diag[1:]):
            if a != 0:
                assert b % a == 0

    def test_binomial_roots_count_and_residual(self):
        vmat = [[2, 1], [0, 3]]
        beta = [1.5 + 0.5j, -2.0]
        sols = solve_binomial_system(vmat, beta)
        assert len(sols) == 6  # |det| = 6
        # each solution satisfies x^{v_i} = beta_i
        for sol in sols:
            lhs = monomial_map(np.array(vmat), sol)
            assert np.max(np.abs(lhs - np.array(beta))) < 1e-9
        # and they are pairwise distinct
        for i in range(len(sols)):
            for j in range(i + 1, len(sols)):
                assert np.max(np.abs(sols[i] - sols[j])) > 1e-8

    def test_singular_exponent_matrix_rejected(self):
        with pytest.raises(ValueError):
            solve_binomial_system([[1, 1], [2, 2]], [1.0, 1.0])


class TestMixedVolumePins:
    """The classic counts the subsystem must reproduce exactly."""

    @pytest.mark.parametrize("n,expected", [(3, 6), (5, 70)])
    def test_cyclic_small(self, n, expected):
        assert mixed_volume(
            cyclic_roots_system(n), rng=np.random.default_rng(0)
        ) == expected

    def test_cyclic_7(self):
        # the paper-scale pin: 924 mixed cells' worth of volume vs 5040
        # total-degree paths (a ~6 s enumeration, the suite's largest)
        assert mixed_volume(
            cyclic_roots_system(7), rng=np.random.default_rng(0)
        ) == 924

    def test_noon_3(self):
        assert mixed_volume(
            noon_system(3), rng=np.random.default_rng(0)
        ) == 21

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_katsura_equals_bezout(self, n):
        sys_ = katsura_system(n)
        assert mixed_volume(
            sys_, rng=np.random.default_rng(0)
        ) == sys_.total_degree_bound()

    def test_lifting_independence(self):
        """The mixed volume is a property of the supports, not the lifting."""
        sys_ = cyclic_roots_system(4)
        vols = {
            mixed_volume(sys_, rng=np.random.default_rng(seed))
            for seed in range(5)
        }
        assert len(vols) == 1

    def test_torus_vs_affine_convention(self):
        # katsura's (1, 0, ..., 0) root is invisible to the torus count
        sys_ = katsura_system(2)
        affine = mixed_volume(sys_, rng=np.random.default_rng(0), affine=True)
        torus = mixed_volume(sys_, rng=np.random.default_rng(0), affine=False)
        assert torus <= affine == sys_.total_degree_bound()

    def test_cell_volumes_sum_and_etas(self):
        sub = mixed_cells(cyclic_roots_system(3), rng=np.random.default_rng(1))
        assert sub.mixed_volume == sum(c.volume for c in sub.cells) == 6
        for cell in sub.cells:
            assert isinstance(cell, MixedCell)
            for (p, q), etas in zip(cell.edges, cell.etas):
                assert etas[p] == 0.0 and etas[q] == 0.0
                others = np.delete(etas, [p, q])
                assert np.all(others > 0)  # strict: the lifting was generic

    def test_degenerate_lifting_detected(self):
        # two identical lifted squares: every point ties the lower hull
        square = np.array([[0, 0], [1, 0], [0, 1], [1, 1]])
        flat = [np.zeros(4, dtype=np.int64)] * 2
        with pytest.raises(DegenerateLiftingError):
            induced_subdivision([square, square], flat)

    def test_non_square_rejected(self):
        x, y = variables(2)
        with pytest.raises(ValueError):
            mixed_volume(PolynomialSystem([x + y]))


# ---------------------------------------------------------------------------
# property test: the root-count chain
# ---------------------------------------------------------------------------


@st.composite
def small_square_systems(draw):
    """Random square systems with nonzero equations in 2 variables."""
    nvars = 2
    polys = []
    for _ in range(nvars):
        n_terms = draw(st.integers(1, 4))
        coeffs = {}
        for _ in range(n_terms):
            expo = tuple(draw(st.integers(0, 3)) for _ in range(nvars))
            c = draw(
                st.complex_numbers(
                    min_magnitude=0.1, max_magnitude=4.0,
                    allow_nan=False, allow_infinity=False,
                )
            )
            coeffs[expo] = c
        polys.append(Polynomial(coeffs, nvars))
    return PolynomialSystem(polys)


class TestRootCountChain:
    @given(small_square_systems())
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mixed_volume_below_mhom_below_total_degree(self, system):
        assume(all(poly.total_degree() > 0 for poly in system))
        td = system.total_degree_bound()
        _, mhom = best_partition(system)
        mv = mixed_volume(system, rng=np.random.default_rng(0))
        assert mv <= mhom <= td


# ---------------------------------------------------------------------------
# phase 1: cell homotopies to the generic system
# ---------------------------------------------------------------------------


class TestPolyhedralStart:
    def test_tracks_one_start_per_unit_volume(self):
        ps = PolyhedralStart(cyclic_roots_system(3), np.random.default_rng(0))
        starts, results = ps.track_starts()
        assert ps.mixed_volume == 6
        assert starts.shape == (6, 3)
        assert all(r.success for r in results)
        assert ps.phase1_failures == 0
        # the starts really solve the generic system
        res = ps.generic_system.evaluate_many(starts)
        assert np.max(np.abs(res)) < 1e-6

    def test_generic_starts_are_distinct(self):
        # katsura-5 is the case where phase-1 path collisions were seen;
        # the duplicate re-track must separate them for every seed here
        for seed in (1, 7):
            ps = PolyhedralStart(katsura_system(5), np.random.default_rng(seed))
            starts, _ = ps.track_starts()
            for i in range(len(starts)):
                for j in range(i + 1, len(starts)):
                    assert np.max(np.abs(starts[i] - starts[j])) > 1e-6

    def test_non_square_rejected(self):
        x, y = variables(2)
        with pytest.raises(ValueError):
            PolyhedralStart(PolynomialSystem([x + y]))


# ---------------------------------------------------------------------------
# parity: polyhedral vs total-degree blackbox solve
# ---------------------------------------------------------------------------


def _solution_sets_match(a, b, tol=1e-8):
    if len(a) != len(b):
        return False
    used = set()
    for x in a:
        for i, y in enumerate(b):
            if i not in used and np.max(np.abs(x - y)) < tol:
                used.add(i)
                break
        else:
            return False
    return True


class TestPolyhedralSolveParity:
    @pytest.mark.parametrize(
        "system,expected",
        [
            (cyclic_roots_system(5), 70),
            (katsura_system(5), 32),
        ],
        ids=["cyclic-5", "katsura-5"],
    )
    def test_same_distinct_solutions_as_total_degree(self, system, expected):
        poly = solve(
            system, start="polyhedral", mode="batch",
            rng=np.random.default_rng(1),
        )
        td = solve(system, mode="batch", rng=np.random.default_rng(2))
        # tracks exactly the mixed-volume number of paths ...
        assert poly.n_paths == poly.summary["mixed_volume"] == expected
        assert poly.summary["start"] == "polyhedral"
        assert poly.summary["phase1_failures"] == 0
        # ... and finds the same distinct finite solutions
        assert _solution_sets_match(poly.solutions, td.solutions)

    def test_polyhedral_tracks_fewer_paths_on_cyclic(self):
        report = solve(
            cyclic_roots_system(5), start="polyhedral", mode="batch",
            rng=np.random.default_rng(0),
        )
        assert report.n_paths == 70 < 120  # mixed volume vs total degree
        assert report.summary["n_cells"] == len(
            PolyhedralStart(
                cyclic_roots_system(5), np.random.default_rng(0)
            ).cells
        )

    def test_per_path_mode_matches_batch(self):
        sys_ = cyclic_roots_system(3)
        a = solve(sys_, start="polyhedral", rng=np.random.default_rng(4))
        b = solve(
            sys_, start="polyhedral", mode="batch",
            rng=np.random.default_rng(4),
        )
        assert _solution_sets_match(a.solutions, b.solutions)

    def test_legacy_start_kind_alias(self):
        report = solve(
            katsura_system(2), start_kind="polyhedral",
            rng=np.random.default_rng(0),
        )
        assert report.summary["start"] == "polyhedral"
        assert report.n_solutions == 4
