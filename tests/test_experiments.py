"""Tests for the experiment harness (tables/figures regeneration)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4_COUNTS,
    fig1,
    fig2,
    figures345,
    measure_cyclic_costs,
    render_series,
    render_table,
    resample_workload,
    table1,
    table2,
    table3,
    table4,
)


class TestFormatting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[1:]} ) <= 2  # header/sep/rows aligned

    def test_render_series(self):
        text = render_series("S", [1, 2], {"y": [3.0, 4.0]})
        assert "S" in text and "y" in text


class TestTable1:
    def test_shape_and_paper_comparison(self):
        text, rows = table1(cpu_counts=(1, 8, 128))
        assert len(rows) == 3
        assert "Table I" in text
        # dynamic wins, and more at 128 than at 8 (the paper's trend)
        assert rows[2]["improvement_pct"] > rows[1]["improvement_pct"] > 0
        # speedups within the physically possible range
        for r in rows:
            assert 0 < r["dynamic_speedup"] <= r["cpus"] + 1e-9

    def test_fig1_series_consistent_with_table(self):
        text, data = fig1(cpu_counts=(1, 8))
        assert data["x"] == [1, 8]
        assert data["optimal"] == [1.0, 8.0]
        assert "Fig 1" in text


class TestTable2:
    def test_improvements_small(self):
        text, rows = table2(cpu_counts=(8, 128))
        assert "Table II" in text
        for r in rows:
            assert abs(r["improvement_pct"]) < 12

    def test_fig2(self):
        _, data = fig2(cpu_counts=(8, 16))
        assert data["x"] == [8, 16]
        assert len(data["static"]) == 2


class TestTable3:
    def test_counts_only(self):
        text, data = table3(run_solver=False)
        assert data["counts"] == PAPER_TABLE3
        assert "252" in text

    def test_with_solver_small(self):
        text, data = table3(m=2, p=2, q=0, run_solver=True, seed=1)
        assert data["counts"] == [1, 2, 2, 2]
        assert sum(data["seconds"].values()) > 0
        assert "Table III" in text


class TestTable4:
    def test_counts_all_match_except_typo(self):
        text, data = table4(solve_cells=())
        assert "Table IV" in text
        assert "paper typo" in text  # the (3,3,2) cell
        assert text.count("OK") == len(PAPER_TABLE4_COUNTS) - 1

    def test_solved_cell_included(self):
        text, data = table4(solve_cells=((2, 2, 0),), seed=3)
        assert data["solved"][(2, 2, 0)] == 2
        assert data["timings"][(2, 2, 0)] > 0


class TestFigures345:
    def test_content(self):
        text = figures345()
        assert "Fig 3" in text and "Fig 4" in text and "Fig 5" in text
        assert "[4 7]" in text
        # Fig 3's pattern has 10 stars
        fig3_block = text.split("Fig 4")[0]
        assert fig3_block.count("*") == 10


class TestCalibration:
    def test_measure_and_resample(self):
        measured = measure_cyclic_costs(n=3, seed=4)
        assert measured.n_paths >= 4
        wl = resample_workload(measured, 500, 10.0, np.random.default_rng(5))
        assert wl.n_paths == 500
        assert abs(wl.total_cpu_minutes - 10.0) < 1e-9


class TestMainEntry:
    def test_fast_mode_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table IV" in out
        assert "Fig 5" in out
