"""Unit tests for repro.linalg (cofactors, planes, polynomial matrices)."""

import numpy as np
import pytest

from repro.linalg import (
    PolyMatrix,
    adjugate,
    charpoly_coefficients,
    cofactor_matrix,
    det_and_cofactors,
    orth_basis,
    plane_distance,
    random_complex_matrix,
    random_plane,
    random_unitary,
    resolvent_numerator,
    subspace_angle,
)


class TestCofactors:
    def test_cofactor_2x2(self):
        m = np.array([[1.0, 2.0], [3.0, 4.0]])
        cof = cofactor_matrix(m)
        expected = np.array([[4.0, -3.0], [-2.0, 1.0]])
        assert np.allclose(cof, expected)

    def test_adjugate_identity(self):
        rng = np.random.default_rng(0)
        for n in range(1, 7):
            m = random_complex_matrix(n, n, rng)
            adj = adjugate(m)
            det = np.linalg.det(m)
            assert np.allclose(adj @ m, det * np.eye(n), atol=1e-9 * max(1, abs(det)))

    def test_det_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        m = random_complex_matrix(5, 5, rng)
        _, cof = det_and_cofactors(m)
        h = 1e-7
        for i in range(5):
            for j in range(5):
                mp = m.copy()
                mp[i, j] += h
                fd = (np.linalg.det(mp) - np.linalg.det(m)) / h
                assert abs(fd - cof[i, j]) < 1e-4 * max(1.0, abs(cof[i, j]))

    def test_det_and_cofactors_consistent(self):
        rng = np.random.default_rng(2)
        m = random_complex_matrix(6, 6, rng)
        det, _ = det_and_cofactors(m)
        assert abs(det - np.linalg.det(m)) < 1e-9 * max(1, abs(det))

    def test_singular_matrix_cofactors_finite(self):
        # rank-deficient: adjugate still well-defined, Jacobi's formula is not
        m = np.outer(np.arange(1, 5.0), np.arange(1, 5.0))
        cof = cofactor_matrix(m)
        assert np.all(np.isfinite(cof))
        assert np.allclose(adjugate(m) @ m, np.zeros((4, 4)), atol=1e-9)

    def test_1x1(self):
        det, cof = det_and_cofactors(np.array([[3.0 + 1j]]))
        assert det == 3.0 + 1j
        assert cof[0, 0] == 1.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            cofactor_matrix(np.ones((2, 3)))


class TestPlanes:
    def test_random_unitary_is_unitary(self):
        rng = np.random.default_rng(3)
        u = random_unitary(6, rng)
        assert np.allclose(u.conj().T @ u, np.eye(6), atol=1e-12)

    def test_random_plane_shape_and_rank(self):
        rng = np.random.default_rng(4)
        k = random_plane(5, 2, rng)
        assert k.shape == (5, 2)
        assert np.linalg.matrix_rank(k) == 2

    def test_random_plane_bad_dim(self):
        with pytest.raises(ValueError):
            random_plane(3, 0)
        with pytest.raises(ValueError):
            random_plane(3, 4)

    def test_orth_basis(self):
        rng = np.random.default_rng(5)
        m = random_complex_matrix(6, 3, rng)
        q = orth_basis(m)
        assert np.allclose(q.conj().T @ q, np.eye(3), atol=1e-12)
        # same span: projection of m onto q-span recovers m
        assert np.allclose(q @ (q.conj().T @ m), m, atol=1e-10)

    def test_orth_basis_rank_deficient(self):
        m = np.ones((4, 2), dtype=complex)
        with pytest.raises(ValueError):
            orth_basis(m)

    def test_plane_distance_zero_for_same_span(self):
        rng = np.random.default_rng(6)
        k = random_plane(6, 3, rng)
        g = random_complex_matrix(3, 3, rng)  # change of basis
        assert plane_distance(k, k @ g) < 1e-10

    def test_plane_distance_one_for_orthogonal(self):
        e1 = np.eye(4)[:, :2]
        e2 = np.eye(4)[:, 2:]
        assert abs(plane_distance(e1, e2) - 1.0) < 1e-12

    def test_subspace_angle_range(self):
        rng = np.random.default_rng(7)
        a = random_plane(6, 2, rng)
        b = random_plane(6, 2, rng)
        ang = subspace_angle(a, b)
        assert 0 <= ang <= np.pi / 2 + 1e-12
        assert subspace_angle(a, a) < 1e-7


class TestPolyMatrix:
    def test_eval(self):
        # M(s) = [[1, s], [0, s^2]]
        m = PolyMatrix(
            [
                np.array([[1.0, 0.0], [0.0, 0.0]]),
                np.array([[0.0, 1.0], [0.0, 0.0]]),
                np.array([[0.0, 0.0], [0.0, 1.0]]),
            ]
        )
        val = m(2.0)
        assert np.allclose(val, [[1, 2], [0, 4]])
        assert m.degree == 2

    def test_trailing_zero_trim(self):
        m = PolyMatrix([np.eye(2), np.zeros((2, 2))])
        assert m.degree == 0

    def test_add_matmul(self):
        a = PolyMatrix([np.eye(2), np.eye(2)])  # I + I s
        b = PolyMatrix([np.eye(2) * 2])
        c = a + b
        assert np.allclose(c(1.0), 4 * np.eye(2))
        d = a @ a  # (I + I s)^2 = I + 2 I s + I s^2
        assert np.allclose(d.coefficient(1), 2 * np.eye(2))
        assert d.degree == 2

    def test_stacks(self):
        a = PolyMatrix([np.ones((2, 1))])
        b = PolyMatrix([np.zeros((2, 1)), np.ones((2, 1))])
        h = a.hstack(b)
        assert h.shape == (2, 2)
        assert np.allclose(h(3.0), [[1, 3], [1, 3]])
        v = PolyMatrix([np.ones((1, 2))]).vstack(PolyMatrix([np.zeros((1, 2))]))
        assert v.shape == (2, 2)

    def test_determinant_coefficients(self):
        # det([[s, 1], [1, s]]) = s^2 - 1
        m = PolyMatrix(
            [np.array([[0.0, 1.0], [1.0, 0.0]]), np.eye(2)]
        )
        coeffs = m.determinant_coefficients()
        assert np.allclose(coeffs[:3], [-1.0, 0.0, 1.0], atol=1e-10)

    def test_identity_times_poly(self):
        m = PolyMatrix.identity_times_poly(3, [1.0, 2.0])
        assert np.allclose(m(5.0), 11 * np.eye(3))


class TestCharpoly:
    def test_matches_numpy_eigvals(self):
        rng = np.random.default_rng(8)
        a = random_complex_matrix(5, 5, rng)
        coeffs = charpoly_coefficients(a)
        # evaluate chi at the eigenvalues -> 0
        eigs = np.linalg.eigvals(a)
        for lam in eigs:
            val = sum(c * lam**k for k, c in enumerate(coeffs))
            assert abs(val) < 1e-8

    def test_monic(self):
        a = np.diag([1.0, 2.0, 3.0])
        coeffs = charpoly_coefficients(a)
        assert coeffs[-1] == 1.0
        # chi(s) = (s-1)(s-2)(s-3) = s^3 - 6 s^2 + 11 s - 6
        assert np.allclose(coeffs, [-6, 11, -6, 1])

    def test_resolvent_numerator_identity(self):
        rng = np.random.default_rng(9)
        n, m, p = 4, 2, 3
        a = random_complex_matrix(n, n, rng)
        b = random_complex_matrix(n, m, rng)
        c = random_complex_matrix(p, n, rng)
        num, chi = resolvent_numerator(a, b, c)
        s = 0.7 - 0.3j
        chi_s = sum(co * s**k for k, co in enumerate(chi))
        direct = c @ np.linalg.solve(s * np.eye(n) - a, b)
        assert np.allclose(num(s) / chi_s, direct, atol=1e-9)

    def test_resolvent_chi_matches_charpoly(self):
        rng = np.random.default_rng(10)
        a = random_complex_matrix(3, 3, rng)
        _, chi = resolvent_numerator(a, np.eye(3), np.eye(3))
        assert np.allclose(chi, charpoly_coefficients(a))
