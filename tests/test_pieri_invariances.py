"""Invariance properties of the Pieri numerics.

The geometric objects (planes, maps) are coordinate-free; the numerics
must respect that: intersection conditions are invariant under column
scaling of the map and basis changes of the planes, and the solution set
of an instance does not depend on the solver seed (which only picks the
gamma twists).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schubert import (
    LocalizationPattern,
    PieriInstance,
    PieriProblem,
    PieriSolver,
    evaluate_map,
    intersection_residuals,
    special_plane,
    verify_solutions,
)


def _random_fitting_matrix(pattern, rng):
    c = np.zeros((pattern.problem.nrows, pattern.problem.p), dtype=complex)
    for r, j in pattern.support():
        c[r - 1, j - 1] = rng.standard_normal() + 1j * rng.standard_normal()
    return c


class TestScalingInvariance:
    @given(st.integers(0, 2**31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_residual_zero_set_invariant_under_column_scaling(self, seed):
        rng = np.random.default_rng(seed)
        prob = PieriProblem(2, 2, 1)
        pattern = LocalizationPattern(prob, (4, 7))
        c = _random_fitting_matrix(pattern, rng)
        instance = PieriInstance.random(2, 2, 1, rng)
        res = intersection_residuals(
            c, pattern, instance.planes, instance.points
        )
        scales = rng.standard_normal(2) + 1j * rng.standard_normal(2)
        c2 = c * scales[None, :]
        res2 = intersection_residuals(
            c2, pattern, instance.planes, instance.points
        )
        # det is multilinear in columns: res2 = prod(scales) * res
        factor = np.prod(scales)
        assert np.allclose(res2, factor * res, rtol=1e-9, atol=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_plane_basis_change_scales_residual(self, seed):
        rng = np.random.default_rng(seed)
        prob = PieriProblem(3, 2, 0)
        pattern = LocalizationPattern(prob, (4, 5))
        c = _random_fitting_matrix(pattern, rng)
        k = (rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3)))
        g = (rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3)))
        s = complex(rng.standard_normal(), rng.standard_normal())
        r1 = intersection_residuals(c, pattern, [k], [s])[0]
        r2 = intersection_residuals(c, pattern, [k @ g], [s])[0]
        assert abs(r2 - np.linalg.det(g) * r1) < 1e-8 * max(1.0, abs(r1))

    @given(st.integers(0, 2**31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_map_homogeneity(self, seed):
        """X(lam*s, lam*s0) = X(s, s0) * diag(lam^L_j)."""
        rng = np.random.default_rng(seed)
        prob = PieriProblem(2, 2, 1)
        pattern = LocalizationPattern(prob, (4, 7))
        c = _random_fitting_matrix(pattern, rng)
        s = complex(rng.standard_normal(), rng.standard_normal())
        s0 = complex(rng.standard_normal(), rng.standard_normal())
        lam = complex(rng.standard_normal(), rng.standard_normal())
        x1 = evaluate_map(c, pattern, lam * s, lam * s0)
        x2 = evaluate_map(c, pattern, s, s0)
        degs = pattern.column_degrees()
        for j, L in enumerate(degs):
            assert np.allclose(x1[:, j], (lam**L) * x2[:, j], atol=1e-9)


class TestSpecialPlaneProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(deadline=None, max_examples=15)
    def test_key_identity_random_patterns(self, seed):
        """det [X(1,0) | K_b] == +/- prod of pivots for random patterns."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 4))
        p = int(rng.integers(1, 4))
        q = int(rng.integers(0, 2))
        prob = PieriProblem(m, p, q)
        # random valid pattern: walk a few random increments from trivial
        pat = prob.trivial_pattern()
        for _ in range(int(rng.integers(0, prob.num_conditions + 1))):
            kids = list(pat.children())
            if not kids:
                break
            pat = kids[int(rng.integers(0, len(kids)))][1]
        c = _random_fitting_matrix(pat, rng)
        x_inf = evaluate_map(c, pat, 1.0, 0.0)
        det = np.linalg.det(np.hstack([x_inf, special_plane(pat)]))
        prod = np.prod([c[b - 1, j] for j, b in enumerate(pat.bottom_pivots)])
        assert abs(abs(det) - abs(prod)) < 1e-8 * max(1.0, abs(prod))


class TestSeedIndependence:
    def test_solution_set_independent_of_solver_seed(self):
        """Different gamma twists, same geometry: same solution set."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(5))
        a = PieriSolver(instance, seed=1).solve()
        b = PieriSolver(instance, seed=99).solve()
        assert verify_solutions(instance, a.solutions).ok
        assert verify_solutions(instance, b.solutions).ok
        key = lambda c: str(np.round(c.ravel(), 6).tolist())
        assert sorted(map(key, a.solutions)) == sorted(map(key, b.solutions))
