"""Tests for the benchmark system generators."""

import numpy as np
import pytest

from repro.homotopy import solve
from repro.polynomials import PolynomialSystem
from repro.systems import (
    cyclic_roots_system,
    katsura_system,
    noon_system,
    random_dense_system,
    rps_surrogate_system,
)
from repro.systems.rps import rps_finite_root_count


class TestCyclic:
    def test_shapes(self):
        for n in (3, 4, 5, 7):
            sys = cyclic_roots_system(n)
            assert sys.neqs == sys.nvars == n
            assert sys.degrees() == tuple(range(1, n)) + (n,)

    def test_cyclic3_known_roots(self):
        # cyclic-3 has 6 solutions: permutations of the cube roots of unity
        sys = cyclic_roots_system(3)
        w = np.exp(2j * np.pi / 3)
        sol = np.array([1, w, w**2])
        assert sys.residual_norm(sol) < 1e-12

    def test_cyclic3_full_solve(self):
        report = solve(cyclic_roots_system(3), rng=np.random.default_rng(0))
        assert report.n_paths == 6  # 1*2*3
        assert report.n_solutions == 6

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            cyclic_roots_system(1)

    def test_symmetry_cyclic_shift(self):
        # if x solves cyclic-n, so does any cyclic shift of x
        sys = cyclic_roots_system(5)
        report = solve(sys, rng=np.random.default_rng(1))
        sol = report.solutions[0]
        shifted = np.roll(sol, 1)
        assert sys.residual_norm(shifted) < 1e-6


class TestKatsura:
    def test_shape_and_degrees(self):
        sys = katsura_system(3)
        assert sys.neqs == sys.nvars == 4
        assert set(sys.degrees()) == {1, 2}

    def test_solution_count_matches_bezout(self):
        # katsura-n generically attains 2^n finite solutions
        report = solve(katsura_system(2), rng=np.random.default_rng(2))
        assert report.n_paths == 4
        assert report.n_solutions == 4
        assert report.summary["diverged"] == 0

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            katsura_system(0)


class TestNoon:
    def test_shape(self):
        sys = noon_system(3)
        assert sys.neqs == sys.nvars == 3
        assert all(d == 3 for d in sys.degrees())

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            noon_system(1)

    def test_solve_noon2(self):
        report = solve(noon_system(2), rng=np.random.default_rng(3))
        assert report.n_paths == 9
        assert report.n_solutions >= 1
        for s in report.solutions:
            assert noon_system(2).residual_norm(s) < 1e-7


class TestRpsSurrogate:
    def test_shape_and_degree(self):
        sys = rps_surrogate_system(5, rng=np.random.default_rng(4))
        assert sys.neqs == sys.nvars == 5
        assert all(d == 2 for d in sys.degrees())

    def test_deficiency_two_finite_roots(self):
        """The headline property: 2 finite roots out of 2^n Bezout paths."""
        sys = rps_surrogate_system(4, rng=np.random.default_rng(5))
        report = solve(sys, rng=np.random.default_rng(6))
        assert report.n_paths == 16
        assert report.n_solutions == rps_finite_root_count(4) == 2
        # excess paths either run to infinity or pile onto the two finite
        # roots with multiplicity; the majority must diverge
        assert report.summary["diverged"] >= 8
        assert (
            report.summary["diverged"]
            + report.summary["success"]
            + report.summary["failed"]
            + report.summary["singular"]
            == 16
        )

    def test_divergent_cost_near_constant(self):
        """Divergent paths cost roughly the same (the paper's RPS point)."""
        sys = rps_surrogate_system(4, rng=np.random.default_rng(7))
        report = solve(sys, rng=np.random.default_rng(8))
        secs = [
            r.stats.seconds
            for r in report.results
            if not r.success and r.stats.seconds > 0
        ]
        assert len(secs) >= 5
        assert np.std(secs) / np.mean(secs) < 1.0  # low relative spread

    def test_shared_groups(self):
        sys = rps_surrogate_system(4, shared_groups=2, rng=np.random.default_rng(9))
        report = solve(sys, rng=np.random.default_rng(10))
        assert report.n_solutions == rps_finite_root_count(4, 2) == 4

    def test_bad_params(self):
        with pytest.raises(ValueError):
            rps_surrogate_system(1)
        with pytest.raises(ValueError):
            rps_surrogate_system(4, shared_groups=9)
        with pytest.raises(ValueError):
            rps_finite_root_count(3, 5)


class TestRandomDense:
    def test_bezout_attained(self):
        sys = random_dense_system(2, 3, rng=np.random.default_rng(11))
        assert sys.total_degree_bound() == 9
        report = solve(sys, rng=np.random.default_rng(12))
        assert report.n_solutions == 9

    def test_bad_params(self):
        with pytest.raises(ValueError):
            random_dense_system(0)
        with pytest.raises(ValueError):
            random_dense_system(2, 0)
