"""Tests for multi-homogeneous Bezout numbers."""

import math

import numpy as np
import pytest

from repro.homotopy import (
    best_partition,
    block_degree,
    multihomogeneous_bezout,
    set_partitions,
    solve,
)
from repro.polynomials import PolynomialSystem, variables
from repro.schubert import pieri_root_count


class TestBlockDegree:
    def test_basic(self):
        x, y, z = variables(3)
        p = x**2 * y + z**3
        assert block_degree(p, [0]) == 2
        assert block_degree(p, [1]) == 1
        assert block_degree(p, [0, 1]) == 3
        assert block_degree(p, [2]) == 3

    def test_zero_poly(self):
        from repro.polynomials import Polynomial

        assert block_degree(Polynomial({}, nvars=2), [0, 1]) == 0


class TestSetPartitions:
    @pytest.mark.parametrize("n,bell", [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)])
    def test_bell_numbers(self, n, bell):
        assert sum(1 for _ in set_partitions(range(n))) == bell

    def test_partitions_are_partitions(self):
        for part in set_partitions(range(4)):
            flat = sorted(v for b in part for v in b)
            assert flat == [0, 1, 2, 3]


class TestMultihomogeneousBezout:
    def test_trivial_partition_is_total_degree(self):
        x, y = variables(2)
        sys = PolynomialSystem([x**2 + y - 1, x * y**3 - 2])
        one_block = [[0, 1]]
        assert multihomogeneous_bezout(sys, one_block) == 8  # 2 * 4

    def test_classic_bilinear_structure(self):
        # both equations bilinear in x and y: total degree 2 each
        x, y = variables(2)
        sys = PolynomialSystem([x * y + x + 1, x * y + y + 2])
        assert multihomogeneous_bezout(sys, [[0, 1]]) == 4
        # 2-homogeneous with blocks {x}, {y}: coefficient of z1 z2 in
        # (z1 + z2)(z1 + z2) = 2 -> sharper
        assert multihomogeneous_bezout(sys, [[0], [1]]) == 2

    def test_best_partition_finds_sharper_bound(self):
        x, y = variables(2)
        sys = PolynomialSystem([x * y + x + 1, x * y + y + 2])
        part, count = best_partition(sys)
        assert count == 2
        assert sorted(map(sorted, part)) == [[0], [1]]

    def test_bound_is_valid_and_sharp(self):
        """m-hom Bezout bounds the finite solutions; here it is attained."""
        rng = np.random.default_rng(0)
        x, y = variables(2)
        sys = PolynomialSystem([x * y + x + 1, x * y + y + 2])
        report = solve(sys, rng=rng)
        _, count = best_partition(sys)
        assert report.n_solutions <= count
        assert report.n_solutions == 2

    def test_partition_validation(self):
        x, y = variables(2)
        sys = PolynomialSystem([x, y])
        with pytest.raises(ValueError):
            multihomogeneous_bezout(sys, [[0]])  # misses variable 1
        with pytest.raises(ValueError):
            multihomogeneous_bezout(sys, [[0, 1], [1]])  # repeats

    def test_non_square_rejected(self):
        x, y = variables(2)
        with pytest.raises(ValueError):
            multihomogeneous_bezout(PolynomialSystem([x + y]), [[0, 1]])

    def test_max_vars_guard(self):
        xs = variables(11)
        sys = PolynomialSystem(list(xs))
        with pytest.raises(ValueError):
            best_partition(sys)

    def test_linear_system_bezout_one(self):
        x, y, z = variables(3)
        sys = PolynomialSystem([x + y, y + z, x + z + 1])
        _, count = best_partition(sys)
        assert count == 1

    def test_pieri_count_sharper_than_bezout(self):
        """The paper's motivation: d(m,p,0) vs the Bezout bound of the
        static output feedback system det(sI - A - BFC) coefficients.

        For m = p = 2 the coefficient system in the four entries of F has
        total-degree Bezout 2^4 = 16, the best 2-homogeneous bound is
        still larger than the true count d(2,2,0) = 2.
        """
        rng = np.random.default_rng(1)
        from repro.control import random_plant

        plant = random_plant(2, 2, 0, rng)
        # build det(sI - A - BFC) coefficient equations in F symbolically
        f_vars = variables(5)
        s = f_vars[4]
        from repro.polynomials import Polynomial, constant

        fmat = [[f_vars[0], f_vars[1]], [f_vars[2], f_vars[3]]]
        n = plant.n_states
        entries = []
        for i in range(n):
            row = []
            for j in range(n):
                acc = constant(-plant.a[i, j], 5)
                if i == j:
                    acc = acc + s
                for k in range(2):
                    for l in range(2):
                        acc = acc - complex(plant.b[i, k] * plant.c[l, j]) * fmat[k][l]
                row.append(acc)
            entries.append(row)
        # char poly via permanent-style expansion (n = 4 is small)
        from itertools import permutations

        det = constant(0, 5)
        for perm in permutations(range(n)):
            inv = sum(
                1 for i in range(n) for j in range(i + 1, n) if perm[i] > perm[j]
            )
            term = constant((-1) ** inv, 5)
            for i in range(n):
                term = term * entries[i][perm[i]]
            det = det + term
        eqs = []
        for k in range(n):
            # prune float noise: BFC has rank <= 2, so terms of F-degree
            # > 2 cancel in exact arithmetic and survive only as roundoff
            coeffs = {
                e[:4]: c
                for e, c in det.terms()
                if e[4] == k and abs(c) > 1e-9
            }
            eqs.append(Polynomial(coeffs, 4) - 1.0)  # any generic rhs
        sys4 = PolynomialSystem(eqs)
        _, bez = best_partition(sys4)
        assert pieri_root_count(2, 2, 0) == 2 < bez <= 16
