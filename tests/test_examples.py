"""Smoke tests: the fast example scripts must run to completion.

Each example ends with its own assertions, so a zero exit status means the
demonstrated behaviour actually held.  Only the quick examples run here;
the longer ones (cyclic_parallel, placement_oracle at q=1) are exercised
by the benchmarks.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "script,expected",
    [
        ("quickstart.py", "OK: every law places the poles"),
        ("pole_placement_satellite.py", "OK: the satellite"),
        ("cluster_simulation.py", "Reading guide"),
    ],
)
def test_fast_examples(script, expected):
    proc = _run(script)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expected in proc.stdout


def test_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for p in EXAMPLES.glob("*.py"):
        head = p.read_text().splitlines()[:5]
        assert any('"""' in line for line in head), f"{p.name} lacks a docstring"
