"""Smoke tests: every example script must run to completion.

Each example ends with its own assertions, so a zero exit status means
the demonstrated behaviour actually held; the expected-output check
pins the final "OK"-style line of each script.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


EXPECTED_OUTPUT = {
    "quickstart.py": "OK: every law places the poles",
    "pole_placement_satellite.py": "OK: the satellite",
    "cluster_simulation.py": "Reading guide",
    "parallel_pieri.py": "OK: the tree scheduler reproduces the sequential",
    "dynamic_feedback.py": "OK: all 8 degree-1 compensators",
    "cyclic_parallel.py": "OK: static, dynamic and serial agree",
    "placement_oracle.py": "cluster/PC split in miniature",
    "sweep_resume.py": "OK: the resumed sweep re-ran only unfinished jobs",
    "polyhedral_cyclic.py": "OK: both starts find the same 70 roots",
}


@pytest.mark.parametrize("script,expected", sorted(EXPECTED_OUTPUT.items()))
def test_examples(script, expected):
    proc = _run(script)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expected in proc.stdout


def test_every_example_is_smoke_tested_and_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    untested = set(scripts) - set(EXPECTED_OUTPUT)
    assert not untested, f"examples missing from EXPECTED_OUTPUT: {untested}"
    for p in EXAMPLES.glob("*.py"):
        head = p.read_text().splitlines()[:5]
        assert any('"""' in line for line in head), f"{p.name} lacks a docstring"
