"""Predictor pipeline: Hermite prediction, error-model step control,
Jacobian recycling, and the acceptance/rejection ladder around them.

The contracts under test:

- ``make_predictor`` resolves names/instances; Euler stays the default.
- Hermite reproduces a cubic path exactly and degrades to the Euler
  arithmetic whenever history is missing (first step, resumed paths,
  failed tangent solves) — the chart-switch resume guarantee.
- Scalar and batch front-ends make the same per-path decisions under
  the Hermite predictor (statuses, step/Newton counters, endpoints).
- Jacobian recycling, update-size acceptance, the contraction-gated
  loose exit, fail-fast rejection, and jump rejection each do what
  their knob says — and the knobs resolve off unless the error model
  is active.
- The solve layer re-tracks Hermite failures with the pinned Euler
  baseline (``_fallback_retrack``) so the root set never shrinks.
"""

import dataclasses
import importlib

import numpy as np
import pytest

from repro.homotopy import make_homotopy_and_starts
from repro.systems import katsura_system
from repro.telemetry import Telemetry, use_telemetry
from repro.tracker import (
    BatchTracker,
    EulerPredictor,
    HermitePredictor,
    PathStatus,
    PathTracker,
    PREDICTORS,
    TrackerOptions,
    as_batch,
    batch_newton_correct,
    greedy_cluster_indices,
    make_predictor,
    newton_correct,
)
from repro.tracker.interface import HomotopyFunction
from repro.tracker.predictor import (
    _euler_predict,
    resolve_fail_fast,
    resolve_frozen,
    resolve_loose_tol,
    resolve_recycle,
    resolve_update_tol,
)

solve_module = importlib.import_module("repro.homotopy.solve")


class CubicHomotopy(HomotopyFunction):
    """H(x, t) = x - c(t) with cubic c(t): the path *is* a cubic."""

    COEFFS = (0.3 + 0.1j, -1.2 + 0.4j, 0.7 - 0.2j, 1.1 + 0.05j)

    @property
    def dim(self):
        return 1

    def c(self, t):
        a0, a1, a2, a3 = self.COEFFS
        return a0 + a1 * t + a2 * t * t + a3 * t**3

    def dc(self, t):
        _, a1, a2, a3 = self.COEFFS
        return a1 + 2 * a2 * t + 3 * a3 * t * t

    def evaluate(self, x, t):
        return np.array([x[0] - self.c(t)])

    def jacobian_x(self, x, t):
        return np.array([[1.0 + 0j]])

    def jacobian_t(self, x, t):
        return np.array([-self.dc(t)])


def _parity(serial, batch, tol=1e-8):
    assert len(serial) == len(batch)
    for a, b in zip(serial, batch):
        assert a.status == b.status, f"path {a.path_id}"
        for f in (
            "steps_accepted",
            "steps_rejected",
            "newton_iterations",
            "jacobian_evaluations",
            "tangents_recycled",
        ):
            assert getattr(a.stats, f) == getattr(b.stats, f), (
                f"path {a.path_id}: {f}"
            )
        if a.success:
            assert np.max(np.abs(a.solution - b.solution)) < tol


class TestPredictorResolution:
    def test_registry_names(self):
        assert PREDICTORS == ("euler", "hermite")
        assert isinstance(make_predictor("euler"), EulerPredictor)
        assert isinstance(make_predictor("hermite"), HermitePredictor)

    def test_default_is_euler(self):
        assert make_predictor(None).name == "euler"
        assert TrackerOptions().predictor == "euler"
        assert make_predictor(TrackerOptions().predictor).name == "euler"

    def test_instance_passthrough(self):
        pred = HermitePredictor()
        assert make_predictor(pred) is pred

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("rk4")
        with pytest.raises(ValueError):
            TrackerOptions(predictor="rk4").validated()

    def test_orders_and_error_model(self):
        assert EulerPredictor.order == 2 and not EulerPredictor.error_model
        assert HermitePredictor.order == 4 and HermitePredictor.error_model

    def test_jump_factor_validated(self):
        with pytest.raises(ValueError, match="jump_factor"):
            TrackerOptions(predictor_jump_factor=1.0).validated()


class TestKnobResolution:
    """None-valued knobs activate exactly with the error model."""

    def test_euler_resolves_everything_off(self):
        opts, pred = TrackerOptions(), make_predictor("euler")
        assert resolve_recycle(opts, pred) is False
        assert resolve_update_tol(opts, pred) is None
        assert resolve_loose_tol(opts, pred) is None
        assert resolve_fail_fast(opts, pred) is False
        assert resolve_frozen(opts, pred) is False

    def test_hermite_resolves_error_model_defaults(self):
        opts, pred = TrackerOptions(predictor="hermite"), make_predictor("hermite")
        assert resolve_recycle(opts, pred) is True
        assert resolve_update_tol(opts, pred) == pytest.approx(
            np.sqrt(opts.corrector_tol)
        )
        assert resolve_loose_tol(opts, pred) == pytest.approx(
            opts.corrector_tol ** (1.0 / 3.0)
        )
        assert resolve_fail_fast(opts, pred) is True
        # frozen is a documented negative result: never on by default
        assert resolve_frozen(opts, pred) is False

    def test_explicit_values_win(self):
        opts = TrackerOptions(
            predictor="hermite",
            recycle_jacobians=False,
            corrector_update_tol=0.0,
            corrector_loose_tol=0.0,
            corrector_fail_fast=False,
        )
        pred = make_predictor("hermite")
        assert resolve_recycle(opts, pred) is False
        assert resolve_update_tol(opts, pred) is None
        assert resolve_loose_tol(opts, pred) is None
        assert resolve_fail_fast(opts, pred) is False


class TestHermiteArithmetic:
    def _state_rows(self, pred, n=1):
        X0 = np.zeros((n, 1), dtype=complex)
        return pred.make_state(X0, np.zeros(n)), np.arange(n)

    def test_exact_on_cubic_path(self):
        """The cubic-Hermite prediction of a cubic path is the path."""
        h = CubicHomotopy()
        pred = HermitePredictor()
        t0, t1, dt = 0.2, 0.5, 0.25
        state = pred.make_state(np.array([[h.c(t0)]]), np.array([t0]))
        # record the accepted step t0 -> t1 with the exact tangent at t0
        pred.accepted(
            state,
            np.array([0]),
            np.array([[h.c(t0)]]),
            np.array([t0]),
            np.array([[h.dc(t0)]]),
            np.array([True]),
        )
        x_pred = pred.predict(
            state,
            np.array([0]),
            np.array([[h.c(t1)]]),
            np.array([t1]),
            np.array([dt]),
            np.array([[h.dc(t1)]]),
            np.array([True]),
        )
        assert abs(x_pred[0, 0] - h.c(t1 + dt)) < 1e-12

    def test_no_history_matches_euler(self):
        """First step (or a resumed path) must be the Euler arithmetic."""
        pred = HermitePredictor()
        state, rows = self._state_rows(pred)
        X = np.array([[1.0 + 0.5j]])
        T, dt = np.array([0.3]), np.array([0.1])
        tangent = np.array([[2.0 - 1.0j]])
        ok = np.array([True])
        got = pred.predict(state, rows, X, T, dt, tangent, ok)
        want = _euler_predict(state, rows, X, T, dt, tangent, ok)
        np.testing.assert_array_equal(got, want)

    def test_failed_tangent_matches_euler_fallback(self):
        """ok=False rows fall back even when history exists."""
        pred = HermitePredictor()
        state, rows = self._state_rows(pred)
        pred.accepted(
            state,
            rows,
            np.array([[0.5 + 0j]]),
            np.array([0.1]),
            np.array([[1.0 + 0j]]),
            np.array([True]),
        )
        X, T, dt = np.array([[1.0 + 0j]]), np.array([0.4]), np.array([0.1])
        tangent, ok = np.array([[0.0 + 0j]]), np.array([False])
        got = pred.predict(state, rows, X, T, dt, tangent, ok)
        want = _euler_predict(state, rows, X, T, dt, tangent, ok)
        np.testing.assert_array_equal(got, want)


class TestHistoryResetOnResume:
    """Satellite: a resumed track must not extrapolate stale history."""

    class _Recording(HermitePredictor):
        def __init__(self):
            self.first_call_had_history = None

        def predict(self, state, rows, X, T, dt, tangent, ok):
            if self.first_call_had_history is None:
                self.first_call_had_history = bool(
                    np.any(state.has_tangent[rows])
                )
            return super().predict(state, rows, X, T, dt, tangent, ok)

    def test_scalar_t_start_resume_starts_euler(self):
        h = CubicHomotopy()
        rec = self._Recording()
        opts = TrackerOptions(predictor=rec)
        res = PathTracker(opts).track(
            h, np.array([CubicHomotopy().c(0.5)]), t_start=0.5
        )
        assert res.success
        assert rec.first_call_had_history is False

    def test_batch_per_path_t_start_resume_starts_euler(self):
        h = CubicHomotopy()
        rec = self._Recording()
        opts = TrackerOptions(predictor=rec)
        t0 = np.array([0.0, 0.25, 0.5])
        starts = np.array([[h.c(t)] for t in t0])
        res = BatchTracker(opts).track_batch(h, starts, t_start=t0)
        assert all(r.success for r in res)
        assert rec.first_call_had_history is False

    def test_two_tracks_share_no_state(self):
        """A second track on the same tracker starts with fresh history."""
        h = CubicHomotopy()
        rec = self._Recording()
        tracker = PathTracker(TrackerOptions(predictor=rec))
        tracker.track(h, np.array([h.c(0.0)]))
        rec.first_call_had_history = None
        tracker.track(h, np.array([h.c(0.5)]), t_start=0.5)
        assert rec.first_call_had_history is False


class TestScalarBatchParity:
    def test_hermite_parity_katsura5(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(5), rng=np.random.default_rng(7)
        )
        opts = TrackerOptions(predictor="hermite")
        serial = [
            PathTracker(opts).track(homotopy, s, path_id=i)
            for i, s in enumerate(starts)
        ]
        batch = BatchTracker(opts).track_batch(homotopy, starts)
        _parity(serial, batch)

    def test_hermite_parity_under_tight_jump_factor(self):
        """Jump rejection fires identically in both front-ends."""
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(3)
        )
        opts = TrackerOptions(predictor="hermite", predictor_jump_factor=1.5)
        serial = [
            PathTracker(opts).track(homotopy, s, path_id=i)
            for i, s in enumerate(starts)
        ]
        batch = BatchTracker(opts).track_batch(homotopy, starts)
        _parity(serial, batch)


class TestRootParityAndEffort:
    def test_hermite_finds_the_same_roots_cheaper(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(5), rng=np.random.default_rng(5)
        )
        by_pred = {}
        for name in PREDICTORS:
            res = BatchTracker(TrackerOptions(predictor=name)).track_batch(
                homotopy, starts
            )
            assert all(r.success for r in res)
            by_pred[name] = res
        for a, b in zip(by_pred["euler"], by_pred["hermite"]):
            assert np.max(np.abs(a.solution - b.solution)) < 1e-8
        effort = {
            name: sum(
                r.stats.newton_iterations + r.stats.jacobian_evaluations
                for r in res
            )
            for name, res in by_pred.items()
        }
        assert effort["hermite"] < effort["euler"]

    def test_recycling_counts_and_opt_out(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(9)
        )
        on = BatchTracker(TrackerOptions(predictor="hermite")).track_batch(
            homotopy, starts
        )
        assert sum(r.stats.tangents_recycled for r in on) > 0
        off = BatchTracker(
            TrackerOptions(predictor="hermite", recycle_jacobians=False)
        ).track_batch(homotopy, starts)
        assert all(r.success for r in off)
        assert sum(r.stats.tangents_recycled for r in off) == 0
        # recycling replaces fused tangent evaluations with jac_t-only
        # ones, so the recycled run charges strictly fewer Jacobians
        assert sum(r.stats.jacobian_evaluations for r in on) < sum(
            r.stats.jacobian_evaluations for r in off
        )

    def test_euler_decisions_bit_identical_to_seed(self):
        """The default predictor leaves the seed arithmetic untouched:
        no recycling, no error model, streak step control."""
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(2)
        )
        res = BatchTracker(TrackerOptions()).track_batch(homotopy, starts)
        assert sum(r.stats.tangents_recycled for r in res) == 0


class TestCorrectorAcceptance:
    def _homotopy(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(1)
        )
        return homotopy, starts

    def test_update_tol_accepts_earlier(self):
        homotopy, starts = self._homotopy()
        x = starts[0] + 1e-4
        strict = newton_correct(homotopy, x, 0.0, tol=1e-14)
        loose = newton_correct(homotopy, x, 0.0, tol=1e-14, update_tol=1e-6)
        assert loose.converged
        assert loose.iterations <= strict.iterations

    def test_loose_exit_needs_contraction_evidence(self):
        """A first-sweep update below loose_tol must NOT exit loose:
        dx_prev is infinite, so there is no contraction evidence yet."""
        homotopy, starts = self._homotopy()
        x = starts[0] + 1e-5
        res = newton_correct(
            homotopy, x, 0.0, tol=1e-14, update_tol=1e-12, loose_tol=1e2
        )
        assert res.converged
        assert res.iterations >= 2

    def test_fail_fast_rejects_growing_updates(self):
        homotopy, starts = self._homotopy()
        x = starts[0] + 10.0  # far outside the basin
        patient = newton_correct(homotopy, x, 0.0, tol=1e-14, max_iterations=8)
        hasty = newton_correct(
            homotopy, x, 0.0, tol=1e-14, max_iterations=8, fail_fast=True
        )
        if not patient.converged:
            assert not hasty.converged
            assert hasty.iterations <= patient.iterations

    def test_batch_matches_scalar_acceptance(self):
        homotopy, starts = self._homotopy()
        X = np.asarray(starts) + 1e-4
        kw = dict(tol=1e-14, update_tol=1e-6, loose_tol=1e-4, fail_fast=True)
        out = batch_newton_correct(as_batch(homotopy), X, 0.0, **kw)
        for i, x0 in enumerate(X):
            scalar = newton_correct(homotopy, x0, 0.0, **kw)
            assert out.converged[i] == scalar.converged
            assert out.iterations[i] == scalar.iterations
            np.testing.assert_array_equal(out.x[i], scalar.x)

    def test_frozen_corrector_is_opt_in_and_works(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(4)
        )
        opts = TrackerOptions(predictor="hermite", corrector_frozen=True)
        res = BatchTracker(opts).track_batch(homotopy, starts)
        assert all(r.success for r in res)


class _RestrictRecorder:
    """Wraps a batch homotopy, recording every restrict() index set."""

    def __init__(self, inner, log):
        self._inner = inner
        self._log = log

    @property
    def dim(self):
        return self._inner.dim

    def restrict(self, rows):
        rows = np.asarray(rows)
        self._log.append(rows.size)
        return _RestrictRecorder(self._inner.restrict(rows), self._log)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestRestrictNeverEmpty:
    """Satellite: the corrector's mid-sweep re-checks and final
    residual verification never restrict to an empty index set."""

    def test_mixed_batch(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(6)
        )
        X = np.asarray(starts, dtype=complex).copy()
        X[0] += 1e-13   # converges via update underflow
        X[1] += 1e-3    # ordinary quadratic convergence
        X[2] += 50.0    # hopeless: burns every sweep
        log = []
        wrapped = _RestrictRecorder(as_batch(homotopy), log)
        batch_newton_correct(
            wrapped, X, 0.0, tol=1e-14, max_iterations=4, update_tol=1e-7
        )
        assert log, "restrict was never exercised"
        assert min(log) >= 1

    def test_all_converge_immediately(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(6)
        )
        log = []
        wrapped = _RestrictRecorder(as_batch(homotopy), log)
        out = batch_newton_correct(wrapped, np.asarray(starts), 0.0, tol=1e-8)
        assert out.converged.all()
        assert not log or min(log) >= 1


class _DtRecorder(HermitePredictor):
    """Hermite predictor that logs every attempted step size."""

    def __init__(self):
        self.dts = []

    def predict(self, state, rows, X, T, dt, tangent, ok):
        self.dts.extend(float(d) for d in dt)
        return super().predict(state, rows, X, T, dt, tangent, ok)


class TestErrorModelStepControl:
    def test_growth_is_capped(self):
        """Consecutive step attempts never grow faster than max_growth."""
        h = CubicHomotopy()
        rec = _DtRecorder()
        opts = TrackerOptions(
            predictor=rec, initial_step=1e-3, predictor_max_growth=1.7
        )
        res = PathTracker(opts).track(h, np.array([h.c(0.0)]))
        assert res.success
        assert len(rec.dts) >= 3
        for prev, cur in zip(rec.dts, rec.dts[1:]):
            assert cur <= prev * opts.predictor_max_growth * (1 + 1e-12)

    def test_steps_respect_max_step(self):
        h = CubicHomotopy()
        rec = _DtRecorder()
        opts = TrackerOptions(predictor=rec, max_step=0.05)
        res = PathTracker(opts).track(h, np.array([h.c(0.0)]))
        assert res.success
        assert max(rec.dts) <= opts.max_step + 1e-15

    def test_predictor_error_histogram_recorded(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(8)
        )
        tel = Telemetry()
        with use_telemetry(tel):
            BatchTracker(
                TrackerOptions(predictor="hermite", trace_paths=True)
            ).track_batch(homotopy, starts)
        assert "predictor_error" in tel.histograms
        assert tel.counters.get("tracker.tangents_recycled", 0) > 0


class TestJumpRejection:
    def test_tight_factor_rejects_and_still_tracks(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(3)
        )
        tel = Telemetry()
        opts = TrackerOptions(
            predictor="hermite", predictor_jump_factor=1.2, trace_paths=True
        )
        with use_telemetry(tel):
            res = BatchTracker(opts).track_batch(homotopy, starts)
        assert tel.counters.get("tracker.jump_rejections", 0) > 0
        assert sum(r.success for r in res) == len(starts)

    def test_rejections_count_as_rejected_steps(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(3)
        )
        loose = BatchTracker(
            TrackerOptions(predictor="hermite", predictor_jump_factor=1e9)
        ).track_batch(homotopy, starts)
        tight = BatchTracker(
            TrackerOptions(predictor="hermite", predictor_jump_factor=1.2)
        ).track_batch(homotopy, starts)
        assert sum(r.stats.steps_rejected for r in tight) > sum(
            r.stats.steps_rejected for r in loose
        )

    def test_euler_never_jump_rejects(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(4), rng=np.random.default_rng(3)
        )
        tel = Telemetry()
        with use_telemetry(tel):
            BatchTracker(
                TrackerOptions(predictor_jump_factor=1.2, trace_paths=True)
            ).track_batch(homotopy, starts)
        assert tel.counters.get("tracker.jump_rejections", 0) == 0


class TestFallbackRetrack:
    def test_failed_hermite_path_is_rescued_by_euler(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(1)
        )
        opts = TrackerOptions(predictor="hermite")
        results = BatchTracker(opts).track_batch(homotopy, starts)
        assert all(r.success for r in results)
        good = results[2]
        spent = dataclasses.replace(good.stats)
        # fabricate a mid-path failure for path 2
        results[2] = dataclasses.replace(
            good, status=PathStatus.FAILED, solution=good.start.copy()
        )
        n = solve_module._fallback_retrack(
            results, starts, homotopy, opts, strategy=None
        )
        assert n == 1
        redone = results[2]
        assert redone.success
        assert np.max(np.abs(redone.solution - good.solution)) < 1e-8
        # honest accounting: the failed attempt's effort is not dropped
        assert redone.stats.newton_iterations > spent.newton_iterations

    def test_no_failures_is_a_no_op(self):
        homotopy, starts = make_homotopy_and_starts(
            katsura_system(3), rng=np.random.default_rng(1)
        )
        opts = TrackerOptions(predictor="hermite")
        results = BatchTracker(opts).track_batch(homotopy, starts)
        before = [r.solution.copy() for r in results]
        assert (
            solve_module._fallback_retrack(
                results, starts, homotopy, opts, strategy=None
            )
            == 0
        )
        for r, b in zip(results, before):
            np.testing.assert_array_equal(r.solution, b)


class TestGreedyClustering:
    @staticmethod
    def _naive(points, tol):
        clusters = []
        reps = []
        for i, x in enumerate(points):
            x = np.asarray(x, dtype=complex)
            for c, rep in zip(clusters, reps):
                if np.max(np.abs(rep - x)) < tol:
                    c.append(i)
                    break
            else:
                clusters.append([i])
                reps.append(x)
        return clusters

    def test_matches_naive_double_loop(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((60, 4)) + 1j * rng.standard_normal((60, 4))
        pts[17] = pts[3] + 1e-9   # planted duplicates
        pts[41] = pts[3] - 1e-9
        pts[55] = pts[20]
        got = greedy_cluster_indices(list(pts), 1e-6)
        assert got == self._naive(list(pts), 1e-6)

    def test_empty_and_single(self):
        assert greedy_cluster_indices([], 1e-6) == []
        assert greedy_cluster_indices([np.array([1 + 0j])], 1e-6) == [[0]]


class TestSolveIntegration:
    def test_solve_predictor_kwarg(self):
        rep = solve_module.solve(
            katsura_system(3),
            rng=np.random.default_rng(0),
            mode="batch",
            predictor="hermite",
        )
        assert rep.summary["predictor"] == "hermite"
        base = solve_module.solve(
            katsura_system(3), rng=np.random.default_rng(0), mode="batch"
        )
        assert base.summary["predictor"] == "euler"
        assert len(rep.solutions) == len(base.solutions)
        sols = sorted(
            (tuple(np.round(s, 6)) for s in rep.solutions), key=str
        )
        ref = sorted(
            (tuple(np.round(s, 6)) for s in base.solutions), key=str
        )
        assert sols == ref
