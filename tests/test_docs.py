"""The documentation system: required documents exist and links resolve.

The CI docs job runs ``tools/check_md_links.py`` directly; running the
same checker here keeps broken links a tier-1 failure as well.
"""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

REQUIRED_DOCS = [
    "architecture.md",
    "paper_map.md",
    "release_notes.md",
    "sweep_tutorial.md",
]


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_required_documents_exist(name):
    path = DOCS / name
    assert path.exists(), f"docs/{name} is missing"
    assert len(path.read_text().splitlines()) > 10, f"docs/{name} is a stub"


def test_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_md_links.py"), str(REPO)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_release_notes_cover_every_pr():
    """CHANGES.md (one line per PR) and the dated release notes move
    together: a PR that logs itself must also write its entry."""
    changes = (REPO / "CHANGES.md").read_text()
    n_prs = sum(
        1 for line in changes.splitlines() if line.strip().startswith("- PR")
    )
    notes = (DOCS / "release_notes.md").read_text()
    n_entries = sum(
        1 for line in notes.splitlines() if line.startswith("### ")
    )
    assert n_entries >= n_prs + 1, (
        f"release_notes.md has {n_entries} dated entries for {n_prs} "
        "CHANGES.md PRs (+1 for PR 0); add the missing entry"
    )


def test_readme_links_documentation():
    readme = (REPO / "README.md").read_text()
    assert "## Documentation" in readme
    assert "## Contributing" in readme
    for name in REQUIRED_DOCS:
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"
