"""Tests for the real parallel executors (threads/processes, static/dynamic)."""

import numpy as np
import pytest

from repro.homotopy import make_homotopy_and_starts
from repro.parallel import solve_pieri_parallel, track_paths_parallel
from repro.parallel.executors import _busy_list, load_imbalance
from repro.schubert import PieriInstance, PieriSolver, pieri_root_count
from repro.systems import cyclic_roots_system
from repro.tracker import PathStatus


class TestLoadImbalance:
    """Regression: a zero-busy pool must report 0.0, not divide by zero."""

    def test_zero_busy_workers(self):
        # e.g. every job culled before dispatch, or a resume with
        # nothing pending: no balance statistic exists
        assert load_imbalance([]) == 0.0
        assert load_imbalance([0.0, 0.0, 0.0]) == 0.0
        assert load_imbalance(_busy_list({}, 4)) == 0.0

    def test_zero_busy_emits_no_warning(self):
        with np.errstate(all="raise"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert load_imbalance(_busy_list({}, 8)) == 0.0

    def test_balanced_and_skewed_pools(self):
        assert load_imbalance([1.0, 1.0]) == 1.0
        assert load_imbalance([3.0, 1.0]) == 1.5
        # idle workers padded in by _busy_list count as zeros
        assert load_imbalance(_busy_list({(1, 1): 2.0}, 2)) == 2.0


@pytest.fixture(scope="module")
def cyclic4():
    """cyclic-4 homotopy + its 24 start solutions (shared by the module)."""
    target = cyclic_roots_system(4)
    homotopy, starts = make_homotopy_and_starts(
        target, rng=np.random.default_rng(0)
    )
    return homotopy, starts


class TestFlatExecutors:
    def test_serial_baseline(self, cyclic4):
        homotopy, starts = cyclic4
        report = track_paths_parallel(homotopy, starts, mode="serial")
        assert len(report.results) == len(starts)
        assert report.n_workers == 1
        assert report.total_cpu_seconds > 0

    def test_dynamic_threads_match_serial(self, cyclic4):
        homotopy, starts = cyclic4
        serial = track_paths_parallel(homotopy, starts, mode="serial")
        threaded = track_paths_parallel(
            homotopy, starts, n_workers=4, schedule="dynamic", mode="thread"
        )
        assert len(threaded.results) == len(serial.results)
        # same classification and same endpoints per path id
        for a, b in zip(serial.results, threaded.results):
            assert a.path_id == b.path_id
            assert a.status == b.status
            if a.status is PathStatus.SUCCESS:
                assert np.allclose(a.solution, b.solution, atol=1e-8)

    def test_static_threads_match_serial(self, cyclic4):
        homotopy, starts = cyclic4
        serial = track_paths_parallel(homotopy, starts, mode="serial")
        static = track_paths_parallel(
            homotopy, starts, n_workers=3, schedule="static", mode="thread"
        )
        for a, b in zip(serial.results, static.results):
            assert a.status == b.status

    def test_process_mode_runs(self, cyclic4):
        homotopy, starts = cyclic4
        report = track_paths_parallel(
            homotopy,
            starts[:8],
            n_workers=2,
            schedule="dynamic",
            mode="process",
        )
        assert len(report.results) == 8
        assert report.n_workers == 2

    def test_results_ordered_by_path_id(self, cyclic4):
        homotopy, starts = cyclic4
        report = track_paths_parallel(
            homotopy, starts, n_workers=4, schedule="dynamic", mode="thread"
        )
        assert [r.path_id for r in report.results] == list(range(len(starts)))

    def test_invalid_args(self, cyclic4):
        homotopy, starts = cyclic4
        with pytest.raises(ValueError):
            track_paths_parallel(homotopy, starts, n_workers=0)
        with pytest.raises(ValueError):
            track_paths_parallel(homotopy, starts, schedule="bogus", n_workers=2)
        with pytest.raises(ValueError):
            track_paths_parallel(
                homotopy, starts, mode="bogus", n_workers=2
            )

    def test_busy_accounting(self, cyclic4):
        homotopy, starts = cyclic4
        report = track_paths_parallel(
            homotopy, starts, n_workers=2, schedule="static", mode="thread"
        )
        assert len(report.worker_busy_seconds) == 2
        assert report.total_cpu_seconds > 0
        assert report.load_imbalance >= 1.0

    def test_dynamic_busy_is_self_reported(self, cyclic4):
        """Busy seconds come from worker self-reports, so they must sum to
        roughly the serial tracking time (not a round-robin guess)."""
        homotopy, starts = cyclic4
        report = track_paths_parallel(
            homotopy, starts, n_workers=3, schedule="dynamic", mode="thread"
        )
        assert len(report.worker_busy_seconds) == 3
        per_path = sum(r.stats.seconds for r in report.results)
        assert report.total_cpu_seconds == pytest.approx(per_path, rel=0.5)


class TestBatchModes:
    def test_batch_mode_matches_serial(self, cyclic4):
        homotopy, starts = cyclic4
        serial = track_paths_parallel(homotopy, starts, mode="serial")
        batch = track_paths_parallel(homotopy, starts, mode="batch")
        assert batch.n_workers == 1
        assert [r.path_id for r in batch.results] == list(range(len(starts)))
        for a, b in zip(serial.results, batch.results):
            assert a.status == b.status
            if a.status is PathStatus.SUCCESS:
                assert np.allclose(a.solution, b.solution, atol=1e-8)

    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_hybrid_mode_matches_serial(self, cyclic4, schedule):
        homotopy, starts = cyclic4
        serial = track_paths_parallel(homotopy, starts, mode="serial")
        hybrid = track_paths_parallel(
            homotopy, starts, n_workers=2, schedule=schedule, mode="hybrid"
        )
        assert len(hybrid.results) == len(starts)
        assert [r.path_id for r in hybrid.results] == list(range(len(starts)))
        for a, b in zip(serial.results, hybrid.results):
            assert a.status == b.status
            if a.status is PathStatus.SUCCESS:
                assert np.allclose(a.solution, b.solution, atol=1e-8)
        assert len(hybrid.worker_busy_seconds) == 2
        assert hybrid.total_cpu_seconds > 0

    def test_hybrid_single_worker_still_batches(self, cyclic4):
        """hybrid with one worker must run the SoA front, not fall back
        to per-path tracking."""
        homotopy, starts = cyclic4
        report = track_paths_parallel(
            homotopy, starts[:6], n_workers=1, mode="hybrid"
        )
        assert report.n_workers == 1
        assert len(report.results) == 6
        # batch-tracked paths share wall-clock accounting: per-path
        # seconds are classification times, so they are non-decreasing
        # in finish order and bounded by the single busy figure
        assert len(report.worker_busy_seconds) == 1
        assert max(r.stats.seconds for r in report.results) <= (
            report.worker_busy_seconds[0] + 1e-6
        )


class TestParallelPieri:
    def test_matches_sequential_solutions(self):
        """The key property: parallel == sequential, path by path."""
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(1))
        seq = PieriSolver(instance, seed=2).solve()
        par = solve_pieri_parallel(
            instance, n_workers=3, mode="thread", seed=2
        )
        assert par.n_solutions == seq.n_solutions == pieri_root_count(2, 2, 0)
        key = lambda c: str(np.round(c.ravel(), 6).tolist())
        assert sorted(map(key, par.solutions)) == sorted(
            map(key, seq.solutions)
        )

    def test_bigger_case_thread(self):
        instance = PieriInstance.random(3, 2, 0, np.random.default_rng(3))
        par = solve_pieri_parallel(
            instance, n_workers=4, mode="thread", seed=4
        )
        assert par.n_solutions == 5
        assert par.failures == 0
        assert par.max_residual() < 1e-8
        assert par.all_distinct()

    def test_process_mode(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(5))
        par = solve_pieri_parallel(
            instance, n_workers=2, mode="process", seed=6
        )
        assert par.n_solutions == 2
        assert par.failures == 0

    def test_job_counts_match_table3_structure(self):
        from repro.schubert import level_job_counts

        instance = PieriInstance.random(2, 2, 1, np.random.default_rng(7))
        par = solve_pieri_parallel(
            instance, n_workers=4, mode="thread", seed=8
        )
        expected = level_job_counts(2, 2, 1)
        got = [par.jobs_per_level[i + 1] for i in range(len(expected))]
        assert got == expected

    def test_scheduler_telemetry(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(9))
        par = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=10
        )
        assert par.wall_seconds > 0
        assert par.max_active_jobs >= 1
        assert par.n_workers == 2

    def test_invalid_workers(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(11))
        with pytest.raises(ValueError):
            solve_pieri_parallel(instance, n_workers=0)
        with pytest.raises(ValueError):
            solve_pieri_parallel(instance, n_workers=2, mode="bogus")
