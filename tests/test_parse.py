"""Unit tests for the polynomial string parser."""

import numpy as np
import pytest

from repro.polynomials import parse_polynomial, parse_system, variables


class TestParsing:
    def setup_method(self):
        self.x, self.y = variables(2, ["x", "y"])

    def test_simple(self):
        assert parse_polynomial("x + y", ["x", "y"]) == self.x + self.y

    def test_powers_both_syntaxes(self):
        assert parse_polynomial("x**2", ["x", "y"]) == self.x**2
        assert parse_polynomial("x^2", ["x", "y"]) == self.x**2

    def test_precedence(self):
        p = parse_polynomial("x + 2*y**2", ["x", "y"])
        assert p == self.x + 2 * self.y**2

    def test_parentheses(self):
        p = parse_polynomial("(x + y)^2", ["x", "y"])
        assert p == (self.x + self.y) ** 2

    def test_unary_minus(self):
        assert parse_polynomial("-x", ["x", "y"]) == -self.x
        assert parse_polynomial("-(x + y)", ["x", "y"]) == -(self.x + self.y)
        assert parse_polynomial("+x", ["x", "y"]) == self.x

    def test_imaginary_unit(self):
        p = parse_polynomial("i*x + j*y", ["x", "y"])
        assert p == 1j * self.x + 1j * self.y

    def test_i_as_variable_name_wins(self):
        (i,) = variables(1, ["i"])
        assert parse_polynomial("i**2", ["i"]) == i**2

    def test_floats_and_scientific(self):
        p = parse_polynomial("1.5*x + 2e-3", ["x", "y"])
        assert p.coefficient((1, 0)) == 1.5
        assert abs(p.constant_term() - 2e-3) < 1e-18

    def test_implicit_multiplication(self):
        p = parse_polynomial("2x y", ["x", "y"])
        assert p == 2 * self.x * self.y
        q = parse_polynomial("3(x + y)", ["x", "y"])
        assert q == 3 * (self.x + self.y)

    def test_division_by_constant(self):
        p = parse_polynomial("x/2", ["x", "y"])
        assert p == self.x / 2

    def test_division_by_variable_rejected(self):
        with pytest.raises(ValueError):
            parse_polynomial("1/x", ["x", "y"])

    def test_unknown_variable(self):
        with pytest.raises(ValueError):
            parse_polynomial("z + 1", ["x", "y"])

    def test_bad_exponent(self):
        with pytest.raises(ValueError):
            parse_polynomial("x**1.5", ["x", "y"])
        with pytest.raises(ValueError):
            parse_polynomial("x**-2", ["x", "y"])

    def test_trailing_garbage(self):
        with pytest.raises(ValueError):
            parse_polynomial("x + )", ["x", "y"])

    def test_evaluation_consistency(self):
        text = "(x + i*y)**3 - 4*x*y + 2"
        p = parse_polynomial(text, ["x", "y"])
        pt = np.array([0.3 + 0.1j, -0.7 + 0.4j])
        x, y = pt
        expected = (x + 1j * y) ** 3 - 4 * x * y + 2
        assert abs(p.evaluate(pt) - expected) < 1e-12


class TestSystemParsing:
    def test_list_of_strings(self):
        sys = parse_system(["x + y", "x - y"], ["x", "y"])
        assert sys.neqs == 2

    def test_semicolon_blob(self):
        sys = parse_system("x*y - 1; x**2 - y;", ["x", "y"])
        assert sys.neqs == 2
        assert sys.degrees() == (2, 2)
