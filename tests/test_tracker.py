"""Unit tests for the predictor-corrector path tracker and Newton correctors."""

import numpy as np
import pytest

from repro.polynomials import PolynomialSystem, variables
from repro.tracker import (
    HomotopyFunction,
    PathStatus,
    PathTracker,
    TrackerOptions,
    newton_correct,
    newton_refine_system,
    summarize_results,
)


class LinearHomotopy(HomotopyFunction):
    """H(x, t) = x - (a + t*(b - a)): single path from a to b."""

    def __init__(self, a, b):
        self.a = np.asarray(a, dtype=complex)
        self.b = np.asarray(b, dtype=complex)

    @property
    def dim(self):
        return len(self.a)

    def evaluate(self, x, t):
        return x - (self.a + t * (self.b - self.a))

    def jacobian_x(self, x, t):
        return np.eye(self.dim, dtype=complex)

    def jacobian_t(self, x, t):
        return -(self.b - self.a)


class SqrtHomotopy(HomotopyFunction):
    """H(x, t) = x^2 - (1 + 3t): path x(t) = sqrt(1 + 3t), from 1 to 2."""

    @property
    def dim(self):
        return 1

    def evaluate(self, x, t):
        return np.array([x[0] ** 2 - (1 + 3 * t)])

    def jacobian_x(self, x, t):
        return np.array([[2 * x[0]]])

    def jacobian_t(self, x, t):
        return np.array([-3.0 + 0j])


class DivergingHomotopy(HomotopyFunction):
    """H(x, t) = (1 - t) * x - t: the path x = t/(1-t) blows up at t=1."""

    @property
    def dim(self):
        return 1

    def evaluate(self, x, t):
        return np.array([(1 - t) * x[0] - t])

    def jacobian_x(self, x, t):
        return np.array([[1 - t + 0j]])

    def jacobian_t(self, x, t):
        return np.array([-x[0] - 1.0])


class TestNewton:
    def test_converges_quadratically(self):
        h = SqrtHomotopy()
        res = newton_correct(h, np.array([1.9 + 0j]), 1.0, tol=1e-12)
        assert res.converged
        assert abs(res.x[0] - 2.0) < 1e-10

    def test_reports_singular(self):
        h = SqrtHomotopy()
        # x=0 has singular Jacobian for this homotopy
        res = newton_correct(h, np.array([0.0 + 0j]), 1.0)
        assert not res.converged
        assert res.singular

    def test_refine_system(self):
        x, y = variables(2)
        sys = PolynomialSystem([x**2 - 2, y - x])
        res = newton_refine_system(sys, np.array([1.4, 1.4], dtype=complex))
        assert res.converged
        assert abs(res.x[0] - np.sqrt(2)) < 1e-12

    def test_refine_requires_square(self):
        x, y = variables(2)
        sys = PolynomialSystem([x + y])
        with pytest.raises(ValueError):
            newton_refine_system(sys, np.array([0, 0], dtype=complex))


class TestTrackerBasic:
    def test_linear_path(self):
        h = LinearHomotopy([0, 0], [1, 2j])
        result = PathTracker().track(h, [0, 0])
        assert result.status is PathStatus.SUCCESS
        assert np.allclose(result.solution, [1, 2j], atol=1e-9)

    def test_sqrt_path(self):
        result = PathTracker().track(SqrtHomotopy(), [1.0])
        assert result.success
        assert abs(result.solution[0] - 2.0) < 1e-9

    def test_negative_branch_tracked_separately(self):
        result = PathTracker().track(SqrtHomotopy(), [-1.0])
        assert result.success
        assert abs(result.solution[0] + 2.0) < 1e-9

    def test_divergence_detected(self):
        opts = TrackerOptions(divergence_bound=1e6)
        result = PathTracker(opts).track(DivergingHomotopy(), [0.0])
        assert result.status is PathStatus.DIVERGED
        assert result.stats.t_reached > 0.5

    def test_bad_start_fails(self):
        h = SqrtHomotopy()
        result = PathTracker().track(h, [25.0])  # nowhere near a root at t=0
        assert result.status in (PathStatus.FAILED, PathStatus.SUCCESS)
        # Newton from 25 on x^2-1 actually converges; use a singular start
        result2 = PathTracker().track(h, [0.0])
        assert result2.status is PathStatus.FAILED

    def test_stats_populated(self):
        result = PathTracker().track(SqrtHomotopy(), [1.0])
        assert result.stats.steps_accepted > 0
        assert result.stats.newton_iterations > 0
        assert result.stats.seconds >= 0
        assert result.stats.t_reached == pytest.approx(1.0)

    def test_track_many_ids(self):
        h = SqrtHomotopy()
        results = PathTracker().track_many(h, [[1.0], [-1.0]])
        assert [r.path_id for r in results] == [0, 1]
        assert all(r.success for r in results)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            TrackerOptions(min_step=1.0, initial_step=0.1).validated()
        with pytest.raises(ValueError):
            TrackerOptions(expand=0.5).validated()


class TestSummarize:
    def test_summary_counts(self):
        h = SqrtHomotopy()
        results = PathTracker().track_many(h, [[1.0], [-1.0]])
        s = summarize_results(results)
        assert s["total"] == 2
        assert s["success"] == 2
        assert s["diverged"] == 0
        assert s["seconds_total"] >= 0

    def test_summary_empty(self):
        s = summarize_results([])
        assert s["total"] == 0
        assert s["seconds_mean"] == 0.0
