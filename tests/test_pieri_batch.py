"""Batched Pieri tracking: StackedHomotopy and scalar-vs-batch parity.

The ISSUE-4 acceptance contract: solving a Pieri instance with
``mode="batch"`` (whole tree levels as stacked SoA fronts) must agree
with the scalar per-path driver — equal failure statuses and endpoints
matching to 1e-8 — across (m, p, q) cells, including runs that exercise
the batch-aware retry ladder and chart-switch requeues, plus the batched
``continue_to_instance`` online phase.
"""

import dataclasses

import numpy as np
import pytest

from repro.linalg import batched_det
from repro.parallel import solve_pieri_parallel
from repro.schubert import (
    PieriInstance,
    PieriSolver,
    continue_to_instance,
    trivial_solution_matrix,
)
from repro.schubert.homotopy import evaluate_map
from repro.schubert.parameter import PieriParameterHomotopy
from repro.sweep import JobSpec
from repro.sweep.engine import run_job
from repro.tracker import (
    BatchHomotopy,
    BatchTracker,
    HomotopyFunction,
    PathStatus,
    PathTracker,
    StackedHomotopy,
    TrackerOptions,
)


class Line(HomotopyFunction):
    """H(x, t) = x - a t - 1: the single path is x(t) = 1 + a t."""

    def __init__(self, a):
        self.a = a

    @property
    def dim(self):
        return 1

    def evaluate(self, x, t):
        return np.array([x[0] - self.a * t - 1.0])

    def jacobian_x(self, x, t):
        return np.array([[1.0 + 0j]])

    def jacobian_t(self, x, t):
        return np.array([-self.a + 0j])


def _sorted_solutions(solutions):
    return sorted(
        solutions, key=lambda s: (float(s.real.sum()), float(s.imag.sum()))
    )


def _assert_same_solution_sets(a, b, tol=1e-8):
    sa, sb = _sorted_solutions(a), _sorted_solutions(b)
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert np.max(np.abs(x - y)) < tol


class TestStackedHomotopy:
    def test_delegates_to_owners(self):
        stack = StackedHomotopy([Line(2.0), Line(-1.0)], [0, 1, 0])
        assert stack.npaths == 3 and stack.dim == 1
        X = np.array([[1.0 + 0j], [2.0 + 0j], [3.0 + 0j]])
        t = np.array([0.1, 0.5, 0.9])
        res = stack.evaluate_batch(X, t)
        members = [Line(2.0), Line(-1.0), Line(2.0)]
        for i, h in enumerate(members):
            assert np.allclose(res[i], h.evaluate(X[i], t[i]))
            assert np.allclose(
                stack.jacobian_t_batch(X, t)[i], h.jacobian_t(X[i], t[i])
            )
        r2, j2 = stack.evaluate_and_jacobian_batch(X, t)
        jx, jt = stack.jacobians_batch(X, t)
        assert np.allclose(r2, res)
        assert np.allclose(j2, jx)

    def test_restrict_slices_ownership(self):
        stack = StackedHomotopy([Line(2.0), Line(-1.0)], [0, 1, 1])
        sub = stack.restrict([2, 0])
        assert isinstance(sub, StackedHomotopy)
        assert sub.npaths == 2
        assert list(sub.owners) == [1, 0]
        # restrictions compose (tracker-then-newton culling)
        assert list(sub.restrict([1]).owners) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            StackedHomotopy([], [])
        with pytest.raises(ValueError):
            StackedHomotopy([Line(1.0)], [0, 1])  # owner out of range

        class Two(Line):
            @property
            def dim(self):
                return 2

        with pytest.raises(ValueError):
            StackedHomotopy([Line(1.0), Two(1.0)], [0, 1])
        stack = StackedHomotopy([Line(1.0)], [0, 0])
        with pytest.raises(ValueError):
            stack.evaluate_batch(np.zeros((3, 1), dtype=complex), 0.0)

    def test_tracking_matches_scalar_members(self):
        members = [Line(2.0), Line(-1.0)]
        owners = [0, 1, 1]
        starts = [[1.0], [1.0], [1.0]]
        batch = BatchTracker().track_batch(
            StackedHomotopy(members, owners), starts
        )
        for r, k, x0 in zip(batch, owners, starts):
            scalar = PathTracker().track(members[k], x0)
            assert r.status == scalar.status
            assert np.max(np.abs(r.solution - scalar.solution)) < 1e-10

    def test_per_path_t_start_vector(self):
        results = BatchTracker().track_batch(
            StackedHomotopy([Line(2.0)], [0, 0]),
            [[1.8], [1.0]],
            t_start=np.array([0.4, 0.0]),
        )
        assert all(r.success for r in results)
        assert all(abs(r.solution[0] - 3.0) < 1e-9 for r in results)
        with pytest.raises(ValueError):
            BatchTracker().track_batch(
                Line(1.0), [[1.0], [1.0]], t_start=np.array([0.0, 1.0])
            )
        with pytest.raises(ValueError):
            BatchTracker().track_batch(
                Line(1.0), [[1.0], [1.0]], t_start=np.array([0.0])
            )


class TestBatchedDet:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_matches_lapack(self, k):
        rng = np.random.default_rng(k)
        a = rng.standard_normal((40, k, k)) + 1j * rng.standard_normal(
            (40, k, k)
        )
        assert np.allclose(batched_det(a), np.linalg.det(a))
        stacked = a.reshape(8, 5, k, k)
        assert np.allclose(batched_det(stacked), np.linalg.det(stacked))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            batched_det(np.zeros((3, 2, 4)))


class TestPieriEdgeBatchProtocol:
    def _edge(self, m=2, p=2, q=1, seed=5, depth=3):
        from repro.schubert.tree import PieriTreeNode

        instance = PieriInstance.random(m, p, q, np.random.default_rng(seed))
        solver = PieriSolver(instance, seed=seed + 1)
        node = PieriTreeNode(instance.problem)
        for _ in range(depth):
            node = next(node.children())
        return solver.make_homotopy(node)

    def test_is_native_batch(self):
        hom = self._edge()
        assert isinstance(hom, BatchHomotopy)
        assert isinstance(hom, HomotopyFunction)

    def test_evaluate_batch_matches_reference_dets(self):
        """The vectorized assembly equals the definitional construction."""
        hom = self._edge()
        rng = np.random.default_rng(0)
        X = rng.standard_normal((4, hom.dim)) + 1j * rng.standard_normal(
            (4, hom.dim)
        )
        tt = np.array([0.0, 0.3, 0.7, 0.99])
        res = hom.evaluate_batch(X, tt)
        n = hom.dim
        for i in range(4):
            c = hom.to_matrix(X[i])
            mats = [
                np.hstack(
                    [
                        evaluate_map(c, hom.pattern, hom.points[e], 1.0),
                        hom.planes[e],
                    ]
                )
                for e in range(n - 1)
            ]
            t = tt[i]
            s = (1 - t) * hom.gamma_s + t * hom.points[-1]
            k = (1 - t) * hom.gamma_k * hom.k_special + t * hom.planes[-1]
            mats.append(
                np.hstack([evaluate_map(c, hom.pattern, s, complex(t)), k])
            )
            assert np.allclose(res[i], np.linalg.det(np.array(mats)), atol=1e-10)

    def test_batch_jacobians_match_scalar_rows(self):
        hom = self._edge(m=3, p=2, q=0, seed=9, depth=4)
        rng = np.random.default_rng(1)
        X = rng.standard_normal((5, hom.dim)) + 1j * rng.standard_normal(
            (5, hom.dim)
        )
        tt = np.linspace(0.05, 0.95, 5)
        res, jac = hom.evaluate_and_jacobian_batch(X, tt)
        jx, jt = hom.jacobians_batch(X, tt)
        for i in range(5):
            r0, j0 = hom.evaluate_and_jacobian_x(X[i], tt[i])
            assert np.allclose(res[i], r0)
            assert np.allclose(jac[i], j0)
            assert np.allclose(jx[i], j0)
            assert np.allclose(jt[i], hom.jacobian_t(X[i], tt[i]))

    def test_jacobians_against_finite_differences(self):
        hom = self._edge(m=2, p=2, q=1, seed=3, depth=5)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(hom.dim) + 1j * rng.standard_normal(hom.dim)
        t = 0.41
        jac = hom.jacobian_x(x, t)
        h = 1e-7
        for k in range(hom.dim):
            xp = x.copy()
            xp[k] += h
            fd = (hom.evaluate(xp, t) - hom.evaluate(x, t)) / h
            assert np.allclose(jac[:, k], fd, atol=1e-4)
        fd = (hom.evaluate(x, t + h) - hom.evaluate(x, t)) / h
        assert np.allclose(hom.jacobian_t(x, t), fd, atol=1e-4)


class TestSolverParity:
    """Acceptance: statuses equal, endpoints to 1e-8, per (m, p, q)."""

    @pytest.mark.parametrize(
        "m,p,q", [(2, 2, 0), (3, 2, 0), (2, 3, 0), (2, 2, 1)]
    )
    def test_solve_modes_agree(self, m, p, q):
        instance = PieriInstance.random(m, p, q, np.random.default_rng(11))
        per_path = PieriSolver(instance, seed=12).solve(mode="per_path")
        batch = PieriSolver(instance, seed=12).solve(mode="batch")
        assert batch.failures == per_path.failures
        assert batch.n_solutions == per_path.n_solutions
        _assert_same_solution_sets(per_path.solutions, batch.solutions)
        assert batch.jobs_per_level == per_path.jobs_per_level
        assert len(batch.level_batches) == instance.problem.num_conditions
        assert all(r["n_jobs"] >= 1 for r in batch.level_batches)

    def test_run_jobs_batched_matches_run_job(self):
        instance = PieriInstance.random(2, 2, 1, np.random.default_rng(21))
        solver = PieriSolver(instance, seed=22)
        frontier = solver.initial_jobs()
        while frontier:
            scalar = [solver.run_job(job) for job in frontier]
            batched, stats = solver.run_jobs_batched(frontier)
            assert stats["n_jobs"] == len(frontier)
            nxt = []
            for a, b in zip(scalar, batched):
                assert a.success == b.success
                assert a.path_result.status == b.path_result.status
                if a.success:
                    assert np.max(np.abs(a.matrix - b.matrix)) < 1e-8
                nxt.extend(solver.expand(a))
            frontier = nxt

    def test_batch_rejects_mixed_levels(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(1))
        solver = PieriSolver(instance, seed=2)
        jobs = solver.initial_jobs()
        results, _ = solver.run_jobs_batched(jobs)
        deeper = solver.expand(results[0])
        with pytest.raises(ValueError):
            solver.run_jobs_batched([jobs[0], deeper[0]])
        assert solver.run_jobs_batched([]) == ([], {
            "n_jobs": 0, "n_homotopies": 0, "chart_switches": 0, "retries": 0,
        })

    def test_retry_ladder_parity(self):
        """Coarse steps force failures; both modes walk the same ladder."""
        stress = TrackerOptions(
            initial_step=0.4,
            max_step=0.4,
            min_step=0.1,
            corrector_tol=1e-10,
            corrector_iterations=3,
            expand_after=2,
        )
        instance = PieriInstance.random(2, 2, 1, np.random.default_rng(0))
        per_path = PieriSolver(instance, options=stress, seed=0).solve()
        batch = PieriSolver(instance, options=stress, seed=0).solve(
            mode="batch"
        )
        assert sum(r["retries"] for r in batch.level_batches) > 0
        assert batch.failures == per_path.failures
        _assert_same_solution_sets(per_path.solutions, batch.solutions)

    def test_chart_switch_requeue_parity(self):
        """A tight divergence bound forces chart switches in both modes."""
        opts = dataclasses.replace(
            PieriSolver.DEFAULT_OPTIONS, divergence_bound=20.0
        )
        instance = PieriInstance.random(2, 2, 1, np.random.default_rng(0))
        per_path = PieriSolver(instance, options=opts, seed=0).solve()
        batch = PieriSolver(instance, options=opts, seed=0).solve(mode="batch")
        assert sum(r["chart_switches"] for r in batch.level_batches) > 0
        assert batch.failures == per_path.failures == 0
        assert batch.n_solutions == 8
        _assert_same_solution_sets(per_path.solutions, batch.solutions)

    def test_retry_options_preserve_unlisted_fields(self):
        """dataclasses.replace keeps custom fields through the ladder."""
        custom = dataclasses.replace(
            PieriSolver.DEFAULT_OPTIONS, divergence_bound=123.0, shrink=0.4
        )
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(1))
        solver = PieriSolver(instance, options=custom, seed=2)
        retried = solver._retry_options(2)
        assert retried.divergence_bound == 123.0
        assert retried.shrink == 0.4
        assert retried.min_step < custom.min_step
        assert retried.max_steps == custom.max_steps * 3


class TestParallelLevelGranularity:
    def test_matches_sequential(self):
        instance = PieriInstance.random(2, 2, 1, np.random.default_rng(13))
        seq = PieriSolver(instance, seed=14).solve()
        par = solve_pieri_parallel(
            instance, n_workers=2, mode="thread", seed=14, granularity="level"
        )
        assert par.failures == seq.failures
        assert par.n_solutions == seq.n_solutions
        _assert_same_solution_sets(seq.solutions, par.solutions)
        assert len(par.level_batches) == instance.problem.num_conditions
        assert all(r["n_chunks"] >= 1 for r in par.level_batches)
        assert par.jobs_per_level == seq.jobs_per_level

    def test_rejects_unknown_granularity(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(1))
        with pytest.raises(ValueError):
            solve_pieri_parallel(instance, n_workers=1, granularity="bogus")


class TestContinuationBatch:
    @pytest.fixture(scope="class")
    def solved_base(self):
        base = PieriInstance.random(2, 2, 1, np.random.default_rng(31))
        report = PieriSolver(base, seed=32).solve(mode="batch")
        assert report.n_solutions == 8
        return base, report.solutions

    def test_batch_matches_per_path(self, solved_base):
        base, sols = solved_base
        target = PieriInstance.random(2, 2, 1, np.random.default_rng(33))
        sp, rp = continue_to_instance(
            base, sols, target, rng=np.random.default_rng(34)
        )
        sb, rb = continue_to_instance(
            base, sols, target, rng=np.random.default_rng(34), mode="batch"
        )
        assert [r.status for r in rb] == [r.status for r in rp]
        assert len(sb) == len(sp) == 8
        _assert_same_solution_sets(sp, sb)

    def test_parameter_homotopy_batch_protocol(self, solved_base):
        base, sols = solved_base
        target = PieriInstance.random(2, 2, 1, np.random.default_rng(35))
        hom = PieriParameterHomotopy(base, target, np.random.default_rng(36))
        X = np.stack([hom.from_matrix(s) for s in sols[:3]])
        tt = np.array([0.0, 0.4, 0.8])
        res, jac = hom.evaluate_and_jacobian_batch(X, tt)
        for i in range(3):
            r0, j0 = hom.evaluate_and_jacobian_x(X[i], tt[i])
            assert np.allclose(res[i], r0)
            assert np.allclose(jac[i], j0)
        # start solutions are exact roots at t = 0
        assert np.max(np.abs(hom.evaluate_batch(X, 0.0)[0])) < 1e-8

    def test_zero_pivot_recorded_as_failed(self, solved_base, monkeypatch):
        """A zero-pivot endpoint becomes a FAILED result, not a silent drop."""
        base, sols = solved_base
        target = PieriInstance.random(2, 2, 1, np.random.default_rng(37))
        import repro.schubert.parameter as parameter_module

        real = parameter_module.normalize_to_standard_chart
        calls = {"n": 0}

        def flaky(matrix, pattern):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ZeroDivisionError("injected zero pivot")
            return real(matrix, pattern)

        monkeypatch.setattr(
            parameter_module, "normalize_to_standard_chart", flaky
        )
        sols_out, results = continue_to_instance(
            base, sols, target, rng=np.random.default_rng(38)
        )
        assert len(results) == len(sols)
        assert len(sols_out) == len(sols) - 1
        assert sum(r.status is PathStatus.FAILED for r in results) == 1
        assert sum(r.success for r in results) == len(sols_out)


class TestSweepBatchMode:
    def test_job_ids_and_roundtrip(self):
        a = JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=3)
        b = JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=3, mode="batch")
        assert a.job_id == "pieri-m2-p2-q0-s3"
        assert b.job_id == "pieri-m2-p2-q0-batch-s3"
        assert JobSpec.from_dict(b.to_dict()) == b
        assert "mode" not in a.to_dict()
        with pytest.raises(ValueError):
            JobSpec("cyclic", {"n": 5}, mode="batch")
        with pytest.raises(ValueError):
            JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, mode="bogus")

    def test_batch_job_journals_level_stats(self):
        per_path = run_job(JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=3))
        batch = run_job(
            JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=3, mode="batch")
        )
        assert batch["result"]["mode"] == "batch"
        levels = batch["result"]["levels"]
        assert [rec["level"] for rec in levels] == [1, 2, 3, 4]
        assert all(
            set(rec) >= {"n_jobs", "n_homotopies", "chart_switches", "retries"}
            for rec in levels
        )
        # the batched solve finds the identical solution set
        assert (
            batch["result"]["fingerprint"] == per_path["result"]["fingerprint"]
        )
