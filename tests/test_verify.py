"""Tests for the independent Schubert solution verifier."""

import numpy as np
import pytest

from repro.schubert import (
    PieriInstance,
    PieriSolver,
    verify_solutions,
)


@pytest.fixture(scope="module")
def solved_220():
    instance = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
    report = PieriSolver(instance, seed=1).solve()
    return instance, report


class TestVerifier:
    def test_accepts_valid_solution_set(self, solved_220):
        instance, report = solved_220
        v = verify_solutions(instance, report.solutions)
        assert v.ok, str(v)
        assert v.n_solutions == v.expected_count == 2
        assert v.max_residual < 1e-8
        assert v.pattern_violations == 0
        assert v.chart_violations == 0

    def test_detects_missing_solution(self, solved_220):
        instance, report = solved_220
        v = verify_solutions(instance, report.solutions[:1])
        assert not v.ok
        assert any("count" in issue for issue in v.issues)

    def test_detects_duplicate(self, solved_220):
        instance, report = solved_220
        v = verify_solutions(
            instance, [report.solutions[0], report.solutions[0].copy()]
        )
        assert not v.ok
        assert any("collide" in issue for issue in v.issues)

    def test_detects_wrong_residual(self, solved_220):
        instance, report = solved_220
        bad = report.solutions[0].copy()
        # perturb a free coefficient (not a pivot)
        idx = np.argwhere(np.abs(bad) > 1e-12)[0]
        bad[tuple(idx)] += 0.1
        v = verify_solutions(instance, [bad, report.solutions[1]])
        assert not v.ok
        assert any("residual" in issue for issue in v.issues)

    def test_detects_pattern_violation(self, solved_220):
        instance, report = solved_220
        bad = report.solutions[0].copy()
        # the (2,2,0) root pattern [3 4] leaves (row 4, col 1) zero
        bad[3, 0] = 0.5
        v = verify_solutions(instance, [bad, report.solutions[1]])
        assert v.pattern_violations >= 1
        assert not v.ok

    def test_detects_chart_violation(self, solved_220):
        instance, report = solved_220
        bad = report.solutions[0] * 2.0  # pivots no longer 1
        v = verify_solutions(instance, [bad, report.solutions[1]])
        assert v.chart_violations >= 1

    def test_detects_wrong_shape(self, solved_220):
        instance, report = solved_220
        v = verify_solutions(
            instance, [np.zeros((2, 2)), report.solutions[1]]
        )
        assert not v.ok

    def test_str_rendering(self, solved_220):
        instance, report = solved_220
        assert "OK" in str(verify_solutions(instance, report.solutions))
        assert "FAILED" in str(verify_solutions(instance, []))

    def test_verifies_parallel_results(self):
        from repro.parallel import solve_pieri_parallel

        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(2))
        par = solve_pieri_parallel(instance, n_workers=2, mode="thread", seed=3)
        assert verify_solutions(instance, par.solutions).ok
