"""The fleet protocol: property tests, simulator replay, socket smoke.

The ISSUE-7 acceptance property, pinned three ways:

1. **Hypothesis interleavings** drive the *real*
   :class:`repro.parallel.fleet.FleetMaster` with random sequences of
   hellos, amnesiac re-registrations, honest and lying heartbeats,
   results, duplicate deliveries, disconnects, and timeout sweeps —
   after any interleaving, no job is ever lost, no job commits twice,
   and draining the survivors yields a journal identical to an
   uninterrupted run.
2. **Simulator replay** (:func:`repro.simcluster.simulate_fleet`) kills
   the master at random instants, kills workers, partitions links, and
   duplicates frames; the merged killed+resumed journal must equal the
   uninterrupted journal exactly.
3. **Real asyncio sockets** on localhost: two worker agents against
   :func:`~repro.parallel.fleet.serve_fleet`, including a torn frame on
   the wire, reach the same exactly-once result set.
"""

import asyncio
import socket as socketlib
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel.fleet import (
    FleetMaster,
    run_fleet_worker,
    serve_fleet,
)
from repro.parallel.fleet.messages import (
    FleetProtocolError,
    decode_frame,
    decode_line,
    encode_frame,
)
from repro.simcluster import resume_fleet, simulate_fleet


def make_jobs(n):
    return [{"job_id": f"job-{i}", "cost": 1.0} for i in range(n)]


def record_for(job_id):
    """Worker-independent record: makes journal equality exact."""
    return {"job_id": job_id, "value": job_id.upper()}


class ExactlyOnceJournal:
    """Commit callback that screams on the second commit of any job."""

    def __init__(self):
        self.records = {}

    def __call__(self, job_id, record):
        assert job_id not in self.records, f"{job_id} committed twice"
        self.records[job_id] = record


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------


class TestMessages:
    def test_roundtrip(self):
        msg = {"type": "lease", "jobs": [{"job_id": "a"}]}
        assert decode_frame(encode_frame(msg)) == msg

    def test_one_line_per_frame(self):
        frame = encode_frame({"type": "drain"})
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(FleetProtocolError):
            encode_frame({"type": "surprise"})
        with pytest.raises(FleetProtocolError):
            decode_frame(b'{"type": "surprise"}')

    def test_torn_line_decodes_to_none(self):
        whole = encode_frame({"type": "heartbeat", "worker": "w0", "held": []})
        torn = whole[: len(whole) // 2]
        assert decode_line(torn) is None
        assert decode_line(b"") is None
        assert decode_line(b"\n") is None
        assert decode_line(whole) is not None


# ---------------------------------------------------------------------------
# state machine units
# ---------------------------------------------------------------------------


class TestFleetMasterUnits:
    def test_unique_job_ids_required(self):
        with pytest.raises(ValueError):
            FleetMaster([{"job_id": "a"}, {"job_id": "a"}], commit=lambda *a: None)
        with pytest.raises(ValueError):
            FleetMaster([{"cost": 1.0}], commit=lambda *a: None)

    def test_probe_lease_then_rate_sized(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(
            make_jobs(12), journal, lease_target_seconds=4.0, max_lease=8
        )
        out = master.on_hello("w0", now=0.0)
        lease = [m for _, m in out if m["type"] == "lease"]
        assert len(lease[0]["jobs"]) == 1  # probe: rate unknown
        # one job of cost 1.0 took 1s -> rate 1 s/cost -> ~4 jobs per lease
        out = master.on_result("w0", "job-0", record_for("job-0"), 1.0, now=1.0)
        lease = [m for _, m in out if m["type"] == "lease"]
        assert len(lease[0]["jobs"]) == 4

    def test_duplicate_result_commits_once(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(2), journal)
        master.on_hello("w0", now=0.0)
        master.on_result("w0", "job-0", record_for("job-0"), 0.1, now=0.1)
        master.on_result("w0", "job-0", record_for("job-0"), 0.1, now=0.2)
        assert master.stats.duplicates == 1
        assert list(journal.records) == ["job-0"]
        master.check_invariant()

    def test_disconnect_requeues_lease(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(3), journal)
        master.on_hello("w0", now=0.0)
        assert master.workers["w0"].leased
        master.on_disconnect("w0", now=1.0)
        assert master.stats.requeues >= 1
        assert sorted(master.pending_ids()) == ["job-0", "job-1", "job-2"]
        master.check_invariant()

    def test_timeout_expires_silent_worker(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(3), journal, heartbeat_timeout=2.0)
        master.on_hello("w0", now=0.0)
        master.on_hello("w1", now=0.0)
        master.on_heartbeat("w1", now=5.0, held=list(master.workers["w1"].leased))
        master.check_timeouts(now=5.0)
        assert master.stats.timeouts == 1
        assert "w0" not in master.workers and "w1" in master.workers
        master.check_invariant()

    def test_hello_adopts_held_pending_jobs(self):
        """A restarted master adopts a reconnecting worker's in-flight
        jobs instead of re-running them."""
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(4), journal)
        out = master.on_hello("w0", now=0.0, held=["job-2", "job-3"])
        welcome = out[0][1]
        assert sorted(welcome["adopted"]) == ["job-2", "job-3"]
        assert set(master.workers["w0"].leased) >= {"job-2", "job-3"}
        master.check_invariant()

    def test_hello_revokes_held_committed_jobs(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(2), journal)
        master.on_hello("w0", now=0.0)
        master.on_result("w0", "job-0", record_for("job-0"), 0.1, now=0.1)
        out = master.on_hello("w1", now=0.2, held=["job-0", "job-ancient"])
        revokes = [m for _, m in out if m["type"] == "revoke"]
        assert sorted(revokes[0]["job_ids"]) == ["job-0", "job-ancient"]
        master.check_invariant()

    def test_heartbeat_reconciles_lost_lease(self):
        """Leased here, not held there, grant older than the grace
        window: the lease frame died in a partition — requeue it."""
        journal = ExactlyOnceJournal()
        master = FleetMaster(
            make_jobs(1), journal, heartbeat_timeout=4.0, lease_grace=1.0
        )
        master.on_hello("w0", now=0.0)
        assert "job-0" in master.workers["w0"].leased
        master.on_heartbeat("w0", now=0.5, held=[])  # inside grace: no-op
        assert "job-0" in master.workers["w0"].leased
        out = master.on_heartbeat("w0", now=2.0, held=[])
        # past grace: requeued — and immediately re-leased to the same
        # (idle, live) worker by the grant pass
        assert master.stats.requeues == 1
        assert any(m["type"] == "lease" for _, m in out)
        master.check_invariant()

    def test_unknown_heartbeat_requests_reregistration(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(1), journal)
        out = master.on_heartbeat("stranger", now=0.0, held=["job-0"])
        assert out[0][1]["type"] == "welcome" and out[0][1]["reregister"]
        assert "stranger" not in master.workers

    def test_steal_moves_tail_not_head(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(
            make_jobs(5), journal, lease_target_seconds=100.0, max_lease=8
        )
        master.on_hello("w0", now=0.0)
        # teach the master w0's rate so its next lease swallows the queue
        master.on_result("w0", "job-0", record_for("job-0"), 1.0, now=1.0)
        assert len(master.workers["w0"].leased) == 4
        head = next(iter(master.workers["w0"].leased))
        out = master.on_hello("w1", now=2.0)
        assert master.stats.steals == 2  # half of the 3-job backlog, up
        stolen = set(master.workers["w1"].leased)
        assert head not in stolen
        revoked = [m for w, m in out if w == "w0" and m["type"] == "revoke"]
        assert set(revoked[0]["job_ids"]) == stolen
        master.check_invariant()

    def test_stolen_job_first_commit_wins(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(
            make_jobs(5), journal, lease_target_seconds=100.0, max_lease=8
        )
        master.on_hello("w0", now=0.0)
        master.on_result("w0", "job-0", record_for("job-0"), 1.0, now=1.0)
        master.on_hello("w1", now=2.0)
        stolen = next(iter(master.workers["w1"].leased))
        # the victim finishes the stolen job before the thief does
        out = master.on_result("w0", stolen, record_for(stolen), 1.0, now=3.0)
        assert stolen in journal.records
        revokes = [m for w, m in out if w == "w1" and m["type"] == "revoke"]
        assert stolen in revokes[0]["job_ids"]
        # the thief's late result is a counted duplicate
        master.on_result("w1", stolen, record_for(stolen), 1.0, now=4.0)
        assert master.stats.duplicates == 1
        master.check_invariant()

    def test_drain_broadcast_once_per_worker(self):
        journal = ExactlyOnceJournal()
        master = FleetMaster(make_jobs(1), journal)
        master.on_hello("w0", now=0.0)
        master.on_hello("w1", now=0.0)
        out = master.on_result("w0", "job-0", record_for("job-0"), 0.1, now=1.0)
        drains = [w for w, m in out if m["type"] == "drain"]
        assert sorted(drains) == ["w0", "w1"]
        out = master.on_heartbeat("w0", now=1.5, held=[])
        assert not [m for _, m in out if m["type"] == "drain"]


# ---------------------------------------------------------------------------
# hypothesis: random interleavings against the real state machine
# ---------------------------------------------------------------------------

WORKER_IDS = ("w0", "w1", "w2")

_op = st.one_of(
    st.tuples(st.just("hello"), st.sampled_from(WORKER_IDS)),
    # re-register having forgotten the lease (worker process restarted)
    st.tuples(st.just("hello_amnesia"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("heartbeat"), st.sampled_from(WORKER_IDS)),
    # heartbeat claiming to hold nothing (lease frame lost to partition)
    st.tuples(st.just("heartbeat_empty"), st.sampled_from(WORKER_IDS)),
    st.tuples(
        st.just("result"), st.sampled_from(WORKER_IDS), st.integers(0, 63)
    ),
    st.tuples(
        st.just("dup_result"), st.sampled_from(WORKER_IDS), st.integers(0, 63)
    ),
    st.tuples(st.just("goodbye"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("disconnect"), st.sampled_from(WORKER_IDS)),
    st.tuples(st.just("silence"),),  # long gap, then a timeout sweep
    st.tuples(st.just("sweep"),),
)


class _ScriptedFleet:
    """Drives a real FleetMaster while book-keeping each worker's actual
    held set from the outbound frames (i.e. behaving like real agents)."""

    def __init__(self, n_jobs):
        self.journal = ExactlyOnceJournal()
        self.master = FleetMaster(
            make_jobs(n_jobs),
            self.journal,
            heartbeat_timeout=4.0,
            lease_target_seconds=2.0,
            max_lease=4,
            lease_grace=1.0,
        )
        self.held = {w: set() for w in WORKER_IDS}
        self.now = 0.0

    def absorb(self, outbound):
        for worker, message in outbound:
            if worker not in self.held:
                continue
            if message["type"] == "lease":
                self.held[worker] |= {j["job_id"] for j in message["jobs"]}
            elif message["type"] == "revoke":
                self.held[worker] -= set(message["job_ids"])

    def step(self, op):
        kind, rest = op[0], op[1:]
        self.now += 0.05
        master = self.master
        if kind == "hello":
            out = master.on_hello(rest[0], now=self.now,
                                  held=sorted(self.held[rest[0]]))
        elif kind == "hello_amnesia":
            self.held[rest[0]].clear()
            out = master.on_hello(rest[0], now=self.now, held=[])
        elif kind == "heartbeat":
            out = master.on_heartbeat(rest[0], now=self.now,
                                      held=sorted(self.held[rest[0]]))
        elif kind == "heartbeat_empty":
            self.held[rest[0]].clear()
            out = master.on_heartbeat(rest[0], now=self.now, held=[])
        elif kind in ("result", "dup_result"):
            worker, pick = rest
            pool = sorted(self.held[worker]) or sorted(master._jobs)
            job_id = pool[pick % len(pool)]
            out = master.on_result(
                worker, job_id, record_for(job_id), 0.1, now=self.now
            )
            self.held[worker].discard(job_id)
            if kind == "dup_result":
                out += master.on_result(
                    worker, job_id, record_for(job_id), 0.1, now=self.now
                )
        elif kind == "goodbye":
            out = master.handle(
                {"type": "goodbye", "worker": rest[0]}, now=self.now
            )
        elif kind == "disconnect":
            self.held[rest[0]].clear()  # the agent process is gone
            out = master.on_disconnect(rest[0], now=self.now)
        elif kind == "silence":
            self.now += master.heartbeat_timeout + 1.0
            out = master.check_timeouts(self.now)
            for worker in WORKER_IDS:
                if worker not in master.workers:
                    self.held[worker].clear()
        else:  # sweep
            out = master.check_timeouts(self.now)
        self.absorb(out)
        master.check_invariant()

    def drive_to_drain(self):
        """One honest surviving worker finishes whatever remains."""
        while not self.master.done:
            self.now += 0.1
            out = self.master.on_hello(
                "w0", now=self.now, held=sorted(self.held["w0"])
            )
            self.absorb(out)
            todo = sorted(self.held["w0"]) or sorted(
                set(self.master._jobs) - self.master._committed
            )
            for job_id in todo:
                self.now += 0.1
                out = self.master.on_result(
                    "w0", job_id, record_for(job_id), 0.1, now=self.now
                )
                self.held["w0"].discard(job_id)
                self.absorb(out)
            self.master.check_invariant()


class TestFleetProperties:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_jobs=st.integers(min_value=1, max_value=12),
        ops=st.lists(_op, max_size=40),
    )
    def test_no_interleaving_loses_or_doubles_a_job(self, n_jobs, ops):
        fleet = _ScriptedFleet(n_jobs)
        for op in ops:
            fleet.step(op)
        fleet.drive_to_drain()
        # journal identical to an uninterrupted run: every job exactly
        # once, with its worker-independent record
        expected = {f"job-{i}": record_for(f"job-{i}") for i in range(n_jobs)}
        assert fleet.journal.records == expected

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        costs=st.lists(
            st.floats(min_value=0.05, max_value=2.0), min_size=1, max_size=16
        ),
        n_workers=st.integers(min_value=1, max_value=4),
        kill_at=st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=6.0)
        ),
        death_seed=st.integers(min_value=0, max_value=7),
        duplicates=st.booleans(),
    )
    def test_sim_kill_resume_equals_uninterrupted(
        self, costs, n_workers, kill_at, death_seed, duplicates
    ):
        # kill at most n_workers - 1 workers so the run can always finish
        deaths = {
            w: 0.3 + 0.4 * w
            for w in range(n_workers - 1)
            if (death_seed >> w) & 1
        }
        clean = simulate_fleet(costs, n_workers)
        first = simulate_fleet(
            costs,
            n_workers,
            kill_master_at=kill_at,
            worker_deaths=deaths,
            duplicate_results=duplicates,
        )
        if kill_at is None:
            assert first.records == clean.records
        else:
            resumed = resume_fleet(costs, n_workers, first)
            merged = {**first.records, **resumed.records}
            assert merged == clean.records
            # the two journals never overlap: resume skips committed jobs
            assert not set(first.records) & set(resumed.records)


# ---------------------------------------------------------------------------
# simulator scenarios (fixed, human-readable counterparts)
# ---------------------------------------------------------------------------


class TestFleetSimulator:
    def test_uninterrupted_run_commits_everything(self):
        res = simulate_fleet([1.0] * 10, n_workers=3)
        assert res.jobs_done == 10
        assert res.stats.commits == 10 and res.stats.duplicates == 0

    def test_worker_death_requeues_and_finishes(self):
        res = simulate_fleet(
            [1.0] * 10, n_workers=2, worker_deaths={1: 1.2},
            heartbeat_timeout=1.0,
        )
        assert res.jobs_done == 10
        assert res.stats.timeouts >= 1 and res.stats.requeues >= 1

    def test_partition_heals_without_double_commit(self):
        res = simulate_fleet(
            [0.5] * 12,
            n_workers=2,
            partitions=[(1, 0.6, 2.4)],
            heartbeat_timeout=1.0,
        )
        assert res.jobs_done == 12
        assert res.stats.commits == 12

    def test_duplicate_delivery_commits_once(self):
        res = simulate_fleet([0.5] * 8, n_workers=2, duplicate_results=True)
        assert res.jobs_done == 8
        assert res.stats.commits == 8 and res.stats.duplicates >= 1

    def test_heterogeneous_speeds_split_by_rate(self):
        res = simulate_fleet(
            [0.5] * 40, n_workers=2, speeds=[4.0, 1.0],
            lease_target_seconds=1.0,
        )
        assert res.jobs_done == 40
        fast = res.jobs_by_worker.get("w0", 0)
        slow = res.jobs_by_worker.get("w1", 0)
        assert fast > 2 * slow  # the cost model feeds the fast host more

    def test_master_kill_then_resume_exact(self):
        costs = [0.8] * 12
        killed = simulate_fleet(costs, n_workers=2, kill_master_at=1.7)
        assert 0 < killed.jobs_done < 12
        resumed = resume_fleet(costs, 2, killed)
        merged = {**killed.records, **resumed.records}
        assert merged == simulate_fleet(costs, n_workers=2).records


# ---------------------------------------------------------------------------
# real sockets on localhost
# ---------------------------------------------------------------------------


def sleep_job_runner(payload):
    time.sleep(payload.get("cost", 0.01))
    return record_for(payload["job_id"])


async def _serve_and_work(jobs, journal, n_workers, torn_frame=False):
    loop = asyncio.get_running_loop()
    port_fut = loop.create_future()
    serve = asyncio.create_task(
        serve_fleet(
            jobs,
            journal,
            port=0,
            heartbeat_timeout=3.0,
            lease_target_seconds=0.5,
            on_listening=lambda h, p: port_fut.set_result(p),
        )
    )
    port = await port_fut
    if torn_frame:
        # a peer that dies mid-write: half a frame, no newline, gone
        raw = socketlib.create_connection(("127.0.0.1", port))
        frame = encode_frame({"type": "hello", "worker": "torn", "held": []})
        raw.sendall(frame[: len(frame) // 2])
        raw.close()
    workers = [
        asyncio.create_task(
            run_fleet_worker(
                "127.0.0.1",
                port,
                sleep_job_runner,
                worker_id=f"sock-w{i}",
                heartbeat_interval=0.2,
                reconnect_seconds=5.0,
            )
        )
        for i in range(n_workers)
    ]
    master = await serve
    stats = await asyncio.gather(*workers)
    return master, stats


class TestFleetSockets:
    def test_two_workers_exactly_once(self):
        journal = ExactlyOnceJournal()
        jobs = [{"job_id": f"job-{i}", "cost": 0.02} for i in range(10)]
        master, stats = asyncio.run(_serve_and_work(jobs, journal, 2))
        assert master.done
        assert sorted(journal.records) == sorted(j["job_id"] for j in jobs)
        assert journal.records["job-3"] == record_for("job-3")
        assert sorted(master.workers_seen) == ["sock-w0", "sock-w1"]
        assert all(not s.gave_up for s in stats)
        assert sum(s.jobs_done for s in stats) >= 10
        assert all(s.jobs_done > 0 for s in stats)  # both actually worked

    def test_torn_frame_on_the_wire_is_ignored(self):
        journal = ExactlyOnceJournal()
        jobs = [{"job_id": f"job-{i}", "cost": 0.01} for i in range(4)]
        master, _ = asyncio.run(
            _serve_and_work(jobs, journal, 1, torn_frame=True)
        )
        assert master.done and len(journal.records) == 4
        assert "torn" not in master.workers_seen

    def test_worker_gives_up_without_master(self):
        # a port nothing listens on
        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        async def lone_worker():
            return await run_fleet_worker(
                "127.0.0.1",
                port,
                sleep_job_runner,
                worker_id="lonely",
                reconnect_seconds=0.5,
                reconnect_delay=0.05,
            )

        stats = asyncio.run(lone_worker())
        assert stats.gave_up and stats.jobs_done == 0
