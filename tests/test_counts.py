"""The unified root-count layer: reports, named systems, CLI table.

Pins the paper's "why parallelism" numbers: the chain
``true count <= mixed volume <= m-homogeneous <= total degree`` on the
benchmark systems, the d(m, p, q) column for pole placement, and the
branch-and-bound ``best_partition`` agreeing with the brute-force sweep.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.homotopy import (
    best_partition,
    format_table,
    multihomogeneous_bezout,
    named_report,
    pieri_counts,
    root_counts,
    set_partitions,
)
from repro.polynomials import PolynomialSystem, variables
from repro.systems import (
    cyclic_roots_system,
    katsura_system,
    noon_system,
    rps_surrogate_system,
)


class TestBestPartitionBranchAndBound:
    """The pruned search must agree with the exhaustive one everywhere."""

    @pytest.mark.parametrize(
        "system",
        [
            cyclic_roots_system(4),
            katsura_system(4),
            noon_system(3),
            rps_surrogate_system(5, rng=np.random.default_rng(0)),
        ],
        ids=["cyclic-4", "katsura-4", "noon-3", "rps-5"],
    )
    def test_matches_brute_force(self, system):
        brute = min(
            multihomogeneous_bezout(system, p)
            for p in set_partitions(range(system.nvars))
        )
        partition, count = best_partition(system)
        assert count == brute
        assert multihomogeneous_bezout(system, partition) == count

    def test_eight_variables_stay_fast(self):
        # Bell(8) = 4140 partitions; the pruned search must finish well
        # under the old full-DP sweep's budget (tens of seconds)
        import time

        t0 = time.perf_counter()
        _, count = best_partition(cyclic_roots_system(8))
        assert count == 40320  # 8! — cyclic's best bound IS total degree
        assert time.perf_counter() - t0 < 10.0


class TestRootCountReports:
    def test_cyclic5_chain(self):
        r = root_counts(
            cyclic_roots_system(5), name="cyclic-5",
            rng=np.random.default_rng(0), known=70,
        )
        assert (r.total_degree, r.m_homogeneous, r.mixed_volume) == (120, 120, 70)
        assert r.best_bound == 70 == r.known
        assert r.pieri is None

    def test_skip_flags(self):
        r = root_counts(
            noon_system(3), rng=np.random.default_rng(0),
            with_m_homogeneous=False, with_mixed_volume=False,
        )
        assert r.total_degree == 27
        assert r.m_homogeneous is None and r.mixed_volume is None
        assert r.best_bound == 27

    def test_mhom_skipped_beyond_variable_budget(self):
        r = root_counts(
            cyclic_roots_system(6), rng=np.random.default_rng(0),
            max_mhom_vars=5, with_mixed_volume=False,
        )
        assert r.m_homogeneous is None and r.partition is None

    def test_non_square_rejected(self):
        x, y = variables(2)
        with pytest.raises(ValueError):
            root_counts(PolynomialSystem([x + y]))

    def test_pieri_static_case_builds_polynomial_bounds(self):
        r = pieri_counts(2, 2, 0, rng=np.random.default_rng(1))
        # the paper's headline gap: d(2,2,0) = 2 under every product bound
        assert r.pieri == r.known == 2
        assert r.total_degree is not None
        assert r.pieri <= r.mixed_volume <= r.m_homogeneous <= r.total_degree
        assert r.pieri < r.m_homogeneous

    def test_pieri_dynamic_case_keeps_count_only(self):
        r = pieri_counts(2, 2, 1, rng=np.random.default_rng(0))
        assert r.pieri == r.known == 8
        assert r.nvars == 8  # mp + q(m+p)
        assert r.total_degree is None and r.mixed_volume is None


class TestNamedReports:
    def test_named_benchmark_systems(self):
        r = named_report("noon-3", rng=np.random.default_rng(0))
        assert r.name == "noon-3" and r.mixed_volume == 21
        r = named_report("cyclic-5", rng=np.random.default_rng(0),
                         with_m_homogeneous=False)
        assert r.known == 70  # the literature count rides along

    def test_named_pieri_default_q(self):
        assert named_report("pieri-2-2").pieri == 2

    @pytest.mark.parametrize("bad", ["cubic-3", "cyclic", "cyclic-x",
                                     "pieri-2", "noon-3-4"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            named_report(bad)


class TestTableAndCli:
    def test_format_table_alignment_and_dashes(self):
        reports = [
            named_report("noon-3", rng=np.random.default_rng(0)),
            pieri_counts(2, 2, 1),
        ]
        text = format_table(reports)
        lines = text.splitlines()
        assert lines[0].startswith("system")
        assert "noon-3" in text and "pieri-2-2-1" in text
        assert "—" in text  # the inapplicable cells
        assert len(lines) == 4  # header, rule, two system rows

    def test_cli_prints_requested_rows(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.homotopy.counts",
             "noon-3", "pieri-2-2-0", "--partitions"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "noon-3" in proc.stdout and "pieri-2-2-0" in proc.stdout
        assert "21" in proc.stdout  # noon-3 mixed volume
        assert "best partition" in proc.stdout
        assert "RuntimeWarning" not in proc.stderr  # clean -m entry point

    def test_cli_rejects_unknown_system(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.homotopy.counts", "bogus-9"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert "unknown system kind" in proc.stderr
