"""Tests for the compiled kernel backend (``repro.kernels``).

The load-bearing claims: the SLP backend agrees with the seed
arithmetic to machine precision on arbitrary systems (hypothesis sweeps
random supports, repeated exponents, empty equations), one row of a
batch is bit-identical to the one-row batch, solver results are
bitwise-equal between scalar and batched tracking under ``kernel="slp"``,
tapes and kernels are memoized by structure/coefficient fingerprints,
and kernel effort statistics surface in :class:`SolveReport` summaries
and sweep journals.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.homotopy import ConvexHomotopy, solve
from repro.kernels import (
    KERNEL_BACKENDS,
    KernelUsage,
    NaiveSystemKernel,
    Term,
    build_tape,
    clear_kernel_cache,
    compile_system_kernel,
    compile_term_kernel,
    kernel_cache_info,
    normalize_kernel,
    system_terms,
)
from repro.polynomials import Polynomial, PolynomialSystem
from repro.systems import cyclic_roots_system, katsura_system

# ---------------------------------------------------------------------------
# strategies: random systems with repeated exponents and empty equations
# ---------------------------------------------------------------------------

small_complex = st.complex_numbers(
    max_magnitude=4.0, allow_nan=False, allow_infinity=False
)


@st.composite
def random_systems(draw):
    nvars = draw(st.integers(1, 3))
    polys = []
    for _ in range(nvars):
        n_terms = draw(st.integers(0, 5))  # 0 => an identically-zero row
        coeffs = {}
        for _ in range(n_terms):
            expo = tuple(draw(st.integers(0, 4)) for _ in range(nvars))
            # repeated exponents overwrite: exercises coefficient merging
            coeffs[expo] = draw(small_complex)
        polys.append(Polynomial(coeffs, nvars=nvars))
    return PolynomialSystem(polys)


@st.composite
def point_batches(draw, nvars):
    npts = draw(st.integers(1, 5))
    vals = [
        complex(draw(st.floats(-2.0, 2.0)), draw(st.floats(-2.0, 2.0)))
        for _ in range(npts * nvars)
    ]
    return np.asarray(vals, dtype=complex).reshape(npts, nvars)


def _close(a, b):
    scale = 1.0 + max(
        float(np.max(np.abs(a), initial=0.0)),
        float(np.max(np.abs(b), initial=0.0)),
    )
    return float(np.max(np.abs(a - b), initial=0.0)) <= 1e-11 * scale


# ---------------------------------------------------------------------------
# satellite 2: SLP vs naive to machine precision on random systems
# ---------------------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_slp_matches_naive_on_random_systems(data):
    system = data.draw(random_systems())
    X = data.draw(point_batches(system.nvars))
    kernel = compile_system_kernel(system, "slp")
    res_n, jac_n = system.evaluate_and_jacobian_many(X)
    res_s, jac_s = kernel.evaluate_and_jacobian(X)
    assert _close(res_s, res_n)
    assert _close(jac_s, jac_n)
    assert _close(kernel.evaluate(X), system.evaluate_many(X))


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_slp_row_of_batch_is_bitwise_scalar(data):
    system = data.draw(random_systems())
    X = data.draw(point_batches(system.nvars))
    kernel = compile_system_kernel(system, "slp")
    res, jac = kernel.evaluate_and_jacobian(X)
    i = data.draw(st.integers(0, X.shape[0] - 1))
    res1, jac1 = kernel.evaluate_and_jacobian(X[i : i + 1])
    assert np.array_equal(res1[0], res[i])
    assert np.array_equal(jac1[0], jac[i])


def test_slp_matches_naive_on_benchmark_systems():
    rng = np.random.default_rng(3)
    for system in (cyclic_roots_system(5), katsura_system(6)):
        X = rng.standard_normal((17, system.nvars)) + 1j * rng.standard_normal(
            (17, system.nvars)
        )
        kernel = compile_system_kernel(system, "slp")
        res_n, jac_n = system.evaluate_and_jacobian_many(X)
        res_s, jac_s = kernel.evaluate_and_jacobian(X)
        assert _close(res_s, res_n) and _close(jac_s, jac_n)


# ---------------------------------------------------------------------------
# backend plumbing: selection, validation, naive wrapper, pickling
# ---------------------------------------------------------------------------


def test_normalize_kernel_accepts_known_backends_only():
    assert normalize_kernel(None) is None
    for name in KERNEL_BACKENDS:
        assert normalize_kernel(name) == name
    with pytest.raises(ValueError, match="unknown kernel backend"):
        normalize_kernel("cuda")


def test_naive_kernel_is_bitwise_the_seed_path():
    system = katsura_system(3)
    kernel = compile_system_kernel(system, "naive")
    assert isinstance(kernel, NaiveSystemKernel)
    X = np.random.default_rng(0).standard_normal((6, system.nvars)) + 0j
    assert np.array_equal(kernel.evaluate(X), system.evaluate_many(X))
    res_k, jac_k = kernel.evaluate_and_jacobian(X)
    res_s, jac_s = system.evaluate_and_jacobian_many(X)
    assert np.array_equal(res_k, res_s) and np.array_equal(jac_k, jac_s)
    assert kernel.stats.calls == 2 and kernel.stats.evaluations == 12


def test_system_select_kernel_routes_scalar_and_batch():
    system = katsura_system(2)
    x = np.array([0.3 + 0.2j, -0.1j, 0.7 + 0j])
    base_scalar = system.evaluate(x)
    base_jac = system.jacobian_at(x)
    system.select_kernel("slp")
    assert system.kernel_backend == "slp"
    assert _close(system.evaluate(x), base_scalar)
    assert _close(system.jacobian_at(x), base_jac)
    stats = system.kernel_stats()
    assert stats["backend"] == "slp" and stats["calls"] >= 2
    system.select_kernel(None)
    assert system.kernel_backend is None
    assert np.array_equal(system.evaluate(x), base_scalar)


def test_selected_kernel_survives_pickling_by_name():
    system = cyclic_roots_system(4)
    system.select_kernel("slp")
    clone = pickle.loads(pickle.dumps(system))
    assert clone.kernel_backend == "slp"
    X = np.full((2, 4), 0.5 + 0.25j)
    assert np.array_equal(clone.evaluate_many(X), system.evaluate_many(X))


def test_convex_homotopy_pickles_and_rebinds_kernel():
    h = ConvexHomotopy(
        katsura_system(2), katsura_system(2), gamma=0.6 + 0.8j, kernel="slp"
    )
    clone = pickle.loads(pickle.dumps(h))
    assert clone.kernel == "slp" and len(clone.kernels) == 2
    X = np.full((3, 3), 0.3 - 0.1j)
    assert np.array_equal(
        clone.evaluate_batch(X, 0.5), h.evaluate_batch(X, 0.5)
    )


# ---------------------------------------------------------------------------
# memoization: structure fingerprints share tapes, coefficients key kernels
# ---------------------------------------------------------------------------


def test_kernel_memoized_by_structure_and_coefficients():
    clear_kernel_cache()
    system = katsura_system(3)
    k1 = compile_system_kernel(system, "slp")
    k2 = compile_system_kernel(system, "slp")
    assert k1 is k2
    info = kernel_cache_info()
    assert info["kernels"] == 1 and info["kernel_hits"] == 1
    # same structure, different coefficients: new kernel, shared tape
    terms = system_terms(system)
    shifted = [
        Term(t.row, t.expo, t.coeff * (1.0 + 0.5j), t.eta) for t in terms
    ]
    from repro.kernels import cached_slp_kernel

    k3 = cached_slp_kernel(system.neqs, system.nvars, shifted)
    assert k3 is not k1 and k3.tape is k1.tape
    assert k3.stats.cache_hit and k3.stats.taping_seconds == 0.0
    clear_kernel_cache()
    assert kernel_cache_info()["kernels"] == 0


def test_tape_shares_power_products_across_equations():
    # x^4 needs 3 multiplies; y*x^4 on another row reuses the whole
    # chain and adds one primal node (x^4*y) plus one AD node (x^3*y)
    # — 5 total, instead of the 7 an unshared taping would emit
    terms = [
        Term(row=0, expo=(4, 0), coeff=1.0 + 0j),
        Term(row=1, expo=(4, 1), coeff=2.0 + 0j),
    ]
    tape = build_tape(2, 2, terms)
    muls = [op for op in tape.ops if op[0] == "mul"]
    assert len(muls) == 5


# ---------------------------------------------------------------------------
# solver integration: parity, stats in SolveReport
# ---------------------------------------------------------------------------


def test_solve_scalar_batch_parity_with_slp_kernel():
    a = solve(
        katsura_system(3),
        mode="per_path",
        rng=np.random.default_rng(11),
        kernel="slp",
    )
    b = solve(
        katsura_system(3),
        mode="batch",
        rng=np.random.default_rng(11),
        kernel="slp",
    )
    assert len(a.results) == len(b.results)
    for ra, rb in zip(a.results, b.results):
        assert ra.status == rb.status
        assert np.array_equal(ra.solution, rb.solution)


def test_solve_slp_finds_the_same_roots_as_default():
    base = solve(katsura_system(3), rng=np.random.default_rng(5))
    slp = solve(katsura_system(3), rng=np.random.default_rng(5), kernel="slp")
    assert slp.summary["success"] == base.summary["success"]
    assert slp.n_solutions == base.n_solutions
    matched = 0
    for s in slp.solutions:
        if any(np.max(np.abs(s - t)) < 1e-8 for t in base.solutions):
            matched += 1
    assert matched == base.n_solutions


def test_solve_report_carries_kernel_stats():
    report = solve(
        katsura_system(2), rng=np.random.default_rng(0), kernel="slp"
    )
    stats = report.summary["kernel"]
    assert stats["backend"] == "slp"
    assert stats["kernels"] == 2  # start + target system kernels
    assert stats["tape_ops"] > 0
    assert stats["calls"] > 0 and stats["evaluations"] >= stats["calls"]
    # the default path stays untouched: no kernel key, no accounting
    assert "kernel" not in solve(
        katsura_system(2), rng=np.random.default_rng(0)
    ).summary


def test_kernel_usage_reports_deltas_not_lifetime_counts():
    system = katsura_system(2)
    kernel = compile_system_kernel(system, "slp")
    X = np.zeros((4, system.nvars), dtype=complex)
    kernel.evaluate(X)  # pre-existing traffic
    usage = KernelUsage([kernel])
    kernel.evaluate(X)
    kernel.evaluate_and_jacobian(X)
    report = usage.report()
    assert report["calls"] == 2 and report["evaluations"] == 8
    assert KernelUsage([]).report() is None


# ---------------------------------------------------------------------------
# polyhedral integration: parametric tapes with t^eta terms
# ---------------------------------------------------------------------------


def test_cell_homotopy_slp_matches_triplet_scatter():
    from repro.polyhedral import PolyhedralStart
    from repro.polyhedral.homotopy import CellHomotopy

    # build both backends of one cell homotopy from the same data
    ps = PolyhedralStart(cyclic_roots_system(3), np.random.default_rng(2))
    cell = ps.cells[0]
    positive = np.concatenate([e[e > 0] for e in cell.etas])
    scale = 1.0 / float(positive.min())
    etas = [
        np.where(e > 0, np.maximum(e * scale, 1.0), 0.0) for e in cell.etas
    ]
    naive = CellHomotopy(ps.subdivision.supports, ps.coefficients, etas)
    fast = CellHomotopy(
        ps.subdivision.supports, ps.coefficients, etas, kernel="slp"
    )
    rng = np.random.default_rng(0)
    X = rng.standard_normal((7, 3)) + 1j * rng.standard_normal((7, 3))
    for t in (0.0, 0.35, 1.0, 0.5 + 0.25j):  # complex t: Cauchy loops
        assert _close(naive.evaluate_batch(X, t), fast.evaluate_batch(X, t))
        rn, jn = naive.evaluate_and_jacobian_batch(X, t)
        rs, js = fast.evaluate_and_jacobian_batch(X, t)
        assert _close(rn, rs) and _close(jn, js)
        assert _close(
            naive.jacobian_t_batch(X, t), fast.jacobian_t_batch(X, t)
        )
        jxn, jtn = naive.jacobians_batch(X, t)
        jxs, jts = fast.jacobians_batch(X, t)
        assert _close(jxn, jxs) and _close(jtn, jts)


def test_compile_term_kernel_requires_slp():
    with pytest.raises(ValueError, match="only support the 'slp'"):
        compile_term_kernel(1, 1, [Term(0, (1,), 1.0 + 0j, 1.0)], "naive")


def test_polyhedral_solve_with_slp_kernel():
    base = solve(
        cyclic_roots_system(4),
        start="polyhedral",
        mode="batch",
        rng=np.random.default_rng(9),
    )
    fast = solve(
        cyclic_roots_system(4),
        start="polyhedral",
        mode="batch",
        rng=np.random.default_rng(9),
        kernel="slp",
    )
    assert fast.summary["mixed_volume"] == base.summary["mixed_volume"]
    assert fast.summary["success"] == base.summary["success"]
    stats = fast.summary["kernel"]
    # convex phase kernels plus at least one parametric cell kernel
    assert stats["kernels"] > 2 and stats["evaluations"] > 0


# ---------------------------------------------------------------------------
# sweep integration: kernel axis, journaled stats
# ---------------------------------------------------------------------------


def test_jobspec_kernel_axis_and_ids():
    from repro.sweep.spec import JobSpec, SweepSpec

    default = JobSpec("cyclic", {"n": 4}, seed=0)
    assert default.kernel == "naive"
    assert default.job_id == "cyclic-n4-s0"  # old journals stay valid
    slp = JobSpec("cyclic", {"n": 4}, seed=0, kernel="slp")
    assert slp.job_id == "cyclic-n4-slp-s0"
    assert JobSpec.from_dict(slp.to_dict()) == slp
    with pytest.raises(ValueError, match="unknown kernel"):
        JobSpec("cyclic", {"n": 4}, kernel="gpu")
    with pytest.raises(ValueError, match="no kernel backend"):
        JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, kernel="slp")
    spec = SweepSpec.from_dict(
        {
            "name": "k",
            "grids": [
                {
                    "kind": "katsura",
                    "n": [3],
                    "kernel": ["naive", "slp"],
                    "seeds": [0],
                }
            ],
        }
    )
    assert spec.job_ids() == ["katsura-n3-s0", "katsura-n3-slp-s0"]


def test_run_job_journals_deterministic_kernel_stats():
    from repro.sweep.engine import run_job
    from repro.sweep.spec import JobSpec

    job = JobSpec("katsura", {"n": 3}, seed=0, kernel="slp")
    rec = run_job(job)
    stats = rec["result"]["kernel"]
    assert stats["backend"] == "slp"
    assert "taping_seconds" not in stats  # wall clock never enters journals
    assert rec == run_job(job)  # bit-for-bit reproducible record
