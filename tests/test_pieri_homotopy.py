"""Tests for the Pieri homotopy numerics and the sequential solver."""

import numpy as np
import pytest

from repro.linalg import random_plane
from repro.schubert import (
    LocalizationPattern,
    PieriEdgeHomotopy,
    PieriInstance,
    PieriProblem,
    PieriSolver,
    PieriTreeNode,
    evaluate_map,
    intersection_residuals,
    normalize_to_standard_chart,
    pieri_root_count,
    special_plane,
    trivial_solution_matrix,
)


class TestMapEvaluation:
    def test_trivial_solution_shape(self):
        prob = PieriProblem(2, 2, 1)
        c = trivial_solution_matrix(prob)
        assert c.shape == (8, 2)
        assert c[0, 0] == 1 and c[1, 1] == 1
        assert np.sum(np.abs(c)) == 2

    def test_evaluate_constant_map(self):
        prob = PieriProblem(2, 2, 0)
        c = trivial_solution_matrix(prob)
        pat = prob.trivial_pattern()
        x = evaluate_map(c, pat, 3.7 + 2j, 1.0)
        assert x.shape == (4, 2)
        assert np.allclose(x[:2, :], np.eye(2))

    def test_degree_one_column_homogenization(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        c = np.zeros((8, 2), dtype=complex)
        c[0, 0] = 2.0  # column 1, degree 0 (L_1 = 0)
        c[1, 1] = 3.0  # column 2, degree 0 coefficient (L_2 = 1)
        c[5, 1] = 5.0  # column 2, degree 1 coefficient of row 2
        s, s0 = 2.0, 0.5
        x = evaluate_map(c, pat, s, s0)
        # column 1 has degree 0: entry = 2 * s^0 * s0^0
        assert x[0, 0] == 2.0
        # column 2 has degree 1: 3 * s0 + 5 * s at ambient row 2
        assert x[1, 1] == 3.0 * s0 + 5.0 * s

    def test_at_infinity_picks_top_coefficients(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        rng = np.random.default_rng(0)
        c = np.zeros((8, 2), dtype=complex)
        for r1, j1 in pat.support():
            c[r1 - 1, j1 - 1] = rng.standard_normal() + 1j * rng.standard_normal()
        x = evaluate_map(c, pat, 1.0, 0.0)
        # column 2 at (1, 0): only the degree-1 block (rows 4..7) survives
        assert np.allclose(x[:, 1], c[4:8, 1])


class TestSpecialPlane:
    def test_shape_and_orthogonality_to_corners(self):
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        k = special_plane(pat)
        assert k.shape == (4, 2)
        for r in pat.corner_rows():
            assert np.allclose(k[r - 1, :], 0)

    def test_key_lemma_det_is_product_of_pivots(self):
        """det [X(1,0) | K_b] = +/- product of bottom-pivot entries."""
        rng = np.random.default_rng(1)
        for m, p, q, pivots in [
            (2, 2, 0, (3, 4)),
            (2, 2, 1, (4, 7)),
            (3, 2, 1, (5, 9)),
            (2, 3, 0, (3, 4, 5)),
        ]:
            prob = PieriProblem(m, p, q)
            pat = LocalizationPattern(prob, pivots)
            c = np.zeros((prob.nrows, p), dtype=complex)
            for r1, j1 in pat.support():
                c[r1 - 1, j1 - 1] = (
                    rng.standard_normal() + 1j * rng.standard_normal()
                )
            x = evaluate_map(c, pat, 1.0, 0.0)
            det = np.linalg.det(np.hstack([x, special_plane(pat)]))
            prod = np.prod([c[b - 1, j] for j, b in enumerate(pivots)])
            assert abs(abs(det) - abs(prod)) < 1e-10 * max(1.0, abs(prod))

    def test_vanishes_iff_pivot_zero(self):
        rng = np.random.default_rng(2)
        prob = PieriProblem(2, 2, 1)
        pat = LocalizationPattern(prob, (4, 7))
        c = np.zeros((8, 2), dtype=complex)
        for r1, j1 in pat.support():
            c[r1 - 1, j1 - 1] = rng.standard_normal() + 1j
        c[6, 1] = 0.0  # kill bottom pivot of column 2 (row 7, 1-based)
        x = evaluate_map(c, pat, 1.0, 0.0)
        det = np.linalg.det(np.hstack([x, special_plane(pat)]))
        assert abs(det) < 1e-12


class TestNormalization:
    def test_normalize(self):
        prob = PieriProblem(2, 2, 0)
        pat = LocalizationPattern(prob, (3, 4))
        rng = np.random.default_rng(3)
        c = np.zeros((4, 2), dtype=complex)
        for r1, j1 in pat.support():
            c[r1 - 1, j1 - 1] = rng.standard_normal() + 1j * rng.standard_normal()
        out = normalize_to_standard_chart(c, pat)
        assert abs(out[2, 0] - 1) < 1e-14
        assert abs(out[3, 1] - 1) < 1e-14

    def test_zero_pivot_raises(self):
        prob = PieriProblem(2, 2, 0)
        pat = LocalizationPattern(prob, (3, 4))
        c = np.zeros((4, 2), dtype=complex)
        c[0, 0] = 1.0
        c[3, 1] = 1.0  # pivot of column 1 (row 3) left at zero
        with pytest.raises(ZeroDivisionError):
            normalize_to_standard_chart(c, pat)


class TestEdgeHomotopy:
    def _first_edge(self, m=2, p=2, q=0, seed=4):
        rng = np.random.default_rng(seed)
        prob = PieriProblem(m, p, q)
        instance = PieriInstance.random(m, p, q, rng)
        node = next(PieriTreeNode(prob).children())
        hom = PieriEdgeHomotopy(
            node.pattern(),
            node.columns[-1],
            instance.planes[:1],
            instance.points[:1],
            rng=np.random.default_rng(seed + 1),
        )
        return prob, instance, node, hom

    def test_dimension_matches_level(self):
        _, _, node, hom = self._first_edge()
        assert hom.dim == node.level == 1

    def test_start_is_exact_root(self):
        prob, _, _, hom = self._first_edge()
        x0 = hom.start_vector(trivial_solution_matrix(prob))
        res = hom.evaluate(x0, 0.0)
        assert np.max(np.abs(res)) < 1e-12

    def test_start_jacobian_nonsingular(self):
        prob, _, _, hom = self._first_edge()
        x0 = hom.start_vector(trivial_solution_matrix(prob))
        jac = hom.jacobian_x(x0, 0.0)
        assert abs(np.linalg.det(jac)) > 1e-12

    def test_jacobian_x_finite_difference(self):
        prob, _, _, hom = self._first_edge(m=2, p=2, q=1, seed=5)
        rng = np.random.default_rng(6)
        x = rng.standard_normal(hom.dim) + 1j * rng.standard_normal(hom.dim)
        t = 0.37
        jac = hom.jacobian_x(x, t)
        h = 1e-7
        for k in range(hom.dim):
            xp = x.copy()
            xp[k] += h
            fd = (hom.evaluate(xp, t) - hom.evaluate(x, t)) / h
            assert np.allclose(jac[:, k], fd, atol=1e-5)

    def test_jacobian_t_finite_difference(self):
        prob, _, _, hom = self._first_edge(m=3, p=2, q=0, seed=7)
        rng = np.random.default_rng(8)
        x = rng.standard_normal(hom.dim) + 1j * rng.standard_normal(hom.dim)
        t = 0.42
        jt = hom.jacobian_t(x, t)
        h = 1e-7
        fd = (hom.evaluate(x, t + h) - hom.evaluate(x, t)) / h
        assert np.allclose(jt, fd, atol=1e-5)

    def test_condition_count_validation(self):
        prob = PieriProblem(2, 2, 0)
        node = next(PieriTreeNode(prob).children())
        with pytest.raises(ValueError):
            PieriEdgeHomotopy(node.pattern(), node.columns[-1], [], [])

    def test_chart_roundtrip(self):
        prob, _, _, hom = self._first_edge(m=2, p=2, q=1, seed=9)
        rng = np.random.default_rng(10)
        x = rng.standard_normal(hom.dim) + 1j * rng.standard_normal(hom.dim)
        c = hom.to_matrix(x)
        assert np.allclose(hom.from_matrix(c), x)

    def test_from_matrix_rejects_wrong_chart(self):
        prob, _, _, hom = self._first_edge()
        c = np.zeros((prob.nrows, prob.p), dtype=complex)
        with pytest.raises(ValueError):
            hom.from_matrix(c)


class TestSolver:
    @pytest.mark.parametrize(
        "m,p,q", [(2, 1, 0), (1, 2, 0), (2, 2, 0), (3, 2, 0), (2, 2, 1)]
    )
    def test_finds_all_solutions(self, m, p, q):
        """The headline invariant: #solutions == d(m,p,q), all verified."""
        instance = PieriInstance.random(m, p, q, np.random.default_rng(11))
        report = PieriSolver(instance, seed=12).solve()
        assert report.n_solutions == pieri_root_count(m, p, q)
        assert report.failures == 0
        assert report.max_residual() < 1e-8
        assert report.all_distinct()

    def test_jobs_per_level_match_poset(self):
        instance = PieriInstance.random(2, 2, 1, np.random.default_rng(13))
        report = PieriSolver(instance, seed=14).solve()
        from repro.schubert import level_job_counts

        expected = level_job_counts(2, 2, 1)
        got = [report.jobs_per_level[i + 1] for i in range(len(expected))]
        assert got == expected

    def test_deterministic_given_seed(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(15))
        r1 = PieriSolver(instance, seed=16).solve()
        r2 = PieriSolver(instance, seed=16).solve()
        s1 = sorted(r1.solutions, key=lambda c: abs(c[0, 0]))
        s2 = sorted(r2.solutions, key=lambda c: abs(c[0, 0]))
        for a, b in zip(s1, s2):
            assert np.allclose(a, b, atol=1e-10)

    def test_instance_validation(self):
        prob = PieriProblem(2, 2, 0)
        rng = np.random.default_rng(17)
        planes = [random_plane(4, 2, rng) for _ in range(4)]
        with pytest.raises(ValueError):
            PieriInstance(prob, planes[:3], [1, 2, 3])  # too few
        with pytest.raises(ValueError):
            PieriInstance(prob, planes, [1, 1, 2, 3])  # repeated point
        bad = [random_plane(3, 2, rng) for _ in range(4)]
        with pytest.raises(ValueError):
            PieriInstance(prob, bad, [1, 2, 3, 4])

    def test_solutions_fit_root_pattern(self):
        from repro.schubert import PieriPoset

        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(18))
        report = PieriSolver(instance, seed=19).solve()
        root = PieriPoset.build(instance.problem).root()
        support = {(r - 1, j - 1) for r, j in root.support()}
        for sol in report.solutions:
            nz = {tuple(idx) for idx in np.argwhere(np.abs(sol) > 1e-12)}
            assert nz <= support
            # standard chart: pivots are exactly 1
            for j, b in enumerate(root.bottom_pivots):
                assert abs(sol[b - 1, j] - 1) < 1e-12

    def test_verification_residuals_are_dets(self):
        instance = PieriInstance.random(2, 2, 0, np.random.default_rng(20))
        report = PieriSolver(instance, seed=21).solve()
        from repro.schubert import PieriPoset

        root = PieriPoset.build(instance.problem).root()
        res = intersection_residuals(
            report.solutions[0], root, instance.planes, instance.points
        )
        assert res.shape == (4,)
        assert np.max(np.abs(res)) < 1e-8
