"""Extension benchmark — offline tree solve vs online parameter continuation.

Not a paper table; quantifies the deployment mode the paper's framework
enables: the tree tracks sum-of-level-counts paths once, each further
instance costs only d(m, p, q) paths.

Run: pytest benchmarks/bench_oracle.py --benchmark-only
"""

import numpy as np
import pytest

from repro.control import PolePlacementOracle, random_plant
from repro.schubert import (
    PieriInstance,
    PieriSolver,
    continue_to_instance,
    pieri_root_count,
    verify_solutions,
)


@pytest.fixture(scope="module")
def trained_221():
    return PolePlacementOracle.train(2, 2, 1, seed=1)


def bench_offline_tree_solve(benchmark):
    """The offline cost: full tree on a (2,2,1) general instance."""
    instance = PieriInstance.random(2, 2, 1, np.random.default_rng(70))

    def run():
        return PieriSolver(instance, seed=71).solve()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_solutions == 8


def bench_online_continuation(benchmark, trained_221):
    """The online cost: 8 paths from the oracle to a fresh instance."""
    target = PieriInstance.random(2, 2, 1, np.random.default_rng(72))

    def run():
        sols, _ = continue_to_instance(
            trained_221.base_instance,
            trained_221.base_solutions,
            target,
            rng=np.random.default_rng(73),
        )
        return sols

    sols = benchmark(run)
    assert verify_solutions(target, sols).ok


def bench_oracle_online_vs_tree(benchmark, trained_221):
    """End-to-end query including plane construction and extraction."""
    plant = random_plant(2, 2, 1, np.random.default_rng(74))
    poles = [complex(-1.3 - 0.21 * k, 0.77 * (-1) ** k) for k in range(8)]

    def run():
        return trained_221.place(plant, poles, seed=75)

    result = benchmark(run)
    assert result.n_laws >= 7
    # the online step tracks d(2,2,1)=8 paths vs the tree's 37
    assert pieri_root_count(2, 2, 1) == 8
