"""Amortization benchmark: artifact-cached continuation vs ab initio.

The PR-9 acceptance experiment, both workloads:

- **Pieri repeated queries** — B same-shape ``(m, p, q)`` queries.
  Cold: every query solves its own Pieri tree ab initio.  Warm: one
  generic instance is solved once (offline, not timed), then all B
  queries ride a single fused :class:`~repro.schubert.parameter.
  PieriParameterStack` — ``B x d(m, p, q)`` coefficient-parameter
  continuation paths in one structure-of-arrays front.  Gate: >= 5x.
- **Polyhedral same supports** — B random-coefficient systems sharing
  one Newton-polytope structure.  Cold: each pays cell enumeration +
  phase 1 + phase 2.  Warm: each continues the cached solved generic
  system (``solve(..., cache=store)``) — mixed-volume-many paths,
  no cells, no phase 1.  Gate: >= 2x.

Both gates come with a correctness gate: every warm solution set must
match its ab-initio counterpart to 1e-8 (nearest-neighbour matching).

Run:    PYTHONPATH=src python benchmarks/bench_cache.py
Smoke:  PYTHONPATH=src python benchmarks/bench_cache.py --quick
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np

from repro.artifacts import ArtifactStore, load_pieri_generic
from repro.homotopy import solve
from repro.polyhedral.supports import coefficient_system, supports_of
from repro.schubert import (
    PieriInstance,
    PieriSolver,
    continue_to_instances,
    pieri_root_count,
)
from repro.systems import cyclic_roots_system

PARITY_TOL = 1e-8


def _match_distance(warm, fresh) -> float:
    """Max over warm solutions of the distance to its nearest fresh one."""
    warm = [np.asarray(w, dtype=complex).ravel() for w in warm]
    fresh = np.stack(
        [np.asarray(f, dtype=complex).ravel() for f in fresh]
    )
    worst = 0.0
    for w in warm:
        worst = max(worst, float(np.min(np.max(np.abs(fresh - w), axis=1))))
    return worst


def bench_pieri(m: int, p: int, q: int, n_queries: int, seed: int):
    d = pieri_root_count(m, p, q)
    store = ArtifactStore(tempfile.mkdtemp(prefix="bench-cache-pieri-"))
    rng = np.random.default_rng(seed)
    queries = [
        PieriInstance.random(m, p, q, rng) for _ in range(n_queries)
    ]

    # cold baseline: every query pays its own tree (also the parity ref)
    cold_reports = []
    t0 = time.perf_counter()
    for k, instance in enumerate(queries):
        cold_reports.append(
            PieriSolver(instance, seed=seed + k).solve(mode="batch")
        )
    cold_seconds = time.perf_counter() - t0
    tree_paths = sum(
        sum(r.jobs_per_level.values()) for r in cold_reports
    )

    # offline: one generic instance solved once, stored once (not timed)
    generic = PieriInstance.random(m, p, q, np.random.default_rng(seed + 999))
    offline = PieriSolver(generic, seed=seed).solve(mode="batch", cache=store)
    assert offline.cache and offline.cache["stored"], "offline solve must cache"
    loaded = load_pieri_generic(store, m, p, q)
    assert loaded is not None
    gen_instance, gen_solutions, _ = loaded

    # warm: all queries in ONE fused stacked front
    t0 = time.perf_counter()
    pairs = continue_to_instances(
        gen_instance, gen_solutions, queries,
        rng=np.random.default_rng(seed),
    )
    warm_seconds = time.perf_counter() - t0

    worst = 0.0
    for (solutions, results), report in zip(pairs, cold_reports):
        assert len(solutions) == d and all(r.success for r in results), (
            "warm continuation dropped a path"
        )
        worst = max(worst, _match_distance(solutions, report.solutions))
    speedup = cold_seconds / warm_seconds
    print(f"pieri ({m}, {p}, {q}): d = {d}, B = {n_queries} queries")
    print(f"  cold  (ab-initio trees): {cold_seconds:.3f}s "
          f"({tree_paths} tree paths)")
    print(f"  warm  (one fused stack): {warm_seconds:.3f}s "
          f"({n_queries * d} continuation paths)")
    print(f"  speedup {speedup:.2f}x, worst parity {worst:.2e}")
    return speedup, worst


def bench_polyhedral(n: int, n_queries: int, seed: int):
    store = ArtifactStore(tempfile.mkdtemp(prefix="bench-cache-poly-"))
    supports = [
        np.asarray(s) for s in supports_of(cyclic_roots_system(n))
    ]
    rng = np.random.default_rng(seed)
    systems = []
    for _ in range(n_queries):
        coeffs = [
            rng.standard_normal(len(s)) + 1j * rng.standard_normal(len(s))
            for s in supports
        ]
        systems.append(coefficient_system(supports, coeffs))

    cold_reports = []
    t0 = time.perf_counter()
    for k, system in enumerate(systems):
        cold_reports.append(
            solve(system, start="polyhedral", mode="batch",
                  rng=np.random.default_rng([seed, k]))
        )
    cold_seconds = time.perf_counter() - t0

    # offline: the first system's cold solve populates the store
    offline = solve(systems[0], start="polyhedral", mode="batch",
                    rng=np.random.default_rng([seed, 0]), cache=store)
    assert offline.summary["cache"]["stored"], "offline solve must cache"

    warm_reports = []
    t0 = time.perf_counter()
    for k, system in enumerate(systems):
        warm_reports.append(
            solve(system, start="polyhedral", mode="batch",
                  rng=np.random.default_rng([seed, k, 1]), cache=store)
        )
    warm_seconds = time.perf_counter() - t0

    worst = 0.0
    for warm, cold in zip(warm_reports, cold_reports):
        assert warm.summary["cache"]["status"] == "warm"
        assert len(warm.solutions) == len(cold.solutions), (
            "warm and cold found different solution counts"
        )
        worst = max(worst, _match_distance(warm.solutions, cold.solutions))
    mv = cold_reports[0].summary["mixed_volume"]
    speedup = cold_seconds / warm_seconds
    print(f"polyhedral (cyclic-{n} supports): mixed volume {mv}, "
          f"B = {n_queries} systems")
    print(f"  cold  (cells + phase 1 + phase 2): {cold_seconds:.3f}s")
    print(f"  warm  (coefficient continuation):  {warm_seconds:.3f}s")
    print(f"  speedup {speedup:.2f}x, worst parity {worst:.2e}")
    return speedup, worst


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=2)
    parser.add_argument("--p", type=int, default=2)
    parser.add_argument("--q", type=int, default=1)
    parser.add_argument("--n", type=int, default=4,
                        help="cyclic-n supports for the polyhedral workload")
    parser.add_argument("--queries", type=int, default=6,
                        help="batch size B for both workloads")
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: same shapes, B=6 (the default is already small)",
    )
    args = parser.parse_args()
    if args.quick:
        args.queries = 6

    pieri_speedup, pieri_parity = bench_pieri(
        args.m, args.p, args.q, args.queries, args.seed
    )
    poly_speedup, poly_parity = bench_polyhedral(
        args.n, args.queries, args.seed
    )

    failures = []
    if pieri_speedup < 5.0:
        failures.append(
            f"pieri warm speedup {pieri_speedup:.2f}x < 5x gate"
        )
    if poly_speedup < 2.0:
        failures.append(
            f"polyhedral warm speedup {poly_speedup:.2f}x < 2x gate"
        )
    for name, parity in (("pieri", pieri_parity), ("polyhedral", poly_parity)):
        if parity > PARITY_TOL:
            failures.append(f"{name} parity {parity:.2e} > {PARITY_TOL:.0e}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"PASS: pieri {pieri_speedup:.2f}x (>= 5x), "
          f"polyhedral {poly_speedup:.2f}x (>= 2x), parity <= {PARITY_TOL:.0e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
