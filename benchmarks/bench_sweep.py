#!/usr/bin/env python
"""Sweep engine benchmark: dynamic vs static sharding on a skewed job mix.

The ISSUE-2 acceptance experiment at job granularity, mirroring the
paper's path-granularity Tables I/II: a sweep whose few heavy Pieri jobs
are clustered at the front of the job list (the way divergent cyclic
paths cluster in start-root order) is badly served by static contiguous
blocks — one worker inherits all the heavy jobs — while the dynamic
master/worker schedule rebalances automatically.

Two stages, following the repo's standard cluster substitution (see
``docs/architecture.md``):

1. run the sweep for real on the dynamic process-pool engine, which
   self-reports per-worker busy seconds and journals the measured cost
   of every job;
2. feed those *measured* job costs to the discrete-event cluster
   simulator and compare static contiguous blocks against the dynamic
   master/worker protocol at several CPU counts — deterministic and
   meaningful even on a single-core CI box, where wall-clock cannot
   distinguish schedules.

Acceptance: simulated dynamic wall-clock beats static at every CPU
count > 1 on the skewed mix.

Run:    PYTHONPATH=src python benchmarks/bench_sweep.py
Smoke:  PYTHONPATH=src python benchmarks/bench_sweep.py --quick
"""

from __future__ import annotations

import argparse
import tempfile
import time

from repro.simcluster import Workload, simulate_dynamic, simulate_static
from repro.sweep import JobSpec, SweepSpec, run_sweep


def skewed_spec(n_heavy: int, n_fast: int) -> SweepSpec:
    """Heavy jobs first (clustered), then a long tail of fast jobs."""
    jobs = [
        JobSpec("pieri", {"m": 2, "p": 2, "q": 1}, seed=s)
        for s in range(n_heavy)
    ]
    jobs += [JobSpec("katsura", {"n": 2}, seed=s) for s in range(n_fast)]
    return SweepSpec(name="bench-skewed", jobs=jobs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--heavy", type=int, default=3,
        help="number of clustered heavy Pieri jobs (default 3)",
    )
    parser.add_argument(
        "--fast", type=int, default=21,
        help="number of fast katsura jobs (default 21)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="process-pool size for the real run (default 2)",
    )
    parser.add_argument(
        "--cpus", type=int, nargs="+", default=[2, 4, 8],
        help="simulated CPU counts (default 2 4 8)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 2 heavy + 10 fast jobs, [2, 4] simulated CPUs",
    )
    args = parser.parse_args()
    if args.quick:
        args.heavy, args.fast, args.cpus = 2, 10, [2, 4]

    spec = skewed_spec(args.heavy, args.fast)
    print(
        f"skewed sweep: {args.heavy} heavy Pieri jobs (clustered first) "
        f"+ {args.fast} fast katsura jobs"
    )

    # stage 1: the real engine, dynamic schedule, self-reported busy time
    with tempfile.TemporaryDirectory() as checkpoint:
        t0 = time.perf_counter()
        report = run_sweep(
            spec, checkpoint, n_workers=args.workers,
            schedule="dynamic", mode="process",
        )
        wall = time.perf_counter() - t0
    assert report.complete, "sweep did not complete"
    busy = " ".join(f"{b:5.2f}" for b in report.worker_busy_seconds)
    print(
        f"\nreal dynamic run [{args.workers} workers]: wall {wall:.2f}s, "
        f"cpu {report.total_cpu_seconds:.2f}s, "
        f"imbalance {report.load_imbalance:.2f}"
    )
    print(f"  self-reported per-worker busy s: [{busy}]")

    # stage 2: measured job costs -> simulated static vs dynamic sharding
    costs = [report.records[jid]["seconds"] for jid in spec.job_ids()]
    heavy_share = sum(costs[: args.heavy]) / sum(costs)
    print(
        f"\nmeasured job costs: total {sum(costs):.2f}s, "
        f"heavy {args.heavy}/{len(costs)} jobs carry "
        f"{100 * heavy_share:.0f}% of the work"
    )
    workload = Workload("sweep-measured", costs)

    print(f"\n{'cpus':>5}{'static s':>10}{'dynamic s':>11}"
          f"{'static imb':>12}{'dyn imb':>9}{'gain':>7}")
    all_better = True
    for n in args.cpus:
        st = simulate_static(workload, n, chunking="block")
        dy = simulate_dynamic(workload, n)
        gain = st.wall_seconds / dy.wall_seconds
        all_better &= dy.wall_seconds < st.wall_seconds
        print(
            f"{n:>5}{st.wall_seconds:>10.2f}{dy.wall_seconds:>11.2f}"
            f"{st.load_imbalance:>12.2f}{dy.load_imbalance:>9.2f}"
            f"{gain:>6.2f}x"
        )

    if not all_better:
        print("\nFAIL: dynamic did not beat static sharding everywhere")
        return 1
    print("\nOK: dynamic beats static sharding on the skewed job mix")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
