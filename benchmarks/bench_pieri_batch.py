"""Throughput benchmark: level-batched vs per-path Pieri tree tracking.

The ISSUE-4 acceptance experiment: on a Pieri instance with root count
d(m, p, q) >= 100 — default (2, 2, 3), d = 128, 637 tree edges — solving
the whole tree with ``PieriSolver.solve(mode="batch")`` (every level
tracked as one stacked structure-of-arrays front) must deliver at least
3x the path throughput of the per-path scalar driver
(``mode="per_path"``), with identical solution sets.

Run:    PYTHONPATH=src python benchmarks/bench_pieri_batch.py
Smoke:  PYTHONPATH=src python benchmarks/bench_pieri_batch.py --quick
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.schubert import PieriInstance, PieriSolver, pieri_root_count


def _sorted_solutions(report):
    return sorted(
        report.solutions,
        key=lambda s: (float(s.real.sum()), float(s.imag.sum())),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=2, help="input dimension m")
    parser.add_argument("--p", type=int, default=2, help="output dimension p")
    parser.add_argument(
        "--q", type=int, default=3, help="internal states (map degree) q"
    )
    parser.add_argument(
        "--seed", type=int, default=2004, help="instance + solver seed"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: the (2, 2, 1) cell (37 edges) and a 1.5x gate",
    )
    args = parser.parse_args()
    if args.quick:
        args.m, args.p, args.q = 2, 2, 1

    d = pieri_root_count(args.m, args.p, args.q)
    if not args.quick and d < 100:
        print(f"FAIL: instance has d(m,p,q) = {d} < 100; pick a larger cell")
        return 1
    rng = np.random.default_rng(args.seed)
    instance = PieriInstance.random(args.m, args.p, args.q, rng)
    print(
        f"pieri ({args.m}, {args.p}, {args.q}): d = {d} solution maps, "
        f"N = {instance.problem.num_conditions} conditions"
    )

    t0 = time.perf_counter()
    per_path = PieriSolver(instance, seed=args.seed).solve(mode="per_path")
    per_path_s = time.perf_counter() - t0
    jobs = sum(per_path.jobs_per_level.values())

    t0 = time.perf_counter()
    batch = PieriSolver(instance, seed=args.seed).solve(mode="batch")
    batch_s = time.perf_counter() - t0

    per_path_ms = per_path_s / jobs * 1e3
    batch_ms = batch_s / jobs * 1e3
    speedup = per_path_ms / batch_ms
    print()
    print(f"{'mode':<28}{'paths':>8}{'ms/path':>10}{'speedup':>10}")
    print(f"{'per-path (scalar driver)':<28}{jobs:>8}{per_path_ms:>10.2f}"
          f"{1.0:>10.2f}")
    print(f"{'batch (stacked levels)':<28}{jobs:>8}{batch_ms:>10.2f}"
          f"{speedup:>10.2f}")

    widest = max(batch.level_batches, key=lambda r: r["n_jobs"])
    print(
        f"\nwidest level: {widest['n_jobs']} edges over "
        f"{widest['n_homotopies']} stacked homotopies at level "
        f"{widest['level']} ({widest['seconds'] * 1e3:.0f} ms)"
    )
    requeues = sum(r["chart_switches"] + r["retries"]
                   for r in batch.level_batches)
    print(f"batch requeues (chart switches + retries): {requeues}")

    # parity: identical statuses (failure counts) and endpoints to 1e-8
    sa, sb = _sorted_solutions(per_path), _sorted_solutions(batch)
    parity = (
        per_path.failures == batch.failures
        and len(sa) == len(sb)
        and all(np.max(np.abs(x - y)) < 1e-8 for x, y in zip(sa, sb))
    )
    print(
        f"solutions: per-path {per_path.n_solutions}/{d}, "
        f"batch {batch.n_solutions}/{d}, endpoint parity: "
        f"{'ok' if parity else 'MISMATCH'}"
    )

    threshold = 1.5 if args.quick else 3.0
    if not parity:
        print("FAIL: batch tracking disagrees with per-path tracking")
        return 1
    if speedup < threshold:
        print(f"FAIL: batch speedup {speedup:.2f}x below {threshold}x")
        return 1
    print(f"OK: batch speedup {speedup:.2f}x >= {threshold}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
