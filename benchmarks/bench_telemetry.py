"""Telemetry overhead gate and trace-pipeline smoke.

The PR-8 acceptance experiment, in two halves:

1. **Overhead** — interleaved min-of-N timing of the cyclic batch solve
   with and without an ambient :class:`~repro.telemetry.Telemetry`
   context (aggregation on, per-event tracing off — the sweep engine's
   steady-state configuration).  The instrumented minimum must stay
   within **3%** of the baseline minimum (plus a 30ms absolute floor so
   sub-second quick runs are not judged by scheduler noise).
2. **Pipeline** — one fully traced solve (``trace_paths=True``) must
   export a Chrome-format trace that ``python -m repro.telemetry
   report`` summarizes into per-layer shares, with every layer of the
   stack (predictor, corrector, kernel) present.

Run:    PYTHONPATH=src python benchmarks/bench_telemetry.py       (cyclic-7)
Smoke:  PYTHONPATH=src python benchmarks/bench_telemetry.py --quick  (cyclic-5)
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.homotopy import solve
from repro.systems import cyclic_roots_system
from repro.telemetry import Telemetry, use_telemetry
from repro.telemetry.trace import layer_report, load_trace

GATE_RELATIVE = 0.03  # instrumented minimum <= baseline minimum * (1 + this)
GATE_ABSOLUTE = 0.03  # ... plus this many seconds of scheduler slack
REPS = 4  # interleaved baseline/instrumented pairs (min-of-N)


def _timed_solve(system, seed, ambient):
    if ambient:
        with use_telemetry(Telemetry(name="bench")):
            t0 = time.perf_counter()
            report = solve(
                system,
                mode="batch",
                kernel="slp",
                rng=np.random.default_rng(seed),
            )
            elapsed = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        report = solve(
            system,
            mode="batch",
            kernel="slp",
            rng=np.random.default_rng(seed),
        )
        elapsed = time.perf_counter() - t0
    return elapsed, report


def overhead_gate(n, seed) -> bool:
    system = cyclic_roots_system(n)
    _timed_solve(system, seed, ambient=True)  # warm the kernel cache
    base, instr = [], []
    print(f"{'rep':>4}{'order':>7}{'baseline(s)':>14}{'instrumented(s)':>17}")
    for rep in range(REPS):
        # alternate which side runs first: on multi-second solves the
        # second slot of a pair can be several percent slower (thermal/
        # scheduler drift), which would masquerade as telemetry overhead
        order = (False, True) if rep % 2 == 0 else (True, False)
        pair = {}
        for ambient in order:
            pair[ambient], _ = _timed_solve(system, seed, ambient=ambient)
        base.append(pair[False])
        instr.append(pair[True])
        print(f"{rep:>4}{'b,i' if order[0] is False else 'i,b':>7}"
              f"{pair[False]:>14.3f}{pair[True]:>17.3f}")
    budget = min(base) * (1.0 + GATE_RELATIVE) + GATE_ABSOLUTE
    overhead = (min(instr) / min(base) - 1.0) * 100.0
    print(
        f"\ncyclic-{n}: min baseline {min(base):.3f}s, "
        f"min instrumented {min(instr):.3f}s ({overhead:+.1f}%), "
        f"budget {budget:.3f}s"
    )
    return min(instr) <= budget


def trace_pipeline(n, seed) -> bool:
    system = cyclic_roots_system(n)
    report = solve(
        system,
        mode="batch",
        kernel="slp",
        endgame="cauchy",
        rng=np.random.default_rng(seed),
        trace_paths=True,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"cyclic{n}.trace.json"
        n_events = report.trace.write_trace(path)
        breakdown = layer_report(load_trace(path))
    layers = breakdown["layers"]
    total_self = sum(s["self_seconds"] for s in layers.values()) or 1.0
    print(f"\ntraced solve: {n_events} events, layer shares:")
    for layer, stats in sorted(
        layers.items(), key=lambda kv: -kv[1]["self_seconds"]
    ):
        print(
            f"  {layer:<12} {100 * stats['self_seconds'] / total_self:>5.1f}%"
            f"  ({stats['calls']} spans)"
        )
    missing = {"predictor", "corrector", "kernel"} - set(layers)
    if missing:
        print(f"FAIL: layers missing from the trace: {sorted(missing)}")
        return False
    if n_events == 0:
        print("FAIL: traced solve exported no events")
        return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: cyclic-5"
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    args = parser.parse_args()
    n = 5 if args.quick else 7

    ok_overhead = overhead_gate(n, args.seed)
    ok_trace = trace_pipeline(n, args.seed)
    if not ok_overhead:
        print(f"FAIL: ambient telemetry overhead above {GATE_RELATIVE:.0%}")
        return 1
    if not ok_trace:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
