"""Experiment T4 — Table IV: solving the Pieri problem across (m, p, q).

Every cell's root count is verified combinatorially (instant); the
tractable upper-left cells are solved numerically for real, as on the
paper's PC; the giant cells (135,660 / 24,024 solutions) are covered by
the count check plus the cluster simulation, per DESIGN.md.

Run: pytest benchmarks/bench_table4_mpq.py --benchmark-only
"""

import numpy as np
import pytest

from repro.experiments import PAPER_TABLE4_COUNTS
from repro.schubert import (
    PieriInstance,
    PieriProblem,
    PieriSolver,
    pieri_root_count,
)
from repro.simcluster import default_level_cost, simulate_pieri_tree


def bench_all_root_counts(benchmark):
    """All 14 Table IV cells via the poset DP."""

    def run():
        return {
            cell: pieri_root_count(*cell) for cell in PAPER_TABLE4_COUNTS
        }

    counts = benchmark(run)
    for cell, expected in PAPER_TABLE4_COUNTS.items():
        if cell == (3, 3, 2):
            continue  # paper typo: prints 17462 for 174762
        assert counts[cell] == expected


@pytest.mark.parametrize(
    "m,p,q",
    [(2, 2, 0), (3, 2, 0), (2, 2, 1)],
    ids=["m2p2q0", "m3p2q0", "m2p2q1"],
)
def bench_solve_cell(benchmark, m, p, q):
    """Numerically solve a tractable Table IV cell end to end."""
    instance = PieriInstance.random(m, p, q, np.random.default_rng(40))
    solver = PieriSolver(instance, seed=41)

    def run():
        return solver.solve()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_solutions == pieri_root_count(m, p, q)
    assert report.max_residual() < 1e-8


def bench_intractable_cells_simulated(benchmark):
    """The cells a PC cannot solve: simulate the 64-CPU cluster run."""
    prob = PieriProblem(4, 3, 1)  # 135,660 solutions

    def run():
        t64 = simulate_pieri_tree(prob, 64)
        t1_work = sum(
            cnt * default_level_cost(lvl)
            for lvl, cnt in t64.jobs_per_level.items()
        )
        return t64, t1_work

    t64, t1_work = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(t64.jobs_per_level.values()) > 135_660  # all tree edges
    assert t64.speedup(t1_work) > 30  # the cluster makes it tractable
    print()
    print(
        f"(4,3,1): {sum(t64.jobs_per_level.values())} jobs, "
        f"64-CPU wall {t64.wall_minutes:.1f} sim-min, "
        f"speedup {t64.speedup(t1_work):.1f}x"
    )


def bench_root_count_scaling(benchmark):
    """Poset DP cost for the biggest cell (4,4,0) with 24,024 chains."""

    def run():
        return pieri_root_count(4, 4, 0)

    count = benchmark(run)
    assert count == 24024
