"""Polyhedral root counts: mixed-volume cost vs tracked-path savings.

The ISSUE-3 acceptance experiment: on the sparse benchmark family the
mixed volume (BKK bound) sits far below the total-degree Bezout count,
so ``solve(start="polyhedral")`` tracks a fraction of the paths — 924
instead of 5040 on cyclic-7, the paper's "true root count drives the
parallel workload" argument.  The table prices that saving: the time to
*compute* the mixed volume (support extraction + lifting + mixed-cell
enumeration) against the paths it removes.  On cyclic-7 the path-count
reduction must be at least 3x for the run to pass.

The ``--track`` row pair additionally solves cyclic-5 end to end both
ways (wall clock includes the polyhedral phase-1 cell tracking), showing
the count reduction surviving as real solve time.

Run:    PYTHONPATH=src python benchmarks/bench_polyhedral.py --track
Smoke:  PYTHONPATH=src python benchmarks/bench_polyhedral.py --quick
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.homotopy import solve
from repro.polyhedral import mixed_cells
from repro.systems import cyclic_roots_system, noon_system

FULL_CASES = ("cyclic-5", "cyclic-6", "cyclic-7", "noon-4", "noon-5")
QUICK_CASES = ("cyclic-5", "noon-4", "cyclic-7")


def _build(name: str):
    kind, n = name.split("-")
    if kind == "cyclic":
        return cyclic_roots_system(int(n))
    return noon_system(int(n))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer systems, no end-to-end tracking",
    )
    parser.add_argument(
        "--track", action="store_true",
        help="also solve cyclic-5 end to end with both start systems",
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    args = parser.parse_args()
    cases = QUICK_CASES if args.quick else FULL_CASES

    rng = np.random.default_rng(args.seed)
    print(f"{'system':<10}{'total degree':>14}{'mixed volume':>14}"
          f"{'paths saved':>13}{'cells':>7}{'mv seconds':>12}")
    reductions = {}
    for name in cases:
        system = _build(name)
        td = system.total_degree_bound()
        t0 = time.perf_counter()
        sub = mixed_cells(system, rng=rng)
        mv_s = time.perf_counter() - t0
        mv = sub.mixed_volume
        reductions[name] = td / mv
        print(f"{name:<10}{td:>14}{mv:>14}{td / mv:>12.2f}x"
              f"{sub.n_cells:>7}{mv_s:>12.2f}")

    if args.track and not args.quick:
        target = cyclic_roots_system(5)
        t0 = time.perf_counter()
        rp = solve(target, start="polyhedral", mode="batch",
                   rng=np.random.default_rng(args.seed))
        poly_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        rt = solve(target, mode="batch", rng=np.random.default_rng(args.seed))
        td_s = time.perf_counter() - t0
        print(f"\ncyclic-5 end to end: polyhedral {rp.n_paths} paths "
              f"-> {rp.n_solutions} solutions in {poly_s:.2f}s "
              f"(incl. phase-1 cell tracking); total-degree {rt.n_paths} "
              f"paths -> {rt.n_solutions} solutions in {td_s:.2f}s")
        if rp.n_solutions != rt.n_solutions:
            print("FAIL: start systems disagree on the solution count")
            return 1

    gate = "cyclic-7" if "cyclic-7" in reductions else max(
        reductions, key=reductions.get
    )
    if reductions[gate] < 3.0:
        print(f"FAIL: {gate} path-count reduction "
              f"{reductions[gate]:.2f}x below 3x")
        return 1
    print(f"\nOK: {gate} tracks {reductions[gate]:.2f}x fewer paths "
          f"than total degree (>= 3x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
