"""Experiment T2/F2 — Table II and Fig 2: the RPS mechanism workload.

The paper's point: with >8000 of 9216 paths divergent at near-constant
cost, the workload variance is small, so dynamic load balancing barely
improves on static (and communication overhead can even flip the sign).

Real layer: the deficient RPS surrogate (DESIGN.md substitution) whose
total-degree homotopy sends most paths to infinity with near-equal cost.
Simulated layer: the full 9,216-path Table II rows.

Run: pytest benchmarks/bench_table2_rps.py --benchmark-only
"""

import numpy as np
import pytest

from repro.experiments import measure_rps_costs, resample_workload, table2
from repro.homotopy import make_homotopy_and_starts, solve
from repro.simcluster import rps_workload, simulate_dynamic, simulate_static, speedup_table
from repro.systems import rps_surrogate_system
from repro.tracker import PathTracker


def bench_real_rps_surrogate_solve(benchmark):
    """Track all 32 paths of the n=5 surrogate (30 divergent)."""
    target = rps_surrogate_system(5, rng=np.random.default_rng(20))
    homotopy, starts = make_homotopy_and_starts(
        target, rng=np.random.default_rng(21)
    )
    tracker = PathTracker()

    def run():
        return tracker.track_many(homotopy, starts)

    results = benchmark(run)
    diverged = sum(1 for r in results if r.status.value == "diverged")
    assert diverged >= len(results) // 2


def bench_divergent_cost_variance(benchmark):
    """Verify the low-variance property the whole Table II story rests on."""
    target = rps_surrogate_system(5, rng=np.random.default_rng(22))

    def run():
        return solve(target, rng=np.random.default_rng(23))

    report = benchmark(run)
    secs = np.array(
        [r.stats.seconds for r in report.results if not r.success]
    )
    assert secs.size >= 16
    assert secs.std() / secs.mean() < 1.0


def bench_simulated_table2(benchmark):
    """Regenerate all Table II rows; improvements must be small."""

    def run():
        return table2()

    text, rows = benchmark(run)
    assert len(rows) == 5
    # shape: improvement never exceeds ~10% (paper: -1.5% .. 12.4%)
    assert all(abs(r["improvement_pct"]) < 12 for r in rows)
    # and is much smaller than cyclic's at 128 CPUs
    print()
    print(text)


def bench_simulated_table2_calibrated(benchmark):
    """Table II with costs measured from the real surrogate run."""
    measured = measure_rps_costs(n=5, seed=24)

    def run():
        wl = resample_workload(
            measured, 9_216, 3_111.2, np.random.default_rng(25)
        )
        return speedup_table(wl, [8, 16, 32, 64, 128])

    rows = benchmark(run)
    assert all(abs(r["improvement_pct"]) < 25 for r in rows)


def bench_rps_vs_cyclic_improvement_contrast(benchmark):
    """The cross-table claim: dynamic's edge is much larger on cyclic."""
    from repro.simcluster import cyclic10_workload

    def run():
        cy = cyclic10_workload(np.random.default_rng(26))
        rp = rps_workload(np.random.default_rng(27))
        cy128 = speedup_table(cy, [128])[0]["improvement_pct"]
        rp128 = speedup_table(rp, [128])[0]["improvement_pct"]
        return cy128, rp128

    cy128, rp128 = benchmark(run)
    assert cy128 > 3 * rp128
