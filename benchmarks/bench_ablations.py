"""Ablations A1/A2 — design choices the paper argues for qualitatively.

A1 (§III-C): Pieri *tree* vs *poset* memory behaviour — the tree releases a
node after at most p+1 jobs touch it; poset nodes stay live per level.

A2 (§II-A): overlapping communication with computation via non-blocking
MPI — simulated by toggling ``ClusterSpec.overlap_comm``.

A3: static chunking policy — contiguous blocks (PHCpack's layout, hurt by
clustered divergent paths) vs round-robin dealing.

Run: pytest benchmarks/bench_ablations.py --benchmark-only
"""

import numpy as np
import pytest

from repro.schubert import PieriProblem, memory_profile
from repro.simcluster import (
    ClusterSpec,
    cyclic10_workload,
    simulate_dynamic,
    simulate_static,
    uniform_workload,
)


def bench_ablation_memory_tree_vs_poset(benchmark):
    """A1: high-water active solutions, tree vs poset schedule."""

    def run():
        return memory_profile(PieriProblem(3, 2, 1))

    prof = benchmark(run)
    assert prof["tree_high_water"] < prof["poset_high_water"]
    ratio = prof["poset_high_water"] / prof["tree_high_water"]
    print()
    print(
        f"A1 (3,2,1): tree high-water {prof['tree_high_water']} vs poset "
        f"{prof['poset_high_water']} ({ratio:.1f}x more memory)"
    )


def bench_ablation_memory_growth(benchmark):
    """A1 at growing problem size: the poset/tree gap widens."""

    def run():
        return [
            memory_profile(PieriProblem(2, 2, q))["poset_high_water"]
            / memory_profile(PieriProblem(2, 2, q))["tree_high_water"]
            for q in (0, 1)
        ]

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios[1] > ratios[0]


def bench_ablation_comm_overlap(benchmark):
    """A2: non-blocking overlap matters most when the network round trip
    is comparable to the job size (and the master is not saturated)."""
    wl = uniform_workload(2000, 0.02)  # 20 ms jobs
    spec_kw = dict(latency_seconds=5e-3, master_service_seconds=1e-4)

    def run():
        on = simulate_dynamic(wl, 32, ClusterSpec(overlap_comm=True, **spec_kw))
        off = simulate_dynamic(wl, 32, ClusterSpec(overlap_comm=False, **spec_kw))
        return on, off

    on, off = benchmark(run)
    assert on.wall_seconds < off.wall_seconds
    gain = 100 * (off.wall_seconds - on.wall_seconds) / off.wall_seconds
    assert gain > 10  # the round trip is ~half a job: overlap must pay off
    print()
    print(
        f"A2: overlap saves {gain:.1f}% wall time "
        "(32 CPUs, 20ms jobs, 5ms one-way latency)"
    )


def bench_ablation_master_saturation(benchmark):
    """A2b: with an expensive master, *neither* mode scales — the serial
    master service floor dominates and overlap cannot help."""
    wl = uniform_workload(2000, 0.02)
    heavy = dict(latency_seconds=1e-3, master_service_seconds=2e-3)

    def run():
        on = simulate_dynamic(wl, 32, ClusterSpec(overlap_comm=True, **heavy))
        off = simulate_dynamic(wl, 32, ClusterSpec(overlap_comm=False, **heavy))
        return on, off

    on, off = benchmark(run)
    floor = 2000 * 2e-3  # 4s of serialized master service
    assert on.wall_seconds >= floor * 0.95
    gap = abs(off.wall_seconds - on.wall_seconds) / off.wall_seconds
    assert gap < 0.05
    print()
    print(
        f"A2b: master-bound regime: overlap gap only {100*gap:.1f}% "
        f"(wall {on.wall_seconds:.1f}s vs {floor:.1f}s service floor)"
    )


def bench_ablation_static_chunking(benchmark):
    """A3: contiguous blocks vs round-robin under clustered divergence."""
    wl = cyclic10_workload(np.random.default_rng(50))

    def run():
        block = simulate_static(wl, 64, chunking="block")
        rr = simulate_static(wl, 64, chunking="round_robin")
        return block, rr

    block, rr = benchmark(run)
    assert rr.load_imbalance <= block.load_imbalance
    print()
    print(
        f"A3: 64-CPU imbalance block {block.load_imbalance:.2f} vs "
        f"round-robin {rr.load_imbalance:.2f}"
    )
