"""Shared fixtures for the benchmark suite (pytest-benchmark)."""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2004)  # the paper's year
