"""Microbenchmarks of the numerical kernels behind every experiment.

Not a paper table; used to track performance of the inner loops the
optimization guide says to profile first: system evaluation, determinant
gradients, one Newton step, one Pieri edge.

Run as a script for the PR-6 acceptance experiment — per-backend
Jacobian throughput of the compiled straight-line-program kernels
against the seed power-table arithmetic, on cyclic-7 and katsura-9.
The run fails unless the SLP backend delivers at least a 2x
points-per-second speedup on the fused residual+Jacobian evaluation of
both systems (the tracker's per-step hot call).

Run:    PYTHONPATH=src python benchmarks/bench_kernels.py
Smoke:  PYTHONPATH=src python benchmarks/bench_kernels.py --quick
Micro:  pytest benchmarks/bench_kernels.py --benchmark-only
"""

import argparse
import time

import numpy as np
import pytest

from repro.kernels import compile_system_kernel
from repro.linalg import det_and_cofactors, random_complex_matrix
from repro.schubert import PieriInstance, PieriSolver, trivial_solution_matrix
from repro.systems import cyclic_roots_system, katsura_system
from repro.tracker import newton_correct


@pytest.fixture(scope="module")
def cyclic7():
    return cyclic_roots_system(7)


def bench_system_evaluation(benchmark, cyclic7, rng):
    pt = rng.standard_normal(7) + 1j * rng.standard_normal(7)

    def run():
        return cyclic7.evaluate(pt)

    res = benchmark(run)
    assert res.shape == (7,)


def bench_system_jacobian(benchmark, cyclic7, rng):
    pt = rng.standard_normal(7) + 1j * rng.standard_normal(7)

    def run():
        return cyclic7.evaluate_and_jacobian(pt)

    res, jac = benchmark(run)
    assert jac.shape == (7, 7)


def bench_cofactor_matrix_5x5(benchmark, rng):
    m = random_complex_matrix(5, 5, rng)

    def run():
        return det_and_cofactors(m)

    det, cof = benchmark(run)
    assert cof.shape == (5, 5)


def bench_pieri_edge_newton_step(benchmark):
    """One Newton correction on a level-1 Pieri edge system."""
    instance = PieriInstance.random(2, 2, 1, np.random.default_rng(60))
    solver = PieriSolver(instance, seed=61)
    job = solver.initial_jobs()[0]
    homotopy = solver.make_homotopy(job.node)
    x0 = homotopy.start_vector(trivial_solution_matrix(instance.problem))

    def run():
        return newton_correct(homotopy, x0, 0.0)

    res = benchmark(run)
    assert res.converged


def bench_pieri_single_edge_track(benchmark):
    """Track one full Pieri edge (the parallel job unit)."""
    instance = PieriInstance.random(2, 2, 0, np.random.default_rng(62))
    solver = PieriSolver(instance, seed=63)
    job = solver.initial_jobs()[0]

    def run():
        return solver.run_job(job)

    result = benchmark(run)
    assert result.success


# ---------------------------------------------------------------------------
# PR-6 acceptance experiment: naive vs SLP Jacobian throughput
# ---------------------------------------------------------------------------

GATE = 2.0  # required SLP speedup on the fused residual+Jacobian call


def _throughput(fn, X, min_seconds: float) -> float:
    """Best points-per-second over repeated timed calls."""
    fn(X)  # warm up: taping, scratch buffers, code binding
    best = 0.0
    elapsed = 0.0
    while elapsed < min_seconds:
        t0 = time.perf_counter()
        fn(X)
        dt = time.perf_counter() - t0
        elapsed += dt
        best = max(best, X.shape[0] / dt)
    return best


def compare_backends(system, name: str, npts: int, min_seconds: float,
                     rng) -> dict:
    """Time the fused eval+Jacobian call through both backends."""
    X = rng.standard_normal((npts, system.nvars)) + 1j * rng.standard_normal(
        (npts, system.nvars)
    )
    slp = compile_system_kernel(system, "slp")
    res_n, jac_n = system.evaluate_and_jacobian_many(X)
    res_s, jac_s = slp.evaluate_and_jacobian(X)
    scale = 1.0 + float(np.max(np.abs(jac_n)))
    agree = float(np.max(np.abs(jac_s - jac_n))) <= 1e-10 * scale
    naive_pps = _throughput(
        system._tables_evaluate_and_jacobian_many, X, min_seconds
    )
    slp_pps = _throughput(slp.evaluate_and_jacobian, X, min_seconds)
    return {
        "name": name,
        "npts": npts,
        "tape_ops": slp.stats.tape_ops,
        "naive_pps": naive_pps,
        "slp_pps": slp_pps,
        "speedup": slp_pps / naive_pps,
        "agree": agree,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller batches, shorter timing windows",
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    args = parser.parse_args()
    # 256 points per call in both modes: the gate must be judged at the
    # batch widths the SoA tracker actually runs (cyclic-7 fronts are
    # hundreds of paths wide); --quick only shrinks the timing window
    npts = 256
    min_seconds = 0.05 if args.quick else 0.5
    rng = np.random.default_rng(args.seed)

    cases = [
        ("cyclic-7", cyclic_roots_system(7)),
        ("katsura-9", katsura_system(9)),
    ]
    print(f"{'system':<11}{'npts':>6}{'tape ops':>10}"
          f"{'naive pts/s':>14}{'slp pts/s':>12}{'speedup':>9}")
    failed = False
    for name, system in cases:
        row = compare_backends(system, name, npts, min_seconds, rng)
        print(f"{row['name']:<11}{row['npts']:>6}{row['tape_ops']:>10}"
              f"{row['naive_pps']:>14.0f}{row['slp_pps']:>12.0f}"
              f"{row['speedup']:>8.2f}x")
        if not row["agree"]:
            print(f"FAIL: {name} SLP Jacobian disagrees with naive")
            failed = True
        if row["speedup"] < GATE:
            print(f"FAIL: {name} SLP speedup {row['speedup']:.2f}x "
                  f"below the {GATE:.0f}x gate")
            failed = True
    if failed:
        return 1
    print(f"\nOK: SLP kernels beat the naive backend by >= {GATE:.0f}x "
          f"on the fused residual+Jacobian call")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
