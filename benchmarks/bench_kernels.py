"""Microbenchmarks of the numerical kernels behind every experiment.

Not a paper table; used to track performance of the inner loops the
optimization guide says to profile first: system evaluation, determinant
gradients, one Newton step, one Pieri edge.

Run: pytest benchmarks/bench_kernels.py --benchmark-only
"""

import numpy as np
import pytest

from repro.linalg import det_and_cofactors, random_complex_matrix
from repro.schubert import PieriInstance, PieriSolver, trivial_solution_matrix
from repro.systems import cyclic_roots_system
from repro.tracker import newton_correct


@pytest.fixture(scope="module")
def cyclic7():
    return cyclic_roots_system(7)


def bench_system_evaluation(benchmark, cyclic7, rng):
    pt = rng.standard_normal(7) + 1j * rng.standard_normal(7)

    def run():
        return cyclic7.evaluate(pt)

    res = benchmark(run)
    assert res.shape == (7,)


def bench_system_jacobian(benchmark, cyclic7, rng):
    pt = rng.standard_normal(7) + 1j * rng.standard_normal(7)

    def run():
        return cyclic7.evaluate_and_jacobian(pt)

    res, jac = benchmark(run)
    assert jac.shape == (7, 7)


def bench_cofactor_matrix_5x5(benchmark, rng):
    m = random_complex_matrix(5, 5, rng)

    def run():
        return det_and_cofactors(m)

    det, cof = benchmark(run)
    assert cof.shape == (5, 5)


def bench_pieri_edge_newton_step(benchmark):
    """One Newton correction on a level-1 Pieri edge system."""
    instance = PieriInstance.random(2, 2, 1, np.random.default_rng(60))
    solver = PieriSolver(instance, seed=61)
    job = solver.initial_jobs()[0]
    homotopy = solver.make_homotopy(job.node)
    x0 = homotopy.start_vector(trivial_solution_matrix(instance.problem))

    def run():
        return newton_correct(homotopy, x0, 0.0)

    res = benchmark(run)
    assert res.converged


def bench_pieri_single_edge_track(benchmark):
    """Track one full Pieri edge (the parallel job unit)."""
    instance = PieriInstance.random(2, 2, 0, np.random.default_rng(62))
    solver = PieriSolver(instance, seed=63)
    job = solver.initial_jobs()[0]

    def run():
        return solver.run_job(job)

    result = benchmark(run)
    assert result.success
