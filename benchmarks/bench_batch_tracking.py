"""Throughput microbenchmark: per-path vs batched vs hybrid tracking.

The ISSUE-1 acceptance experiment: on cyclic-7's start points, the
structure-of-arrays :class:`BatchTracker` must deliver at least 3x the
single-process throughput of per-path :class:`PathTracker` tracking.  The
hybrid row shows the two parallel axes composing (processes x batch).

Run:    PYTHONPATH=src python benchmarks/bench_batch_tracking.py
Smoke:  PYTHONPATH=src python benchmarks/bench_batch_tracking.py --quick
"""

from __future__ import annotations

import argparse
import itertools
import time

import numpy as np

from repro.homotopy import make_homotopy_and_starts
from repro.parallel import track_paths_parallel
from repro.systems import cyclic_roots_system
from repro.tracker import BatchTracker, PathTracker, summarize_results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paths", type=int, default=343,
        help="number of cyclic-7 start points to track (default 343)",
    )
    parser.add_argument(
        "--serial-paths", type=int, default=49,
        help="paths used to time the per-path baseline (default 49)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="workers for the hybrid row"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 24 paths, 8 serial, 2 workers",
    )
    args = parser.parse_args()
    if args.quick:
        args.paths, args.serial_paths, args.workers = 24, 8, 2
    args.paths = max(1, args.paths)
    args.serial_paths = max(1, min(args.serial_paths, args.paths))

    target = cyclic_roots_system(7)
    homotopy, all_starts = make_homotopy_and_starts(
        target, rng=np.random.default_rng(2004)
    )
    starts = list(itertools.islice(iter(all_starts), args.paths))
    print(
        f"cyclic-7: tracking {len(starts)} of {target.total_degree_bound()} "
        f"total-degree paths (dim {target.nvars})"
    )

    t0 = time.perf_counter()
    serial_results = PathTracker().track_many(homotopy, starts[: args.serial_paths])
    serial_s = time.perf_counter() - t0
    serial_ms = serial_s / args.serial_paths * 1e3

    t0 = time.perf_counter()
    batch_results = BatchTracker().track_batch(homotopy, starts)
    batch_s = time.perf_counter() - t0
    batch_ms = batch_s / len(starts) * 1e3

    t0 = time.perf_counter()
    hybrid = track_paths_parallel(
        homotopy, starts, n_workers=args.workers, mode="hybrid",
        schedule="dynamic",
    )
    hybrid_s = time.perf_counter() - t0
    hybrid_ms = hybrid_s / len(starts) * 1e3

    print()
    print(f"{'mode':<28}{'ms/path':>10}{'speedup':>10}")
    print(f"{'per-path (PathTracker)':<28}{serial_ms:>10.2f}{1.0:>10.2f}")
    print(
        f"{'batch (BatchTracker)':<28}{batch_ms:>10.2f}"
        f"{serial_ms / batch_ms:>10.2f}"
    )
    print(
        f"{f'hybrid ({args.workers} procs x batch)':<28}{hybrid_ms:>10.2f}"
        f"{serial_ms / hybrid_ms:>10.2f}"
    )

    summary = summarize_results(batch_results)
    print(
        f"\nbatch statuses: {summary['success']} success, "
        f"{summary['diverged']} diverged, {summary['failed']} failed, "
        f"{summary['singular']} singular"
    )

    # parity spot-check on the jointly tracked prefix
    mismatches = sum(
        1
        for a, b in zip(serial_results, batch_results)
        if a.status != b.status
        or (a.success and np.max(np.abs(a.solution - b.solution)) > 1e-8)
    )
    print(f"scalar/batch parity on first {args.serial_paths}: "
          f"{args.serial_paths - mismatches}/{args.serial_paths}")

    speedup = serial_ms / batch_ms
    threshold = 1.5 if args.quick else 3.0
    if mismatches:
        print("FAIL: batch tracking disagrees with per-path tracking")
        return 1
    if speedup < threshold:
        print(f"FAIL: batch speedup {speedup:.2f}x below {threshold}x")
        return 1
    print(f"OK: batch speedup {speedup:.2f}x >= {threshold}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
