"""Experiment T3 — Table III: paths and CPU time per Pieri-tree level.

The paper's m=3, p=2, q=1 run tracks 252 paths in 38s; levels get more
expensive towards the leaves ("almost half of the time is spent at the last
level").  The real layer times our solver per level; the shape assertion is
on the *distribution* of work across levels, not absolute times.

Run: pytest benchmarks/bench_table3_levels.py --benchmark-only
"""

import numpy as np
import pytest

from repro.experiments import PAPER_TABLE3, table3
from repro.schubert import (
    PieriInstance,
    PieriProblem,
    PieriSolver,
    level_job_counts,
)
from repro.simcluster import simulate_pieri_tree


def bench_level_counts_dp(benchmark):
    """Combinatorial layer: the level profile itself (instant, exact)."""

    def run():
        return level_job_counts(3, 2, 1)

    counts = benchmark(run)
    assert counts == PAPER_TABLE3
    assert sum(counts) == 252


def bench_real_small_instance(benchmark):
    """Real solver on (2,2,1): 34 paths over 8 levels with timings."""
    instance = PieriInstance.random(2, 2, 1, np.random.default_rng(30))

    def run():
        return PieriSolver(instance, seed=31).solve()

    report = benchmark(run)
    assert report.n_solutions == 8
    levels = sorted(report.seconds_per_level)
    last = levels[-1]
    frac = report.seconds_per_level[last] / sum(
        report.seconds_per_level.values()
    )
    # deepest level carries the largest share of the work
    assert frac == max(
        report.seconds_per_level[l] / sum(report.seconds_per_level.values())
        for l in levels
    )


def bench_paper_size_instance(benchmark):
    """The paper's actual cell: m=3, p=2, q=1 — 252 paths, 55 solutions."""
    instance = PieriInstance.random(3, 2, 1, np.random.default_rng(32))
    solver = PieriSolver(instance, seed=33)

    def run():
        return solver.solve()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_solutions == 55
    counts = [report.jobs_per_level[i + 1] for i in range(11)]
    assert counts == PAPER_TABLE3
    total = sum(report.seconds_per_level.values())
    tail = report.seconds_per_level[11] + report.seconds_per_level[10]
    print()
    print(table3(run_solver=False)[0])
    print(f"measured: total {total:.1f}s, last two levels {100*tail/total:.0f}%")


def bench_simulated_tree_schedule(benchmark):
    """Cluster simulation of the same tree on 8 CPUs (Fig 6 protocol)."""
    prob = PieriProblem(3, 2, 1)

    def run():
        return simulate_pieri_tree(prob, 8)

    res = benchmark(run)
    assert sum(res.jobs_per_level.values()) == 252
    # the last level dominates the work, as in the paper
    assert res.level_work_fraction(11) > 0.3
