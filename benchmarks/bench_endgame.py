"""Endgame recovery: Cauchy winding-number loops vs plain refinement.

The ISSUE-5 acceptance experiment.  On the deficient-systems family —
Griewank-Osborne (a Newton-repelling triple root), double-root katsura
variants, a deficient cyclic cell and the univariate multiplicity
laboratory — the plain Newton sharpen either fails outright
(SINGULAR/FAILED) or "succeeds" with endpoints orders of magnitude off
the root.  The Cauchy endgame must recover at least **95%** of the
paths refinement loses, with the *correct* multiplicity histogram per
system, and the table reports the batched-loop throughput (every loop
Newton sweep advances the whole front of singular paths at once).

A path counts as *lost by refinement* when RefineEndgame marks it
SINGULAR or FAILED; it counts as *recovered* when CauchyEndgame turns
the same path id into an endgame-classified result (a measured winding
number).  Histogram correctness is checked against the family's known
root structure.

Run:    PYTHONPATH=src python benchmarks/bench_endgame.py
Smoke:  PYTHONPATH=src python benchmarks/bench_endgame.py --quick
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.homotopy import solve
from repro.systems import (
    cyclic_deficient_system,
    griewank_osborne_system,
    katsura_double_root_system,
    multiple_root_system,
)

#: (name, builder, expected multiplicity histogram)
FULL_CASES = [
    ("griewank-osborne", griewank_osborne_system, {3: 1}),
    ("multiple-root-3", lambda: multiple_root_system(3), {3: 1}),
    ("multiple-root-4", lambda: multiple_root_system(4), {4: 1}),
    ("katsura-dbl-2", lambda: katsura_double_root_system(2), {2: 4}),
    ("katsura-dbl-3", lambda: katsura_double_root_system(3), {2: 8}),
    ("cyclic-def-3", lambda: cyclic_deficient_system(3), {2: 6}),
]
QUICK_CASES = [
    ("griewank-osborne", griewank_osborne_system, {3: 1}),
    ("multiple-root-4", lambda: multiple_root_system(4), {4: 1}),
    ("katsura-dbl-2", lambda: katsura_double_root_system(2), {2: 4}),
]

GATE = 0.95  # required recovery rate over the whole family


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: the 3 fastest systems"
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    args = parser.parse_args()
    cases = QUICK_CASES if args.quick else FULL_CASES

    print(
        f"{'system':<18}{'paths':>6}{'lost':>6}{'recovered':>10}"
        f"{'histogram':>14}{'expected':>12}{'loops/s':>10}"
    )
    lost_total = 0
    recovered_total = 0
    hist_ok = True
    for name, build, expected in cases:
        target = build()
        ref = solve(
            target, mode="batch", rng=np.random.default_rng(args.seed)
        )
        lost = {
            r.path_id
            for r in ref.results
            if r.status.value in ("singular", "failed")
        }
        t0 = time.perf_counter()
        cau = solve(
            target,
            mode="batch",
            rng=np.random.default_rng(args.seed),
            endgame="cauchy",
        )
        cau_s = time.perf_counter() - t0
        recovered = {
            r.path_id for r in cau.results if r.endgame_classified
        }
        # throughput of the batched loop phase: endgame-annotated paths
        # per second of the cauchy solve (the loop front dominates it)
        n_loops = sum(
            1 for r in cau.results if r.winding_number is not None
        )
        rate = n_loops / cau_s if cau_s > 0 else float("inf")
        hist = dict(cau.summary["multiplicity_histogram"])
        ok = hist == expected
        hist_ok &= ok
        lost_total += len(lost)
        recovered_total += len(lost & recovered)
        hist_s = ",".join(f"{k}:{v}" for k, v in sorted(hist.items()))
        want_s = ",".join(f"{k}:{v}" for k, v in sorted(expected.items()))
        print(
            f"{name:<18}{len(cau.results):>6}{len(lost):>6}"
            f"{len(lost & recovered):>10}{hist_s:>14}{want_s:>12}"
            f"{rate:>10.1f}{'' if ok else '   <-- histogram mismatch'}"
        )

    rate_total = (
        recovered_total / lost_total if lost_total else 1.0
    )
    print(
        f"\nrecovered {recovered_total}/{lost_total} refinement-lost paths "
        f"({100 * rate_total:.0f}%), gate >= {100 * GATE:.0f}%"
    )
    if rate_total < GATE:
        print("FAIL: recovery rate below gate")
        return 1
    if not hist_ok:
        print("FAIL: a multiplicity histogram disagrees with the known roots")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
