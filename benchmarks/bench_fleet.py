#!/usr/bin/env python
"""Fleet benchmark: two workers over real sockets must beat one.

The ISSUE-7 acceptance smoke for the multi-host fleet
(:mod:`repro.parallel.fleet`): the same job set is served twice over
real asyncio TCP sockets on localhost — once to a single worker agent,
once to two — and the two-worker run must be at least ``--gate`` times
faster (default 1.8x).

The jobs are GIL-releasing sleeps, deliberately: the container CI box
has one CPU, so CPU-bound jobs cannot scale no matter what the protocol
does.  Sleep jobs measure what this benchmark is actually about — the
master's ability to keep several workers' leases full concurrently
(probe lease, rate-fitted sizing, stealing) with the whole protocol in
the loop.

A second, deterministic stage runs the discrete-event simulator
(:func:`repro.simcluster.simulate_fleet`) over 1..8 workers, where the
scaling is exact and independent of the host.

Run:    PYTHONPATH=src python benchmarks/bench_fleet.py
Smoke:  PYTHONPATH=src python benchmarks/bench_fleet.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.parallel.fleet import run_fleet_worker, serve_fleet
from repro.simcluster import simulate_fleet


def sleep_runner(payload: dict) -> dict:
    time.sleep(payload["sleep"])
    return {"job_id": payload["job_id"], "value": payload["job_id"]}


async def _timed_fleet(n_jobs: int, sleep_s: float, n_workers: int):
    """One full socket run; returns (wall_seconds, master, worker_stats)."""
    jobs = [
        {"job_id": f"job-{i}", "sleep": sleep_s, "cost": sleep_s}
        for i in range(n_jobs)
    ]
    records = {}
    loop = asyncio.get_running_loop()
    port_fut = loop.create_future()
    t0 = time.perf_counter()
    serve = asyncio.create_task(
        serve_fleet(
            jobs,
            lambda job_id, record: records.setdefault(job_id, record),
            port=0,
            heartbeat_timeout=3.0,
            lease_target_seconds=4 * sleep_s,
            cost_of=lambda job: job.get("cost", 1.0),
            on_listening=lambda h, p: port_fut.set_result(p),
            linger_seconds=0.05,
        )
    )
    port = await port_fut
    workers = [
        asyncio.create_task(
            run_fleet_worker(
                "127.0.0.1",
                port,
                sleep_runner,
                worker_id=f"bench-w{i}",
                heartbeat_interval=0.2,
                reconnect_seconds=10.0,
            )
        )
        for i in range(n_workers)
    ]
    master = await serve
    stats = await asyncio.gather(*workers)
    wall = time.perf_counter() - t0
    assert master.done and len(records) == n_jobs, "fleet lost jobs"
    return wall, master, stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=24,
        help="number of sleep jobs (default 24)",
    )
    parser.add_argument(
        "--sleep", type=float, default=0.1,
        help="seconds each job sleeps (default 0.1)",
    )
    parser.add_argument(
        "--gate", type=float, default=1.8,
        help="required 2-worker vs 1-worker speedup (default 1.8)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 16 jobs of 0.1s",
    )
    args = parser.parse_args()
    if args.quick:
        args.jobs, args.sleep = 16, 0.1

    total = args.jobs * args.sleep
    print(
        f"fleet over localhost TCP: {args.jobs} sleep jobs of "
        f"{args.sleep:.2f}s ({total:.1f}s of work)"
    )

    print(f"\n{'workers':>8}{'wall s':>9}{'speedup':>9}"
          f"{'steals':>8}{'leases<=':>9}  per-worker jobs")
    walls = {}
    for n_workers in (1, 2):
        wall, master, stats = asyncio.run(
            _timed_fleet(args.jobs, args.sleep, n_workers)
        )
        walls[n_workers] = wall
        speedup = walls[1] / wall
        split = " ".join(f"{s.worker_id}:{s.jobs_done}" for s in stats)
        print(
            f"{n_workers:>8}{wall:>9.2f}{speedup:>8.2f}x"
            f"{master.stats.steals:>8}{master.stats.max_lease:>9}  {split}"
        )

    # deterministic counterpart: exact scaling on the simulator
    print(f"\nsimulated scaling (discrete-event, {args.jobs} x "
          f"{args.sleep:.2f}s jobs):")
    print(f"{'workers':>8}{'sim wall s':>12}{'speedup':>9}")
    base = None
    for n_workers in (1, 2, 4, 8):
        res = simulate_fleet(
            [args.sleep] * args.jobs, n_workers,
            lease_target_seconds=4 * args.sleep,
        )
        base = base or res.wall_seconds
        print(f"{n_workers:>8}{res.wall_seconds:>12.2f}"
              f"{base / res.wall_seconds:>8.2f}x")

    speedup = walls[1] / walls[2]
    if speedup < args.gate:
        print(f"\nFAIL: 2-worker speedup {speedup:.2f}x < gate "
              f"{args.gate:.2f}x")
        return 1
    print(f"\nOK: 2 workers {speedup:.2f}x faster than 1 "
          f"(gate {args.gate:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
