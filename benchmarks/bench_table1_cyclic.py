"""Experiment T1/F1 — Table I and Fig 1: cyclic n-roots, static vs dynamic.

Two layers, per DESIGN.md's substitution table:

- *real*: track every path of a cyclic system with this repository's
  tracker, serially and with the dynamic thread executor, measuring actual
  wall times (the paper's 2.4 GHz PC vs cluster contrast, scaled down);
- *simulated*: regenerate the full 35,940-path Table I rows on the
  discrete-event cluster, including a variant calibrated from the measured
  real path costs.

Run: pytest benchmarks/bench_table1_cyclic.py --benchmark-only
"""

import numpy as np
import pytest

from repro.experiments import measure_cyclic_costs, resample_workload, table1
from repro.homotopy import make_homotopy_and_starts
from repro.parallel import track_paths_parallel
from repro.simcluster import simulate_dynamic, simulate_static, speedup_table
from repro.systems import cyclic_roots_system
from repro.tracker import PathTracker


@pytest.fixture(scope="module")
def cyclic5():
    target = cyclic_roots_system(5)
    homotopy, starts = make_homotopy_and_starts(
        target, rng=np.random.default_rng(10)
    )
    return homotopy, starts


def bench_real_serial_tracking(benchmark, cyclic5):
    """1-CPU baseline: sequential tracking of 24 cyclic-5 paths."""
    homotopy, starts = cyclic5
    subset = starts[:24]
    tracker = PathTracker()

    def run():
        return tracker.track_many(homotopy, subset)

    results = benchmark(run)
    assert sum(r.success for r in results) >= 1


def bench_real_dynamic_threads(benchmark, cyclic5):
    """Dynamic master/slave on 4 local workers (same 24 paths)."""
    homotopy, starts = cyclic5
    subset = starts[:24]

    def run():
        return track_paths_parallel(
            homotopy, subset, n_workers=4, schedule="dynamic", mode="thread"
        )

    report = benchmark(run)
    assert len(report.results) == 24


def bench_simulated_table1(benchmark):
    """Regenerate all Table I rows on the simulated 128-CPU cluster."""

    def run():
        return table1()

    text, rows = benchmark(run)
    assert len(rows) == 6
    # shape assertions: dynamic wins everywhere, gap grows with CPUs
    gaps = [r["improvement_pct"] for r in rows[1:]]
    assert all(g > 0 for g in gaps)
    assert gaps[-1] > gaps[0]
    print()
    print(text)


def bench_simulated_table1_calibrated(benchmark):
    """Table I with the per-path cost distribution *measured* from our
    own tracker on cyclic-5, bootstrapped to 35,940 paths."""
    measured = measure_cyclic_costs(n=5, seed=11)

    def run():
        wl = resample_workload(
            measured, 35_940, 480.0, np.random.default_rng(12)
        )
        return speedup_table(wl, [1, 8, 16, 32, 64, 128])

    rows = benchmark(run)
    t128 = rows[-1]
    assert t128["dynamic_speedup"] > t128["static_speedup"] * 0.9
    print()
    print("calibrated 128-CPU row:", t128)


def bench_single_simulation_step(benchmark):
    """Microbenchmark: one static + one dynamic 128-CPU simulation."""
    from repro.simcluster import cyclic10_workload

    wl = cyclic10_workload(np.random.default_rng(13))

    def run():
        st = simulate_static(wl, 128)
        dy = simulate_dynamic(wl, 128)
        return st, dy

    st, dy = benchmark(run)
    assert dy.wall_seconds < st.wall_seconds
