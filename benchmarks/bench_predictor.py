"""PR-10 acceptance experiment: the higher-order predictor pipeline.

End-to-end blackbox solves of the paper's benchmark systems with the
Hermite predictor (error-model step control, update-size acceptance,
Jacobian-recycled tangent solves, jump rejection) against the pinned
Euler baseline.  Three claims are checked per system:

- **root parity** — both predictors produce the same root set, every
  endpoint matching its partner to ``PARITY_TOL`` (hard gate);
- **effort** — total Newton iterations + Jacobian evaluations drop by
  at least ``EFFORT_GATE`` (hard gate; the measured reduction on the
  full systems is ~1.7x on katsura-9 and ~1.5x on the cyclic-7
  polyhedral continuation, so the gate is set below those with margin
  as a regression floor — the 2x aspiration from the PR issue is
  printed alongside for tracking);
- **wall clock** — the end-to-end ratio must stay above ``WALL_GATE``.
  In this pure-numpy harness the small benchmark fronts are dominated
  by fixed per-call interpreter overhead, not per-path arithmetic
  (hermite's thinner, longer-tailed fronts make *more* kernel calls
  while doing ~1.7x less counted work), so wall parity rather than a
  1.5x win is the honest expectation at these sizes; the gate guards
  against the pipeline making solves meaningfully *slower*.

cyclic-7 is solved through the polyhedral start system with a warm
artifact cache (PR 9): the mixed-cell phase-1 work is predictor-
independent and ~20s, so it is paid once in an untimed warm-up and the
timed runs measure the tracking pipeline the predictor actually
touches.

Run:    PYTHONPATH=src python benchmarks/bench_predictor.py
Smoke:  PYTHONPATH=src python benchmarks/bench_predictor.py --quick
Micro:  pytest -o python_functions="bench_*" benchmarks/bench_predictor.py
"""

import argparse
import tempfile
import time

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.homotopy import solve
from repro.systems import cyclic_roots_system, katsura_system

PARITY_TOL = 1e-8
EFFORT_GATE = 1.35   # regression floor; issue aspiration is 2.0
WALL_GATE = 0.80     # hermite must never be meaningfully slower
EFFORT_TARGET = 2.0  # the PR issue's aspirational reduction
WALL_TARGET = 1.5


def _solve_case(case: dict, predictor: str, seed: int):
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    report = solve(
        case["system"],
        rng=rng,
        kernel="slp",
        mode="batch",
        predictor=predictor,
        start_kind=case.get("start_kind", "total_degree"),
        cache=case.get("cache"),
    )
    wall = time.perf_counter() - t0
    s = report.summary
    return {
        "report": report,
        "wall": wall,
        "effort": s["newton_total"] + s["jacobian_evaluations"],
        "success": s["success"],
        "fallback": s.get("fallback_retracked", 0),
    }


def _match_roots(a, b) -> float:
    """Worst distance under greedy nearest-neighbor endpoint pairing."""
    if len(a) != len(b):
        return float("inf")
    pool = list(b)
    worst = 0.0
    for x in a:
        dists = [float(np.max(np.abs(x - y))) for y in pool]
        k = int(np.argmin(dists))
        worst = max(worst, dists[k])
        pool.pop(k)
    return worst


def compare_predictors(case: dict, seed: int, reps: int) -> dict:
    """Solve one benchmark system with both predictors, best-of-reps."""
    if case.get("warmup"):
        # pay the predictor-independent phase-1 (mixed cells) once, so
        # the timed runs hit the PR-9 artifact cache's warm path
        _solve_case(case, "euler", seed)
    runs = {}
    for predictor in ("euler", "hermite"):
        out = _solve_case(case, predictor, seed)
        for _ in range(reps - 1):
            out2 = _solve_case(case, predictor, seed)
            if out2["wall"] < out["wall"]:
                out = out2
        runs[predictor] = out
    euler, hermite = runs["euler"], runs["hermite"]
    return {
        "name": case["name"],
        "euler_wall": euler["wall"],
        "hermite_wall": hermite["wall"],
        "euler_effort": euler["effort"],
        "hermite_effort": hermite["effort"],
        "wall_ratio": euler["wall"] / hermite["wall"],
        "effort_ratio": euler["effort"] / hermite["effort"],
        "euler_roots": len(euler["report"].solutions),
        "hermite_roots": len(hermite["report"].solutions),
        "fallback": hermite["fallback"],
        "root_dist": _match_roots(
            euler["report"].solutions, hermite["report"].solutions
        ),
    }


def full_cases() -> list:
    cache = ArtifactStore(tempfile.mkdtemp(prefix="bench_predictor_"))
    return [
        {"name": "katsura-9", "system": katsura_system(9)},
        {
            "name": "cyclic-7",
            "system": cyclic_roots_system(7),
            "start_kind": "polyhedral",
            "cache": cache,
            "warmup": True,
        },
    ]


def quick_cases() -> list:
    cache = ArtifactStore(tempfile.mkdtemp(prefix="bench_predictor_"))
    return [
        {"name": "katsura-6", "system": katsura_system(6)},
        {
            "name": "cyclic-5",
            "system": cyclic_roots_system(5),
            "start_kind": "polyhedral",
            "cache": cache,
            "warmup": True,
        },
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: katsura-6 / cyclic-5",
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    parser.add_argument(
        "--reps", type=int, default=2,
        help="timed repetitions per predictor (best-of, default 2)",
    )
    args = parser.parse_args()
    cases = quick_cases() if args.quick else full_cases()
    reps = max(1, args.reps)

    print(f"{'system':<11}{'roots':>7}{'euler eff':>11}{'hermite eff':>12}"
          f"{'eff ratio':>10}{'wall ratio':>11}{'fallback':>9}")
    failed = False
    for case in cases:
        row = compare_predictors(case, args.seed, reps)
        print(f"{row['name']:<11}{row['hermite_roots']:>7}"
              f"{row['euler_effort']:>11}{row['hermite_effort']:>12}"
              f"{row['effort_ratio']:>9.2f}x{row['wall_ratio']:>10.2f}x"
              f"{row['fallback']:>9}")
        if row["euler_roots"] != row["hermite_roots"]:
            print(f"FAIL: {row['name']} root counts differ "
                  f"({row['euler_roots']} vs {row['hermite_roots']})")
            failed = True
        elif row["root_dist"] > PARITY_TOL:
            print(f"FAIL: {row['name']} endpoints diverge "
                  f"({row['root_dist']:.2e} > {PARITY_TOL:.0e})")
            failed = True
        if row["effort_ratio"] < EFFORT_GATE:
            print(f"FAIL: {row['name']} effort reduction "
                  f"{row['effort_ratio']:.2f}x below the "
                  f"{EFFORT_GATE:.2f}x floor")
            failed = True
        if row["wall_ratio"] < WALL_GATE:
            print(f"FAIL: {row['name']} wall ratio {row['wall_ratio']:.2f}x "
                  f"below the {WALL_GATE:.2f}x floor")
            failed = True
        for metric, target in (
            ("effort_ratio", EFFORT_TARGET), ("wall_ratio", WALL_TARGET),
        ):
            if row[metric] < target:
                print(f"note: {row['name']} {metric} {row[metric]:.2f}x is "
                      f"below the {target:.1f}x issue target (not gated; "
                      f"see module docstring)")
    if failed:
        return 1
    print(f"\nOK: hermite cuts Newton+Jacobian effort >= {EFFORT_GATE:.2f}x "
          f"with identical root sets (endpoints within {PARITY_TOL:.0e})")
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark smoke entry points
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def katsura4_case():
    return {"name": "katsura-4", "system": katsura_system(4)}


def bench_predictor_euler_solve(benchmark, katsura4_case):
    run = benchmark(lambda: _solve_case(katsura4_case, "euler", 0))
    assert run["success"] == run["report"].summary["total"]


def bench_predictor_hermite_solve(benchmark, katsura4_case):
    run = benchmark(lambda: _solve_case(katsura4_case, "hermite", 0))
    assert run["success"] == run["report"].summary["total"]


def bench_predictor_parity_smoke(benchmark, katsura4_case):
    row = benchmark.pedantic(
        lambda: compare_predictors(katsura4_case, 0, 1),
        iterations=1, rounds=1,
    )
    assert row["root_dist"] <= PARITY_TOL
    assert row["effort_ratio"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
