"""repro — parallel Pieri homotopies for feedback laws of linear systems.

Reproduction of Verschelde & Wang, *Computing Feedback Laws for Linear
Systems with a Parallel Pieri Homotopy*, ICPP 2004.

Layered architecture (bottom up):

- :mod:`repro.polynomials` — multivariate complex polynomials and systems.
- :mod:`repro.linalg` — cofactors/adjugates, random planes, polynomial matrices.
- :mod:`repro.tracker` — predictor-corrector path tracking.
- :mod:`repro.homotopy` — start systems and the gamma-trick homotopy.
- :mod:`repro.systems` — benchmark polynomial systems (cyclic n-roots, ...).
- :mod:`repro.schubert` — the paper's core: localization patterns, posets,
  Pieri trees and Pieri homotopies (numerical Schubert calculus).
- :mod:`repro.control` — pole placement for linear systems; feedback laws.
- :mod:`repro.parallel` — real master/slave parallel execution.
- :mod:`repro.simcluster` — discrete-event cluster simulation (MPI stand-in).
- :mod:`repro.experiments` — regenerates every table and figure of the paper.
"""

__version__ = "1.0.0"

from .polynomials import (
    Polynomial,
    PolynomialSystem,
    constant,
    parse_polynomial,
    parse_system,
    variables,
)

__all__ = [
    "Polynomial",
    "PolynomialSystem",
    "constant",
    "variables",
    "parse_polynomial",
    "parse_system",
    "__version__",
]
