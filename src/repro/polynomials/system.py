"""Polynomial systems with a compiled, vectorized evaluator.

A :class:`PolynomialSystem` bundles ``neqs`` polynomials in ``nvars``
variables and precompiles them into flat numpy tables so that evaluating the
residual and the Jacobian — the inner loop of every path tracker — costs a
handful of vectorized operations instead of Python-level term iteration.

Compilation layout
------------------
All distinct monomials of the system are collected into one exponent matrix
``E`` of shape ``(nmono, nvars)``.  Evaluating the monomial vector at a point
``x`` is ``prod(x**E, axis=1)``.  Each equation is then a sparse linear
combination of monomial values, stored as (row, column, coefficient)
triplets.  The Jacobian reuses the same table: the derivative of a monomial
with respect to variable ``v`` is ``e_v * monomial / x_v``, handled by a
second set of triplets built at compile time (with exponent reduced by one,
so there is no division at evaluation time and no trouble at ``x_v == 0``).
"""

from __future__ import annotations

import threading
from typing import List, Sequence, Tuple

import numpy as np

from .poly import Polynomial

__all__ = ["PolynomialSystem"]


class _CompiledTables:
    """Flat tables for vectorized residual/Jacobian evaluation."""

    __slots__ = (
        "expos",
        "maxdeg",
        "flat_cols",
        "res_rows",
        "res_cols",
        "res_coefs",
        "jac_rows",
        "jac_vars",
        "jac_cols",
        "jac_coefs",
        "_scratch",
    )

    def __init__(self, polys: Sequence[Polynomial], nvars: int) -> None:
        mono_index: dict[Tuple[int, ...], int] = {}

        def intern(expo: Tuple[int, ...]) -> int:
            idx = mono_index.get(expo)
            if idx is None:
                idx = len(mono_index)
                mono_index[expo] = idx
            return idx

        res_rows: List[int] = []
        res_cols: List[int] = []
        res_coefs: List[complex] = []
        jac_rows: List[int] = []
        jac_vars: List[int] = []
        jac_cols: List[int] = []
        jac_coefs: List[complex] = []

        for i, poly in enumerate(polys):
            for expo, c in poly.terms():
                res_rows.append(i)
                res_cols.append(intern(expo))
                res_coefs.append(c)
                for v, e in enumerate(expo):
                    if e == 0:
                        continue
                    reduced = list(expo)
                    reduced[v] = e - 1
                    jac_rows.append(i)
                    jac_vars.append(v)
                    jac_cols.append(intern(tuple(reduced)))
                    jac_coefs.append(e * c)

        nmono = max(1, len(mono_index))
        expos = np.zeros((nmono, nvars), dtype=np.int64)
        for expo, idx in mono_index.items():
            expos[idx] = expo
        self.expos = expos
        self.maxdeg = int(expos.max()) if expos.size else 0
        # flat gather indices into a (npts, (maxdeg+1)*nvars) power table:
        # monomial m needs power expos[m, v] of variable v at column
        # expos[m, v] * nvars + v of the flattened table
        self.flat_cols = expos * nvars + np.arange(nvars, dtype=np.int64)
        self.res_rows = np.asarray(res_rows, dtype=np.int64)
        self.res_cols = np.asarray(res_cols, dtype=np.int64)
        self.res_coefs = np.asarray(res_coefs, dtype=complex)
        self.jac_rows = np.asarray(jac_rows, dtype=np.int64)
        self.jac_vars = np.asarray(jac_vars, dtype=np.int64)
        self.jac_cols = np.asarray(jac_cols, dtype=np.int64)
        self.jac_coefs = np.asarray(jac_coefs, dtype=complex)
        # per-batch-shape scratch buffers (powers / gather / product),
        # reused across calls so replaying the same points-shape — every
        # step of a tracked front — does not reallocate the power table.
        # Thread-local: the thread executors share one compiled-tables
        # object across workers, and a shared ``out=`` buffer races
        self._scratch = threading.local()

    def __getstate__(self):
        # scratch buffers are per-process working memory, not state:
        # shipping a system to a pool worker must not drag along the
        # last batch's power tables
        state = {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_scratch"
        }
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._scratch = threading.local()

    def monomial_values(self, x: np.ndarray) -> np.ndarray:
        # x: (nvars,) complex -> (nmono,) complex
        with np.errstate(invalid="ignore"):
            return np.prod(x[None, :] ** self.expos, axis=1)

    def monomial_values_many(self, pts: np.ndarray) -> np.ndarray:
        # pts: (npts, nvars) complex -> (npts, nmono) complex; one shared
        # monomial table evaluated for the whole batch at once.  Powers are
        # built by repeated multiplication (cheaper than complex ``**``),
        # then each monomial is one flat gather plus a product over the
        # variable axis — two vectorized ops regardless of batch size.
        # Callers are expected to hold an errstate guard (diverging paths
        # legitimately push intermediate values past inf).  Scratch
        # buffers are cached per batch shape: a tracked front replays
        # the same ``npts`` every step, so the power table, the gather
        # target and the product accumulator are allocated once and
        # every element is overwritten on each call.
        npts, nvars = pts.shape
        cache = getattr(self._scratch, "buffers", None)
        if cache is None:
            cache = self._scratch.buffers = {}
        buffers = cache.get(npts)
        if buffers is None:
            if len(cache) >= 8:
                cache.clear()
            powers = np.empty((npts, self.maxdeg + 1, nvars), dtype=complex)
            gathered = np.empty(
                (npts,) + self.flat_cols.shape, dtype=complex
            )
            out = np.empty((npts, self.flat_cols.shape[0]), dtype=complex)
            buffers = cache[npts] = (powers, gathered, out)
        powers, gathered, out = buffers
        powers[:, 0] = 1.0
        for k in range(1, self.maxdeg + 1):
            np.multiply(powers[:, k - 1], pts, out=powers[:, k])
        flat = powers.reshape(npts, (self.maxdeg + 1) * nvars)
        np.take(flat, self.flat_cols, axis=1, out=gathered)
        # explicit sequential product over the variable axis: unlike
        # np.prod, whose reduction kernel rounds differently for
        # different batch shapes, elementwise multiplies make the result
        # independent of how points are batched — which is what
        # guarantees BatchTracker == PathTracker bit for bit
        np.copyto(out, gathered[:, :, 0])
        for v in range(1, nvars):
            np.multiply(out, gathered[:, :, v], out=out)
        return out


class PolynomialSystem:
    """A square-or-rectangular system of complex multivariate polynomials."""

    def __init__(self, polys: Sequence[Polynomial]) -> None:
        polys = list(polys)
        if not polys:
            raise ValueError("a system needs at least one polynomial")
        nvars = polys[0].nvars
        for p in polys:
            if p.nvars != nvars:
                raise ValueError("all polynomials must share the same variables")
        self._polys: Tuple[Polynomial, ...] = tuple(polys)
        self._nvars = nvars
        self._tables: _CompiledTables | None = None
        self._kernel = None  # compiled kernel routing (select_kernel)
        self._kernel_name: str | None = None

    # ------------------------------------------------------------------
    @property
    def polynomials(self) -> Tuple[Polynomial, ...]:
        return self._polys

    @property
    def neqs(self) -> int:
        return len(self._polys)

    @property
    def nvars(self) -> int:
        return self._nvars

    def is_square(self) -> bool:
        return self.neqs == self.nvars

    def __getstate__(self):
        # compiled kernels hold exec'd code objects, which do not
        # pickle; ship the backend *name* and recompile on arrival
        # (memoized per process, so workers pay taping once per family)
        state = self.__dict__.copy()
        state["_kernel"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._kernel_name is not None:
            self.select_kernel(self._kernel_name)

    def __len__(self) -> int:
        return self.neqs

    def __getitem__(self, i: int) -> Polynomial:
        return self._polys[i]

    def __iter__(self):
        return iter(self._polys)

    def degrees(self) -> Tuple[int, ...]:
        return tuple(p.total_degree() for p in self._polys)

    def total_degree_bound(self) -> int:
        """The Bezout number: the product of the equation degrees."""
        out = 1
        for d in self.degrees():
            out *= max(d, 0)
        return out

    # ------------------------------------------------------------------
    def _compiled(self) -> _CompiledTables:
        if self._tables is None:
            self._tables = _CompiledTables(self._polys, self._nvars)
        return self._tables

    # ------------------------------------------------------------------
    # pluggable kernel backends (repro.kernels)
    # ------------------------------------------------------------------
    def select_kernel(self, backend: str | None) -> "PolynomialSystem":
        """Route bulk (and scalar) evaluation through a compiled kernel.

        ``backend`` is ``None`` (the default power-table + scatter
        path), ``"naive"`` (same arithmetic, with effort accounting) or
        ``"slp"`` (the taped straight-line program of
        :mod:`repro.kernels`).  With a kernel selected, the scalar
        entry points run as one-row batches through the same compiled
        code, so scalar and batched evaluation stay bit-identical.
        Returns ``self`` for chaining.
        """
        if backend is None:
            self._kernel = None
            self._kernel_name = None
            return self
        from ..kernels import compile_system_kernel

        self._kernel = compile_system_kernel(self, backend)
        self._kernel_name = backend
        return self

    @property
    def kernel_backend(self) -> str | None:
        """The selected kernel backend name (``None`` = default path)."""
        return self._kernel_name

    def kernel_stats(self) -> dict | None:
        """Snapshot of the selected kernel's effort counters, if any."""
        return None if self._kernel is None else self._kernel.stats.snapshot()

    def evaluate(self, point: Sequence[complex]) -> np.ndarray:
        """Residual vector F(x), shape ``(neqs,)``."""
        x = np.asarray(point, dtype=complex)
        if x.shape != (self._nvars,):
            raise ValueError(f"expected point of length {self._nvars}")
        if self._kernel is not None:
            return self._kernel.evaluate(x[None, :])[0]
        t = self._compiled()
        mono = t.monomial_values(x)
        out = np.zeros(self.neqs, dtype=complex)
        np.add.at(out, t.res_rows, t.res_coefs * mono[t.res_cols])
        return out

    def jacobian_at(self, point: Sequence[complex]) -> np.ndarray:
        """Jacobian matrix J(x), shape ``(neqs, nvars)``."""
        x = np.asarray(point, dtype=complex)
        if x.shape != (self._nvars,):
            raise ValueError(f"expected point of length {self._nvars}")
        if self._kernel is not None:
            return self._kernel.evaluate_and_jacobian(x[None, :])[1][0]
        t = self._compiled()
        mono = t.monomial_values(x)
        out = np.zeros((self.neqs, self._nvars), dtype=complex)
        if len(t.jac_rows):
            np.add.at(
                out,
                (t.jac_rows, t.jac_vars),
                t.jac_coefs * mono[t.jac_cols],
            )
        return out

    def evaluate_and_jacobian(
        self, point: Sequence[complex]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Residual and Jacobian sharing one monomial-table evaluation."""
        x = np.asarray(point, dtype=complex)
        if x.shape != (self._nvars,):
            raise ValueError(f"expected point of length {self._nvars}")
        if self._kernel is not None:
            res, jac = self._kernel.evaluate_and_jacobian(x[None, :])
            return res[0], jac[0]
        t = self._compiled()
        mono = t.monomial_values(x)
        res = np.zeros(self.neqs, dtype=complex)
        np.add.at(res, t.res_rows, t.res_coefs * mono[t.res_cols])
        jac = np.zeros((self.neqs, self._nvars), dtype=complex)
        if len(t.jac_rows):
            np.add.at(
                jac,
                (t.jac_rows, t.jac_vars),
                t.jac_coefs * mono[t.jac_cols],
            )
        return res, jac

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Residuals at many points; returns shape ``(npts, neqs)``."""
        pts = np.asarray(points, dtype=complex)
        if pts.ndim != 2 or pts.shape[1] != self._nvars:
            raise ValueError(f"expected array of shape (npts, {self._nvars})")
        if self._kernel is not None:
            return self._kernel.evaluate(pts)
        return self._tables_evaluate_many(pts)

    def _tables_evaluate_many(self, pts: np.ndarray) -> np.ndarray:
        """The seed power-table + scatter residual path (naive backend)."""
        t = self._compiled()
        with np.errstate(invalid="ignore", over="ignore"):
            mono = t.monomial_values_many(pts)
            return self._scatter_residuals(t, mono)

    def _scatter_residuals(self, t: _CompiledTables, mono: np.ndarray) -> np.ndarray:
        # scatter-add term contributions equation-wise; the equation axis
        # leads so np.add.at accumulates whole (npts,) rows per term
        out = np.zeros((self.neqs, mono.shape[0]), dtype=complex)
        np.add.at(out, t.res_rows, t.res_coefs[:, None] * mono[:, t.res_cols].T)
        return out.T

    def evaluate_and_jacobian_many(
        self, points: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Residuals and Jacobians for a whole batch of points.

        Returns ``(res, jac)`` with shapes ``(npts, neqs)`` and
        ``(npts, neqs, nvars)``, sharing one monomial-table evaluation —
        the batched analogue of :meth:`evaluate_and_jacobian` and the
        kernel behind :class:`~repro.homotopy.convex.ConvexHomotopy`'s
        batch interface.
        """
        pts = np.asarray(points, dtype=complex)
        if pts.ndim != 2 or pts.shape[1] != self._nvars:
            raise ValueError(f"expected array of shape (npts, {self._nvars})")
        if self._kernel is not None:
            return self._kernel.evaluate_and_jacobian(pts)
        return self._tables_evaluate_and_jacobian_many(pts)

    def _tables_evaluate_and_jacobian_many(self, pts: np.ndarray):
        """The seed fused residual+Jacobian scatter path (naive backend)."""
        t = self._compiled()
        with np.errstate(invalid="ignore", over="ignore"):
            mono = t.monomial_values_many(pts)
            res = self._scatter_residuals(t, mono)
            jac_t = np.zeros(
                (self.neqs, self._nvars, pts.shape[0]), dtype=complex
            )
            if len(t.jac_rows):
                np.add.at(
                    jac_t,
                    (t.jac_rows, t.jac_vars),
                    t.jac_coefs[:, None] * mono[:, t.jac_cols].T,
                )
        return res, jac_t.transpose(2, 0, 1)

    def residual_norm(self, point: Sequence[complex]) -> float:
        """Max-norm of the residual at ``point``."""
        return float(np.max(np.abs(self.evaluate(point))))

    # ------------------------------------------------------------------
    def jacobian_system(self) -> List[List[Polynomial]]:
        """Symbolic Jacobian as a matrix of polynomials (mostly for tests)."""
        return [[p.diff(v) for v in range(self._nvars)] for p in self._polys]

    def map(self, func) -> "PolynomialSystem":
        return PolynomialSystem([func(p) for p in self._polys])

    def scale_equations(self, factors: Sequence[complex]) -> "PolynomialSystem":
        if len(factors) != self.neqs:
            raise ValueError("need one factor per equation")
        return PolynomialSystem(
            [f * p for f, p in zip(factors, self._polys)]
        )

    def __str__(self) -> str:
        return "\n".join(str(p) for p in self._polys)

    def __repr__(self) -> str:
        return f"PolynomialSystem(neqs={self.neqs}, nvars={self.nvars})"
