"""Multivariate polynomials over the complex numbers.

This module is the lowest layer of the PHCpack-like substrate: a dense-free,
dictionary-backed multivariate polynomial with complex coefficients.  It is
deliberately simple — homotopy continuation only needs construction,
arithmetic, differentiation and fast evaluation — but complete enough that
every higher layer (start systems, homotopies, benchmark systems) can be
built on top of it without reaching for sympy.

The representation maps exponent tuples to coefficients::

    x**2 * y - 3j*y  ->  {(2, 1): 1+0j, (0, 1): -3j}

Evaluation of a single polynomial at one point is done term by term; bulk
evaluation (many points, or whole systems) goes through the compiled
evaluator in :mod:`repro.polynomials.system`, which vectorizes over a shared
monomial table as the optimization guides recommend.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple, Union

import numpy as np

__all__ = ["Polynomial", "variables", "constant"]

Exponent = Tuple[int, ...]
Scalar = Union[int, float, complex]

_COEFF_TOL = 0.0  # exact zero pruning only; callers decide about roundoff


def _as_complex(value: Scalar) -> complex:
    return complex(value)


class Polynomial:
    """A multivariate polynomial with complex coefficients.

    Parameters
    ----------
    coeffs:
        Mapping from exponent tuples to coefficients.  All exponent tuples
        must have length ``nvars`` and non-negative integer entries.
    nvars:
        Number of variables.  Required when ``coeffs`` is empty.
    names:
        Optional variable names used for printing; defaults to
        ``x0, x1, ...``.
    """

    __slots__ = ("_coeffs", "_nvars", "_names")

    def __init__(
        self,
        coeffs: Mapping[Exponent, Scalar] | None = None,
        nvars: int | None = None,
        names: Sequence[str] | None = None,
    ) -> None:
        coeffs = dict(coeffs or {})
        if nvars is None:
            if not coeffs:
                raise ValueError("nvars is required for an empty polynomial")
            nvars = len(next(iter(coeffs)))
        self._nvars = int(nvars)
        clean: Dict[Exponent, complex] = {}
        for expo, c in coeffs.items():
            expo = tuple(int(e) for e in expo)
            if len(expo) != self._nvars:
                raise ValueError(
                    f"exponent {expo} has length {len(expo)}, expected {self._nvars}"
                )
            if any(e < 0 for e in expo):
                raise ValueError(f"negative exponent in {expo}")
            cc = _as_complex(c)
            if cc != 0:
                clean[expo] = clean.get(expo, 0j) + cc
                if clean[expo] == 0:
                    del clean[expo]
        self._coeffs = clean
        if names is not None:
            names = tuple(names)
            if len(names) != self._nvars:
                raise ValueError("names length must equal nvars")
        self._names = names

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def nvars(self) -> int:
        return self._nvars

    @property
    def names(self) -> Tuple[str, ...]:
        if self._names is not None:
            return self._names
        return tuple(f"x{i}" for i in range(self._nvars))

    def coefficients(self) -> Dict[Exponent, complex]:
        """A copy of the exponent -> coefficient mapping."""
        return dict(self._coeffs)

    def terms(self) -> Iterator[Tuple[Exponent, complex]]:
        return iter(self._coeffs.items())

    def __len__(self) -> int:
        return len(self._coeffs)

    def __bool__(self) -> bool:
        return bool(self._coeffs)

    def is_zero(self) -> bool:
        return not self._coeffs

    def coefficient(self, expo: Exponent) -> complex:
        return self._coeffs.get(tuple(expo), 0j)

    def total_degree(self) -> int:
        """Largest total degree of any term; -1 for the zero polynomial."""
        if not self._coeffs:
            return -1
        return max(sum(e) for e in self._coeffs)

    def degree_in(self, var: int) -> int:
        """Largest exponent of variable ``var``; -1 for zero polynomial."""
        if not self._coeffs:
            return -1
        return max(e[var] for e in self._coeffs)

    def is_constant(self) -> bool:
        return all(sum(e) == 0 for e in self._coeffs)

    def constant_term(self) -> complex:
        return self._coeffs.get((0,) * self._nvars, 0j)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if isinstance(other, Polynomial):
            if other._nvars != self._nvars:
                raise ValueError("polynomials have different numbers of variables")
            return other
        return constant(other, self._nvars, names=self._names)

    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = self._coerce(other)
        out = dict(self._coeffs)
        for expo, c in other._coeffs.items():
            out[expo] = out.get(expo, 0j) + c
        return Polynomial(out, self._nvars, self._names or other._names)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(
            {e: -c for e, c in self._coeffs.items()}, self._nvars, self._names
        )

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Scalar) -> "Polynomial":
        return self._coerce(other) - self

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if not isinstance(other, Polynomial):
            c = _as_complex(other)
            return Polynomial(
                {e: c * v for e, v in self._coeffs.items()}, self._nvars, self._names
            )
        other = self._coerce(other)
        out: Dict[Exponent, complex] = {}
        for e1, c1 in self._coeffs.items():
            for e2, c2 in other._coeffs.items():
                expo = tuple(a + b for a, b in zip(e1, e2))
                out[expo] = out.get(expo, 0j) + c1 * c2
        return Polynomial(out, self._nvars, self._names or other._names)

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "Polynomial":
        if isinstance(other, Polynomial):
            raise TypeError("polynomial division is not supported; divide by scalars")
        return self * (1.0 / _as_complex(other))

    def __pow__(self, power: int) -> "Polynomial":
        if not isinstance(power, int) or power < 0:
            raise ValueError("only non-negative integer powers are supported")
        result = constant(1, self._nvars, names=self._names)
        base = self
        n = power
        while n:
            if n & 1:
                result = result * base
            base = base * base if n > 1 else base
            n >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, complex)):
            other = constant(other, self._nvars)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._nvars == other._nvars and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash((self._nvars, frozenset(self._coeffs.items())))

    def almost_equal(self, other: "Polynomial", tol: float = 1e-10) -> bool:
        """Coefficient-wise comparison with absolute tolerance ``tol``."""
        other = self._coerce(other)
        keys = set(self._coeffs) | set(other._coeffs)
        return all(
            abs(self._coeffs.get(k, 0j) - other._coeffs.get(k, 0j)) <= tol
            for k in keys
        )

    # ------------------------------------------------------------------
    # calculus and evaluation
    # ------------------------------------------------------------------
    def diff(self, var: int) -> "Polynomial":
        """Partial derivative with respect to variable index ``var``."""
        if not 0 <= var < self._nvars:
            raise IndexError(f"variable index {var} out of range")
        out: Dict[Exponent, complex] = {}
        for expo, c in self._coeffs.items():
            k = expo[var]
            if k == 0:
                continue
            new = list(expo)
            new[var] = k - 1
            key = tuple(new)
            out[key] = out.get(key, 0j) + k * c
        return Polynomial(out, self._nvars, self._names)

    def gradient(self) -> Tuple["Polynomial", ...]:
        return tuple(self.diff(i) for i in range(self._nvars))

    def __call__(self, point: Sequence[Scalar]) -> complex:
        return self.evaluate(point)

    def evaluate(self, point: Sequence[Scalar]) -> complex:
        """Evaluate at a single point (sequence of ``nvars`` scalars)."""
        x = np.asarray(point, dtype=complex)
        if x.shape != (self._nvars,):
            raise ValueError(f"expected point of length {self._nvars}")
        total = 0j
        for expo, c in self._coeffs.items():
            term = c
            for xi, e in zip(x, expo):
                if e:
                    term *= xi**e
            total += term
        return total

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Evaluate at many points; ``points`` has shape (npts, nvars)."""
        pts = np.asarray(points, dtype=complex)
        if pts.ndim != 2 or pts.shape[1] != self._nvars:
            raise ValueError(f"expected array of shape (npts, {self._nvars})")
        if not self._coeffs:
            return np.zeros(pts.shape[0], dtype=complex)
        expos = np.array(list(self._coeffs.keys()), dtype=np.int64)
        coefs = np.array(list(self._coeffs.values()), dtype=complex)
        # (npts, nterms): product over variables of x**e, vectorized
        with np.errstate(invalid="ignore"):
            powers = pts[:, None, :] ** expos[None, :, :]
        return (powers.prod(axis=2) * coefs[None, :]).sum(axis=1)

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------
    def map_coefficients(self, func) -> "Polynomial":
        return Polynomial(
            {e: func(c) for e, c in self._coeffs.items()}, self._nvars, self._names
        )

    def conjugate(self) -> "Polynomial":
        return self.map_coefficients(lambda c: c.conjugate())

    def extend(self, new_nvars: int) -> "Polynomial":
        """Embed into a ring with more variables (appended at the end)."""
        if new_nvars < self._nvars:
            raise ValueError("cannot shrink the number of variables")
        pad = (0,) * (new_nvars - self._nvars)
        return Polynomial(
            {e + pad: c for e, c in self._coeffs.items()}, new_nvars, None
        )

    def substitute(self, var: int, value: Scalar) -> "Polynomial":
        """Fix variable ``var`` to ``value``; the variable count is kept."""
        val = _as_complex(value)
        out: Dict[Exponent, complex] = {}
        for expo, c in self._coeffs.items():
            k = expo[var]
            new = list(expo)
            new[var] = 0
            key = tuple(new)
            out[key] = out.get(key, 0j) + c * (val**k if k else 1)
        return Polynomial(out, self._nvars, self._names)

    def homogenize(self) -> "Polynomial":
        """Homogenize with one extra variable appended at the end."""
        d = max(0, self.total_degree())
        out: Dict[Exponent, complex] = {}
        for expo, c in self._coeffs.items():
            out[expo + (d - sum(expo),)] = c
        return Polynomial(out, self._nvars + 1, None)

    def max_norm(self) -> float:
        """Largest coefficient magnitude (zero polynomial -> 0.0)."""
        if not self._coeffs:
            return 0.0
        return max(abs(c) for c in self._coeffs.values())

    # ------------------------------------------------------------------
    # printing
    # ------------------------------------------------------------------
    def _format_coeff(self, c: complex) -> str:
        """Format a coefficient compactly for :meth:`__str__`.

        Real and imaginary parts that are exact integers print without a
        decimal point, and mixed complex coefficients get exactly one set
        of parentheses:

        >>> from repro.polynomials import variables
        >>> x, y = variables(2, ["x", "y"])
        >>> str((1 + 2j) * x * y - 3j * y + 0.5 * x)
        '(1+2j)*x*y - 3j*y + 0.5*x'
        >>> str((-1.5 - 1j) * x)
        '(-1.5-1j)*x'
        """

        def fmt(v: float) -> str:
            if math.isfinite(v) and v == int(v) and abs(v) < 1e15:
                return str(int(v))
            return repr(v)

        if c.imag == 0:
            return fmt(c.real)
        if c.real == 0:
            return f"{fmt(c.imag)}j"
        sign = "+" if c.imag >= 0 else "-"
        return f"({fmt(c.real)}{sign}{fmt(abs(c.imag))}j)"

    def __str__(self) -> str:
        if not self._coeffs:
            return "0"
        names = self.names
        parts = []
        for expo, c in sorted(
            self._coeffs.items(), key=lambda kv: (-sum(kv[0]), kv[0])
        ):
            factors = [
                names[i] if e == 1 else f"{names[i]}**{e}"
                for i, e in enumerate(expo)
                if e
            ]
            cs = self._format_coeff(c)
            if factors:
                if cs == "1":
                    parts.append("*".join(factors))
                elif cs == "-1":
                    parts.append("-" + "*".join(factors))
                else:
                    parts.append(cs + "*" + "*".join(factors))
            else:
                parts.append(cs)
        out = parts[0]
        for p in parts[1:]:
            out += " - " + p[1:] if p.startswith("-") else " + " + p
        return out

    def __repr__(self) -> str:
        return f"Polynomial({self!s})"


def variables(nvars: int, names: Sequence[str] | None = None) -> Tuple[Polynomial, ...]:
    """Return the ``nvars`` coordinate polynomials of a fresh ring.

    >>> x, y = variables(2, ["x", "y"])
    >>> str(x**2 - y)
    'x**2 - y'
    """
    names = tuple(names) if names is not None else None
    out = []
    for i in range(nvars):
        expo = [0] * nvars
        expo[i] = 1
        out.append(Polynomial({tuple(expo): 1}, nvars, names))
    return tuple(out)


def constant(value: Scalar, nvars: int, names: Sequence[str] | None = None) -> Polynomial:
    """The constant polynomial ``value`` in a ring with ``nvars`` variables."""
    c = _as_complex(value)
    coeffs = {(0,) * nvars: c} if c != 0 else {}
    return Polynomial(coeffs, nvars, tuple(names) if names else None)
