"""A small recursive-descent parser for polynomial strings.

Accepts the obvious infix syntax used by PHCpack-style input files::

    parse_polynomial("x**2*y - 3*y + 1.5", ["x", "y"])
    parse_polynomial("(x + i*y)^2 - 2", ["x", "y"])   # ^ works too, i == 1j

Grammar (no division by variables, exponents are non-negative integers)::

    expr   := term (("+" | "-") term)*
    term   := factor (("*" factor) | factor_juxt)*
    factor := base ("**" | "^") integer | base
    base   := number | name | "i" | "j" | "(" expr ")" | "-" factor
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from .poly import Polynomial, constant, variables

__all__ = ["parse_polynomial", "parse_system"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|\^|[-+*/()]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise ValueError(f"cannot tokenize {text[pos:]!r}")
        pos = m.end()
        for kind in ("num", "name", "op"):
            val = m.group(kind)
            if val is not None:
                tokens.append((kind, val))
                break
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], names: Sequence[str]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.names = list(names)
        self.nvars = len(names)
        self.vars = {n: v for n, v in zip(names, variables(self.nvars, names))}

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def advance(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, value: str) -> None:
        kind, val = self.advance()
        if val != value:
            raise ValueError(f"expected {value!r}, got {val!r}")

    # expr := term (('+'|'-') term)*
    def expr(self) -> Polynomial:
        result = self.term()
        while self.peek() == ("op", "+") or self.peek() == ("op", "-"):
            _, op = self.advance()
            rhs = self.term()
            result = result + rhs if op == "+" else result - rhs
        return result

    # term := factor (('*'|'/') factor | juxtaposed-factor)*
    def term(self) -> Polynomial:
        result = self.factor()
        while True:
            kind, val = self.peek()
            if (kind, val) in (("op", "*"), ("op", "/")):
                self.advance()
                rhs = self.factor()
                if val == "*":
                    result = result * rhs
                else:
                    if not rhs.is_constant():
                        raise ValueError("division by a non-constant polynomial")
                    result = result / rhs.constant_term()
            elif kind in ("num", "name") or (kind, val) == ("op", "("):
                result = result * self.factor()  # implicit multiplication
            else:
                return result

    # factor := base (('**'|'^') integer)?
    def factor(self) -> Polynomial:
        base = self.base()
        kind, val = self.peek()
        if (kind, val) in (("op", "**"), ("op", "^")):
            self.advance()
            nkind, nval = self.advance()
            neg = False
            if (nkind, nval) == ("op", "-"):
                neg = True
                nkind, nval = self.advance()
            if nkind != "num" or "." in nval or "e" in nval.lower():
                raise ValueError("exponent must be a non-negative integer")
            if neg:
                raise ValueError("negative exponents are not allowed")
            return base ** int(nval)
        return base

    def base(self) -> Polynomial:
        kind, val = self.advance()
        if kind == "num":
            return constant(float(val), self.nvars, self.names)
        if kind == "name":
            if val in ("i", "j", "I") and val not in self.vars:
                return constant(1j, self.nvars, self.names)
            if val not in self.vars:
                raise ValueError(f"unknown variable {val!r}")
            return self.vars[val]
        if (kind, val) == ("op", "("):
            inner = self.expr()
            self.expect(")")
            return inner
        if (kind, val) == ("op", "-"):
            return -self.factor()
        if (kind, val) == ("op", "+"):
            return self.factor()
        raise ValueError(f"unexpected token {val!r}")


def parse_polynomial(text: str, names: Sequence[str]) -> Polynomial:
    """Parse ``text`` into a :class:`Polynomial` over variables ``names``."""
    parser = _Parser(_tokenize(text), names)
    result = parser.expr()
    if parser.peek()[0] != "end":
        raise ValueError(f"trailing input near {parser.peek()[1]!r}")
    return result


def parse_system(lines: Sequence[str] | str, names: Sequence[str]):
    """Parse several polynomial strings (or a ';'-separated blob)."""
    from .system import PolynomialSystem

    if isinstance(lines, str):
        lines = [chunk for chunk in lines.split(";") if chunk.strip()]
    return PolynomialSystem([parse_polynomial(line, names) for line in lines])
