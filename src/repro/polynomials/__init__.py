"""Multivariate complex polynomials and systems (PHCpack-like substrate)."""

from .poly import Polynomial, constant, variables
from .system import PolynomialSystem
from .parse import parse_polynomial, parse_system

__all__ = [
    "Polynomial",
    "PolynomialSystem",
    "constant",
    "variables",
    "parse_polynomial",
    "parse_system",
]
