"""A minimal discrete-event simulation engine.

Priority-queue of timestamped events with deterministic tie-breaking; the
cluster models in :mod:`repro.simcluster.cluster` schedule closures on it.
Times are seconds of simulated wall clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

__all__ = ["EventQueue"]


@dataclass
class EventQueue:
    """Timestamped callback queue (the simulation's only clock)."""

    now: float = 0.0
    _heap: List[Tuple[float, int, Callable[[], None]]] = field(
        default_factory=list
    )
    _counter: itertools.count = field(default_factory=itertools.count)
    events_processed: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._counter), callback)
        )

    def at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when >= now``."""
        self.schedule(when - self.now, callback)

    def run(self, max_events: int = 100_000_000) -> float:
        """Process events until the queue drains; returns the final time."""
        processed = 0
        while self._heap:
            when, _, callback = heapq.heappop(self._heap)
            self.now = when
            callback()
            processed += 1
            if processed > max_events:
                raise RuntimeError("event limit exceeded (runaway simulation)")
        self.events_processed += processed
        return self.now

    def empty(self) -> bool:
        return not self._heap
