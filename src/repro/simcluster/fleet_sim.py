"""Failure-injection simulation of the fleet protocol — sockets removed.

Runs the *real* :class:`repro.parallel.fleet.protocol.FleetMaster` state
machine (not a model of it) against simulated workers on the discrete
:class:`~repro.simcluster.engine.EventQueue`, with message latency and
the failure modes that are awkward to stage over real sockets:

- the master killed at an exact simulated instant (``kill_master_at``) —
  commits stop, in-flight messages to it vanish, and
  :func:`resume_fleet` restarts from the journal cut;
- workers dying permanently mid-job (``worker_deaths``);
- network partitions (``partitions``: per-worker windows in which every
  frame in either direction is dropped) — heartbeat timeouts reclaim
  the leases, and the held-list reconciliation heals the reconnect;
- duplicate delivery (``duplicate_results``) — every result frame
  arrives twice, exercising first-commit-wins.

The journal here is just the committed-record dict, and each record is a
pure function of the job (never of the worker or the schedule), so the
recovery invariant the tests pin down is exact equality::

    journal(kill + resume)  ==  journal(uninterrupted run)

Workers can be heterogeneous (``speeds``): the master's lease sizing is
fitted from their self-reported busy seconds exactly as over sockets.

>>> res = simulate_fleet([1.0] * 8, n_workers=2)
>>> res.jobs_done, res.stats.duplicates
(8, 0)
>>> killed = simulate_fleet([1.0] * 8, n_workers=2, kill_master_at=1.5)
>>> resumed = resume_fleet([1.0] * 8, 2, killed)
>>> merged = {**killed.records, **resumed.records}
>>> merged == simulate_fleet([1.0] * 8, n_workers=2).records
True
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel.fleet.protocol import FleetMaster, FleetStats
from .engine import EventQueue

__all__ = ["FleetSimResult", "simulate_fleet", "resume_fleet", "fleet_job_record"]


def fleet_job_record(job_index: int, cost: float) -> dict:
    """The deterministic result record of one simulated job.

    Depends only on the job, never on which worker ran it or when — the
    property that makes "journal ≡ uninterrupted run" an equality check.
    """
    return {
        "job_id": f"job-{job_index}",
        "cost": float(cost),
        "value": f"v{job_index}:{float(cost):.6f}",
    }


@dataclass
class FleetSimResult:
    """Outcome of one simulated (possibly killed) fleet run."""

    n_workers: int
    wall_seconds: float = 0.0
    #: job_id -> journaled record (the durable state, and nothing else)
    records: Dict[str, dict] = field(default_factory=dict)
    #: job_id -> simulated commit time
    commit_times: Dict[str, float] = field(default_factory=dict)
    busy_seconds: List[float] = field(default_factory=list)
    stats: FleetStats = field(default_factory=FleetStats)
    killed_at: Optional[float] = None
    worker_deaths: Dict[int, float] = field(default_factory=dict)
    #: per-worker jobs committed while that worker was the sender
    jobs_by_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def jobs_done(self) -> int:
        return len(self.records)

    def done_jobs(self) -> List[str]:
        return sorted(self.records)


class _SimWorker:
    """One simulated worker agent: FIFO queue, heartbeats, mortality."""

    def __init__(self, sim: "_FleetSim", index: int, speed: float):
        self.sim = sim
        self.index = index
        self.worker_id = f"w{index}"
        self.speed = speed
        self.queue: deque = deque()
        self.running: Optional[dict] = None
        self.alive = True
        self.drained = False
        self.busy = 0.0

    # -- master -> worker ---------------------------------------------
    def deliver(self, message: dict) -> None:
        if not self.alive:
            return
        kind = message.get("type")
        if kind == "lease":
            held = {p["job_id"] for p in self.queue}
            if self.running is not None:
                held.add(self.running["job_id"])
            for payload in message.get("jobs", ()):
                if payload["job_id"] not in held:
                    self.queue.append(payload)
            self.maybe_start()
        elif kind == "revoke":
            drop = set(message.get("job_ids", ()))
            self.queue = deque(p for p in self.queue if p["job_id"] not in drop)
        elif kind == "drain":
            self.drained = True
        elif kind == "welcome" and message.get("reregister"):
            self.sim.to_master(
                {"type": "hello", "worker": self.worker_id, "slots": 1,
                 "held": self.held_ids()},
                sender=self,
            )

    # -- worker behaviour ---------------------------------------------
    def held_ids(self) -> List[str]:
        held = [p["job_id"] for p in self.queue]
        if self.running is not None:
            held.insert(0, self.running["job_id"])
        return held

    def maybe_start(self) -> None:
        if not self.alive or self.running is not None or not self.queue:
            return
        payload = self.queue.popleft()
        self.running = payload
        duration = payload["cost"] / self.speed
        death = self.sim.deaths.get(self.index)
        now = self.sim.queue.now
        if death is not None and now < death <= now + duration:
            return  # the death event fires first and reclaims this job
        self.sim.queue.schedule(duration, lambda: self.finish(payload))

    def finish(self, payload: dict) -> None:
        if not self.alive or self.running is not payload:
            return
        self.running = None
        self.busy += payload["cost"] / self.speed
        record = fleet_job_record(payload["index"], payload["cost"])
        self.sim.to_master(
            {
                "type": "result",
                "worker": self.worker_id,
                "job_id": payload["job_id"],
                "record": record,
                "seconds": payload["cost"] / self.speed,
            },
            sender=self,
            duplicate=self.sim.duplicate_results,
        )
        self.maybe_start()

    def heartbeat(self) -> None:
        if not self.alive or self.drained or self.sim.halted():
            return
        self.sim.to_master(
            {"type": "heartbeat", "worker": self.worker_id,
             "held": self.held_ids()},
            sender=self,
        )
        self.sim.queue.schedule(self.sim.heartbeat_interval, self.heartbeat)

    def die(self) -> None:
        self.alive = False
        self.queue.clear()
        self.running = None


class _FleetSim:
    def __init__(
        self,
        costs: Sequence[float],
        n_workers: int,
        *,
        speeds: Optional[Sequence[float]],
        kill_master_at: Optional[float],
        worker_deaths: Optional[Dict[int, float]],
        partitions: Optional[Sequence[Tuple[int, float, float]]],
        duplicate_results: bool,
        latency: float,
        heartbeat_interval: float,
        heartbeat_timeout: float,
        lease_target_seconds: float,
        max_lease: int,
        skip_jobs: Sequence[str],
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        speeds = list(speeds) if speeds is not None else [1.0] * n_workers
        if len(speeds) != n_workers:
            raise ValueError("speeds must name every worker")
        self.deaths = dict(worker_deaths or {})
        for w, t in self.deaths.items():
            if not 0 <= w < n_workers:
                raise ValueError(f"worker_deaths names worker {w} of {n_workers}")
            if t < 0:
                raise ValueError("death times must be non-negative")
        if len(self.deaths) >= n_workers and kill_master_at is None:
            raise ValueError("at least one worker must survive")
        self.partitions = list(partitions or ())
        self.duplicate_results = duplicate_results
        self.latency = latency
        self.heartbeat_interval = heartbeat_interval
        self.kill_master_at = kill_master_at
        self.queue = EventQueue()
        skip = set(skip_jobs)
        jobs = [
            {"job_id": f"job-{i}", "index": i, "cost": float(c)}
            for i, c in enumerate(costs)
            if f"job-{i}" not in skip
        ]
        self.result = FleetSimResult(
            n_workers=n_workers,
            killed_at=kill_master_at,
            worker_deaths=dict(self.deaths),
        )
        self.master = FleetMaster(
            jobs,
            self._commit,
            heartbeat_timeout=heartbeat_timeout,
            lease_target_seconds=lease_target_seconds,
            max_lease=max_lease,
            cost_of=lambda job: job.get("cost", 1.0),
        )
        self.workers = [_SimWorker(self, i, speeds[i]) for i in range(n_workers)]
        self._last_result_from: Dict[str, str] = {}

    # -- failure plumbing ----------------------------------------------
    def master_alive(self) -> bool:
        return self.kill_master_at is None or self.queue.now < self.kill_master_at

    def halted(self) -> bool:
        """Dead air: master killed or drained — stop self-rescheduling."""
        return not self.master_alive() or self.master.done

    def partitioned(self, worker_index: int) -> bool:
        now = self.queue.now
        return any(
            w == worker_index and t0 <= now < t1 for w, t0, t1 in self.partitions
        )

    # -- message transport ---------------------------------------------
    def to_master(self, message: dict, sender: _SimWorker,
                  duplicate: bool = False) -> None:
        """Worker -> master with latency; dropped by partitions/kill."""
        if self.partitioned(sender.index):
            return
        copies = 2 if duplicate and message.get("type") == "result" else 1
        for k in range(copies):
            self.queue.schedule(
                self.latency * (k + 1), lambda m=dict(message): self._arrive(m)
            )

    def _arrive(self, message: dict) -> None:
        if not self.master_alive():
            return
        if message.get("type") == "result":
            self._last_result_from[message["job_id"]] = message["worker"]
        outbound = self.master.handle(message, self.queue.now)
        self._route(outbound)

    def _route(self, outbound) -> None:
        by_id = {w.worker_id: w for w in self.workers}
        for worker_id, message in outbound:
            worker = by_id.get(worker_id)
            if worker is None or not worker.alive:
                continue
            if self.partitioned(worker.index):
                continue  # master -> worker frame lost in the partition
            self.queue.schedule(
                self.latency, lambda w=worker, m=message: w.deliver(m)
            )

    def _commit(self, job_id: str, record: dict) -> None:
        # the commit callback is the journal: by construction it can only
        # run while the master is alive (messages stop arriving after the
        # kill), so the journal cut is exactly the kill cut
        self.result.records[job_id] = record
        self.result.commit_times[job_id] = self.queue.now
        sender = self._last_result_from.get(job_id)
        if sender is not None:
            self.result.jobs_by_worker[sender] = (
                self.result.jobs_by_worker.get(sender, 0) + 1
            )

    def _check_timeouts(self) -> None:
        if self.halted():
            return
        self._route(self.master.check_timeouts(self.queue.now))
        self.queue.schedule(self.heartbeat_interval, self._check_timeouts)

    # -- run -----------------------------------------------------------
    def run(self) -> FleetSimResult:
        for worker in self.workers:
            self.queue.schedule(
                0.0,
                lambda w=worker: self.to_master(
                    {"type": "hello", "worker": w.worker_id, "slots": 1,
                     "held": []},
                    sender=w,
                ),
            )
            self.queue.schedule(self.heartbeat_interval, worker.heartbeat)
        for index, t in self.deaths.items():
            self.queue.at(t, self.workers[index].die)
        self.queue.schedule(self.heartbeat_interval, self._check_timeouts)
        end = self.queue.run()
        self.result.wall_seconds = (
            end if self.kill_master_at is None else min(end, self.kill_master_at)
        )
        self.result.busy_seconds = [w.busy for w in self.workers]
        self.result.stats = self.master.stats
        if self.master_alive() or self.kill_master_at is None:
            self.master.check_invariant()
        return self.result


def simulate_fleet(
    costs: Sequence[float],
    n_workers: int,
    *,
    speeds: Optional[Sequence[float]] = None,
    kill_master_at: Optional[float] = None,
    worker_deaths: Optional[Dict[int, float]] = None,
    partitions: Optional[Sequence[Tuple[int, float, float]]] = None,
    duplicate_results: bool = False,
    latency: float = 1e-3,
    heartbeat_interval: float = 0.5,
    heartbeat_timeout: float = 2.0,
    lease_target_seconds: float = 2.0,
    max_lease: int = 8,
    skip_jobs: Sequence[str] = (),
) -> FleetSimResult:
    """Simulate one fleet run of ``costs`` with injected failures.

    ``partitions`` is a list of ``(worker_index, t0, t1)`` windows during
    which every frame to or from that worker is dropped.  See the module
    docstring for the other failure axes; ``skip_jobs`` (journaled job
    ids) is how :func:`resume_fleet` expresses the resume cut.
    """
    return _FleetSim(
        costs,
        n_workers,
        speeds=speeds,
        kill_master_at=kill_master_at,
        worker_deaths=worker_deaths,
        partitions=partitions,
        duplicate_results=duplicate_results,
        latency=latency,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        lease_target_seconds=lease_target_seconds,
        max_lease=max_lease,
        skip_jobs=skip_jobs,
    ).run()


def resume_fleet(
    costs: Sequence[float],
    n_workers: int,
    previous: FleetSimResult,
    **kwargs,
) -> FleetSimResult:
    """Resume a killed fleet: serve only the jobs missing from its journal."""
    return simulate_fleet(
        costs, n_workers, skip_jobs=previous.done_jobs(), **kwargs
    )
