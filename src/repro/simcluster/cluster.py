"""Discrete-event simulation of static vs dynamic load balancing (paper §II-A).

Models the paper's MPI runs on the NCSA Platinum cluster (see DESIGN.md
substitutions): ``n_cpus`` processors at ``clock_ghz``, a master/slave
protocol with per-message latency and a serially-serviced master, and an
optional non-blocking prefetch that overlaps communication with
computation (the paper's MPI_Isend/Irecv improvement).

- **static**: paths are split once into one contiguous block per processor
  (chunking="block", the PHCpack distribution; "round_robin" is available
  as an ablation); processor finish time = its chunk's total compute time.
  No master, no per-job messages — but whole regions of expensive divergent
  paths land in few chunks, which is the imbalance of Tables I/II.
- **dynamic**: all CPUs compute (the paper's 8-CPU dynamic speedup of 7.2
  shows the master is not a dedicated processor); the master role is a
  serially-serviced coordination resource.  Each returned result costs one
  master service slot plus two message latencies before the next path is
  assigned; with ``overlap_comm`` the next job is prefetched so a slave
  only idles when the master saturates.

The simulated quantity is the paper's table cell: wall-clock minutes and
the speedup relative to the one-CPU run of the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .engine import EventQueue
from .workload import Workload

__all__ = [
    "ClusterSpec",
    "SimResult",
    "active_load_imbalance",
    "simulate_static",
    "simulate_dynamic",
    "speedup_table",
]


def active_load_imbalance(busy_seconds) -> float:
    """max busy / mean busy over the CPUs that did any work.

    Idle CPUs are *excluded*: simulated allocations are often far larger
    than the job list (the paper's 128-CPU rows), and counting trailing
    never-used CPUs would swamp the statistic.  The real executors use
    the complementary full-pool convention — see
    :func:`repro.parallel.executors.load_imbalance`.
    """
    busy = np.asarray([b for b in busy_seconds if b > 0])
    if busy.size == 0 or busy.mean() == 0:
        return 1.0
    return float(busy.max() / busy.mean())


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware/protocol parameters of the simulated cluster."""

    clock_ghz: float = 1.0
    latency_seconds: float = 1e-3         # one-way message latency
    master_service_seconds: float = 2e-3  # master time per received result
    overlap_comm: bool = True             # non-blocking send/recv prefetch
    #: probability that a job attempt crashes (the time spent is wasted and
    #: the job is re-run: immediately on the same CPU for static, by a
    #: fresh master assignment for dynamic).  Failure-injection extension.
    failure_rate: float = 0.0
    failure_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")

    def compute_seconds(self, cost: float) -> float:
        """Wall seconds to run a 1 GHz-referenced cost on this clock."""
        return cost / self.clock_ghz

    def attempts_for(self, rng: np.random.Generator) -> int:
        """Sample the number of attempts one job needs (>= 1)."""
        if self.failure_rate == 0.0:
            return 1
        attempts = 1
        while rng.random() < self.failure_rate:
            attempts += 1
        return attempts


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    schedule: str
    n_cpus: int
    wall_seconds: float
    busy_seconds: List[float] = field(default_factory=list)
    jobs_done: int = 0
    messages: int = 0
    failed_attempts: int = 0

    @property
    def wall_minutes(self) -> float:
        return self.wall_seconds / 60.0

    @property
    def total_cpu_seconds(self) -> float:
        return float(sum(self.busy_seconds))

    @property
    def load_imbalance(self) -> float:
        return active_load_imbalance(self.busy_seconds)

    def speedup(self, t1_seconds: float) -> float:
        return t1_seconds / self.wall_seconds


def simulate_static(
    workload: Workload,
    n_cpus: int,
    spec: ClusterSpec | None = None,
    chunking: str = "block",
) -> SimResult:
    """One-shot pre-assignment; finish = slowest chunk."""
    spec = spec or ClusterSpec()
    if n_cpus < 1:
        raise ValueError("need at least one CPU")
    if chunking == "block":
        chunks = np.array_split(workload.costs, n_cpus)
    elif chunking == "round_robin":
        chunks = [workload.costs[w::n_cpus] for w in range(n_cpus)]
    else:
        raise ValueError(f"unknown chunking {chunking!r}")
    failed_attempts = 0
    if spec.failure_rate > 0:
        rng = np.random.default_rng(spec.failure_seed)
        busy = []
        for chunk in chunks:
            total = 0.0
            for cost in chunk:
                attempts = spec.attempts_for(rng)
                failed_attempts += attempts - 1
                total += attempts * float(cost)
            busy.append(spec.compute_seconds(total))
    else:
        busy = [spec.compute_seconds(float(chunk.sum())) for chunk in chunks]
    # one scatter message per processor at start, one gather at the end
    comm = 2.0 * spec.latency_seconds if n_cpus > 1 else 0.0
    wall = max(busy) + comm
    return SimResult(
        schedule="static",
        n_cpus=n_cpus,
        wall_seconds=wall,
        busy_seconds=busy,
        jobs_done=workload.n_paths,
        messages=2 * (n_cpus - 1),
        failed_attempts=failed_attempts,
    )


def simulate_dynamic(
    workload: Workload, n_cpus: int, spec: ClusterSpec | None = None
) -> SimResult:
    """Master/slave FCFS with optional communication/computation overlap.

    All CPUs compute; the master is a shared serial resource whose service
    gates job assignments.  Without overlap every job pays a round trip
    (two latencies + one service) before computing; with overlap the next
    job is prefetched while the current one computes, so the only stalls
    are master saturation and the initial fill.
    """
    spec = spec or ClusterSpec()
    if n_cpus < 1:
        raise ValueError("need at least one CPU")
    costs = list(map(float, workload.costs))
    n_jobs = len(costs)
    failed_attempts = 0
    if spec.failure_rate > 0:
        # each crashed attempt wastes one full run of the job; the master
        # reassigns immediately (modelled as an inflated job cost)
        rng = np.random.default_rng(spec.failure_seed)
        inflated = []
        for cost in costs:
            attempts = spec.attempts_for(rng)
            failed_attempts += attempts - 1
            inflated.append(attempts * cost)
        costs = inflated
    if n_cpus == 1:
        # degenerate: no coordination, serial run without messages
        wall = spec.compute_seconds(float(sum(costs)))
        return SimResult(
            "dynamic", 1, wall, [wall], n_jobs, 0, failed_attempts
        )

    queue = EventQueue()
    busy = [0.0] * n_cpus
    state = {
        "next_job": 0,
        "master_free_at": 0.0,
        "jobs_done": 0,
        "messages": 0,
    }
    buffered: List[int | None] = [None] * n_cpus
    idle: List[bool] = [True] * n_cpus
    per_job_overhead = (
        0.0
        if spec.overlap_comm
        else 2 * spec.latency_seconds + spec.master_service_seconds
    )

    def start_compute(cpu: int, job: int) -> None:
        idle[cpu] = False
        duration = spec.compute_seconds(costs[job]) + per_job_overhead
        busy[cpu] += spec.compute_seconds(costs[job])
        queue.schedule(duration, lambda: finish_compute(cpu))

    def finish_compute(cpu: int) -> None:
        state["jobs_done"] += 1
        state["messages"] += 2  # result out, next assignment in
        # the master services this result (serially) and refills the buffer
        queue.schedule(spec.latency_seconds, lambda: master_service(cpu))
        if buffered[cpu] is not None:
            job = buffered[cpu]
            buffered[cpu] = None
            start_compute(cpu, job)
        else:
            idle[cpu] = True

    def master_service(cpu: int) -> None:
        start = max(queue.now, state["master_free_at"])
        state["master_free_at"] = start + spec.master_service_seconds
        delay = state["master_free_at"] - queue.now
        queue.schedule(delay + spec.latency_seconds, lambda: deliver(cpu))

    def deliver(cpu: int) -> None:
        if state["next_job"] >= n_jobs:
            return
        job = state["next_job"]
        state["next_job"] += 1
        if idle[cpu]:
            start_compute(cpu, job)
        elif spec.overlap_comm:
            buffered[cpu] = job
        else:
            # without overlap the slave was necessarily idle here; keep the
            # job anyway to preserve work conservation
            buffered[cpu] = job

    # bootstrap: one job per CPU, plus one prefetched job with overlap
    for cpu in range(n_cpus):
        if state["next_job"] >= n_jobs:
            break
        job = state["next_job"]
        state["next_job"] += 1
        start_compute(cpu, job)
    if spec.overlap_comm:
        for cpu in range(n_cpus):
            if state["next_job"] >= n_jobs:
                break
            buffered[cpu] = state["next_job"]
            state["next_job"] += 1

    wall = queue.run()
    if state["jobs_done"] != n_jobs:
        raise RuntimeError(
            f"dynamic simulation lost jobs: {state['jobs_done']} of {n_jobs}"
        )
    return SimResult(
        schedule="dynamic",
        n_cpus=n_cpus,
        wall_seconds=wall,
        busy_seconds=busy,
        jobs_done=state["jobs_done"],
        messages=state["messages"],
        failed_attempts=failed_attempts,
    )


def speedup_table(
    workload: Workload,
    cpu_counts: List[int],
    spec: ClusterSpec | None = None,
) -> List[dict]:
    """Rows shaped like the paper's Tables I/II.

    Each row: #CPUs, static/dynamic wall minutes and speedups, and the
    improvement of dynamic over static.
    """
    spec = spec or ClusterSpec()
    t1 = simulate_static(workload, 1, spec).wall_seconds
    rows = []
    for n in cpu_counts:
        st = simulate_static(workload, n, spec)
        dy = simulate_dynamic(workload, n, spec)
        rows.append(
            {
                "cpus": n,
                "static_minutes": st.wall_minutes,
                "static_speedup": st.speedup(t1),
                "dynamic_minutes": dy.wall_minutes,
                "dynamic_speedup": dy.speedup(t1),
                "improvement_pct": 100.0
                * (st.wall_seconds - dy.wall_seconds)
                / st.wall_seconds,
            }
        )
    return rows
