"""Failure-injection replay of the sweep scheduler on the simulated cluster.

The real engine (:mod:`repro.sweep.engine`) and this replay run the same
dynamic master/worker protocol; here the jobs are abstract costs on the
simulated cluster of :mod:`repro.simcluster.cluster`, which makes the
failure scenarios that are awkward to stage for real — a master killed at
an exact instant, workers dying mid-job at chosen times — cheap to
explore at cluster scale.  The invariants the real checkpoint tests pin
down hold here too and are tested the same way:

- a run killed at time ``T`` has journaled exactly the jobs that finished
  by ``T``; resuming the remainder completes every job exactly once;
- a worker death loses only the job in flight on that worker, which is
  re-queued after a detection latency and finishes elsewhere.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .cluster import ClusterSpec, active_load_imbalance
from .engine import EventQueue

__all__ = ["SweepReplayResult", "replay_sweep_dynamic", "resume_replay"]


@dataclass
class SweepReplayResult:
    """Outcome of one replayed (possibly killed) sweep run."""

    n_cpus: int
    wall_seconds: float
    busy_seconds: List[float] = field(default_factory=list)
    #: job index -> simulated finish time, *only* for jobs whose result
    #: was journaled before the kill (the checkpoint contents)
    completion_times: Dict[int, float] = field(default_factory=dict)
    requeues: int = 0
    worker_deaths: Dict[int, float] = field(default_factory=dict)
    killed_at: Optional[float] = None

    @property
    def jobs_done(self) -> int:
        return len(self.completion_times)

    def done_jobs(self) -> List[int]:
        return sorted(self.completion_times)

    @property
    def load_imbalance(self) -> float:
        return active_load_imbalance(self.busy_seconds)


def replay_sweep_dynamic(
    costs: Sequence[float],
    n_cpus: int,
    spec: ClusterSpec | None = None,
    kill_at: Optional[float] = None,
    worker_deaths: Optional[Dict[int, float]] = None,
    skip_jobs: Optional[Sequence[int]] = None,
) -> SweepReplayResult:
    """Replay a dynamic sweep of ``costs`` with injected failures.

    ``kill_at`` models a ``SIGKILL`` of the whole run at that simulated
    time: jobs finishing later are not journaled and no further work is
    recorded — exactly the checkpoint cut of the real engine.
    ``worker_deaths`` maps cpu index to its (permanent) death time; a job
    in flight on a dying cpu is re-queued one message latency later.
    ``skip_jobs`` are already-journaled jobs a resume does not re-run.
    """
    spec = spec or ClusterSpec()
    if n_cpus < 1:
        raise ValueError("need at least one CPU")
    deaths = dict(worker_deaths or {})
    for cpu, t in deaths.items():
        if not 0 <= cpu < n_cpus:
            raise ValueError(f"worker_deaths names cpu {cpu} of {n_cpus}")
        if t < 0:
            raise ValueError("death times must be non-negative")
    if len(deaths) >= n_cpus:
        raise ValueError("at least one worker must survive")
    skip = set(skip_jobs or ())
    per_job_overhead = (
        0.0
        if spec.overlap_comm
        else 2 * spec.latency_seconds + spec.master_service_seconds
    )

    result = SweepReplayResult(
        n_cpus=n_cpus,
        wall_seconds=0.0,
        busy_seconds=[0.0] * n_cpus,
        worker_deaths=dict(deaths),
        killed_at=kill_at,
    )
    queue = EventQueue()
    pending = deque(j for j in range(len(costs)) if j not in skip)
    alive = [True] * n_cpus
    idle = [True] * n_cpus
    in_flight: Dict[int, int] = {}

    def master_alive() -> bool:
        return kill_at is None or queue.now <= kill_at

    def try_fill() -> None:
        if not master_alive():
            return
        for cpu in range(n_cpus):
            if not pending:
                return
            if alive[cpu] and idle[cpu]:
                start(cpu, pending.popleft())

    def start(cpu: int, job: int) -> None:
        idle[cpu] = False
        in_flight[cpu] = job
        duration = spec.compute_seconds(float(costs[job])) + per_job_overhead
        death_t = deaths.get(cpu)
        if death_t is not None and queue.now < death_t <= queue.now + duration:
            return  # the death event will reclaim this job
        queue.schedule(duration, lambda: finish(cpu, job))

    def finish(cpu: int, job: int) -> None:
        if not alive[cpu] or in_flight.get(cpu) != job:
            return
        del in_flight[cpu]
        idle[cpu] = True
        if master_alive():
            # journaled: the master recorded this result before the kill
            result.completion_times[job] = queue.now
            result.busy_seconds[cpu] += spec.compute_seconds(float(costs[job]))
            try_fill()

    def die(cpu: int) -> None:
        alive[cpu] = False
        job = in_flight.pop(cpu, None)
        if job is not None and master_alive():
            # the master detects the death and re-queues the lost job
            result.requeues += 1
            queue.schedule(spec.latency_seconds, lambda: requeue(job))

    def requeue(job: int) -> None:
        if master_alive():
            pending.append(job)
            try_fill()

    for cpu, t in deaths.items():
        queue.at(t, lambda cpu=cpu: die(cpu))
    try_fill()
    end = queue.run()
    result.wall_seconds = end if kill_at is None else min(end, kill_at)
    return result


def resume_replay(
    costs: Sequence[float],
    n_cpus: int,
    previous: SweepReplayResult,
    spec: ClusterSpec | None = None,
) -> SweepReplayResult:
    """Resume a killed replay: run only the jobs missing from its journal."""
    return replay_sweep_dynamic(
        costs, n_cpus, spec=spec, skip_jobs=previous.done_jobs()
    )
