"""Cluster simulation of the parallel Pieri computation (paper §III-D, Fig 6).

Unlike the flat path lists of §II, Pieri jobs form a tree: a job becomes
ready only when its parent's solution is known.  The master keeps the ready
queue; slaves return results that enable at most p new jobs.  The
simulation reproduces the paper's two qualitative observations:

- at the start only a few processors are active (the tree is narrow near
  the root) — measured by ``ramp_up_seconds``;
- almost half the total work sits in the last level, where job dimensions
  are largest — measured by ``level_work_fraction``.

Per-job costs come from a cost model ``cost_fn(level)``; the default is
calibrated to the measured growth of this repository's own tracker (Newton
iterations on an n x n determinant system with cofactor Jacobians cost
roughly n^2 small determinants each: O(level^4) with a floor), matching
the shape of the paper's Table III timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..schubert.patterns import PieriProblem
from ..schubert.poset import PieriPoset
from .cluster import ClusterSpec
from .engine import EventQueue

__all__ = ["PieriSimResult", "default_level_cost", "simulate_pieri_tree"]


def default_level_cost(level: int, scale: float = 1e-3) -> float:
    """Reference per-job cost at tree level ``level`` (CPU-seconds at 1 GHz).

    A level-n job tracks a path of an n-dimensional determinant system;
    with cofactor Jacobians each Newton step costs about n^2 minors, and
    deeper paths need more steps — modelled as ``scale * (n + 1)^4`` with a
    floor so level-1 jobs are not free.  The quartic growth reproduces the
    paper's Table III, where the last level holds about half the total time.
    """
    return scale * float((level + 1) ** 4)


@dataclass
class PieriSimResult:
    """Telemetry of one simulated parallel Pieri run."""

    problem: PieriProblem
    n_cpus: int
    wall_seconds: float
    busy_seconds: List[float]
    jobs_per_level: Dict[int, int] = field(default_factory=dict)
    work_per_level: Dict[int, float] = field(default_factory=dict)
    ramp_up_seconds: float = 0.0
    max_concurrency: int = 0

    @property
    def wall_minutes(self) -> float:
        return self.wall_seconds / 60.0

    @property
    def total_cpu_seconds(self) -> float:
        return float(sum(self.busy_seconds))

    def speedup(self, t1_seconds: float) -> float:
        return t1_seconds / self.wall_seconds

    def level_work_fraction(self, level: int) -> float:
        """Fraction of total work spent at a given tree level."""
        total = sum(self.work_per_level.values())
        return self.work_per_level.get(level, 0.0) / total if total else 0.0

    def efficiency(self, t1_seconds: float) -> float:
        return self.speedup(t1_seconds) / self.n_cpus


def simulate_pieri_tree(
    problem: PieriProblem,
    n_cpus: int,
    cost_fn: Callable[[int], float] = default_level_cost,
    spec: ClusterSpec | None = None,
) -> PieriSimResult:
    """Simulate the master/slave Pieri tree schedule on ``n_cpus``.

    The tree is *not* materialized: ready-job counts per (level, poset
    node) follow the chain-count DP, and jobs are aggregated per poset node
    because all chains into a node behave identically for scheduling
    purposes (same level, same cost model).
    """
    spec = spec or ClusterSpec()
    if n_cpus < 1:
        raise ValueError("need at least one CPU")
    poset = PieriPoset.build(problem)
    depth = problem.num_conditions

    # Expand the tree into per-level job multiplicities: a job into a
    # level-n node exists once per chain; its completion enables
    # (#children of the node) jobs at level n+1.  For scheduling we only
    # need, per finished job, how many new jobs it spawns — which depends
    # on its poset node.  Jobs are therefore tagged (level, node_index).
    patterns_per_level = [list(lv.keys()) for lv in poset.levels]
    children_count: List[List[int]] = []
    child_targets: List[List[List[int]]] = []
    for n, pats in enumerate(patterns_per_level):
        counts, targets = [], []
        if n + 1 < len(patterns_per_level):
            index_next = {
                pat.bottom_pivots: i
                for i, pat in enumerate(patterns_per_level[n + 1])
            }
        else:
            index_next = {}
        for pat in pats:
            kids = [index_next[c.bottom_pivots] for _, c in pat.children()]
            counts.append(len(kids))
            targets.append(kids)
        children_count.append(counts)
        child_targets.append(targets)

    queue = EventQueue()
    ready: List[tuple[int, int]] = []  # (level, node_index) ready jobs
    busy = [0.0] * n_cpus
    n_slaves = max(1, n_cpus - 1) if n_cpus > 1 else 1
    idle_slaves = list(range(n_slaves))
    jobs_per_level: Dict[int, int] = {}
    work_per_level: Dict[int, float] = {}
    result = PieriSimResult(problem, n_cpus, 0.0, busy)
    running = 0
    full_concurrency_at = [None]

    def dispatch() -> None:
        nonlocal running
        while ready and idle_slaves:
            level, node = ready.pop()
            slave = idle_slaves.pop()
            running += 1
            result.max_concurrency = max(result.max_concurrency, running)
            if (
                full_concurrency_at[0] is None
                and running >= min(n_slaves, _peak_parallelism)
            ):
                full_concurrency_at[0] = queue.now
            cost = spec.compute_seconds(cost_fn(level))
            comm = 2 * spec.latency_seconds + spec.master_service_seconds
            if n_cpus == 1:
                comm = 0.0
            busy_idx = slave + 1 if n_cpus > 1 else 0
            busy[busy_idx] += cost
            busy[0] += spec.master_service_seconds if n_cpus > 1 else 0.0
            jobs_per_level[level] = jobs_per_level.get(level, 0) + 1
            work_per_level[level] = work_per_level.get(level, 0.0) + cost

            def finish(level=level, node=node, slave=slave) -> None:
                nonlocal running
                running -= 1
                idle_slaves.append(slave)
                for target in child_targets[level][node]:
                    ready.append((level + 1, target))
                dispatch()

            queue.schedule(cost + comm, finish)

    # peak parallelism the tree can ever offer: the widest level job count
    _peak_parallelism = max(sum(lv.values()) for lv in poset.levels[1:])

    # seed: jobs out of the trivial pattern (level-1 nodes, one chain each)
    trivial_idx = 0
    for target in child_targets[0][trivial_idx]:
        ready.append((1, target))
    dispatch()
    wall = queue.run()

    result.wall_seconds = wall
    result.jobs_per_level = jobs_per_level
    result.work_per_level = work_per_level
    result.ramp_up_seconds = (
        float(full_concurrency_at[0]) if full_concurrency_at[0] else wall
    )
    # sanity: every chain of every level became exactly one job
    expected = {n + 1: c for n, c in enumerate(poset.job_counts())}
    if jobs_per_level != expected:
        raise RuntimeError("simulated job counts disagree with the poset DP")
    return result
