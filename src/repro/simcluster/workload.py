"""Workload cost models for the cluster simulator.

A workload is simply the list of per-path compute costs (in CPU-seconds at
a reference 1 GHz clock).  Three sources:

- :func:`cyclic10_workload` — the paper's Table I run: 35,940 paths of
  which about one thousand diverge and cost several times more, with heavy
  spread; calibrated so one 1 GHz CPU needs 480 user-CPU-minutes.
- :func:`rps_workload` — the paper's Table II run: 9,216 paths with more
  than eight thousand divergent ones that *dominate* the total time and
  cost *almost the same* each (low variance — the reason dynamic balancing
  barely beats static there); calibrated to 3,111.2 CPU-minutes.
- :func:`workload_from_results` — an *empirical* model built from real
  :class:`~repro.tracker.PathResult` timings, which is how the simulator is
  calibrated against this repository's own tracker (see benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "Workload",
    "cyclic10_workload",
    "rps_workload",
    "workload_from_results",
    "uniform_workload",
]


@dataclass(frozen=True)
class Workload:
    """Per-path compute costs in CPU-seconds at a 1 GHz reference clock."""

    name: str
    costs: np.ndarray

    def __post_init__(self) -> None:
        costs = np.asarray(self.costs, dtype=float)
        if costs.ndim != 1 or costs.size == 0:
            raise ValueError("costs must be a non-empty 1-D array")
        if np.any(costs <= 0):
            raise ValueError("all path costs must be positive")
        object.__setattr__(self, "costs", costs)

    @property
    def n_paths(self) -> int:
        return int(self.costs.size)

    @property
    def total_seconds(self) -> float:
        return float(self.costs.sum())

    @property
    def total_cpu_minutes(self) -> float:
        return self.total_seconds / 60.0

    @property
    def variance_ratio(self) -> float:
        """Coefficient of variation: std / mean of the path costs."""
        return float(self.costs.std() / self.costs.mean())

    def scaled_to_total_minutes(self, minutes: float) -> "Workload":
        factor = (minutes * 60.0) / self.total_seconds
        return Workload(self.name, self.costs * factor)

    def shuffled(self, rng: np.random.Generator) -> "Workload":
        return Workload(self.name, rng.permutation(self.costs))


def cyclic10_workload(
    rng: np.random.Generator | None = None,
    n_paths: int = 35_940,
    n_divergent: int = 1_000,
    total_cpu_minutes: float = 480.0,
    n_clusters: int = 40,
) -> Workload:
    """The cyclic 10-roots path-cost distribution (Table I shape).

    Converging paths follow a lognormal body; the divergent thousand are a
    heavy tail several times the body mean with large spread.  Divergent
    paths are *clustered* in path order (start roots are enumerated
    lexicographically, so nearby start roots share their fate), which is
    what makes the static contiguous chunks unbalanced in Table I.
    """
    rng = np.random.default_rng(0) if rng is None else rng
    if not 0 <= n_divergent < n_paths:
        raise ValueError("need 0 <= n_divergent < n_paths")
    n_conv = n_paths - n_divergent
    costs = rng.lognormal(mean=0.0, sigma=0.6, size=n_paths)
    # overwrite n_clusters contiguous runs with heavy divergent costs
    if n_divergent:
        per = n_divergent // n_clusters
        starts = rng.choice(
            n_paths - per, size=n_clusters, replace=False
        )
        placed = 0
        for k, s in enumerate(sorted(starts)):
            size = per if k < n_clusters - 1 else n_divergent - placed
            costs[s : s + size] = 5.0 * rng.lognormal(
                mean=0.0, sigma=0.8, size=size
            )
            placed += size
    return Workload("cyclic10", costs).scaled_to_total_minutes(
        total_cpu_minutes
    )


def rps_workload(
    rng: np.random.Generator | None = None,
    n_paths: int = 9_216,
    n_divergent: int = 8_192,
    total_cpu_minutes: float = 3_111.2,
) -> Workload:
    """The RPS mechanism path costs (Table II shape).

    Divergent paths dominate the total and "each of the diverging paths
    spend almost the same time" (paper §II-B2): a tight 5% spread around a
    large mean, so the static chunks are already nearly balanced.
    """
    rng = np.random.default_rng(1) if rng is None else rng
    n_conv = n_paths - n_divergent
    conv = 0.4 * rng.lognormal(mean=0.0, sigma=0.5, size=n_conv)
    div = rng.normal(loc=1.0, scale=0.05, size=n_divergent).clip(min=0.5)
    costs = np.concatenate([conv, div])
    costs = rng.permutation(costs)
    return Workload("rps", costs).scaled_to_total_minutes(total_cpu_minutes)


def uniform_workload(n_paths: int, seconds_each: float = 1.0) -> Workload:
    """Identical path costs (zero variance): static == dynamic baseline."""
    return Workload("uniform", np.full(n_paths, float(seconds_each)))


def workload_from_results(results: Iterable, name: str = "measured") -> Workload:
    """Empirical workload from real tracker results (simulator calibration)."""
    costs = [r.stats.seconds for r in results if r.stats.seconds > 0]
    if not costs:
        raise ValueError("no timed results to build a workload from")
    return Workload(name, np.asarray(costs, dtype=float))
