"""Discrete-event cluster simulator: the MPI/Platinum-cluster stand-in."""

from .engine import EventQueue
from .workload import (
    Workload,
    cyclic10_workload,
    rps_workload,
    uniform_workload,
    workload_from_results,
)
from .cluster import (
    ClusterSpec,
    SimResult,
    simulate_dynamic,
    simulate_static,
    speedup_table,
)
from .pieri_sim import PieriSimResult, default_level_cost, simulate_pieri_tree
from .sweep_replay import (
    SweepReplayResult,
    replay_sweep_dynamic,
    resume_replay,
)
from .fleet_sim import (
    FleetSimResult,
    fleet_job_record,
    resume_fleet,
    simulate_fleet,
)

__all__ = [
    "EventQueue",
    "Workload",
    "cyclic10_workload",
    "rps_workload",
    "uniform_workload",
    "workload_from_results",
    "ClusterSpec",
    "SimResult",
    "simulate_dynamic",
    "simulate_static",
    "speedup_table",
    "PieriSimResult",
    "default_level_cost",
    "simulate_pieri_tree",
    "SweepReplayResult",
    "replay_sweep_dynamic",
    "resume_replay",
    "FleetSimResult",
    "fleet_job_record",
    "resume_fleet",
    "simulate_fleet",
]
