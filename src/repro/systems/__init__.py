"""Benchmark polynomial systems used in the paper's evaluation."""

from .cyclic import CYCLIC_FINITE_ROOTS, cyclic_roots_system
from .deficient import (
    cyclic_deficient_system,
    griewank_osborne_system,
    katsura_double_root_system,
    multiple_root_system,
)
from .katsura import katsura_system
from .noon import noon_system
from .rps import rps_surrogate_system
from .misc import random_dense_system

__all__ = [
    "CYCLIC_FINITE_ROOTS",
    "cyclic_roots_system",
    "cyclic_deficient_system",
    "griewank_osborne_system",
    "katsura_system",
    "katsura_double_root_system",
    "multiple_root_system",
    "noon_system",
    "rps_surrogate_system",
    "random_dense_system",
]
