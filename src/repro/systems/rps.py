"""A surrogate for the RPS serial-chain mechanism design system.

The paper's Table II / Fig 2 workload is the geometric design of an RPS
(revolute-prismatic-spherical) robot [16-18]: ten polynomial equations in
ten unknowns whose linear-product homotopy has 9,216 paths, of which more
than 8,000 diverge — and, crucially, every divergent path costs about the
same, so the workload variance is *small* and dynamic load balancing barely
beats static (the paper's point).

The original equations come from proprietary kinematics task data we do not
have, so per the substitution rule we build a synthetic system with the same
*workload law*: a massively deficient square system.  All equations share
one random quadratic form

    f_i(x) = q(x) + l_i(x),   i = 1..n

with independent random affine forms ``l_i``.  Differences ``f_i - f_n``
are affine, so the finite-solution count is exactly 2 while the total
degree is 2^n: a total-degree homotopy sends ``2^n - 2`` paths to infinity,
all along the same kind of ray (near-constant cost).  For n=10 that is
1,022 of 1,024 paths divergent (99.8%); the paper's RPS has 87% divergent.
The ``shared_groups`` knob interpolates: with ``g`` groups of equations,
each group sharing its own quadratic, the finite count rises to 2^g.
"""

from __future__ import annotations

import numpy as np

from ..polynomials import Polynomial, PolynomialSystem, constant, variables

__all__ = ["rps_surrogate_system", "rps_finite_root_count"]


def _random_quadratic(n: int, rng: np.random.Generator) -> Polynomial:
    xs = variables(n)
    acc: Polynomial = constant(0, n)
    for i in range(n):
        for j in range(i, n):
            coef = complex(rng.standard_normal() + 1j * rng.standard_normal())
            acc = acc + coef * xs[i] * xs[j]
    return acc


def _random_affine(n: int, rng: np.random.Generator) -> Polynomial:
    xs = variables(n)
    acc: Polynomial = constant(
        complex(rng.standard_normal() + 1j * rng.standard_normal()), n
    )
    for i in range(n):
        coef = complex(rng.standard_normal() + 1j * rng.standard_normal())
        acc = acc + coef * xs[i]
    return acc


def rps_surrogate_system(
    n: int = 10,
    shared_groups: int = 1,
    rng: np.random.Generator | None = None,
) -> PolynomialSystem:
    """Build the deficient RPS-like surrogate (see module docstring).

    Parameters
    ----------
    n:
        Number of equations and unknowns (paper: 10).
    shared_groups:
        Number of groups of equations, each sharing one quadratic form.
        ``1`` gives maximal deficiency (2 finite roots); ``n`` makes every
        equation generic (no forced deficiency).
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if not 1 <= shared_groups <= n:
        raise ValueError("need 1 <= shared_groups <= n")
    rng = np.random.default_rng() if rng is None else rng
    quadratics = [_random_quadratic(n, rng) for _ in range(shared_groups)]
    polys = []
    for i in range(n):
        q = quadratics[i % shared_groups]
        polys.append(q + _random_affine(n, rng))
    return PolynomialSystem(polys)


def rps_finite_root_count(n: int, shared_groups: int = 1) -> int:
    """Generic finite-root count of the surrogate.

    With one shared quadratic the n-1 affine differences cut the solution
    set to a line and the remaining quadratic leaves 2 points.  With ``g``
    groups, Bezout on the reduced system of ``g`` independent quadratics
    (after eliminating the ``n - g`` affine differences) gives ``2^g``,
    provided ``g`` quadratics in ``g`` surviving unknowns stay generic.
    """
    if not 1 <= shared_groups <= n:
        raise ValueError("need 1 <= shared_groups <= n")
    return 2**shared_groups
