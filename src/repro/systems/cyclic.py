"""The cyclic n-roots benchmark family.

The paper's Table I / Fig 1 workload: for dimension ``n`` the system is

    e_k(x) = sum_{i=0}^{n-1} prod_{j=i}^{i+k-1} x_{j mod n} = 0,  k = 1..n-1
    e_n(x) = x_0 x_1 ... x_{n-1} - 1 = 0

Total degree is n!; the number of finite roots is far smaller (70 for n=5,
156 for n=6, 924 for n=7), so a total-degree homotopy sends many paths to
infinity — exactly the high-variance workload that separates static from
dynamic load balancing.  The paper traces 35,940 paths for n=10; this
reproduction tracks n <= 7 for real and feeds the n=10 counts to the
cluster simulator (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from ..polynomials import Polynomial, PolynomialSystem, constant, variables

__all__ = ["cyclic_roots_system", "CYCLIC_FINITE_ROOTS"]

#: Known numbers of isolated solutions of cyclic n-roots from the literature
#: (Bjorck; Dai-Kim-Kojima [4]).  For n=10 the paper traces 35,940 paths of
#: which about one thousand diverge.
CYCLIC_FINITE_ROOTS = {3: 6, 5: 70, 6: 156, 7: 924}


def cyclic_roots_system(n: int) -> PolynomialSystem:
    """Build the cyclic ``n``-roots system in ``n`` variables."""
    if n < 2:
        raise ValueError("cyclic n-roots needs n >= 2")
    xs = variables(n, [f"x{i}" for i in range(n)])
    polys = []
    for k in range(1, n):
        acc: Polynomial = constant(0, n)
        for i in range(n):
            term: Polynomial = constant(1, n)
            for j in range(i, i + k):
                term = term * xs[j % n]
            acc = acc + term
        polys.append(acc)
    prod: Polynomial = constant(1, n)
    for x in xs:
        prod = prod * x
    polys.append(prod - 1)
    return PolynomialSystem(polys)
