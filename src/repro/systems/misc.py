"""Generic random dense systems (every Bezout path converges)."""

from __future__ import annotations

import itertools

import numpy as np

from ..polynomials import Polynomial, PolynomialSystem, constant, variables

__all__ = ["random_dense_system"]


def random_dense_system(
    n: int,
    degree: int = 2,
    rng: np.random.Generator | None = None,
) -> PolynomialSystem:
    """A dense random system: n equations of the given total degree.

    Dense generic systems attain their Bezout number with all solutions
    finite, so a total-degree homotopy has zero divergent paths — the
    control case for workload experiments and a strong tracker test
    (#distinct endpoints must equal degree**n).
    """
    if n < 1 or degree < 1:
        raise ValueError("need n >= 1 and degree >= 1")
    rng = np.random.default_rng() if rng is None else rng
    xs = variables(n)
    polys = []
    for _ in range(n):
        acc: Polynomial = constant(0, n)
        for expo in itertools.product(range(degree + 1), repeat=n):
            if sum(expo) > degree:
                continue
            coef = complex(rng.standard_normal() + 1j * rng.standard_normal())
            term: Polynomial = constant(coef, n)
            for v, e in enumerate(expo):
                if e:
                    term = term * xs[v] ** e
            acc = acc + term
        polys.append(acc)
    return PolynomialSystem(polys)
