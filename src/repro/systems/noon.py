"""The Noonburg neural-network benchmark system.

noon(n): x_i * sum_{j != i} x_j^2 - 1.1 x_i + 1 = 0 for i = 1..n.  Degree 3
per equation; mildly deficient, well-conditioned — a medium-variance
workload between katsura and cyclic.
"""

from __future__ import annotations

from ..polynomials import Polynomial, PolynomialSystem, constant, variables

__all__ = ["noon_system"]


def noon_system(n: int, c: float = 1.1) -> PolynomialSystem:
    """Build noon-``n`` with threshold parameter ``c`` (paper value 1.1)."""
    if n < 2:
        raise ValueError("noon needs n >= 2")
    xs = variables(n, [f"x{i}" for i in range(n)])
    polys = []
    for i in range(n):
        acc: Polynomial = constant(0, n)
        for j in range(n):
            if j != i:
                acc = acc + xs[j] ** 2
        polys.append(xs[i] * acc - c * xs[i] + 1)
    return PolynomialSystem(polys)
