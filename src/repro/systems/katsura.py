"""The katsura-n benchmark (magnetism model), a standard test system.

katsura(n) has n+1 variables u_0..u_n and n+1 equations: n convolution
identities plus one normalization.  All 2^n Bezout paths of a total-degree
homotopy converge generically, which makes it the *low-variance* foil to
cyclic n-roots in the load-balancing experiments.
"""

from __future__ import annotations

from ..polynomials import Polynomial, PolynomialSystem, constant, variables

__all__ = ["katsura_system"]


def katsura_system(n: int) -> PolynomialSystem:
    """Build katsura-``n``: n+1 equations in the n+1 variables u_0..u_n."""
    if n < 1:
        raise ValueError("katsura needs n >= 1")
    nv = n + 1
    u = variables(nv, [f"u{i}" for i in range(nv)])

    def uu(idx: int) -> Polynomial:
        idx = abs(idx)
        return u[idx] if idx <= n else constant(0, nv)

    polys = []
    for m in range(n):
        acc: Polynomial = constant(0, nv)
        for l in range(-n, n + 1):
            acc = acc + uu(l) * uu(m - l)
        polys.append(acc - u[m])
    norm: Polynomial = u[0] - 1
    for l in range(1, n + 1):
        norm = norm + 2 * u[l]
    polys.append(norm)
    return PolynomialSystem(polys)
