"""Deficient and singular benchmark systems exercising the endgame layer.

Every system here is built to *break* the plain Newton-sharpen endgame
in a controlled way: roots of known multiplicity, Newton-repelling
singular points, paths at infinity.  They are the test bed and the
benchmark workload (``benchmarks/bench_endgame.py``) for the Cauchy
endgame's winding-number recovery.

- :func:`griewank_osborne_system` — the classic 2x2 system whose only
  finite root (the origin) has multiplicity 3 *and* repels Newton's
  method: plain refinement fails outright near it.
- :func:`katsura_double_root_system` — katsura-n with its normalization
  equation squared: every one of the ``2^n`` katsura roots becomes a
  double root (and the Bezout count doubles, so two paths land on each).
- :func:`cyclic_deficient_system` — cyclic-n with its last (product)
  equation squared: each of the cyclic roots doubles the same way, on a
  sparse system whose supports the polyhedral layer also understands.
- :func:`multiple_root_system` — the minimal laboratory: one univariate
  equation ``(x - root)^w``, one root of multiplicity exactly ``w``.

>>> import numpy as np
>>> from repro.homotopy import solve
>>> report = solve(griewank_osborne_system(), endgame="cauchy",
...                rng=np.random.default_rng(0))
>>> report.summary["multiplicity_histogram"]
{3: 1}
>>> np.max(np.abs(report.singular_solutions[0])) < 1e-6
np.True_
"""

from __future__ import annotations

from ..polynomials import Polynomial, PolynomialSystem, variables
from .cyclic import cyclic_roots_system
from .katsura import katsura_system

__all__ = [
    "griewank_osborne_system",
    "katsura_double_root_system",
    "cyclic_deficient_system",
    "multiple_root_system",
]


def griewank_osborne_system() -> PolynomialSystem:
    """The Griewank-Osborne example: a Newton-repelling triple root.

    ``F = [(29/16) x^3 - 2 x y,  y - x^2]`` has exactly one finite
    root, the origin, of multiplicity 3 — and Newton's method *diverges*
    from every starting point near it (Griewank & Osborne, 1983), which
    makes it the standard stress test for singular endgames: of the 6
    Bezout paths, 3 converge to the origin as one 3-cycle and 3 leave
    the affine chart.
    """
    x, y = variables(2, ["x", "y"])
    return PolynomialSystem(
        [
            (29.0 / 16.0) * x**3 - 2 * x * y,
            y - x**2,
        ]
    )


def _square_last_equation(system: PolynomialSystem) -> PolynomialSystem:
    polys = list(system.polynomials)
    polys[-1] = polys[-1] * polys[-1]
    return PolynomialSystem(polys)


def katsura_double_root_system(n: int) -> PolynomialSystem:
    """Katsura-``n`` with the normalization equation squared.

    The linear normalization vanishes to first order at every katsura
    root, so squaring it makes each of the ``2^n`` roots a double root;
    the Bezout count doubles to ``2^(n+1)``, sending exactly two paths
    into every root, each loop a 2-cycle.
    """
    return _square_last_equation(katsura_system(n))


def cyclic_deficient_system(n: int = 3) -> PolynomialSystem:
    """Cyclic-``n`` roots with the product equation squared.

    ``x_0 ... x_{n-1} - 1 = 0`` vanishes to first order at every cyclic
    root, so squaring it doubles each root's multiplicity while keeping
    the sparse cyclic support structure (the polyhedral layer still
    reads meaningful mixed cells from it).  For ``n = 3``: 12 Bezout
    paths onto 6 double roots.
    """
    return _square_last_equation(cyclic_roots_system(n))


def multiple_root_system(w: int, root: complex = 1.0) -> PolynomialSystem:
    """The univariate laboratory: ``(x - root)^w`` as a 1x1 system.

    A total-degree homotopy tracks ``w`` paths, all converging to the
    single multiplicity-``w`` root as one ``w``-cycle — the smallest
    system on which a winding number of exactly ``w`` can be measured.
    """
    if w < 1:
        raise ValueError("multiplicity w must be positive")
    (x,) = variables(1, ["x"])
    poly: Polynomial = (x - root) ** w
    return PolynomialSystem([poly])
