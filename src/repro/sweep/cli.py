"""Command-line driver: ``python -m repro.sweep``.

Subcommands::

    run SPEC.json --checkpoint DIR   run (or resume) a sweep
    report DIR                       summarize a checkpoint directory
    example-spec [--out FILE]        emit the mixed demo spec as JSON

``run --dry-run`` lists the job ids that *would* run (after subtracting
the journal) without executing anything, and ``run --max-jobs K`` stops
after K newly journaled jobs — handy for rehearsing the kill/resume
cycle from the tutorial (``docs/sweep_tutorial.md``).

``run --fleet master|worker`` swaps the local process pool for the
multi-host fleet (``docs/fleet.md``): the master binds a TCP endpoint
(``--bind HOST:PORT``, port 0 picks one and prints it) and serves the
spec's un-journaled jobs to remote workers; a worker needs no spec or
checkpoint at all — it connects (``--connect HOST:PORT``), leases jobs,
and ships results back.  Kill any of them — master included — and the
same commands resume from the journal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import aggregate_job_telemetry, run_sweep
from .journal import SweepJournal
from .spec import SweepSpec, mixed_demo_spec

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Checkpointed, dynamically load-balanced solve sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run or resume a sweep from a spec file")
    run_p.add_argument(
        "spec", nargs="?", default=None,
        help="path to the sweep spec (JSON); not needed by --fleet worker",
    )
    run_p.add_argument(
        "--checkpoint", default=None,
        help="checkpoint directory (journal lives here); "
        "required except for --fleet worker",
    )
    run_p.add_argument("--workers", type=int, default=None, help="pool size")
    run_p.add_argument(
        "--schedule", choices=["dynamic", "static"], default="dynamic"
    )
    run_p.add_argument(
        "--mode", choices=["process", "thread", "serial"], default="process"
    )
    run_p.add_argument(
        "--max-jobs", type=int, default=None, metavar="K",
        help="stop after K newly journaled jobs (simulates a kill)",
    )
    run_p.add_argument(
        "--dry-run", action="store_true",
        help="list pending jobs without running them",
    )
    fleet = run_p.add_argument_group("fleet mode (multi-host, docs/fleet.md)")
    fleet.add_argument(
        "--fleet", choices=["master", "worker", "status"], default=None,
        help="run as the fleet master (serves this spec over TCP), as "
        "a worker agent (leases jobs from a master), or query a live "
        "master's gauges (--fleet status --connect HOST:PORT)",
    )
    fleet.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="master: endpoint to listen on (port 0 picks a free port "
        "and prints it)",
    )
    fleet.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="worker: the master's endpoint",
    )
    fleet.add_argument(
        "--worker-id", default=None,
        help="worker: stable identity (default host-pid-random)",
    )
    fleet.add_argument(
        "--heartbeat-timeout", type=float, default=5.0, metavar="S",
        help="master: requeue a worker's lease after S silent seconds",
    )
    fleet.add_argument(
        "--lease-seconds", type=float, default=2.0, metavar="S",
        help="master: size each lease to about S seconds of the "
        "worker's fitted throughput",
    )
    fleet.add_argument(
        "--reconnect-seconds", type=float, default=30.0, metavar="S",
        help="worker: keep retrying a lost master for S seconds "
        "(covers a master restart)",
    )

    report_p = sub.add_parser("report", help="summarize a checkpoint directory")
    report_p.add_argument("checkpoint", help="checkpoint directory")
    report_p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text (human) or json (machine-readable, includes the "
        "endgame/multiplicity columns) output",
    )
    report_p.add_argument(
        "--telemetry", action="store_true",
        help="also print the merged per-job telemetry (span calls/"
        "seconds and counters journaled alongside each result)",
    )

    ex_p = sub.add_parser("example-spec", help="emit the mixed demo spec")
    ex_p.add_argument("--out", default=None, help="write to a file instead of stdout")
    return parser


def _parse_endpoint(text: str) -> tuple:
    """``HOST:PORT`` -> ``(host, port)``; host may contain colons (IPv6)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad endpoint {text!r}: expected HOST:PORT")
    return host, int(port)


def _cmd_fleet_status(args) -> int:
    """Query a live master's gauges and render them (``--fleet status``)."""
    if args.connect is None:
        raise SystemExit("--fleet status requires --connect HOST:PORT")
    from ..parallel.fleet import fetch_fleet_status

    host, port = _parse_endpoint(args.connect)
    try:
        status = fetch_fleet_status(host, port)
    except OSError as exc:
        print(f"no fleet master at {host}:{port} ({exc})", file=sys.stderr)
        return 1
    stats = status.get("stats", {})
    print(f"fleet master @ {host}:{port}")
    print(f"  jobs {status.get('n_committed', '?')}/{status.get('n_jobs', '?')}"
          f" committed, backlog {status.get('backlog', '?')}")
    print(f"  steals {stats.get('steals', 0)}, "
          f"requeues {stats.get('requeues', 0)}, "
          f"duplicates {stats.get('duplicates', 0)}, "
          f"timeouts {stats.get('timeouts', 0)}, "
          f"registrations {stats.get('registrations', 0)}")
    workers = status.get("workers", {})
    if not workers:
        print("  no workers registered")
        return 0
    print(f"  {'worker':<28} {'leased':>6} {'done':>6} {'busy(s)':>9} "
          f"{'s/cost':>8} {'silent(s)':>9}")
    for worker_id, view in workers.items():
        rate = view.get("seconds_per_cost")
        print(f"  {worker_id:<28} {view.get('leased', 0):>6} "
              f"{view.get('jobs_done', 0):>6} "
              f"{view.get('busy_seconds', 0.0):>9.2f} "
              f"{'probe' if rate is None else format(rate, '8.3f'):>8} "
              f"{view.get('silent_seconds', 0.0):>9.1f}")
    return 0


def _cmd_run_fleet(args) -> int:
    if args.fleet == "status":
        return _cmd_fleet_status(args)
    if args.fleet == "worker":
        if args.connect is None:
            raise SystemExit("--fleet worker requires --connect HOST:PORT")
        from ..parallel.fleet import run_sweep_worker

        host, port = _parse_endpoint(args.connect)
        stats = run_sweep_worker(
            host,
            port,
            worker_id=args.worker_id,
            reconnect_seconds=args.reconnect_seconds,
        )
        print(f"fleet worker {stats.worker_id}: {stats.jobs_done} jobs, "
              f"busy {stats.busy_seconds:.2f}s, "
              f"reconnects {stats.reconnects}, revoked {stats.revoked}")
        if stats.gave_up:
            print(f"  gave up: no master for {args.reconnect_seconds:.0f}s")
            return 1
        return 0

    # master: needs the spec and the checkpoint (journal) like a local run
    if args.spec is None or args.checkpoint is None:
        raise SystemExit("--fleet master requires SPEC and --checkpoint")
    from ..parallel.fleet import run_fleet_master

    host, port = _parse_endpoint(args.bind)

    def on_listening(bound_host, bound_port):
        # parseable by scripts/tests that need the kernel-picked port
        print(f"fleet master listening on {bound_host}:{bound_port}",
              flush=True)

    spec = SweepSpec.load(args.spec)
    report = run_fleet_master(
        spec,
        args.checkpoint,
        host=host,
        port=port,
        heartbeat_timeout=args.heartbeat_timeout,
        lease_target_seconds=args.lease_seconds,
        on_listening=on_listening,
    )
    stats = report.fleet or {}
    print(f"sweep {spec.name!r} [fleet master]")
    print(f"  ran {len(report.ran_job_ids)} jobs, skipped {report.skipped} "
          f"already-journaled; {report.n_done}/{spec.n_jobs} done")
    print(f"  workers {len(stats.get('workers_seen') or ())}, "
          f"steals {stats.get('steals', 0)}, "
          f"requeues {stats.get('requeues', 0)}, "
          f"duplicates {stats.get('duplicates', 0)}, "
          f"timeouts {stats.get('timeouts', 0)}")
    print(f"  wall {report.wall_seconds:.2f}s")
    if not report.complete:
        print(f"  INCOMPLETE: {spec.n_jobs - report.n_done} jobs unfinished; "
              "resume with the same command")
        return 1
    print("  complete")
    return 0


def _cmd_run(args) -> int:
    if args.fleet is not None:
        return _cmd_run_fleet(args)
    if args.spec is None or args.checkpoint is None:
        raise SystemExit("run requires SPEC and --checkpoint "
                         "(unless --fleet worker)")
    spec = SweepSpec.load(args.spec)
    if args.dry_run:
        done = SweepJournal(args.checkpoint).load_records()
        pending = [j for j in spec.job_ids() if j not in done]
        print(f"sweep {spec.name!r}: {spec.n_jobs} jobs, "
              f"{len(done)} already journaled, {len(pending)} pending")
        for job_id in pending:
            print(f"  would run {job_id}")
        return 0
    report = run_sweep(
        spec,
        args.checkpoint,
        n_workers=args.workers,
        schedule=args.schedule,
        mode=args.mode,
        abort_after=args.max_jobs,
    )
    print(f"sweep {spec.name!r} [{report.schedule}/{report.mode}, "
          f"{report.n_workers} workers]")
    print(f"  ran {len(report.ran_job_ids)} jobs, skipped {report.skipped} "
          f"already-journaled; {report.n_done}/{spec.n_jobs} done")
    print(f"  wall {report.wall_seconds:.2f}s, "
          f"cpu {report.total_cpu_seconds:.2f}s, "
          f"imbalance {report.load_imbalance:.2f}")
    if report.worker_crashes:
        print(f"  worker crashes: {report.worker_crashes} "
              f"(pool rebuilds: {report.pool_rebuilds})")
    if report.aborted:
        print("  stopped by --max-jobs; resume with the same command")
        return 3
    if not report.complete:
        print(f"  INCOMPLETE: {spec.n_jobs - report.n_done} jobs unfinished")
        return 1
    print("  complete")
    return 0


def _reconciled_status(manifest: dict, n_done: int) -> str:
    """The journal is the source of truth: a killed run never got to
    finalize the manifest, so a status still claiming "running" cannot
    be trusted (the writer may be dead) and the counts are reconciled
    against the journaled records.  Shared by the text and JSON report
    paths so they can never disagree about an interrupted sweep."""
    status = manifest["status"]
    if status == "running":
        status = (
            "interrupted" if n_done != manifest["n_done"]
            else "running (or interrupted before its first record)"
        )
    return status


def _report_payload(journal: SweepJournal, records: dict, manifest) -> dict:
    """The machine-readable shape of ``report --format json``.

    One row per journaled job (sorted by job id) carrying the result
    record verbatim — including the ``endgame`` strategy and the
    ``multiplicity_histogram`` columns polynomial jobs journal — plus
    the reconciled manifest and the pending job ids, so downstream
    tooling never has to parse the human text.
    """
    jobs = []
    for job_id in sorted(records):
        record = records[job_id]
        row = {
            "job_id": job_id,
            "kind": record.get("kind"),
            "params": record.get("params", {}),
            "seed": record.get("seed"),
            "seconds": record.get("seconds"),
            "result": record.get("result", {}),
        }
        # record-level extras (non-deterministic, segregated from result)
        for key in ("kernel_cache", "telemetry_seconds", "artifacts"):
            if record.get(key):
                row[key] = record[key]
        jobs.append(row)
    if manifest:
        manifest = dict(manifest)
        manifest["status"] = _reconciled_status(manifest, len(records))
        manifest["n_done"] = len(records)
    payload = {
        "n_done": len(records),
        "manifest": manifest,
        "jobs": jobs,
        "pending": [],
    }
    if manifest and manifest.get("fleet"):
        # protocol stats a fleet-master run persisted: workers seen,
        # per-worker busy seconds, steal/requeue/duplicate counts
        payload["fleet"] = manifest["fleet"]
    telemetry = aggregate_job_telemetry(records.values())
    if telemetry:
        payload["telemetry"] = telemetry
    if journal.spec_path.exists():
        spec = SweepSpec.load(journal.spec_path)
        payload["name"] = spec.name
        payload["n_jobs"] = spec.n_jobs
        payload["pending"] = [j for j in spec.job_ids() if j not in records]
    return payload


def _cmd_report(args) -> int:
    journal = SweepJournal(args.checkpoint)
    records = journal.load_records()
    manifest = journal.read_manifest()
    if manifest is None and not records:
        print(f"no checkpoint at {args.checkpoint}")
        return 1
    if args.format == "json":
        payload = _report_payload(journal, records, manifest)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if manifest:
        # the journal is the source of truth: a killed run never got to
        # finalize the manifest, so reconcile the counts (see
        # _reconciled_status)
        n_done = len(records)
        status = _reconciled_status(manifest, n_done)
        print(f"sweep {manifest.get('name', '?')!r}: "
              f"{n_done}/{manifest['n_jobs']} jobs, "
              f"status {status} "
              f"(manifest updated {manifest.get('updated_at', '?')})")
    by_kind: dict = {}
    seconds = 0.0
    for record in records.values():
        by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
        seconds += record.get("seconds", 0.0)
    for kind in sorted(by_kind):
        print(f"  {kind:>8}: {by_kind[kind]} jobs done")
    print(f"  journaled compute time: {seconds:.2f}s")
    for job_id in sorted(records):
        record = records[job_id]
        result = record.get("result", {})
        if "n_paths" in result:
            # polynomial job: which start system, how many tracked paths
            start = result.get("start", "total_degree")
            line = (f"    {job_id}: start={start} paths={result['n_paths']} "
                    f"solutions={result['n_solutions']}")
            if "mixed_volume" in result:
                line += f" mixed_volume={result['mixed_volume']}"
            kstats = result.get("kernel")
            if kstats:
                line += (f" kernel={kstats.get('backend', '?')}"
                         f" tape_ops={kstats.get('tape_ops', '?')}"
                         f" kernel_evals={kstats.get('evaluations', '?')}")
                kcache = record.get("kernel_cache")
                if kcache:
                    # worker-cumulative cache state when the job finished
                    line += (f" cache_hits={kcache.get('kernel_hits', '?')}"
                             f" cache_misses="
                             f"{kcache.get('kernel_misses', '?')}"
                             f" cache_size={kcache.get('kernels', '?')}")
                    evicted = (kcache.get("tape_evictions", 0)
                               + kcache.get("kernel_evictions", 0))
                    if evicted:
                        line += f" cache_evictions={evicted}"
            predictor = result.get("predictor", "euler")
            if predictor != "euler":
                # predictor pipeline: which strategy, how much recycled
                line += (f" predictor={predictor}"
                         f" recycle_hits={result.get('tangents_recycled', 0)}")
                if result.get("fallback_retracked"):
                    line += (f" fallback_retracked="
                             f"{result['fallback_retracked']}")
            endgame = result.get("endgame", "refine")
            if endgame != "refine":
                line += f" endgame={endgame}"
                hist = result.get("multiplicity_histogram") or {}
                if hist:
                    # journaled keys are JSON strings; order numerically
                    pairs = ",".join(
                        f"{k}:{v}"
                        for k, v in sorted(
                            hist.items(), key=lambda kv: int(kv[0])
                        )
                    )
                    line += f" multiplicities={{{pairs}}}"
        else:
            line = (f"    {job_id}: start=pieri-tree "
                    f"mode={result.get('mode', 'per_path')} "
                    f"paths={result.get('expected', '?')} "
                    f"solutions={result.get('n_solutions', '?')}")
        artifacts = record.get("artifacts") or {}
        route = artifacts.get("route") or {}
        if route:
            # which way the artifact store sent this job, and how many
            # paths the warm/cold route actually tracked
            line += (f" cache={route.get('status', '?')}"
                     f"({route.get('n_paths', '?')} paths)")
        print(line)
    if manifest and manifest.get("fleet"):
        fstats = manifest["fleet"]
        print(f"  fleet: workers {len(fstats.get('workers_seen') or ())}, "
              f"steals {fstats.get('steals', 0)}, "
              f"requeues {fstats.get('requeues', 0)}, "
              f"duplicates {fstats.get('duplicates', 0)}")
        for worker_id, busy in (fstats.get("busy_by_worker") or {}).items():
            print(f"    {worker_id}: busy {busy:.2f}s")
    if args.telemetry:
        _print_telemetry(aggregate_job_telemetry(records.values()))
    if journal.spec_path.exists():
        spec = SweepSpec.load(journal.spec_path)
        pending = [j for j in spec.job_ids() if j not in records]
        if pending:
            print(f"  pending ({len(pending)}): "
                  + ", ".join(pending[:8])
                  + (" ..." if len(pending) > 8 else ""))
        else:
            print("  nothing pending")
    return 0


def _print_telemetry(agg) -> None:
    """Render the merged per-job telemetry for ``report --telemetry``."""
    if not agg:
        print("  telemetry: none journaled")
        return
    print(f"  telemetry (merged over {agg.get('n_sources', 0)} jobs):")
    spans = agg.get("spans") or {}
    if spans:
        print(f"    {'span':<28} {'calls':>8} {'seconds':>10}")
        for key, span in spans.items():
            secs = span.get("seconds")
            print(f"    {key:<28} {span.get('calls', 0):>8} "
                  + (f"{secs:>10.3f}" if secs is not None else f"{'-':>10}"))
    counters = agg.get("counters") or {}
    if counters:
        print("    counters:")
        for key, val in counters.items():
            print(f"      {key:<30} {val}")


def _cmd_example_spec(args) -> int:
    text = json.dumps(mixed_demo_spec().to_dict(), indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        return _cmd_example_spec(args)
    except BrokenPipeError:
        # downstream closed the pipe (| head, a pager): not an error,
        # but Python would print a noisy traceback at shutdown unless
        # stdout is detached first
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
