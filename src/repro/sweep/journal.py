"""On-disk checkpointing for sweeps: JSONL journal + atomic manifest.

A checkpoint directory holds three files:

- ``spec.json`` — the sweep spec the journal belongs to, written once at
  initialization; a resume against a *different* spec is rejected rather
  than silently mixing result sets.
- ``journal.jsonl`` — one JSON record per *completed* job, appended and
  flushed+fsynced as each job finishes.  Append-only means a ``SIGKILL``
  at any instant loses at most the record being written; a torn final
  line is detected and ignored on load.
- ``manifest.json`` — small summary (job counts, status) replaced
  atomically (temp file + ``os.replace``) so readers never observe a
  half-written manifest.

The journal is the whole resume protocol: a restarted sweep loads the
records, skips every job id present, and runs only the remainder.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, Optional

__all__ = ["SweepJournal"]


def _fsync_dir(directory: Path) -> None:
    """Make directory-entry changes (create/replace) power-loss durable.

    Best effort: some platforms/filesystems refuse to fsync a directory
    fd, and losing this sync only degrades to re-running jobs on resume.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SweepJournal:
    """Append-only job journal plus atomic manifest in one directory."""

    JOURNAL = "journal.jsonl"
    MANIFEST = "manifest.json"
    SPEC = "spec.json"

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.journal_path = self.directory / self.JOURNAL
        self.manifest_path = self.directory / self.MANIFEST
        self.spec_path = self.directory / self.SPEC
        self._fh = None

    # -- lifecycle -----------------------------------------------------
    def initialize(self, spec_dict: dict) -> None:
        """Create the directory; write or cross-check ``spec.json``.

        The stored spec must match a resume's spec exactly: the journal
        keys records by job id, so running a different job family against
        the same directory would corrupt the result set.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            stored = json.loads(self.spec_path.read_text(encoding="utf-8"))
            if stored != spec_dict:
                raise ValueError(
                    f"checkpoint at {self.directory} belongs to a different "
                    f"sweep ({stored.get('name')!r}); refusing to mix journals"
                )
        else:
            tmp = self.spec_path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(spec_dict, indent=2) + "\n", encoding="utf-8"
            )
            os.replace(tmp, self.spec_path)
            _fsync_dir(self.directory)

    def open(self) -> None:
        """Open the journal for appending (creates it if missing).

        If a previous writer died mid-append the file may end in a torn
        line with no trailing newline; appending straight onto it would
        merge the *next* record into the garbage and lose it.  Start on
        a fresh line instead, keeping the torn tail exactly one
        undecodable line (which ``load_records`` skips with a warning).
        """
        if self._fh is None:
            existed = self.journal_path.exists()
            torn_tail = False
            if existed and self.journal_path.stat().st_size > 0:
                with open(self.journal_path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    torn_tail = fh.read(1) != b"\n"
            self._fh = open(self.journal_path, "a", encoding="utf-8")
            if torn_tail:
                self._fh.write("\n")
                self._fh.flush()
            if not existed:
                # make the new directory entry durable, not just the data
                _fsync_dir(self.directory)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- records -------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one completed-job record (flush + fsync)."""
        if self._fh is None:
            self.open()
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def load_records(self) -> Dict[str, dict]:
        """All journaled records keyed by job id.

        Tolerates a torn final line (the process died mid-write) — the
        line is skipped with a :class:`RuntimeWarning` naming the
        journal, never a crash — and keeps the *last* record for a job
        id if one was ever duplicated.
        """
        records: Dict[str, dict] = {}
        if not self.journal_path.exists():
            return records
        with open(self.journal_path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # torn tail from a kill mid-append: the job simply
                    # re-runs on resume, but say so — a torn line
                    # *before* the tail would mean external corruption
                    warnings.warn(
                        f"{self.journal_path}:{lineno}: skipping torn or "
                        "corrupt journal line (kill mid-append?); the job "
                        "will re-run on resume",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                job_id = record.get("job_id")
                if job_id:
                    records[job_id] = record
        return records

    # -- manifest ------------------------------------------------------
    def write_manifest(
        self, n_jobs: int, n_done: int, status: str, extra: Optional[dict] = None
    ) -> None:
        """Atomically replace the manifest (readers never see it torn)."""
        manifest = {
            "n_jobs": int(n_jobs),
            "n_done": int(n_done),
            "status": status,
            "updated_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        }
        if extra:
            manifest.update(extra)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)
        _fsync_dir(self.directory)

    def read_manifest(self) -> Optional[dict]:
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))
