"""Checkpointed, dynamically load-balanced sweeps over families of solves.

The job-level counterpart of the path-level parallelism in
:mod:`repro.parallel`: a declarative spec names many whole solve jobs
(Pieri instances across ``(m, p, q)``, cyclic-n, katsura-n, noon, RPS),
the engine shards them over a process pool with the paper's dynamic
master/worker protocol, and every finished job is journaled to disk so a
killed sweep resumes with only the unfinished jobs.

See ``docs/sweep_tutorial.md`` for the end-to-end walkthrough and
``python -m repro.sweep --help`` for the CLI.
"""

from .engine import SweepReport, run_job, run_sweep, solutions_fingerprint
from .journal import SweepJournal
from .spec import JOB_KINDS, START_KINDS, JobSpec, SweepSpec, mixed_demo_spec

__all__ = [
    "JOB_KINDS",
    "START_KINDS",
    "JobSpec",
    "SweepSpec",
    "mixed_demo_spec",
    "SweepJournal",
    "SweepReport",
    "run_job",
    "run_sweep",
    "solutions_fingerprint",
]
