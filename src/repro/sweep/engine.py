"""The checkpointed, dynamically load-balanced sweep engine.

Runs every job of a :class:`~repro.sweep.spec.SweepSpec` over a pool of
local workers using the paper's dynamic master/worker protocol (the same
:func:`~repro.parallel.dispatcher.dispatch_jobs` loop that drives the
parallel Pieri tree), journaling each finished job to an on-disk
checkpoint (:class:`~repro.sweep.journal.SweepJournal`) the moment its
result arrives.  A killed sweep — ``SIGKILL``, power loss, a dead worker
taking the pool down — restarts with only the unfinished jobs, and the
per-job seeds make the merged result set identical to an uninterrupted
run.

Schedules:

- ``dynamic`` (default) — one job at a time, first-come-first-served;
  per-job journaling, so a kill loses at most the jobs in flight.
- ``static`` — one contiguous block per worker, pre-assigned; minimal
  coordination but journaling is per *block*, so checkpoints are coarser
  and a skewed job mix leaves workers idle (measured by
  ``benchmarks/bench_sweep.py``).

Polynomial-system jobs route through :func:`repro.homotopy.solve` with
``mode="batch"`` (the structure-of-arrays tracker) and the job's
start-system strategy — ``total_degree``, ``linear_product``, or
``polyhedral``, which tracks one path per unit of mixed volume; Pieri
jobs run the tree solver per instance, either edge by edge
(``mode="per_path"``) or with whole tree levels tracked as stacked SoA
batches (``mode="batch"``, journaling the per-level batch stats).
Workers self-report busy seconds and identity, exactly like
:mod:`repro.parallel.executors`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Literal, Optional, Sequence

import numpy as np

from ..kernels import kernel_cache_info
from ..parallel.dispatcher import DispatchTelemetry, dispatch_with_pool
from ..parallel.executors import (
    WorkerKey,
    _busy_list,
    _worker_key,
    load_imbalance,
)
from ..telemetry import Telemetry, merge_summaries, use_telemetry
from .journal import SweepJournal
from .spec import JobSpec, SweepSpec

__all__ = [
    "SweepReport",
    "run_sweep",
    "run_job",
    "solutions_fingerprint",
    "aggregate_job_telemetry",
]


def solutions_fingerprint(solutions: Sequence[np.ndarray], digits: int = 6) -> str:
    """Order-independent hash of a solution set, rounded to ``digits``.

    Two runs of the same seeded job produce the same fingerprint, so the
    kill/resume identity check can compare whole result sets without
    storing every coordinate in the journal.
    """
    canon = sorted(
        [
            [round(float(v.real), digits), round(float(v.imag), digits)]
            for v in np.asarray(s, dtype=complex).ravel()
        ]
        for s in solutions
    )
    payload = json.dumps(canon, separators=(",", ":")).encode()
    return hashlib.sha1(payload).hexdigest()


def _build_system(kind: str, params: Dict[str, int], rng: np.random.Generator):
    from ..systems import (
        cyclic_roots_system,
        katsura_system,
        noon_system,
        rps_surrogate_system,
    )

    if kind == "cyclic":
        return cyclic_roots_system(params["n"])
    if kind == "katsura":
        return katsura_system(params["n"])
    if kind == "noon":
        return noon_system(params["n"])
    if kind == "rps":
        # the surrogate's random coefficients come from the job seed too
        return rps_surrogate_system(params["n"], rng=rng)
    raise ValueError(f"not a polynomial-system job kind: {kind!r}")


def _maybe_inject_failure(job_id: str) -> None:
    """Test hook: crash the worker on a named job, exactly once.

    ``REPRO_SWEEP_KILL_JOB`` names the job and ``REPRO_SWEEP_KILL_MARKER``
    a path used to remember the crash already happened (so the retried
    job succeeds).  ``KILL`` dies like a segfaulted process
    (``os._exit``), ``FAIL`` raises like a crashed job.

    ``REPRO_SWEEP_STALL_JOB`` + ``REPRO_SWEEP_STALL_SECONDS`` instead
    *delay* the named job once (same marker protocol) — the fleet
    fault-injection tests use it to hold a lease open long enough to
    ``SIGKILL`` the master mid-lease at a deterministic point.
    """
    marker = os.environ.get("REPRO_SWEEP_KILL_MARKER")
    if os.environ.get("REPRO_SWEEP_KILL_JOB") == job_id:
        if marker and not os.path.exists(marker):
            Path(marker).write_text(job_id)
            os._exit(13)
    if os.environ.get("REPRO_SWEEP_FAIL_JOB") == job_id:
        if marker and not os.path.exists(marker):
            Path(marker).write_text(job_id)
            raise RuntimeError(f"injected failure for {job_id}")
    if os.environ.get("REPRO_SWEEP_STALL_JOB") == job_id:
        if marker and not os.path.exists(marker):
            Path(marker).write_text(job_id)
            time.sleep(float(os.environ.get("REPRO_SWEEP_STALL_SECONDS", "5")))


def run_job(job: JobSpec) -> dict:
    """Execute one sweep job; returns its deterministic result record.

    The ``result`` sub-dict depends only on the job spec (everything is
    seeded), never on which worker ran it or when.
    """
    params = job.param_dict
    rng = np.random.default_rng(job.seed)
    store = None
    if getattr(job, "cache", "off") == "on":
        from ..artifacts import default_store

        store = default_store()
    cache_route = None
    if job.kind == "pieri":
        from ..schubert import PieriInstance, PieriSolver

        instance = PieriInstance.random(
            params["m"], params["p"], params["q"], rng
        )
        report = PieriSolver(instance, seed=job.seed).solve(
            mode=job.mode, cache=store
        )
        cache_route = report.cache
        result = {
            "mode": job.mode,
            "n_solutions": report.n_solutions,
            "expected": report.expected_count(),
            "failures": report.failures,
            "max_residual_exp": (
                None
                if report.n_solutions == 0
                else int(np.ceil(np.log10(max(report.max_residual(), 1e-300))))
            ),
            "fingerprint": solutions_fingerprint(report.solutions),
        }
        if job.mode == "batch":
            # per-level batch stats (sizes, shared homotopies, requeues)
            # so a journal replay can reconstruct the batching behaviour
            result["levels"] = [
                {k: round(v, 6) if isinstance(v, float) else v
                 for k, v in rec.items()}
                for rec in report.level_batches
            ]
    else:
        from ..homotopy import solve

        report = solve(
            _build_system(job.kind, params, rng),
            start=job.start,
            mode="batch",
            rng=rng,
            endgame=job.endgame,
            kernel=job.kernel,
            cache=store,
            predictor=job.predictor,
        )
        cache_route = report.summary.get("cache")
        result = {
            "start": job.start,
            "endgame": job.endgame,
            "n_paths": report.n_paths,
            "n_solutions": report.n_solutions,
            "success": report.summary["success"],
            "diverged": report.summary["diverged"],
            "failed": report.summary["failed"],
            "singular": report.summary["singular"],
            "fingerprint": solutions_fingerprint(report.solutions),
            # predictor-pipeline effort: deterministic per-path counter
            # totals, the evidence behind the PR-10 speedup gates (the
            # recycle-hit count is how many tangent solves reused the
            # corrector's final Jacobian and paid only a J_t evaluation)
            "predictor": report.summary.get("predictor", job.predictor),
            "newton_total": report.summary["newton_total"],
            "jacobian_evaluations": report.summary["jacobian_evaluations"],
            "tangents_recycled": report.summary["tangents_recycled"],
        }
        if report.summary.get("fallback_retracked"):
            result["fallback_retracked"] = report.summary[
                "fallback_retracked"
            ]
        # multiplicity evidence: histogram keys become strings in JSON,
        # so store them as strings up front for a stable round trip
        hist = report.summary.get("multiplicity_histogram", {})
        result["multiplicity_histogram"] = {
            str(k): int(v) for k, v in sorted(hist.items())
        }
        if report.singular_solutions:
            result["n_singular_roots"] = len(report.singular_solutions)
            result["singular_fingerprint"] = solutions_fingerprint(
                report.singular_solutions
            )
        # ``lifting_seed``/``relifts`` journal the polyhedral lifting
        # draw: a DegenerateLiftingError retry replays identically from
        # the seed, and cached mixed cells validate against it
        # (:func:`repro.artifacts.validate_lifting_seed`)
        for key in (
            "mixed_volume", "n_cells", "phase1_failures",
            "lifting_seed", "relifts",
        ):
            if key in report.summary:
                result[key] = report.summary[key]
        if "kernel" in report.summary:
            # journal the deterministic counters only: taping seconds
            # are wall-clock and the cache counters process-cumulative
            # (both depend on what ran before in this worker), and
            # journaled records must be identical across kill/resume
            # replays — cache state rides at record level instead
            result["kernel"] = {
                k: v
                for k, v in report.summary["kernel"].items()
                if k not in ("taping_seconds", "cache")
            }
    record = {
        "job_id": job.job_id,
        "kind": job.kind,
        "params": params,
        "seed": job.seed,
        "result": result,
    }
    if store is not None:
        # record level, not result level: whether a replay lands warm or
        # cold depends on what other jobs stored first, and journaled
        # ``result`` dicts must be replay-deterministic
        record["artifacts"] = {
            "route": cache_route,
            "stats": dict(store.stats),
            "root": str(store.root),
        }
    return record


def _run_job_timed(job_dict: dict):
    """Worker entry point: run one job, self-report time and identity.

    Each job runs inside its own :class:`~repro.telemetry.Telemetry`
    context.  The *deterministic* half of what it recorded — counters
    and span call counts, identical on every replay of the job spec —
    is journaled inside ``result``; the wall-clock span seconds and the
    worker's process-cumulative kernel-cache counters ride at record
    level next to ``seconds``/``worker``, where the journal-identity
    contract already ignores them.
    """
    job = JobSpec.from_dict(job_dict)
    _maybe_inject_failure(job.job_id)
    tel = Telemetry(name=job.job_id)
    t0 = time.perf_counter()
    with use_telemetry(tel):
        record = run_job(job)
    busy = time.perf_counter() - t0
    record["seconds"] = busy
    record["worker"] = list(_worker_key())
    deterministic = tel.deterministic_summary()
    if deterministic:
        record["result"]["telemetry"] = deterministic
    wall = tel.wall_summary()
    if wall:
        record["telemetry_seconds"] = wall
    record["kernel_cache"] = kernel_cache_info()
    return record, busy, _worker_key()


def _run_job_block(job_dicts: List[dict]):
    """Static-schedule worker entry point: run one pre-assigned block."""
    return [_run_job_timed(d) for d in job_dicts]


@dataclass
class SweepReport:
    """What one engine invocation did, plus the merged result set."""

    spec: SweepSpec
    schedule: str
    mode: str
    n_workers: int
    wall_seconds: float = 0.0
    records: Dict[str, dict] = field(default_factory=dict)
    ran_job_ids: List[str] = field(default_factory=list)
    skipped: int = 0
    worker_busy_seconds: List[float] = field(default_factory=list)
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    jobs_abandoned: int = 0
    aborted: bool = False
    #: protocol stats when the run was driven by the multi-host fleet
    #: (``schedule == "fleet"``): workers seen, steals, requeues,
    #: duplicates, timeouts — see :mod:`repro.parallel.fleet.master`
    fleet: Optional[dict] = None
    #: merged per-job telemetry (counters, span calls and — for jobs
    #: run by *this* invocation — span seconds); ``None`` when no job
    #: recorded any
    telemetry: Optional[dict] = None

    @property
    def n_done(self) -> int:
        return len(self.records)

    @property
    def complete(self) -> bool:
        return not self.aborted and self.n_done == self.spec.n_jobs

    @property
    def total_cpu_seconds(self) -> float:
        return float(sum(self.worker_busy_seconds))

    @property
    def load_imbalance(self) -> float:
        """max busy / mean busy over the pool; 1.0 is perfect balance."""
        return load_imbalance(self.worker_busy_seconds)


class _SweepAborted(Exception):
    """Internal: the abort_after budget was reached (simulated kill)."""


def aggregate_job_telemetry(records) -> Optional[dict]:
    """Merge journaled per-job telemetry into one sweep-level summary.

    Recombines each record's deterministic span *calls* (inside
    ``result``) with its record-level wall ``telemetry_seconds`` when
    present — records journaled by an earlier, killed run carry calls
    only, which merge fine.
    """
    summaries = []
    for rec in records:
        det = (rec.get("result") or {}).get("telemetry")
        if not det:
            continue
        wall = rec.get("telemetry_seconds") or {}
        if wall and det.get("spans"):
            det = dict(det)
            det["spans"] = {
                key: (
                    {"calls": calls, "seconds": wall[key]}
                    if key in wall
                    else calls
                )
                for key, calls in det["spans"].items()
            }
        summaries.append(det)
    return merge_summaries(summaries)


def run_sweep(
    spec: SweepSpec,
    checkpoint: str | Path,
    n_workers: Optional[int] = None,
    schedule: Literal["dynamic", "static"] = "dynamic",
    mode: Literal["process", "thread", "serial"] = "process",
    max_retries: int = 2,
    abort_after: Optional[int] = None,
) -> SweepReport:
    """Run (or resume) a sweep against a checkpoint directory.

    Jobs already present in the journal are skipped; everything else is
    sharded over ``n_workers`` local workers.  ``abort_after`` stops the
    run after that many *new* jobs have been journaled — the in-flight
    remainder is dropped exactly as a ``SIGKILL`` would drop it, which
    is what the resume tests exercise.

    Fault tolerance is a property of the ``dynamic`` schedule with
    thread/process workers: worker crashes (raised exceptions *and* dead
    worker processes) are retried up to ``max_retries`` times per job,
    and a dead process pool is rebuilt transparently.  The ``static``
    schedule pre-assigns blocks with no retry, and ``serial`` mode runs
    jobs inline in the master — in both, a crashed job surfaces as the
    raised exception.  Either way the journal keeps every completed job
    and the manifest is finalized on the way out, so a rerun resumes
    from whatever finished.
    """
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if schedule not in ("dynamic", "static"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if mode not in ("process", "thread", "serial"):
        raise ValueError(f"unknown mode {mode!r}")
    if abort_after is not None and abort_after < 1:
        raise ValueError("abort_after must be a positive count")

    if any(job.cache != "off" for job in spec.jobs):
        # point cache-aware jobs at a store the whole pool shares; the
        # worker processes inherit the variable at fork, and an explicit
        # $REPRO_ARTIFACT_STORE wins so sweeps can share one store
        from ..artifacts import STORE_ENV

        os.environ.setdefault(
            STORE_ENV, str(Path(checkpoint) / "artifacts")
        )
    journal = SweepJournal(checkpoint)
    journal.initialize(spec.to_dict())
    done = journal.load_records()
    pending = [job for job in spec.jobs if job.job_id not in done]
    report = SweepReport(
        spec=spec,
        schedule=schedule,
        mode=mode,
        n_workers=n_workers,
        records=dict(done),
        skipped=len(done),
    )
    journal.write_manifest(
        spec.n_jobs, len(done), "running", {"name": spec.name}
    )
    if not pending:
        journal.write_manifest(
            spec.n_jobs, len(done), "complete", {"name": spec.name}
        )
        report.telemetry = aggregate_job_telemetry(report.records.values())
        return report

    per_worker: Dict[WorkerKey, float] = {}
    t_wall = time.perf_counter()

    def journal_record(item) -> None:
        record, busy, key = item
        per_worker[key] = per_worker.get(key, 0.0) + busy
        journal.append(record)
        report.records[record["job_id"]] = record
        report.ran_job_ids.append(record["job_id"])
        if abort_after is not None and len(report.ran_job_ids) >= abort_after:
            raise _SweepAborted

    try:
        with journal:
            if mode == "serial":
                report.n_workers = 1
                for job in pending:
                    journal_record(_run_job_timed(job.to_dict()))
            elif schedule == "static":
                _run_static(pending, n_workers, mode, journal_record)
            else:
                _run_dynamic(
                    pending, n_workers, mode, max_retries, journal_record, report
                )
    except _SweepAborted:
        report.aborted = True
    finally:
        # even a crashed run leaves an honest manifest behind (the
        # journal itself is already durable, record by record)
        report.wall_seconds = time.perf_counter() - t_wall
        report.worker_busy_seconds = _busy_list(per_worker, report.n_workers)
        report.telemetry = aggregate_job_telemetry(report.records.values())
        status = "complete" if report.complete else (
            "aborted" if report.aborted else "incomplete"
        )
        journal.write_manifest(
            spec.n_jobs, report.n_done, status, {"name": spec.name}
        )
    return report


def _warm_worker() -> None:
    """Pool initializer: pay the solver-module import cost up front so a
    worker's first job doesn't bill it as compute time."""
    import repro.homotopy  # noqa: F401
    import repro.schubert  # noqa: F401
    import repro.systems  # noqa: F401


def _make_pool(mode: str, n_workers: int):
    if mode == "process":
        return ProcessPoolExecutor(max_workers=n_workers, initializer=_warm_worker)
    return ThreadPoolExecutor(max_workers=n_workers)


def _run_static(
    pending: List[JobSpec], n_workers: int, mode: str, journal_record
) -> None:
    """Pre-assigned contiguous blocks, one per worker (coarse checkpoints)."""
    dicts = [job.to_dict() for job in pending]
    bounds = np.linspace(0, len(dicts), n_workers + 1).astype(int)
    blocks = [
        dicts[bounds[w] : bounds[w + 1]]
        for w in range(n_workers)
        if bounds[w] < bounds[w + 1]
    ]
    pool = _make_pool(mode, n_workers)
    try:
        for block_out in pool.map(_run_job_block, blocks):
            for item in block_out:
                journal_record(item)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _run_dynamic(
    pending: List[JobSpec],
    n_workers: int,
    mode: str,
    max_retries: int,
    journal_record,
    report: SweepReport,
) -> None:
    """FCFS master loop via the shared dispatcher; journals per job."""
    telemetry = DispatchTelemetry()
    try:
        dispatch_with_pool(
            lambda: _make_pool(mode, n_workers),
            lambda pool, job: pool.submit(_run_job_timed, job.to_dict()),
            pending,
            lambda job, item: journal_record(item),
            n_workers=n_workers,
            max_retries=max_retries,
            retry_key=lambda job: job.job_id,
            rebuildable=(mode == "process"),
            cancel_on_exit=True,  # an abort drops in-flight work, like a kill
            telemetry=telemetry,
        )
    finally:
        # keep the partial counts even when journal_record aborts the run
        report.worker_crashes = telemetry.worker_crashes
        report.pool_rebuilds = telemetry.pool_rebuilds
        report.jobs_abandoned = telemetry.jobs_abandoned
