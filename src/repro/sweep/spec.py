"""Declarative sweep specifications: which solve jobs to run.

A *sweep* is a family of independent solve jobs — Pieri pole-placement
instances across ``(m, p, q)``, cyclic/katsura/noon benchmark systems
across dimension, RPS surrogates — described declaratively so the engine
(:mod:`repro.sweep.engine`) can shard them over workers, journal them,
and resume an interrupted run.

A spec is JSON, with explicit jobs and/or cartesian grids::

    {
      "name": "demo",
      "jobs":  [{"kind": "cyclic", "params": {"n": 5}, "seed": 0,
                 "start": "polyhedral"}],
      "grids": [{"kind": "pieri", "m": [2, 3], "p": [2], "q": [0, 1],
                 "seeds": [0, 1]},
                {"kind": "cyclic", "n": [5, 6],
                 "start": ["total_degree", "polyhedral"]}]
    }

Polynomial-system jobs take an optional ``start`` strategy (and grids an
optional ``start`` axis) choosing the start system ``repro.homotopy.
solve`` builds: ``total_degree`` (default), ``linear_product``, or
``polyhedral`` — the last tracks one path per unit of mixed volume, the
sharp BKK count, instead of one per Bezout path.  They also take an
optional ``endgame`` (and grid axis): ``refine`` (default) or
``cauchy``, which recovers singular endpoints with winding-number loops
and journals each job's multiplicity histogram.  An optional ``kernel``
(and grid axis) picks the evaluation backend — ``naive`` (default, the
seed arithmetic) or ``slp`` (the compiled straight-line-program kernels
of :mod:`repro.kernels`) — and each job journals its kernel's
deterministic effort counters.  An optional ``cache`` (and grid axis)
— ``off`` (default) or ``on`` — routes Pieri and ``polyhedral``-start
jobs through the structure-keyed artifact store
(:mod:`repro.artifacts`), so a family of same-structure jobs pays the
ab-initio solve once and continues the rest.  An optional ``predictor``
(and grid axis) — ``euler`` (default, the seed tangent prediction) or
``hermite`` (the error-model pipeline of :mod:`repro.tracker.predictor`)
— picks the prediction strategy, and each job journals its tracker's
tangent-recycle counters.

Every job has a deterministic, human-readable :attr:`JobSpec.job_id`
(e.g. ``pieri-m2-p2-q1-s0``) that keys the checkpoint journal, and a
``seed`` that makes the job's result reproducible bit-for-bit — the
property the kill/resume identity test relies on.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = [
    "JOB_KINDS",
    "START_KINDS",
    "PIERI_MODES",
    "ENDGAME_KINDS",
    "SOLVE_KERNELS",
    "CACHE_MODES",
    "SOLVE_PREDICTORS",
    "JobSpec",
    "SweepSpec",
    "mixed_demo_spec",
]

#: Supported job kinds and the integer parameters each requires.
JOB_KINDS: Dict[str, tuple] = {
    "cyclic": ("n",),
    "katsura": ("n",),
    "noon": ("n",),
    "rps": ("n",),
    "pieri": ("m", "p", "q"),
}

#: Start-system strategies for the polynomial-system job kinds (the
#: choices :func:`repro.homotopy.solve` accepts); ``total_degree`` is the
#: default and the only strategy Pieri jobs take (their tree solver has
#: its own start mechanism).
START_KINDS = ("total_degree", "linear_product", "polyhedral")

#: Tracking modes for Pieri jobs: ``per_path`` drives the scalar tracker
#: edge by edge, ``batch`` tracks whole tree levels as stacked SoA
#: fronts (:meth:`repro.schubert.solver.PieriSolver.solve`).  Polynomial
#: jobs always run the batch tracker and take no mode.
PIERI_MODES = ("per_path", "batch")

#: Endgame strategies for polynomial-system jobs (the choices
#: :func:`repro.homotopy.solve` accepts): ``refine`` is the plain
#: Newton sharpen, ``cauchy`` recovers singular endpoints with
#: winding-number loops and journals a multiplicity histogram.
ENDGAME_KINDS = ("refine", "cauchy")

#: Evaluation-kernel backends for polynomial-system jobs (the choices
#: :func:`repro.homotopy.solve` accepts as ``kernel=``): ``naive`` is
#: the seed power-table arithmetic with effort accounting, ``slp`` the
#: compiled straight-line-program backend of :mod:`repro.kernels`.
#: The default ``naive`` leaves job ids (and hence old journals)
#: untouched.
SOLVE_KERNELS = ("naive", "slp")

#: Artifact-cache modes (and grid axis): ``off`` (default) solves
#: ab-initio; ``on`` consults the process-shared
#: :class:`~repro.artifacts.ArtifactStore` (``$REPRO_ARTIFACT_STORE``,
#: which the engine points at ``<checkpoint>/artifacts`` when unset) so
#: same-structure jobs amortize mixed cells / solved generic instances
#: into coefficient-parameter continuation.  Only Pieri jobs and
#: ``polyhedral``-start polynomial jobs have a structure to key on.
CACHE_MODES = ("off", "on")

#: Predictor strategies for polynomial-system jobs (the choices
#: :func:`repro.homotopy.solve` accepts as ``predictor=``, mirroring
#: ``repro.tracker.PREDICTORS``): ``euler`` is the seed tangent
#: prediction, ``hermite`` the error-model pipeline (cubic Hermite
#: prediction, update-size acceptance, Jacobian-recycled tangents).
#: The default ``euler`` leaves job ids (and old journals) untouched.
SOLVE_PREDICTORS = ("euler", "hermite")


@dataclass(frozen=True)
class JobSpec:
    """One solve job: a kind, its parameters, a start strategy, a seed.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    the spec is hashable and its canonical form (and hence ``job_id``)
    does not depend on insertion order.  ``start`` picks the start
    system :func:`repro.homotopy.solve` builds for polynomial jobs
    (``"polyhedral"`` tracks one path per unit of mixed volume instead
    of per Bezout path); ``mode`` picks per-path vs level-batched
    tracking for Pieri jobs.  The defaults leave job ids — and hence
    old journals — untouched.
    """

    kind: str
    params: tuple
    seed: int = 0
    start: str = "total_degree"
    mode: str = "per_path"
    endgame: str = "refine"
    kernel: str = "naive"
    cache: str = "off"
    predictor: str = "euler"

    def __init__(
        self,
        kind: str,
        params: Mapping[str, int],
        seed: int = 0,
        start: str = "total_degree",
        mode: str = "per_path",
        endgame: str = "refine",
        kernel: str = "naive",
        cache: str = "off",
        predictor: str = "euler",
    ):
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r}; expected one of {sorted(JOB_KINDS)}"
            )
        if start not in START_KINDS:
            raise ValueError(
                f"unknown start strategy {start!r}; expected one of "
                f"{sorted(START_KINDS)}"
            )
        if kind == "pieri" and start != "total_degree":
            raise ValueError(
                "pieri jobs run the tree solver and take no start strategy"
            )
        if mode not in PIERI_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {sorted(PIERI_MODES)}"
            )
        if kind != "pieri" and mode != "per_path":
            raise ValueError(
                "only pieri jobs take a tracking mode (polynomial jobs "
                "always run the batch tracker)"
            )
        if endgame not in ENDGAME_KINDS:
            raise ValueError(
                f"unknown endgame {endgame!r}; expected one of "
                f"{sorted(ENDGAME_KINDS)}"
            )
        if kind == "pieri" and endgame != "refine":
            raise ValueError(
                "pieri jobs keep the default refine endgame (their retry "
                "ladder owns failure handling)"
            )
        if kernel not in SOLVE_KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{sorted(SOLVE_KERNELS)}"
            )
        if kind == "pieri" and kernel != "naive":
            raise ValueError(
                "pieri jobs run the tree solver and take no kernel backend"
            )
        if cache not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {cache!r}; expected one of "
                f"{sorted(CACHE_MODES)}"
            )
        if cache == "on" and kind != "pieri" and start != "polyhedral":
            raise ValueError(
                "cache='on' needs a structure to key on: pieri jobs or "
                "polynomial jobs with start='polyhedral'"
            )
        if predictor not in SOLVE_PREDICTORS:
            raise ValueError(
                f"unknown predictor {predictor!r}; expected one of "
                f"{sorted(SOLVE_PREDICTORS)}"
            )
        if kind == "pieri" and predictor != "euler":
            raise ValueError(
                "pieri jobs run the tree solver and take no predictor"
            )
        required = JOB_KINDS[kind]
        given = dict(params)
        if sorted(given) != sorted(required):
            raise ValueError(
                f"{kind} jobs need exactly the parameters {sorted(required)}, "
                f"got {sorted(given)}"
            )
        clean = tuple(sorted((k, int(v)) for k, v in given.items()))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "params", clean)
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "endgame", endgame)
        object.__setattr__(self, "kernel", kernel)
        object.__setattr__(self, "cache", cache)
        object.__setattr__(self, "predictor", predictor)

    @property
    def param_dict(self) -> Dict[str, int]:
        return dict(self.params)

    @property
    def job_id(self) -> str:
        """Deterministic human-readable identity, e.g. ``pieri-m2-p2-q1-s0``.

        Non-default start strategies and Pieri tracking modes join the
        id (e.g. ``cyclic-n7-polyhedral-s0``, ``pieri-m2-p2-q1-batch-s0``),
        so the same system solved two ways makes two distinct journal
        entries; default ids match pre-existing journals exactly.
        """
        parts = [self.kind]
        parts += [f"{k}{v}" for k, v in self.params]
        if self.start != "total_degree":
            parts.append(self.start)
        if self.mode != "per_path":
            parts.append(self.mode)
        if self.endgame != "refine":
            parts.append(self.endgame)
        if self.kernel != "naive":
            parts.append(self.kernel)
        if self.cache != "off":
            parts.append("cache")
        if self.predictor != "euler":
            parts.append(self.predictor)
        parts.append(f"s{self.seed}")
        return "-".join(parts)

    def to_dict(self) -> dict:
        d = {"kind": self.kind, "params": self.param_dict, "seed": self.seed}
        if self.start != "total_degree":
            d["start"] = self.start
        if self.mode != "per_path":
            d["mode"] = self.mode
        if self.endgame != "refine":
            d["endgame"] = self.endgame
        if self.kernel != "naive":
            d["kernel"] = self.kernel
        if self.cache != "off":
            d["cache"] = self.cache
        if self.predictor != "euler":
            d["predictor"] = self.predictor
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "JobSpec":
        return cls(
            d["kind"],
            d.get("params", {}),
            d.get("seed", 0),
            d.get("start", "total_degree"),
            d.get("mode", "per_path"),
            d.get("endgame", "refine"),
            d.get("kernel", "naive"),
            d.get("cache", "off"),
            d.get("predictor", "euler"),
        )


def _expand_grid(grid: Mapping) -> List[JobSpec]:
    """One grid entry -> the cartesian product of its parameter axes."""
    grid = dict(grid)
    kind = grid.pop("kind")
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r} in grid")
    seeds = grid.pop("seeds", [0])
    if isinstance(seeds, int):
        seeds = [seeds]
    starts = grid.pop("start", ["total_degree"])
    if isinstance(starts, str):
        starts = [starts]
    modes = grid.pop("mode", ["per_path"])
    if isinstance(modes, str):
        modes = [modes]
    endgames = grid.pop("endgame", ["refine"])
    if isinstance(endgames, str):
        endgames = [endgames]
    kernels = grid.pop("kernel", ["naive"])
    if isinstance(kernels, str):
        kernels = [kernels]
    caches = grid.pop("cache", ["off"])
    if isinstance(caches, str):
        caches = [caches]
    predictors = grid.pop("predictor", ["euler"])
    if isinstance(predictors, str):
        predictors = [predictors]
    axes = {}
    for name in JOB_KINDS[kind]:
        if name not in grid:
            raise ValueError(f"grid for {kind!r} is missing axis {name!r}")
        vals = grid.pop(name)
        axes[name] = [vals] if isinstance(vals, int) else list(vals)
    if grid:
        raise ValueError(f"unknown grid keys for {kind!r}: {sorted(grid)}")
    names = list(axes)
    jobs = []
    for combo in itertools.product(*(axes[n] for n in names)):
        for combo_opts in itertools.product(
            starts, modes, endgames, kernels, caches, predictors, seeds
        ):
            start, mode, endgame, kernel, cache, predictor, seed = combo_opts
            jobs.append(
                JobSpec(
                    kind,
                    dict(zip(names, combo)),
                    seed=seed,
                    start=start,
                    mode=mode,
                    endgame=endgame,
                    kernel=kernel,
                    cache=cache,
                    predictor=predictor,
                )
            )
    return jobs


@dataclass
class SweepSpec:
    """A named, ordered family of jobs (duplicate job ids are rejected)."""

    name: str
    jobs: List[JobSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError("sweep name must be a non-empty path-safe string")
        seen = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job {job.job_id!r} in sweep")
            seen.add(job.job_id)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    def job_ids(self) -> List[str]:
        return [job.job_id for job in self.jobs]

    def to_dict(self) -> dict:
        return {"name": self.name, "jobs": [j.to_dict() for j in self.jobs]}

    @classmethod
    def from_dict(cls, d: Mapping) -> "SweepSpec":
        jobs = [JobSpec.from_dict(j) for j in d.get("jobs", [])]
        for grid in d.get("grids", []):
            jobs.extend(_expand_grid(grid))
        return cls(name=d.get("name", "sweep"), jobs=jobs)

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )


def mixed_demo_spec(
    n_fast: int = 12, n_medium: int = 6, n_heavy: int = 2, name: str = "mixed-demo"
) -> SweepSpec:
    """A skewed job mix for demos, tests and the sweep benchmark.

    Fast katsura jobs (tens of milliseconds) padded out with medium
    cyclic/noon/rps solves and a few heavy Pieri ``q > 0`` instances
    (around a second each): the cost spread that separates dynamic from
    static sharding, in miniature.
    """
    jobs: List[JobSpec] = []
    for s in range(n_fast):
        jobs.append(JobSpec("katsura", {"n": 3}, seed=s))
    medium_cycle = [
        JobSpec("cyclic", {"n": 5}, seed=0),
        JobSpec("noon", {"n": 3}, seed=0),
        JobSpec("rps", {"n": 5}, seed=0),
        JobSpec("pieri", {"m": 2, "p": 2, "q": 0}, seed=0),
    ]
    for s in range(n_medium):
        base = medium_cycle[s % len(medium_cycle)]
        jobs.append(JobSpec(base.kind, base.param_dict, seed=s))
    for s in range(n_heavy):
        jobs.append(JobSpec("pieri", {"m": 2, "p": 2, "q": 1}, seed=s))
    return SweepSpec(name=name, jobs=jobs)
