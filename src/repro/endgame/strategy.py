"""The endgame strategy protocol and the default Newton-sharpen endgame.

An :class:`EndgameStrategy` owns the terminal phase of path tracking:
given a path that either arrived at ``t = 1`` or stalled inside the
strategy's *operating radius* (``t > 1 - operating_radius``), it
classifies the endpoint and may annotate it with a winding number and a
multiplicity.  Both trackers delegate to it — the scalar
:class:`~repro.tracker.tracker.PathTracker` through :meth:`finish`, the
structure-of-arrays :class:`~repro.tracker.batch.BatchTracker` through
:meth:`finish_batch` (one call for the whole surviving front, stacked
fronts included).

:class:`RefineEndgame` reproduces the seed trackers' hardcoded terminal
phase exactly — same Newton call, same classification — so it is the
default and keeps every pre-endgame result bit-identical.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..tracker.interface import BatchHomotopy, HomotopyFunction
from ..tracker.newton import batch_newton_correct, newton_correct
from ..tracker.result import PathStatus

__all__ = [
    "EndgameOutcome",
    "BatchEndgameOutcome",
    "EndgameStrategy",
    "RefineEndgame",
    "make_endgame",
]


@dataclass
class EndgameOutcome:
    """Terminal classification of one path."""

    status: PathStatus
    x: np.ndarray
    residual: float
    iterations: int
    winding_number: int | None = None
    multiplicity: int | None = None


@dataclass
class BatchEndgameOutcome:
    """Terminal classifications for a whole front; leading axis = paths.

    ``winding_number`` uses 0 for "not annotated" (regular refinement);
    the trackers translate 0 back to ``None`` on the per-path results.
    """

    status: list          # list[PathStatus], one per path
    x: np.ndarray         # (npaths, dim) endpoints
    residual: np.ndarray  # (npaths,) float max-norm residuals at t = 1
    iterations: np.ndarray  # (npaths,) Newton iterations spent
    winding_number: np.ndarray  # (npaths,) int, 0 = unannotated


class EndgameStrategy(abc.ABC):
    """Pluggable terminal phase shared by the scalar and batch trackers.

    ``operating_radius`` is the strategy's hand-over region: a path that
    stalls (step underflow, no blow-up) at ``t > 1 - operating_radius``
    is given to the endgame instead of being classified FAILED.  The
    default radius of 0 disables hand-over, which is exactly the seed
    behavior.
    """

    #: short tag recorded on PathResult.endgame
    name: str = "endgame"
    #: stalled paths with t > 1 - operating_radius are handed over
    operating_radius: float = 0.0

    @abc.abstractmethod
    def finish(
        self,
        homotopy: HomotopyFunction,
        x: np.ndarray,
        t: float,
        options,
    ) -> EndgameOutcome:
        """Classify the endpoint of one path that reached time ``t``.

        ``t == 1.0`` for clean arrivals; ``t < 1`` only for stalls
        inside the operating radius (the point ``x`` is then the last
        accepted, corrector-converged point at ``t``).
        """

    @abc.abstractmethod
    def finish_batch(
        self,
        homotopy: BatchHomotopy,
        X: np.ndarray,
        tt: np.ndarray,
        options,
    ) -> BatchEndgameOutcome:
        """Classify a whole front of endpoints, one row per path."""


class RefineEndgame(EndgameStrategy):
    """The seed endgame: one Newton sharpen at ``t = 1``.

    Classification (identical to the pre-endgame trackers): a singular
    Newton step reports SINGULAR; failure to converge with a residual
    above the corrector tolerance reports FAILED; everything else is
    SUCCESS.  ``operating_radius`` is 0, so stalled paths never reach
    this strategy and keep their seed classifications.
    """

    name = "refine"
    operating_radius = 0.0

    def finish(self, homotopy, x, t, options) -> EndgameOutcome:
        del t  # the sharpen always happens at t = 1, as the seed did
        final = newton_correct(
            homotopy,
            x,
            1.0,
            tol=options.endgame_tol,
            max_iterations=options.endgame_iterations,
        )
        if final.singular:
            status = PathStatus.SINGULAR
        elif not final.converged and final.residual > options.corrector_tol:
            status = PathStatus.FAILED
        else:
            status = PathStatus.SUCCESS
        return EndgameOutcome(status, final.x, final.residual, final.iterations)

    def finish_batch(self, homotopy, X, tt, options) -> BatchEndgameOutcome:
        del tt
        final = batch_newton_correct(
            homotopy,
            X,
            1.0,
            tol=options.endgame_tol,
            max_iterations=options.endgame_iterations,
        )
        sing = final.singular
        failed = (~sing) & (~final.converged) & (
            final.residual > options.corrector_tol
        )
        status = [
            PathStatus.SINGULAR
            if s
            else (PathStatus.FAILED if f else PathStatus.SUCCESS)
            for s, f in zip(sing, failed)
        ]
        return BatchEndgameOutcome(
            status,
            final.x,
            final.residual,
            final.iterations,
            np.zeros(X.shape[0], dtype=np.int64),
        )


def make_endgame(endgame) -> EndgameStrategy:
    """Coerce a strategy spec — None, a name, or an instance — to a strategy.

    ``None`` and ``"refine"`` give the default :class:`RefineEndgame`;
    ``"cauchy"`` gives a :class:`~repro.endgame.cauchy.CauchyEndgame`
    with default knobs; an :class:`EndgameStrategy` instance passes
    through (the way to customize radii and loop sampling).
    """
    if endgame is None or endgame == "refine":
        return RefineEndgame()
    if endgame == "cauchy":
        from .cauchy import CauchyEndgame

        return CauchyEndgame()
    if isinstance(endgame, EndgameStrategy):
        return endgame
    raise ValueError(
        f"unknown endgame {endgame!r}; expected 'refine', 'cauchy', or an "
        "EndgameStrategy instance"
    )
