"""The Cauchy (loop) endgame: winding numbers and singular endpoints.

Near a singular endpoint the path is *not* analytic in ``t`` — it is a
branch of a cycle of ``w`` paths permuted by the local monodromy, and it
expands in the fractional power ``s = (1 - t)^{1/w}``.  That structure
is exactly measurable: fix a small radius ``r`` and track the path
around the circle

    t(theta) = 1 - r e^{i theta},   theta: 0 -> 2 pi w

in complex time.  After one revolution the path lands on the *next*
branch of its cycle; after ``w`` revolutions it closes up, and ``w`` is
the winding number.  By Cauchy's integral formula the limit point
``x(1)`` equals the circle average of ``x(t(theta))``, so the mean of
the ``w K`` equally spaced loop samples recovers the singular endpoint
to ``O(r^{2/w})`` — which a few polishing Newton steps (linearly
convergent at a multiple root) then tighten further.

The loop tracking is *batched along the path axis*: every path of a
front that needs the endgame anchors on its ring and loops in lockstep,
one :func:`~repro.tracker.newton.batch_newton_correct` call per sample
angle, with closed-up paths culled from the looping front.  The scalar
entry point runs the same kernels as a one-row batch, so scalar and
batched endgame decisions are bit-identical path by path (the same
contract the PR-1 trackers pin for stepping).
"""

from __future__ import annotations

import numpy as np

from ..telemetry import active_tracer
from ..tracker.interface import as_batch
from ..tracker.newton import batch_newton_correct
from ..tracker.result import PathStatus
from .strategy import (
    BatchEndgameOutcome,
    EndgameOutcome,
    EndgameStrategy,
    RefineEndgame,
)

__all__ = ["CauchyEndgame"]


class CauchyEndgame(EndgameStrategy):
    """Winding-number endgame recovering singular endpoints by loop means.

    The strategy first runs the plain :class:`~repro.endgame.strategy.
    RefineEndgame` sharpen — a regular endpoint is accepted exactly as
    the default endgame would accept it, so on systems without singular
    roots the two strategies agree decision for decision.  Only paths
    the sharpen marks SINGULAR or FAILED enter the Cauchy phase.

    Parameters
    ----------
    operating_radius:
        Radius ``r`` of the loop circle, and the hand-over region: the
        trackers give stalled paths with ``t > 1 - r`` to the endgame
        instead of failing them.  Too large risks enclosing other
        branch points; too small leaves no room between the stall
        front and the circle.
    samples_per_loop:
        Corrector stops per revolution (``K``).  More samples cost more
        Newton sweeps but keep each angular step safely inside the
        corrector's basin and sharpen the circle average.
    max_winding:
        Give up (keeping the plain-refinement classification) if the
        path has not closed up after this many revolutions.
    closure_tol:
        Relative tolerance declaring the loop closed — comfortably above
        corrector noise, comfortably below branch separation.
    residual_bound:
        A recovered endpoint must satisfy ``|H(x, 1)| <= residual_bound``
        or the recovery is rejected (spurious closure).
    jacobian_rcond:
        The *stall detector*.  At a multiple root the residual tolerance
        is deceptive — ``|H(x, 1)| ~ |x - x*|^w`` is tiny long before
        ``x`` is accurate — so plain refinement can report SUCCESS with
        an endpoint off by orders of magnitude.  Any accepted endpoint
        whose Jacobian has ``s_min < jacobian_rcond * max(1, s_max)``
        is therefore re-examined by the loop phase; a loop closing at
        ``w = 1`` keeps SUCCESS (now with a certified endpoint),
        ``w >= 2`` reclassifies the endpoint as a measured singularity.
    verify_tol:
        The *hop detector*.  When several singular roots share a target
        system, their loop rings can overlap and an anchor Newton may
        hop onto a different root's cycle, recovering the wrong
        endpoint.  Every closed loop is therefore verified by walking
        its anchor back inward: the walk must return to within
        ``verify_tol * max(1, |x|)`` of the tracked endpoint, or the
        recovery is rejected (the plain-refinement verdict stands).
    """

    name = "cauchy"

    def __init__(
        self,
        operating_radius: float = 0.05,
        samples_per_loop: int = 16,
        max_winding: int = 8,
        closure_tol: float = 1e-6,
        residual_bound: float = 1e-6,
        jacobian_rcond: float = 1e-5,
        verify_tol: float = 0.05,
    ) -> None:
        if not 0.0 < operating_radius < 1.0:
            raise ValueError("operating_radius must lie in (0, 1)")
        if samples_per_loop < 4:
            raise ValueError("need at least 4 samples per loop")
        if max_winding < 1:
            raise ValueError("max_winding must be positive")
        self.operating_radius = float(operating_radius)
        self.samples_per_loop = int(samples_per_loop)
        self.max_winding = int(max_winding)
        self.closure_tol = float(closure_tol)
        self.residual_bound = float(residual_bound)
        self.jacobian_rcond = float(jacobian_rcond)
        self.verify_tol = float(verify_tol)
        self._refine = RefineEndgame()

    # ------------------------------------------------------------------
    def finish(self, homotopy, x, t, options) -> EndgameOutcome:
        """Scalar entry point: the batch kernels run as a one-row batch."""
        out = self.finish_batch(
            as_batch(homotopy),
            np.asarray(x, dtype=complex)[None, :],
            np.array([float(t)]),
            options,
        )
        w = int(out.winding_number[0])
        return EndgameOutcome(
            out.status[0],
            out.x[0],
            float(out.residual[0]),
            int(out.iterations[0]),
            winding_number=w if w > 0 else None,
            multiplicity=w if w > 0 else None,
        )

    # ------------------------------------------------------------------
    def _loop_at_radius(
        self, homotopy, loopers, pending, z_cur, rho, options, iterations
    ):
        """One lockstep loop attempt around ``t = 1 - rho e^{i theta}``.

        ``pending`` indexes into ``loopers``/``z_cur`` (local rows);
        returns ``(w, mean, closed)`` arrays over ``pending``:
        per-path winding number, circle average, and whether the loop
        closed up within ``max_winding`` revolutions.  ``iterations``
        is updated in place with the Newton effort.
        """
        tel = active_tracer()
        k_loop = self.samples_per_loop
        z0 = z_cur[pending].copy()
        z = z0.copy()
        prev = z0.copy()
        sums = z0.astype(complex).copy()
        w_out = np.zeros(pending.size, dtype=np.int64)
        mean = np.zeros_like(z0)
        closed_out = np.zeros(pending.size, dtype=bool)
        active = np.arange(pending.size)
        scale0 = np.maximum(1.0, np.max(np.abs(z0), axis=1))
        for step in range(1, self.max_winding * k_loop + 1):
            if active.size == 0:
                break
            theta = 2.0 * np.pi * step / k_loop
            t_step = 1.0 - rho * complex(np.cos(theta), np.sin(theta))
            pred = 2.0 * z[active] - prev[active] if step > 1 else z[active]
            corr = batch_newton_correct(
                homotopy.restrict(loopers[pending[active]]),
                pred,
                np.full(active.size, t_step),
                tol=options.corrector_tol,
                max_iterations=options.corrector_iterations,
            )
            iterations[loopers[pending[active]]] += corr.iterations
            conv = corr.converged
            live = active[conv]  # a failed loop step abandons this radius
            prev[live] = z[live]
            z[live] = corr.x[conv]
            active = live
            if active.size == 0:
                break
            if step % k_loop == 0:
                gap = np.max(np.abs(z[active] - z0[active]), axis=1)
                closed = gap <= self.closure_tol * scale0[active]
                done = active[closed]
                if tel is not None:
                    tel.instant(
                        "winding_attempt",
                        "endgame",
                        revolution=step // k_loop,
                        rho=float(rho),
                        looping=int(active.size),
                        closed=int(done.size),
                    )
                w_out[done] = step // k_loop
                mean[done] = sums[done] / step
                closed_out[done] = True
                active = active[~closed]
            sums[active] += z[active]
        return w_out, mean, closed_out

    def _walk_back_verify(
        self,
        homotopy,
        loopers,
        cand,
        z_cur,
        mean_cand,
        x_ref,
        scale_ref,
        rho,
        rho_ref,
        options,
        iterations,
    ) -> np.ndarray:
        """Two-gate validation of closed loops (returns a bool mask).

        The anchor of every candidate walks a factor-2 ladder from its
        loop radius ``rho`` all the way down to the bottom rung (a
        radius of ``~rho 2^-24``, where the walked point is an excellent
        limit-point estimate).  Gate one — hop detection: the walk,
        *snapshotted at each path's own reference radius* ``rho_ref``
        (the stall radius for handed-over paths, the bottom rung for
        arrived ones), must land within ``verify_tol`` of the tracked
        endpoint, else the anchor hopped onto another root's cycle.
        Gate two — monodromy purity: the loop mean must agree with the
        bottom-rung point to the same tolerance; a clean circle average
        *is* the limit point by Cauchy's integral formula, so
        disagreement means the loop circle enclosed a second branch
        point and the measured permutation is garbage.
        """
        z_back = z_cur[cand].copy()
        snapshot = z_back.copy()
        snapped = np.zeros(cand.size, dtype=bool)
        ok = np.ones(cand.size, dtype=bool)
        rho_bottom = rho * 0.5**24
        ref = rho_ref[cand]
        # a retry attempt shrinks the loop radius below some stalls'
        # reference radius; their hop-gate point lies *above* the loop
        # ladder, so a copy of the anchor walks UP to it (factor-2
        # steps, capped at the exact reference radius per path)
        above = np.flatnonzero(ref > rho * (1.0 + 1e-12))
        if above.size:
            z_up = z_back[above].copy()
            cur = np.full(above.size, rho)
            ok_up = np.ones(above.size, dtype=bool)
            for _ in range(30):
                act = np.flatnonzero(
                    ok_up & (cur < ref[above] * (1.0 - 1e-12))
                )
                if act.size == 0:
                    break
                target = np.minimum(ref[above[act]], cur[act] * 2.0)
                corr = batch_newton_correct(
                    homotopy.restrict(loopers[cand[above[act]]]),
                    z_up[act],
                    1.0 - target,
                    tol=options.corrector_tol,
                    max_iterations=options.endgame_iterations,
                )
                iterations[loopers[cand[above[act]]]] += corr.iterations
                zp = z_up[act]
                zp[corr.converged] = corr.x[corr.converged]
                z_up[act] = zp
                ok_up[act[~corr.converged]] = False
                cur[act] = target
            snapshot[above] = z_up
            snapped[above] = True
            ok[above[~ok_up]] = False
        rho_prev = rho
        rho_k = rho / 2.0
        while rho_k >= rho_bottom * (1.0 - 1e-12):
            # a path whose reference radius falls between this rung and
            # the previous one gets an exact correction AT that radius
            # for its hop-gate comparison point (a grid rung could be a
            # whole factor of 2 away, and the path's genuine radial
            # movement over that factor can exceed the gate tolerance)
            cross = np.flatnonzero(
                ok
                & ~snapped
                & (ref <= rho_prev * (1.0 + 1e-12))
                & (ref > rho_k * (1.0 + 1e-12))
            )
            if cross.size:
                corr = batch_newton_correct(
                    homotopy.restrict(loopers[cand[cross]]),
                    z_back[cross],
                    1.0 - ref[cross],
                    tol=options.corrector_tol,
                    max_iterations=options.endgame_iterations,
                )
                iterations[loopers[cand[cross]]] += corr.iterations
                snapshot[cross[corr.converged]] = corr.x[corr.converged]
                snapped[cross[corr.converged]] = True
                ok[cross[~corr.converged]] = False
            part = np.flatnonzero(ok)
            if part.size == 0:
                break
            corr = batch_newton_correct(
                homotopy.restrict(loopers[cand[part]]),
                z_back[part],
                1.0 - rho_k,
                tol=options.corrector_tol,
                max_iterations=options.endgame_iterations,
            )
            iterations[loopers[cand[part]]] += corr.iterations
            zp = z_back[part]
            zp[corr.converged] = corr.x[corr.converged]
            z_back[part] = zp
            ok[part[~corr.converged]] = False
            rho_prev = rho_k
            rho_k /= 2.0
        # arrived paths (reference radius below the bottom rung) compare
        # at the bottom, the best available limit estimate
        snapshot[~snapped] = z_back[~snapped]
        tol = self.verify_tol * scale_ref[cand]
        drift_ref = np.max(np.abs(snapshot - x_ref[cand]), axis=1)
        drift_mean = np.max(np.abs(mean_cand - z_back), axis=1)
        return ok & (drift_ref <= tol) & (drift_mean <= tol)

    def finish_batch(self, homotopy, X, tt, options) -> BatchEndgameOutcome:
        X = np.asarray(X, dtype=complex)
        n = X.shape[0]
        tt = np.asarray(tt, dtype=float)
        if tt.ndim == 0:
            tt = np.full(n, float(tt))

        # stalled rows were handed over mid-tracking (t < 1): they
        # always enter the loop phase, and — unlike arrived rows — they
        # must not inherit a t = 1 sharpen verdict if recovery fails,
        # because such a sharpen would jump from a point the tracker
        # could not even reach (pre-endgame semantics: a stall is
        # FAILED until something positively classifies it).  The
        # sharpen therefore runs only on the arrived rows; stalled rows
        # start from the honest FAILED default.
        stalled = tt < 1.0
        status = [PathStatus.FAILED] * n
        x_out = X.copy()
        residual = np.full(n, np.inf)
        iterations = np.zeros(n, dtype=np.int64)
        winding = np.zeros(n, dtype=np.int64)
        arrived = np.flatnonzero(~stalled)
        if arrived.size:
            # 1) the plain sharpen; its verdicts stand unless the loop
            #    phase positively recovers a path
            out = self._refine.finish_batch(
                homotopy.restrict(arrived), X[arrived], tt[arrived], options
            )
            for local, row in enumerate(arrived):
                status[row] = out.status[local]
            x_out[arrived] = out.x
            residual[arrived] = out.residual
            iterations[arrived] = out.iterations

        def finalize() -> BatchEndgameOutcome:
            for row in np.flatnonzero(stalled & (winding == 0)):
                # report the honest stall state: the last point the
                # tracker validly reached, with an infinite residual —
                # NOT the t = 1 sharpen's endpoint, whose deceptively
                # tiny residual (~|x - x*|^w) would make an unverified
                # jump look numerically converged downstream
                status[row] = PathStatus.FAILED
                x_out[row] = X[row]
                residual[row] = np.inf
            return BatchEndgameOutcome(
                status, x_out, residual, iterations, winding
            )

        hard = np.array(
            [s in (PathStatus.SINGULAR, PathStatus.FAILED) for s in status],
            dtype=bool,
        )
        hard |= stalled
        # stall detector: a SUCCESS whose endpoint Jacobian is numerically
        # degenerate is a multiple root wearing a small residual — the
        # loop phase re-examines it (see the class docstring)
        accepted = np.flatnonzero(~hard)
        if accepted.size:
            jac = homotopy.restrict(accepted).jacobian_x_batch(
                x_out[accepted], 1.0
            )
            sv = np.linalg.svd(jac, compute_uv=False)
            degenerate = sv[:, -1] < self.jacobian_rcond * np.maximum(
                1.0, sv[:, 0]
            )
            hard[accepted[degenerate]] = True
        need = np.flatnonzero(hard)
        if need.size == 0:
            return finalize()

        # 2) anchor every candidate on the ring t = 1 - r.  A single
        #    Newton jump from the (near-singular) endpoint is unreliable
        #    — the first update is ~1/|J| sized and can land on a
        #    *different* path's branch — so the anchor walks a ladder of
        #    geometrically inflating radii: at a tiny radius the path
        #    branch is the unambiguous nearest root, and each doubling
        #    moves the point by a bounded factor (~2^{1/w}) that stays
        #    inside the corrector's basin.  Stalled paths join the
        #    ladder at their own radius ``1 - t``.  A failed rung keeps
        #    the sharpen's classification for that path.
        r = self.operating_radius
        radii = r * (0.5 ** np.arange(24, -1, -1.0))
        z_anchor = X[need].copy()
        alive = np.ones(need.size, dtype=bool)
        rho_start = np.where(tt[need] < 1.0, 1.0 - tt[need], 0.0)
        alive &= rho_start <= r * (1.0 + 1e-12)
        for rho in radii:
            part = np.flatnonzero(alive & (rho_start <= rho * (1.0 + 1e-12)))
            if part.size == 0:
                continue
            rows = need[part]
            corr = batch_newton_correct(
                homotopy.restrict(rows),
                z_anchor[part],
                1.0 - rho,
                tol=options.corrector_tol,
                max_iterations=2 * options.endgame_iterations,
            )
            iterations[rows] += corr.iterations
            zp = z_anchor[part]
            zp[corr.converged] = corr.x[corr.converged]
            z_anchor[part] = zp
            alive[part[~corr.converged]] = False
        loopers = need[alive]
        if loopers.size == 0:
            return finalize()

        # 3) loop in lockstep around t = 1 - rho e^{i theta}; a path
        #    whose point returns to its anchor after a whole revolution
        #    closes up and leaves the looping front with its winding
        #    number.  The loop radius is *adaptive*: the operating
        #    circle can accidentally enclose a second branch point of
        #    the homotopy (the monodromy then never closes, or a loop
        #    Newton step blows up), so unresolved paths walk two ladder
        #    rungs inward and retry on a 4x smaller circle, a few times.
        m = loopers.size
        z_cur = z_anchor[alive]
        x_ref = X[loopers]
        scale_ref = np.maximum(1.0, np.max(np.abs(x_ref), axis=1))
        rho_ref = rho_start[alive]
        w_found = np.zeros(m, dtype=np.int64)
        mean = np.zeros_like(z_cur)
        pending = np.arange(m)
        rho = r
        for attempt in range(3):
            if pending.size == 0:
                break
            if attempt > 0:
                # walk the pending anchors down two factor-2 rungs
                for sub in (2.0, 4.0):
                    if pending.size == 0:
                        break
                    corr = batch_newton_correct(
                        homotopy.restrict(loopers[pending]),
                        z_cur[pending],
                        1.0 - rho / sub,
                        tol=options.corrector_tol,
                        max_iterations=options.endgame_iterations,
                    )
                    iterations[loopers[pending]] += corr.iterations
                    zp = z_cur[pending]
                    zp[corr.converged] = corr.x[corr.converged]
                    z_cur[pending] = zp
                    pending = pending[corr.converged]
                rho = rho / 4.0
            w_att, mean_att, closed = self._loop_at_radius(
                homotopy, loopers, pending, z_cur, rho, options, iterations
            )
            cand = pending[closed]
            retry = pending[~closed]
            if cand.size:
                # verify each closed loop by walking its anchor back
                # inward: a clean circle average equals the limit point
                # (Cauchy's formula), so mean and walk-back must agree;
                # a corrupted monodromy — the circle also enclosed a
                # *different* root's branch point, or the anchor hopped
                # rings — fails one of the gates and retries on the
                # next, 4x smaller circle
                ok = self._walk_back_verify(
                    homotopy,
                    loopers,
                    cand,
                    z_cur,
                    mean_att[closed],
                    x_ref,
                    scale_ref,
                    rho,
                    rho_ref,
                    options,
                    iterations,
                )
                good = cand[ok]
                w_found[good] = w_att[closed][ok]
                mean[good] = mean_att[closed][ok]
                retry = np.concatenate([retry, cand[~ok]])
            pending = np.sort(retry)

        rec = np.flatnonzero(w_found > 0)
        if rec.size == 0:
            return finalize()

        # 4) polish the circle averages at t = 1 (Newton converges
        #    linearly at a multiple root) and accept whichever point has
        #    the smaller residual — but only below the residual bound
        rows = loopers[rec]
        cand = mean[rec]
        res_mean = np.max(
            np.abs(homotopy.restrict(rows).evaluate_batch(cand, 1.0)), axis=1
        )
        polish = batch_newton_correct(
            homotopy.restrict(rows),
            cand,
            1.0,
            tol=options.endgame_tol,
            max_iterations=options.endgame_iterations,
        )
        iterations[rows] += polish.iterations
        better = polish.residual < res_mean
        cand[better] = polish.x[better]
        res_cand = np.where(better, polish.residual, res_mean)
        accept = res_cand <= self.residual_bound
        for i in np.flatnonzero(accept):
            row = rows[i]
            w = int(w_found[rec[i]])
            # a loop closing after one revolution certifies a regular
            # (if ill-conditioned) endpoint; w >= 2 is a measured
            # singularity with cycle length w
            status[row] = (
                PathStatus.SINGULAR if w >= 2 else PathStatus.SUCCESS
            )
            x_out[row] = cand[i]
            residual[row] = res_cand[i]
            winding[row] = w
        return finalize()
