"""Pluggable endgames: the terminal phase of path tracking as a strategy.

A homotopy path can end four ways: at a regular root (sharpen and
report), at a *singular* root (the Jacobian degenerates — plain Newton
stalls or wanders), at infinity, or nowhere (numerical failure).  The
seed trackers hardcoded one answer — a single Newton sharpen at
``t = 1`` — so every singular endpoint degraded to an opaque SINGULAR
label and every stall to FAILED.  This package turns the terminal phase
into a strategy both trackers (scalar :class:`~repro.tracker.PathTracker`
and structure-of-arrays :class:`~repro.tracker.BatchTracker`, including
stacked fronts) delegate to:

- :class:`RefineEndgame` — the seed behavior, bit for bit: one Newton
  sharpen at ``t = 1`` with the options' endgame tolerance.  The
  default everywhere.
- :class:`CauchyEndgame` — a winding-number endgame.  When the sharpen
  stalls (or the tracker hands over a path that stalled inside the
  operating radius ``t > 1 - r``), the path is tracked around small
  circles ``t = 1 - r e^{i theta}`` in complex time; the number of
  loops until the path closes up is the winding number ``w`` (the cycle
  length of the branch), and by Cauchy's integral formula the mean of
  the ``w K`` equally spaced loop samples converges to the singular
  endpoint.  Recovered endpoints come back SINGULAR but *classified*:
  annotated with ``winding_number`` and ``multiplicity``, endpoint
  polished to near the limit point.

Track the one path of ``H(x, t) = x^2 - (1 - t)`` — at ``t = 1`` the
endpoint ``x = 0`` is a double root.  Plain refinement is *deceived* by
it: near a multiplicity-``w`` root the residual scales like
``|x - x*|^w``, so Newton reports a tiny residual (SUCCESS) while the
endpoint is off by orders of magnitude.  The Cauchy endgame spots the
degenerate Jacobian, measures the winding and recovers the endpoint
from the loop mean:

>>> import numpy as np
>>> from repro.tracker import HomotopyFunction, PathTracker, PathStatus
>>> class Collapse(HomotopyFunction):
...     '''x(t) = sqrt(1 - t): two branches collapsing at t = 1.'''
...     @property
...     def dim(self): return 1
...     def evaluate(self, x, t): return np.array([x[0] ** 2 - (1 - t)])
...     def jacobian_x(self, x, t): return np.array([[2 * x[0]]])
...     def jacobian_t(self, x, t): return np.array([1.0 + 0j])
>>> plain = PathTracker().track(Collapse(), [1.0])
>>> plain.success and plain.winding_number is None
True
>>> bool(abs(plain.solution[0]) > 1e-8)   # "converged", far from the root
True
>>> cauchy = PathTracker(endgame=CauchyEndgame()).track(Collapse(), [1.0])
>>> cauchy.status is PathStatus.SINGULAR, cauchy.winding_number
(True, 2)
>>> bool(abs(cauchy.solution[0]) < 1e-9)
True
"""

from .strategy import (
    BatchEndgameOutcome,
    EndgameOutcome,
    EndgameStrategy,
    RefineEndgame,
    make_endgame,
)
from .cauchy import CauchyEndgame

__all__ = [
    "EndgameStrategy",
    "EndgameOutcome",
    "BatchEndgameOutcome",
    "RefineEndgame",
    "CauchyEndgame",
    "make_endgame",
]
