"""``python -m repro.telemetry report <trace.jsonl>`` — trace summarizer.

Reads a trace exported by :meth:`Telemetry.write_trace` (or any
Chrome-trace-format file) and prints the per-layer time breakdown:
self/total seconds and share per layer (predictor, corrector, endgame,
kernel, ...), per-span detail, and instant-event counts.
"""

from __future__ import annotations

import argparse
import json
import sys

from .trace import format_report, layer_report, load_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize an exported telemetry trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="per-layer time breakdown")
    rep.add_argument("trace", help="trace file from Telemetry.write_trace()")
    rep.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    args = parser.parse_args(argv)

    events = load_trace(args.trace)
    if not events:
        print(f"no trace events found in {args.trace}", file=sys.stderr)
        return 1
    report = layer_report(events)
    if args.fmt == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. `... report trace | head`
        raise SystemExit(0)
