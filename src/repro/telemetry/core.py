"""The `Telemetry` context: counters, histograms, and nested spans.

One :class:`Telemetry` object is the complete instrumentation state of
one logical unit of work — a solve, a sweep job, a fleet worker's shift.
It is carried ambiently through a :mod:`contextvars` variable (so the
tracker does not need a ``telemetry=`` parameter threaded through five
call layers) and *explicitly* across process and socket boundaries: a
worker serializes ``deterministic_summary()`` into the journal record it
ships back, never the object itself.

Three kinds of state, with different determinism guarantees:

- **counters** (``count``) and **span call counts** — pure tallies of
  how often something happened.  These are replay-stable: the same job
  spec produces the same numbers on every machine, so they may live in
  the deterministic part of a journal record.
- **histograms** (``observe``) — decade-bucketed value distributions
  (step sizes, Newton iteration counts).  Deterministic when the
  observed values are.
- **span wall seconds** and **trace events** — wall-clock measurements.
  Never deterministic; segregated into ``wall_summary()`` and the trace
  file, exactly like the sweep engine strips ``taping_seconds`` before
  journaling.

Spans always accumulate into the aggregate (cheap: one dict update per
exit).  The per-event *trace* — Chrome ``ph: B/E`` records suitable for
Perfetto — is additionally recorded only inside a ``with tel.trace():``
region, which is what ``trace_paths=True`` turns on.  With no telemetry
context active every hook in the library degenerates to one contextvar
read and a ``None`` check.
"""

from __future__ import annotations

import json
import math
import os
import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Telemetry",
    "current_telemetry",
    "use_telemetry",
    "active_tracer",
    "maybe_span",
    "merge_summaries",
]

_ACTIVE: ContextVar[Optional["Telemetry"]] = ContextVar(
    "repro_telemetry", default=None
)


def current_telemetry() -> Optional["Telemetry"]:
    """The ambient :class:`Telemetry` context, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def use_telemetry(tel: "Telemetry"):
    """Install ``tel`` as the ambient telemetry context for a block."""
    token = _ACTIVE.set(tel)
    try:
        yield tel
    finally:
        _ACTIVE.reset(token)


def active_tracer() -> Optional["Telemetry"]:
    """The ambient context *only if* event tracing is switched on.

    The kernel-layer hooks use this: span aggregates for every batched
    evaluation would be noise, but inside a trace they are the per-layer
    breakdown the report CLI prints.
    """
    tel = _ACTIVE.get()
    if tel is not None and tel.tracing:
        return tel
    return None


def maybe_span(tel: Optional["Telemetry"], name: str, layer: str):
    """``tel.span(...)`` when a context is active, else a no-op context."""
    if tel is None:
        return nullcontext()
    return tel.span(name, layer)


def _bucket(value: float) -> str:
    """Decade bucket label for histogram values (``"1e-03"`` style)."""
    if value <= 0.0:
        return "<=0"
    exp = min(6, max(-12, math.floor(math.log10(value))))
    return f"1e{exp:+03d}"


class Telemetry:
    """Counters, histograms, and nested spans for one unit of work.

    >>> tel = Telemetry(name="demo")
    >>> with tel.span("track", layer="tracker"):
    ...     tel.count("paths", 3)
    ...     tel.observe("step", 0.05)
    >>> tel.summary()["spans"]["tracker/track"]["calls"]
    1
    >>> tel.deterministic_summary()["counters"]
    {'paths': 3}
    >>> with tel.trace():
    ...     with tel.span("predict", layer="predictor"):
    ...         tel.instant("step_accept", "tracker", path=0)
    >>> [e["ph"] for e in tel.events]
    ['B', 'i', 'E']
    """

    def __init__(self, name: str = "repro"):
        self.name = name
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Dict[str, int]] = {}
        # span aggregates keyed "layer/name" -> [calls, wall seconds]
        self._spans: Dict[str, List[float]] = {}
        self.events: List[dict] = []
        self.tracing = False
        self._origin = time.perf_counter()
        self._pid = os.getpid()

    # -- tallies -------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter (deterministic)."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the decade-bucket histogram ``name``."""
        hist = self.histograms.setdefault(name, {})
        key = _bucket(float(value))
        hist[key] = hist.get(key, 0) + 1

    # -- spans and events ----------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    @contextmanager
    def span(self, name: str, layer: str = "repro"):
        """Time a block; aggregate always, emit B/E events when tracing."""
        key = f"{layer}/{name}"
        traced = self.tracing
        if traced:
            self.events.append(
                {
                    "ph": "B",
                    "name": name,
                    "cat": layer,
                    "ts": self._now_us(),
                    "pid": self._pid,
                    "tid": 0,
                }
            )
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - t0
            stat = self._spans.get(key)
            if stat is None:
                self._spans[key] = [1, elapsed]
            else:
                stat[0] += 1
                stat[1] += elapsed
            if traced:
                self.events.append(
                    {
                        "ph": "E",
                        "name": name,
                        "cat": layer,
                        "ts": self._now_us(),
                        "pid": self._pid,
                        "tid": 0,
                    }
                )

    def instant(self, name: str, layer: str = "repro", **args) -> None:
        """One point-in-time trace event (recorded only when tracing).

        Also bumps the ``layer.name`` counter so the trace report can
        show event totals without re-scanning the event list.
        """
        if not self.tracing:
            return
        self.count(f"{layer}.{name}")
        self.events.append(
            {
                "ph": "i",
                "name": name,
                "cat": layer,
                "ts": self._now_us(),
                "pid": self._pid,
                "tid": 0,
                "s": "t",
                "args": args,
            }
        )

    @contextmanager
    def trace(self):
        """Switch per-event trace recording on for a block (nest-safe)."""
        prev = self.tracing
        self.tracing = True
        try:
            yield self
        finally:
            self.tracing = prev

    # -- summaries -----------------------------------------------------
    def summary(self) -> dict:
        """Everything: counters, histograms, spans with wall seconds."""
        return {
            "name": self.name,
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                k: dict(sorted(v.items()))
                for k, v in sorted(self.histograms.items())
            },
            "spans": {
                key: {"calls": int(calls), "seconds": seconds}
                for key, (calls, seconds) in sorted(self._spans.items())
            },
            "n_events": len(self.events),
        }

    def deterministic_summary(self) -> dict:
        """The replay-stable subset: counters, histograms, span *calls*.

        Safe to store in the deterministic part of a journal record —
        no wall-clock field appears anywhere in the result.
        """
        out: dict = {}
        if self.counters:
            out["counters"] = dict(sorted(self.counters.items()))
        if self.histograms:
            out["histograms"] = {
                k: dict(sorted(v.items()))
                for k, v in sorted(self.histograms.items())
            }
        if self._spans:
            out["spans"] = {
                key: int(calls)
                for key, (calls, _) in sorted(self._spans.items())
            }
        return out

    def wall_summary(self) -> dict:
        """Wall-clock seconds per span — the non-deterministic half."""
        return {
            key: round(seconds, 6)
            for key, (_, seconds) in sorted(self._spans.items())
        }

    # -- export --------------------------------------------------------
    def write_trace(self, path) -> int:
        """Write events as a Chrome/Perfetto-compatible trace file.

        The file is a JSON array with one event per line — valid input
        for ``about:tracing`` and Perfetto, and still greppable /
        line-appendable like JSONL.  Returns the number of events
        written.
        """
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[\n")
            fh.write(
                json.dumps(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": self._pid,
                        "tid": 0,
                        "args": {"name": self.name},
                    },
                    sort_keys=True,
                )
            )
            for event in self.events:
                fh.write(",\n" + json.dumps(event, sort_keys=True))
            fh.write("\n]\n")
        return len(self.events)


def merge_summaries(summaries: Iterable[Optional[dict]]) -> Optional[dict]:
    """Sum counters/histograms/span-calls (and seconds when present).

    Accepts a mix of ``deterministic_summary()`` dicts and full
    ``summary()`` dicts; ``None`` entries are skipped.  Returns ``None``
    when nothing contributed — callers use that to omit the field.
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, int]] = {}
    calls: Dict[str, int] = {}
    seconds: Dict[str, float] = {}
    n = 0
    for summ in summaries:
        if not summ:
            continue
        n += 1
        for key, val in (summ.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + int(val)
        for key, hist in (summ.get("histograms") or {}).items():
            out = histograms.setdefault(key, {})
            for bucket, count in hist.items():
                out[bucket] = out.get(bucket, 0) + int(count)
        for key, span in (summ.get("spans") or {}).items():
            if isinstance(span, dict):
                calls[key] = calls.get(key, 0) + int(span.get("calls", 0))
                if "seconds" in span:
                    seconds[key] = seconds.get(key, 0.0) + float(
                        span["seconds"]
                    )
            else:
                calls[key] = calls.get(key, 0) + int(span)
    if n == 0:
        return None
    merged: dict = {"n_sources": n}
    if counters:
        merged["counters"] = dict(sorted(counters.items()))
    if histograms:
        merged["histograms"] = {
            k: dict(sorted(v.items())) for k, v in sorted(histograms.items())
        }
    if calls:
        merged["spans"] = {
            key: (
                {"calls": calls[key], "seconds": round(seconds[key], 6)}
                if key in seconds
                else {"calls": calls[key]}
            )
            for key in sorted(calls)
        }
    return merged
