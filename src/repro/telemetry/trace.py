"""Load an exported trace file and compute the per-layer time breakdown.

The reader is deliberately tolerant about framing: it accepts the
array-with-one-event-per-line files :meth:`Telemetry.write_trace`
produces, strict JSONL (one bare object per line), or a whole-file JSON
array — whatever a user hands it after round-tripping a trace through
other tooling.

The breakdown distinguishes *total* time (span duration including
children) from *self* time (duration minus nested spans), computed from
the ``B``/``E`` stack.  Self time is what answers "where did the time
go": the corrector's total includes every kernel evaluation it
triggered, but only its self time is corrector bookkeeping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

__all__ = ["load_trace", "layer_report", "format_report"]


def load_trace(path) -> List[dict]:
    """Parse a trace file into its event list (metadata events dropped)."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.strip()
    events: List[dict] = []
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, list):
        events = [e for e in payload if isinstance(e, dict)]
    elif isinstance(payload, dict) and isinstance(
        payload.get("traceEvents"), list
    ):
        events = [e for e in payload["traceEvents"] if isinstance(e, dict)]
    else:
        # line-oriented fallback: skip array brackets and torn lines
        for line in text.splitlines():
            line = line.strip().rstrip(",")
            if not line or line in ("[", "]"):
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return [e for e in events if e.get("ph") != "M"]


def layer_report(events: List[dict]) -> dict:
    """Per-layer total/self seconds plus instant-event counts.

    Events must be in recording order (they are, as written); the B/E
    stack is replayed to attribute each span's duration minus its
    children to the span's layer (``cat``).
    """
    layers: Dict[str, dict] = {}
    instants: Dict[str, int] = {}
    stack: List[dict] = []  # {"cat", "name", "ts", "child"}
    t_min = None
    t_max = None
    for event in events:
        ph = event.get("ph")
        ts = float(event.get("ts", 0.0))
        if t_min is None or ts < t_min:
            t_min = ts
        if t_max is None or ts > t_max:
            t_max = ts
        if ph == "B":
            stack.append(
                {
                    "cat": event.get("cat", "repro"),
                    "name": event.get("name", "?"),
                    "ts": ts,
                    "child": 0.0,
                }
            )
        elif ph == "E":
            if not stack:
                continue
            frame = stack.pop()
            dur = max(0.0, ts - frame["ts"])
            self_us = max(0.0, dur - frame["child"])
            if stack:
                stack[-1]["child"] += dur
            layer = layers.setdefault(
                frame["cat"], {"self_seconds": 0.0, "total_seconds": 0.0,
                               "calls": 0, "names": {}}
            )
            layer["self_seconds"] += self_us / 1e6
            layer["total_seconds"] += dur / 1e6
            layer["calls"] += 1
            name = layer["names"].setdefault(
                frame["name"], {"calls": 0, "self_seconds": 0.0}
            )
            name["calls"] += 1
            name["self_seconds"] += self_us / 1e6
        elif ph == "i":
            key = f"{event.get('cat', 'repro')}.{event.get('name', '?')}"
            instants[key] = instants.get(key, 0) + 1
    wall = 0.0 if t_min is None else (t_max - t_min) / 1e6
    return {
        "wall_seconds": wall,
        "n_events": len(events),
        "layers": dict(sorted(layers.items())),
        "instants": dict(sorted(instants.items())),
    }


def format_report(report: dict) -> str:
    """Render :func:`layer_report` output as the CLI's text table."""
    lines: List[str] = []
    wall = report["wall_seconds"]
    lines.append(
        f"trace: {report['n_events']} events over {wall:.3f}s"
    )
    total_self = sum(
        layer["self_seconds"] for layer in report["layers"].values()
    )
    lines.append("")
    lines.append(
        f"{'layer':<12} {'self(s)':>9} {'share':>7} {'total(s)':>9} "
        f"{'spans':>7}"
    )
    ordered = sorted(
        report["layers"].items(),
        key=lambda item: -item[1]["self_seconds"],
    )
    for layer, stats in ordered:
        share = (
            stats["self_seconds"] / total_self if total_self > 0 else 0.0
        )
        lines.append(
            f"{layer:<12} {stats['self_seconds']:>9.4f} {share:>6.1%} "
            f"{stats['total_seconds']:>9.4f} {stats['calls']:>7d}"
        )
        for name, nstat in sorted(
            stats["names"].items(), key=lambda item: -item[1]["self_seconds"]
        ):
            lines.append(
                f"  {name:<24} {nstat['self_seconds']:>9.4f}s"
                f" {nstat['calls']:>7d} calls"
            )
    if report["instants"]:
        lines.append("")
        lines.append("events:")
        for key, count in report["instants"].items():
            lines.append(f"  {key:<28} {count:>9d}")
    return "\n".join(lines)
