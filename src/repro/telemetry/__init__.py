"""Cross-layer tracing and metrics (PR 8).

Every layer of the pipeline — batch tracker, endgames, SLP kernels,
solve orchestration, sweep engine, fleet — reports into one
:class:`Telemetry` context carried through a contextvar, so a single
trace answers "where did this solve's time go" across all of them.

Quick tour (see ``docs/telemetry.md`` for the full tutorial):

>>> from repro.telemetry import Telemetry, use_telemetry, current_telemetry
>>> tel = Telemetry(name="tour")
>>> with use_telemetry(tel):
...     assert current_telemetry() is tel
...     with tel.span("correct", layer="corrector"):
...         tel.count("newton_iterations", 4)
>>> tel.deterministic_summary()["counters"]
{'newton_iterations': 4}
>>> tel.deterministic_summary()["spans"]
{'corrector/correct': 1}

Per-event tracing (Chrome ``ph: B/E`` records, Perfetto-openable via
:meth:`Telemetry.write_trace`) stays off until a ``trace()`` block — or
``solve(..., trace_paths=True)`` — turns it on:

>>> with tel.trace():
...     tel.instant("step_accept", "tracker", path=7, t=0.5)
>>> tel.events[-1]["ph"]
'i'
"""

from .core import (
    Telemetry,
    active_tracer,
    current_telemetry,
    maybe_span,
    merge_summaries,
    use_telemetry,
)
from .trace import format_report, layer_report, load_trace

__all__ = [
    "Telemetry",
    "active_tracer",
    "current_telemetry",
    "maybe_span",
    "merge_summaries",
    "use_telemetry",
    "load_trace",
    "layer_report",
    "format_report",
]
