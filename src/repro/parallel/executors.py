"""Real parallel path tracking: static and dynamic load balancing (paper §II).

The paper's two schemes, implemented on local workers instead of MPI ranks
(see DESIGN.md substitutions):

- **static** — the path list is split round-robin into one chunk per worker
  before any tracking starts; each worker runs its whole chunk.  Minimal
  coordination, but worker finish times inherit the full variance of the
  per-path costs.
- **dynamic** — a master hands out one path at a time; a worker that
  finishes requests the next (first-come-first-served).  More coordination,
  near-perfect balance.

Workers are processes by default (real parallelism for this CPU-bound
workload); ``mode="thread"`` runs the same code on threads, useful for
correctness tests and when the homotopy is cheap relative to process
startup.  ``mode="serial"`` is the 1-CPU baseline sharing the same code
path.

Beyond the paper's axis (paths x workers), two modes exploit the
structure-of-arrays tracker (:class:`~repro.tracker.BatchTracker`):

- **batch** — one process advances *all* paths as a single vectorized
  front; no inter-process coordination at all, the speedup comes from
  amortizing numpy dispatch over the batch.
- **hybrid** — processes x batch: the path list is split into per-worker
  blocks and every worker tracks its block as one batched front.  With
  ``schedule="static"`` there is one round-robin block per worker; with
  ``schedule="dynamic"`` the list is cut into several smaller blocks
  handed out first-come-first-served, trading some batching efficiency
  for balance.

Worker busy time is *self-reported*: every job result carries the worker
identity (process id, thread id) that ran it, and per-worker busy seconds
are aggregated from those reports — so ``load_imbalance`` reflects the
real assignment, not a master-side guess.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Sequence, Tuple

import numpy as np

from ..tracker import (
    BatchTracker,
    HomotopyFunction,
    PathResult,
    PathTracker,
    TrackerOptions,
)

__all__ = ["ParallelTrackReport", "load_imbalance", "track_paths_parallel"]


def load_imbalance(busy_seconds) -> float:
    """max busy / mean busy over the *full* pool; 1.0 is perfect balance.

    Idle workers count as zeros (pad with :func:`_busy_list`), so the
    statistic reflects the pool size actually reserved.  A report with
    *zero* busy workers — every job culled before dispatch, or a sweep
    resumed with nothing left to run — has no balance to speak of and
    returns 0.0 rather than dividing by the zero mean (it also keeps
    the sentinel distinguishable from a genuinely perfect 1.0).  The
    cluster simulator uses the complementary convention — see
    :meth:`repro.simcluster.SimResult.load_imbalance`.

    >>> load_imbalance([2.0, 1.0, 1.0])
    1.5
    >>> load_imbalance([])
    0.0
    >>> load_imbalance([0.0, 0.0])
    0.0
    """
    busy = np.asarray(list(busy_seconds), dtype=float)
    if busy.size == 0 or busy.mean() == 0:
        return 0.0
    return float(busy.max() / busy.mean())

# Module-level worker state: set once per worker process by the initializer
# so the homotopy is pickled once, not per path.
_WORKER_HOMOTOPY: HomotopyFunction | None = None
_WORKER_TRACKER: PathTracker | None = None
_WORKER_BATCH_TRACKER: BatchTracker | None = None

WorkerKey = Tuple[int, int]


def _worker_key() -> WorkerKey:
    """Identity of the executing worker: (process id, thread id)."""
    return os.getpid(), threading.get_ident()


def _init_worker(homotopy: HomotopyFunction, options: TrackerOptions) -> None:
    global _WORKER_HOMOTOPY, _WORKER_TRACKER, _WORKER_BATCH_TRACKER
    _WORKER_HOMOTOPY = homotopy
    _WORKER_TRACKER = PathTracker(options)
    _WORKER_BATCH_TRACKER = BatchTracker(options)


def _track_one(args) -> tuple[int, PathResult, float, WorkerKey]:
    path_id, start = args
    t0 = time.perf_counter()
    result = _WORKER_TRACKER.track(_WORKER_HOMOTOPY, start, path_id=path_id)
    return path_id, result, time.perf_counter() - t0, _worker_key()


def _track_chunk(args) -> List[tuple[int, PathResult, float, WorkerKey]]:
    return [_track_one(item) for item in args]


def _track_batch_block(
    args,
) -> tuple[List[tuple[int, PathResult]], float, WorkerKey]:
    """Track one block of paths as a single SoA front (hybrid mode)."""
    path_ids = [pid for pid, _ in args]
    starts = [start for _, start in args]
    t0 = time.perf_counter()
    results = _WORKER_BATCH_TRACKER.track_batch(
        _WORKER_HOMOTOPY, starts, path_ids=path_ids
    )
    busy = time.perf_counter() - t0
    return [(r.path_id, r) for r in results], busy, _worker_key()


@dataclass
class ParallelTrackReport:
    """Results plus the load-balance evidence the paper's tables report."""

    results: List[PathResult]
    schedule: str
    n_workers: int
    wall_seconds: float
    worker_busy_seconds: List[float] = field(default_factory=list)

    @property
    def total_cpu_seconds(self) -> float:
        return float(sum(self.worker_busy_seconds))

    @property
    def load_imbalance(self) -> float:
        """max busy / mean busy; 1.0 is perfect balance."""
        return load_imbalance(self.worker_busy_seconds)


def _busy_list(per_worker: Dict[WorkerKey, float], n_workers: int) -> List[float]:
    """Self-reported busy seconds as a list padded to ``n_workers``.

    Idle workers (never handed a job) appear as zeros so the imbalance
    statistic still reflects the full pool size.
    """
    busy = sorted(per_worker.values(), reverse=True)
    if len(busy) < n_workers:
        busy += [0.0] * (n_workers - len(busy))
    return busy


def track_paths_parallel(
    homotopy: HomotopyFunction,
    starts: Sequence[Sequence[complex]],
    n_workers: int | None = None,
    schedule: Literal["static", "dynamic"] = "dynamic",
    mode: Literal["process", "thread", "serial", "batch", "hybrid"] = "process",
    options: TrackerOptions | None = None,
) -> ParallelTrackReport:
    """Track all paths of ``homotopy`` from ``starts`` on local workers.

    Parameters
    ----------
    homotopy:
        Any :class:`~repro.tracker.HomotopyFunction`; it is shipped to
        each worker once (pickled for process workers).
    starts:
        One start vector per path; path ids are their indices here.
    n_workers:
        Pool size; defaults to ``cpu_count() - 1`` (min 1).
    schedule:
        ``"static"`` pre-assigns one round-robin chunk per worker;
        ``"dynamic"`` hands out one path (or block, in hybrid mode) at a
        time, first-come-first-served — the paper's two schemes.
    mode:
        ``"process"``/``"thread"``/``"serial"`` track per path;
        ``"batch"`` advances all paths as one SoA front in this process;
        ``"hybrid"`` gives each worker a block tracked as one front.
    options:
        Tracker options shared by every worker.

    Returns
    -------
    A :class:`ParallelTrackReport`: results ordered by path id plus the
    schedule/busy-time telemetry the paper's tables report.

    >>> import numpy as np
    >>> from repro.homotopy import make_homotopy_and_starts
    >>> from repro.systems import katsura_system
    >>> homotopy, starts = make_homotopy_and_starts(
    ...     katsura_system(2), rng=np.random.default_rng(0))
    >>> report = track_paths_parallel(homotopy, starts, mode="serial")
    >>> report.n_workers, len(report.results)
    (1, 4)
    >>> [r.path_id for r in report.results]
    [0, 1, 2, 3]
    >>> report.load_imbalance >= 1.0
    True
    """
    options = options or TrackerOptions()
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if schedule not in ("static", "dynamic"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if mode not in ("process", "thread", "serial", "batch", "hybrid"):
        raise ValueError(f"unknown mode {mode!r}")
    jobs = [(i, np.asarray(s, dtype=complex)) for i, s in enumerate(starts)]

    t_wall = time.perf_counter()
    if mode == "batch" or (mode == "hybrid" and n_workers == 1):
        # one vectorized SoA front in this process; "parallelism" across
        # paths comes from batching, not workers
        _init_worker(homotopy, options)
        block, busy, _ = _track_batch_block(jobs)
        wall = time.perf_counter() - t_wall
        results = [r for _, r in sorted(block, key=lambda pr: pr[0])]
        return ParallelTrackReport(results, schedule, 1, wall, [busy])

    if mode == "serial" or n_workers == 1:
        _init_worker(homotopy, options)
        triples = [_track_one(job) for job in jobs]
        wall = time.perf_counter() - t_wall
        results = [r for _, r, _, _ in sorted(triples, key=lambda t: t[0])]
        return ParallelTrackReport(
            results, schedule, 1, wall, [sum(dt for _, _, dt, _ in triples)]
        )

    if mode in ("process", "hybrid"):
        pool_cls = ProcessPoolExecutor
        pool_kwargs = dict(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(homotopy, options),
        )
    else:  # thread
        pool_cls = ThreadPoolExecutor
        _init_worker(homotopy, options)  # threads share module state
        pool_kwargs = dict(max_workers=n_workers)

    per_worker: Dict[WorkerKey, float] = {}
    if mode == "hybrid":
        # processes x batch: each block advances as one SoA front
        if schedule == "static":
            blocks = [jobs[w::n_workers] for w in range(n_workers)]
        else:
            n_blocks = min(len(jobs), 4 * n_workers)
            blocks = [jobs[b::n_blocks] for b in range(n_blocks)]
        blocks = [b for b in blocks if b]
        pairs: List[tuple[int, PathResult]] = []
        with pool_cls(**pool_kwargs) as pool:
            for block_out, busy, key in pool.map(
                _track_batch_block, blocks, chunksize=1
            ):
                pairs.extend(block_out)
                per_worker[key] = per_worker.get(key, 0.0) + busy
        wall = time.perf_counter() - t_wall
        results = [r for _, r in sorted(pairs, key=lambda pr: pr[0])]
        return ParallelTrackReport(
            results, schedule, n_workers, wall, _busy_list(per_worker, n_workers)
        )

    triples: List[tuple[int, PathResult, float, WorkerKey]] = []
    with pool_cls(**pool_kwargs) as pool:
        if schedule == "static":
            # one pre-assigned round-robin chunk per worker, as in the paper
            chunks = [jobs[w::n_workers] for w in range(n_workers)]
            futures = [pool.submit(_track_chunk, chunk) for chunk in chunks]
            for fut in futures:
                chunk_out = fut.result()
                triples.extend(chunk_out)
                for _, _, dt, key in chunk_out:
                    per_worker[key] = per_worker.get(key, 0.0) + dt
        else:
            # dynamic: the executor's shared queue is exactly FCFS; each
            # worker self-reports its identity alongside the job timing
            for path_id, result, dt, key in pool.map(
                _track_one, jobs, chunksize=1
            ):
                triples.append((path_id, result, dt, key))
                per_worker[key] = per_worker.get(key, 0.0) + dt
    wall = time.perf_counter() - t_wall
    results = [r for _, r, _, _ in sorted(triples, key=lambda t: t[0])]
    return ParallelTrackReport(
        results, schedule, n_workers, wall, _busy_list(per_worker, n_workers)
    )
