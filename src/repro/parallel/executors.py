"""Real parallel path tracking: static and dynamic load balancing (paper §II).

The paper's two schemes, implemented on local workers instead of MPI ranks
(see DESIGN.md substitutions):

- **static** — the path list is split round-robin into one chunk per worker
  before any tracking starts; each worker runs its whole chunk.  Minimal
  coordination, but worker finish times inherit the full variance of the
  per-path costs.
- **dynamic** — a master hands out one path at a time; a worker that
  finishes requests the next (first-come-first-served).  More coordination,
  near-perfect balance.

Workers are processes by default (real parallelism for this CPU-bound
workload); ``mode="thread"`` runs the same code on threads, useful for
correctness tests and when the homotopy is cheap relative to process
startup.  ``mode="serial"`` is the 1-CPU baseline sharing the same code
path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Literal, Sequence

import numpy as np

from ..tracker import HomotopyFunction, PathResult, PathTracker, TrackerOptions

__all__ = ["ParallelTrackReport", "track_paths_parallel"]

# Module-level worker state: set once per worker process by the initializer
# so the homotopy is pickled once, not per path.
_WORKER_HOMOTOPY: HomotopyFunction | None = None
_WORKER_TRACKER: PathTracker | None = None


def _init_worker(homotopy: HomotopyFunction, options: TrackerOptions) -> None:
    global _WORKER_HOMOTOPY, _WORKER_TRACKER
    _WORKER_HOMOTOPY = homotopy
    _WORKER_TRACKER = PathTracker(options)


def _track_one(args) -> tuple[int, PathResult, float]:
    path_id, start = args
    t0 = time.perf_counter()
    result = _WORKER_TRACKER.track(_WORKER_HOMOTOPY, start, path_id=path_id)
    return path_id, result, time.perf_counter() - t0


def _track_chunk(args) -> List[tuple[int, PathResult, float]]:
    return [_track_one(item) for item in args]


@dataclass
class ParallelTrackReport:
    """Results plus the load-balance evidence the paper's tables report."""

    results: List[PathResult]
    schedule: str
    n_workers: int
    wall_seconds: float
    worker_busy_seconds: List[float] = field(default_factory=list)

    @property
    def total_cpu_seconds(self) -> float:
        return float(sum(self.worker_busy_seconds))

    @property
    def load_imbalance(self) -> float:
        """max busy / mean busy; 1.0 is perfect balance."""
        busy = np.asarray(self.worker_busy_seconds)
        if busy.size == 0 or busy.mean() == 0:
            return 1.0
        return float(busy.max() / busy.mean())


def track_paths_parallel(
    homotopy: HomotopyFunction,
    starts: Sequence[Sequence[complex]],
    n_workers: int | None = None,
    schedule: Literal["static", "dynamic"] = "dynamic",
    mode: Literal["process", "thread", "serial"] = "process",
    options: TrackerOptions | None = None,
) -> ParallelTrackReport:
    """Track all paths of ``homotopy`` from ``starts`` on local workers."""
    options = options or TrackerOptions()
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if schedule not in ("static", "dynamic"):
        raise ValueError(f"unknown schedule {schedule!r}")
    jobs = [(i, np.asarray(s, dtype=complex)) for i, s in enumerate(starts)]

    t_wall = time.perf_counter()
    if mode == "serial" or n_workers == 1:
        _init_worker(homotopy, options)
        triples = [_track_one(job) for job in jobs]
        wall = time.perf_counter() - t_wall
        results = [r for _, r, _ in sorted(triples, key=lambda t: t[0])]
        return ParallelTrackReport(
            results, schedule, 1, wall, [sum(dt for _, _, dt in triples)]
        )

    if mode == "process":
        pool_cls = ProcessPoolExecutor
        pool_kwargs = dict(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(homotopy, options),
        )
    elif mode == "thread":
        pool_cls = ThreadPoolExecutor
        _init_worker(homotopy, options)  # threads share module state
        pool_kwargs = dict(max_workers=n_workers)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    triples: List[tuple[int, PathResult, float]] = []
    busy = [0.0] * n_workers
    with pool_cls(**pool_kwargs) as pool:
        if schedule == "static":
            # one pre-assigned round-robin chunk per worker, as in the paper
            chunks = [jobs[w::n_workers] for w in range(n_workers)]
            futures = [pool.submit(_track_chunk, chunk) for chunk in chunks]
            for w, fut in enumerate(futures):
                chunk_out = fut.result()
                triples.extend(chunk_out)
                busy[w] += sum(dt for _, _, dt in chunk_out)
        else:
            # dynamic: the executor's shared queue is exactly FCFS
            rotating = 0
            for path_id, result, dt in pool.map(
                _track_one, jobs, chunksize=1
            ):
                triples.append((path_id, result, dt))
                # executor does not expose which worker ran a job; charge
                # round-robin over *completion order*, a faithful proxy for
                # FCFS assignment when jobs outnumber workers
                busy[rotating % n_workers] += dt
                rotating += 1
    wall = time.perf_counter() - t_wall
    results = [r for _, r, _ in sorted(triples, key=lambda t: t[0])]
    return ParallelTrackReport(results, schedule, n_workers, wall, busy)
