"""Real master/slave parallel execution on local workers (MPI stand-in)."""

from .executors import ParallelTrackReport, track_paths_parallel
from .pieri_scheduler import ParallelPieriReport, solve_pieri_parallel

__all__ = [
    "ParallelTrackReport",
    "track_paths_parallel",
    "ParallelPieriReport",
    "solve_pieri_parallel",
]
