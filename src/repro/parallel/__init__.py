"""Real master/slave parallel execution on local workers (MPI stand-in).

The :mod:`~repro.parallel.fleet` subpackage extends the same FCFS
master-loop abstraction across hosts: an asyncio TCP master speaking
newline-delimited JSON leases to remote worker agents, with the fsync'd
sweep journal as the single source of durability.
"""

from .dispatcher import DispatchTelemetry, dispatch_jobs, dispatch_with_pool
from .executors import ParallelTrackReport, track_paths_parallel
from .fleet import (
    FleetMaster,
    FleetMasterReport,
    FleetStats,
    FleetWorkerStats,
    run_fleet_master,
    run_fleet_worker,
    run_sweep_worker,
    serve_fleet,
)
from .pieri_scheduler import ParallelPieriReport, solve_pieri_parallel

__all__ = [
    "DispatchTelemetry",
    "dispatch_jobs",
    "dispatch_with_pool",
    "ParallelTrackReport",
    "track_paths_parallel",
    "ParallelPieriReport",
    "solve_pieri_parallel",
    "FleetMaster",
    "FleetMasterReport",
    "FleetStats",
    "FleetWorkerStats",
    "run_fleet_master",
    "run_fleet_worker",
    "run_sweep_worker",
    "serve_fleet",
]
