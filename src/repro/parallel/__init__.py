"""Real master/slave parallel execution on local workers (MPI stand-in)."""

from .dispatcher import DispatchTelemetry, dispatch_jobs, dispatch_with_pool
from .executors import ParallelTrackReport, track_paths_parallel
from .pieri_scheduler import ParallelPieriReport, solve_pieri_parallel

__all__ = [
    "DispatchTelemetry",
    "dispatch_jobs",
    "dispatch_with_pool",
    "ParallelTrackReport",
    "track_paths_parallel",
    "ParallelPieriReport",
    "solve_pieri_parallel",
]
