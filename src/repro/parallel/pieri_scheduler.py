"""Parallel Pieri homotopy: the master/slave tree scheduler (paper §III-D, Fig 6).

The master owns a queue of *ready* jobs (tree edges whose start solution is
known).  At startup it enqueues the at-most-p jobs out of the tree root;
whenever a worker returns a result, the master generates the (at most p)
jobs the result enables and hands the next queued job to the first idle
worker — first-come-first-served, exactly the paper's protocol, including
its termination rule: workers that returned a leaf and found the queue
empty are parked on an idle list and *re-activated* when new jobs appear;
the run ends when every job is done and all workers are parked.

Workers execute :meth:`repro.schubert.solver.PieriSolver.run_job`, the same
routine the sequential DFS uses, with the same per-poset-node homotopies —
so the parallel solve returns exactly the same solution set (tested).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np

from ..schubert.solver import (
    PieriInstance,
    PieriJob,
    PieriReport,
    PieriSolver,
)
from ..tracker import TrackerOptions
from .dispatcher import dispatch_with_pool

__all__ = ["ParallelPieriReport", "solve_pieri_parallel"]

_WORKER_SOLVER: PieriSolver | None = None


def _init_pieri_worker(
    instance: PieriInstance, options: Optional[TrackerOptions], seed: int
) -> None:
    global _WORKER_SOLVER
    _WORKER_SOLVER = PieriSolver(instance, options=options, seed=seed)


def _run_pieri_job(args):
    node_columns, start_matrix = args
    from ..schubert.tree import PieriTreeNode

    node = PieriTreeNode(_WORKER_SOLVER.problem, tuple(node_columns))
    t0 = time.perf_counter()
    result = _WORKER_SOLVER.run_job(PieriJob(node, start_matrix))
    dt = time.perf_counter() - t0
    return node_columns, result.matrix, result.path_result.status.value, dt


@dataclass
class ParallelPieriReport(PieriReport):
    """Sequential report fields plus scheduler telemetry."""

    n_workers: int = 1
    wall_seconds: float = 0.0
    max_queue_length: int = 0
    max_active_jobs: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0

    @property
    def speedup_vs_cpu_time(self) -> float:
        """Total busy time / wall time: achieved parallelism."""
        busy = sum(self.seconds_per_level.values())
        return busy / self.wall_seconds if self.wall_seconds > 0 else 1.0


def solve_pieri_parallel(
    instance: PieriInstance,
    n_workers: int | None = None,
    mode: Literal["process", "thread"] = "process",
    options: TrackerOptions | None = None,
    seed: int = 0,
    max_job_retries: int = 2,
) -> ParallelPieriReport:
    """Solve a Pieri problem with the master/slave tree scheduler.

    Fault tolerance: a job whose worker *crashes* (raises, as opposed to
    returning a failed path) is re-enqueued up to ``max_job_retries``
    times; the job's whole subtree would otherwise be silently lost.
    Crashes are counted in ``worker_crashes``.
    """
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown mode {mode!r}")
    # the local solver mirrors the workers: used for job expansion only
    master = PieriSolver(instance, options=options, seed=seed)

    def make_pool():
        if mode == "process":
            return ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_pieri_worker,
                initargs=(instance, options, seed),
            )
        _init_pieri_worker(instance, options, seed)
        return ThreadPoolExecutor(max_workers=n_workers)

    report = ParallelPieriReport(instance, n_workers=n_workers)
    t_wall = time.perf_counter()

    def submit_job(pool, job: PieriJob):
        # _run_pieri_job is looked up as a module global at call time so
        # fault-injection tests can monkeypatch it
        return pool.submit(
            _run_pieri_job, (list(job.node.columns), job.start_matrix)
        )

    def on_result(job: PieriJob, result) -> List[PieriJob]:
        _cols, matrix, _status, dt = result
        lvl = job.level
        report.jobs_per_level[lvl] = report.jobs_per_level.get(lvl, 0) + 1
        report.seconds_per_level[lvl] = (
            report.seconds_per_level.get(lvl, 0.0) + dt
        )
        if matrix is None:
            report.failures += 1
            return []
        if job.node.is_leaf():
            report.solutions.append(matrix)
            return []
        return [PieriJob(child, matrix) for child in job.node.children()]

    def on_abandoned(job: PieriJob) -> None:
        # retry budget spent: record the lost subtree as a failure
        report.failures += 1

    telemetry = dispatch_with_pool(
        make_pool,
        submit_job,
        master.initial_jobs(),
        on_result,
        n_workers=n_workers,
        max_retries=max_job_retries,
        retry_key=lambda job: job.node.columns,
        on_abandoned=on_abandoned,
        rebuildable=(mode == "process"),
    )
    report.max_queue_length = telemetry.max_queue_length
    report.max_active_jobs = telemetry.max_active_jobs
    report.worker_crashes = telemetry.worker_crashes
    report.pool_rebuilds = telemetry.pool_rebuilds
    report.wall_seconds = time.perf_counter() - t_wall
    report.total_seconds = report.wall_seconds
    return report
