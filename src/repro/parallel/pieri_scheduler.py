"""Parallel Pieri homotopy: the master/slave tree scheduler (paper §III-D, Fig 6).

The master owns a queue of *ready* jobs (tree edges whose start solution is
known).  At startup it enqueues the at-most-p jobs out of the tree root;
whenever a worker returns a result, the master generates the (at most p)
jobs the result enables and hands the next queued job to the first idle
worker — first-come-first-served, exactly the paper's protocol, including
its termination rule: workers that returned a leaf and found the queue
empty are parked on an idle list and *re-activated* when new jobs appear;
the run ends when every job is done and all workers are parked.

Two job granularities share the loop:

- ``granularity="edge"`` (the paper's): workers execute
  :meth:`repro.schubert.solver.PieriSolver.run_job`, the same routine the
  sequential DFS uses, with the same per-poset-node homotopies — so the
  parallel solve returns exactly the same solution set (tested).
- ``granularity="level"``: the master runs the tree level-synchronously
  and dispatches *level batches* — each worker gets a chunk of one
  level's edges and tracks them as a single stacked SoA front via
  :meth:`~repro.schubert.solver.PieriSolver.run_jobs_batched`.  The two
  parallel axes compose: processes across chunks, SIMD-style batching
  within each chunk.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np

from ..schubert.solver import (
    PieriInstance,
    PieriJob,
    PieriReport,
    PieriSolver,
)
from ..tracker import TrackerOptions
from .dispatcher import DispatchTelemetry, dispatch_jobs, dispatch_with_pool

__all__ = ["ParallelPieriReport", "solve_pieri_parallel"]

_WORKER_SOLVER: PieriSolver | None = None


def _init_pieri_worker(
    instance: PieriInstance, options: Optional[TrackerOptions], seed: int
) -> None:
    global _WORKER_SOLVER
    _WORKER_SOLVER = PieriSolver(instance, options=options, seed=seed)


def _run_pieri_job(args):
    node_columns, start_matrix = args
    from ..schubert.tree import PieriTreeNode

    node = PieriTreeNode(_WORKER_SOLVER.problem, tuple(node_columns))
    t0 = time.perf_counter()
    result = _WORKER_SOLVER.run_job(PieriJob(node, start_matrix))
    dt = time.perf_counter() - t0
    return node_columns, result.matrix, result.path_result.status.value, dt


def _run_pieri_level_chunk(args):
    """Worker entry point for one level chunk: a stacked batch of edges."""
    from ..schubert.tree import PieriTreeNode

    t0 = time.perf_counter()
    jobs = [
        PieriJob(
            PieriTreeNode(_WORKER_SOLVER.problem, tuple(cols)), start_matrix
        )
        for cols, start_matrix in args
    ]
    results, stats = _WORKER_SOLVER.run_jobs_batched(jobs)
    dt = time.perf_counter() - t0
    return (
        [
            (list(r.job.node.columns), r.matrix, r.path_result.status.value)
            for r in results
        ],
        stats,
        dt,
    )


@dataclass
class ParallelPieriReport(PieriReport):
    """Sequential report fields plus scheduler telemetry."""

    n_workers: int = 1
    wall_seconds: float = 0.0
    max_queue_length: int = 0
    max_active_jobs: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0

    @property
    def speedup_vs_cpu_time(self) -> float:
        """Total busy time / wall time: achieved parallelism."""
        busy = sum(self.seconds_per_level.values())
        return busy / self.wall_seconds if self.wall_seconds > 0 else 1.0


def solve_pieri_parallel(
    instance: PieriInstance,
    n_workers: int | None = None,
    mode: Literal["process", "thread"] = "process",
    options: TrackerOptions | None = None,
    seed: int = 0,
    max_job_retries: int = 2,
    granularity: Literal["edge", "level"] = "edge",
) -> ParallelPieriReport:
    """Solve a Pieri problem with the master/slave tree scheduler.

    ``granularity`` picks the unit of work handed to a worker: a single
    tree ``edge`` (one tracked path, the paper's protocol) or a
    ``level`` chunk — a contiguous share of one tree level, tracked by
    the worker as a single stacked SoA batch.  Level granularity
    composes the two parallel axes (processes x batch) at the price of
    a synchronization barrier between levels.

    Fault tolerance: a job whose worker *crashes* (raises, as opposed to
    returning a failed path) is re-enqueued up to ``max_job_retries``
    times; the job's whole subtree would otherwise be silently lost.
    Crashes are counted in ``worker_crashes``.
    """
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown mode {mode!r}")
    if granularity not in ("edge", "level"):
        raise ValueError(f"unknown granularity {granularity!r}")
    if granularity == "level":
        return _solve_level_batched(
            instance, n_workers, mode, options, seed, max_job_retries
        )
    # the local solver mirrors the workers: used for job expansion only
    master = PieriSolver(instance, options=options, seed=seed)

    def make_pool():
        if mode == "process":
            return ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_pieri_worker,
                initargs=(instance, options, seed),
            )
        _init_pieri_worker(instance, options, seed)
        return ThreadPoolExecutor(max_workers=n_workers)

    report = ParallelPieriReport(instance, n_workers=n_workers)
    t_wall = time.perf_counter()

    def submit_job(pool, job: PieriJob):
        # _run_pieri_job is looked up as a module global at call time so
        # fault-injection tests can monkeypatch it
        return pool.submit(
            _run_pieri_job, (list(job.node.columns), job.start_matrix)
        )

    def on_result(job: PieriJob, result) -> List[PieriJob]:
        _cols, matrix, _status, dt = result
        lvl = job.level
        report.jobs_per_level[lvl] = report.jobs_per_level.get(lvl, 0) + 1
        report.seconds_per_level[lvl] = (
            report.seconds_per_level.get(lvl, 0.0) + dt
        )
        if matrix is None:
            report.failures += 1
            return []
        if job.node.is_leaf():
            report.solutions.append(matrix)
            return []
        return [PieriJob(child, matrix) for child in job.node.children()]

    def on_abandoned(job: PieriJob) -> None:
        # retry budget spent: record the lost subtree as a failure
        report.failures += 1

    telemetry = dispatch_with_pool(
        make_pool,
        submit_job,
        master.initial_jobs(),
        on_result,
        n_workers=n_workers,
        max_retries=max_job_retries,
        retry_key=lambda job: job.node.columns,
        on_abandoned=on_abandoned,
        rebuildable=(mode == "process"),
    )
    report.max_queue_length = telemetry.max_queue_length
    report.max_active_jobs = telemetry.max_active_jobs
    report.worker_crashes = telemetry.worker_crashes
    report.pool_rebuilds = telemetry.pool_rebuilds
    report.wall_seconds = time.perf_counter() - t_wall
    report.total_seconds = report.wall_seconds
    return report


def _chunk_jobs(jobs: List[PieriJob], n_chunks: int) -> List[List[PieriJob]]:
    """Split one level's jobs into up to ``n_chunks`` contiguous chunks."""
    n_chunks = max(1, min(n_chunks, len(jobs)))
    bounds = np.linspace(0, len(jobs), n_chunks + 1).astype(int)
    return [
        jobs[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if a < b
    ]


def _solve_level_batched(
    instance: PieriInstance,
    n_workers: int,
    mode: str,
    options: Optional[TrackerOptions],
    seed: int,
    max_job_retries: int,
) -> ParallelPieriReport:
    """Level-synchronous master: dispatch stacked level chunks to workers.

    Each tree level is split into at most ``n_workers`` contiguous
    chunks; a worker tracks its chunk as one stacked batch
    (:meth:`~repro.schubert.solver.PieriSolver.run_jobs_batched`).  The
    master expands the next level only when the current one has fully
    returned, so the dispatcher runs once per level over a pool that
    persists across levels.  A chunk abandoned after its crash-retry
    budget forfeits its jobs (counted as failures), exactly as an
    abandoned edge forfeits its subtree in edge granularity.
    """
    master = PieriSolver(instance, options=options, seed=seed)
    report = ParallelPieriReport(instance, n_workers=n_workers)
    t_wall = time.perf_counter()

    def make_pool():
        if mode == "process":
            return ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_pieri_worker,
                initargs=(instance, options, seed),
            )
        _init_pieri_worker(instance, options, seed)
        return ThreadPoolExecutor(max_workers=n_workers)

    state = {"pool": make_pool(), "next_jobs": [], "level_stats": None}

    def submit(chunk: List[PieriJob]):
        # module-global lookup keeps the fault-injection monkeypatch hook
        return state["pool"].submit(
            _run_pieri_level_chunk,
            [(list(j.node.columns), j.start_matrix) for j in chunk],
        )

    def rebuild_pool():
        state["pool"].shutdown(wait=False, cancel_futures=True)
        state["pool"] = make_pool()
        return submit

    def on_result(chunk: List[PieriJob], result) -> List[List[PieriJob]]:
        triples, stats, dt = result
        lvl = chunk[0].level
        report.jobs_per_level[lvl] = (
            report.jobs_per_level.get(lvl, 0) + len(chunk)
        )
        report.seconds_per_level[lvl] = (
            report.seconds_per_level.get(lvl, 0.0) + dt
        )
        ls = state["level_stats"]
        ls["seconds"] += dt
        ls["n_chunks"] += 1
        for key in ("n_jobs", "n_homotopies", "chart_switches", "retries"):
            ls[key] += stats[key]
        for job, (_cols, matrix, _status) in zip(chunk, triples):
            if matrix is None:
                report.failures += 1
            elif job.node.is_leaf():
                report.solutions.append(matrix)
            else:
                state["next_jobs"].extend(
                    PieriJob(child, matrix) for child in job.node.children()
                )
        return []

    def on_abandoned(chunk: List[PieriJob]) -> None:
        # retry budget spent: every job in the chunk (and its subtree)
        # is lost; record them as failures so counts stay honest
        report.failures += len(chunk)

    telemetry = DispatchTelemetry()
    try:
        frontier = master.initial_jobs()
        while frontier:
            lvl = frontier[0].level
            state["next_jobs"] = []
            state["level_stats"] = {
                "level": lvl,
                "seconds": 0.0,
                "n_chunks": 0,
                "n_jobs": 0,
                "n_homotopies": 0,
                "chart_switches": 0,
                "retries": 0,
            }
            dispatch_jobs(
                _chunk_jobs(frontier, n_workers),
                submit,
                on_result,
                n_workers=n_workers,
                max_retries=max_job_retries,
                retry_key=lambda chunk: tuple(
                    j.node.columns for j in chunk
                ),
                on_abandoned=on_abandoned,
                rebuild_pool=rebuild_pool if mode == "process" else None,
                telemetry=telemetry,
            )
            report.level_batches.append(state["level_stats"])
            frontier = state["next_jobs"]
    finally:
        state["pool"].shutdown(wait=False, cancel_futures=True)
    report.max_queue_length = telemetry.max_queue_length
    report.max_active_jobs = telemetry.max_active_jobs
    report.worker_crashes = telemetry.worker_crashes
    report.pool_rebuilds = telemetry.pool_rebuilds
    report.wall_seconds = time.perf_counter() - t_wall
    report.total_seconds = report.wall_seconds
    return report
