"""The fleet master's lease/ack/requeue state machine — transport-free.

This module is the coordination protocol of the multi-host sweep fleet,
specified as a pure state machine so that :mod:`repro.simcluster.fleet_sim`
can exercise every failure interleaving (master kills at exact times,
worker deaths, partitions, duplicate delivery) *before* any socket code
binds it (:mod:`repro.parallel.fleet.master` is that binding).  Handlers
take an explicit ``now`` and return the outbound messages as
``(worker_id, message)`` pairs; the state machine never sleeps, never
reads a clock, and never touches a socket.

Job lifecycle — the invariant the property tests pin down is that every
job is in exactly one of these states at all times::

    PENDING --lease--> LEASED(worker) --result--> COMMITTED
       ^                   |    |
       |<--timeout/death---+    +--steal--> LEASED(thief)

- ``COMMITTED`` is terminal and entered **exactly once**: the ``commit``
  callback (the fsync'd journal append in the sweep binding) is guarded
  by the committed set, so duplicate delivery, a stale worker racing a
  steal, or a re-registration can never double-commit a result.
- A worker death (disconnect, heartbeat timeout, ``goodbye``) moves its
  leased jobs back to ``PENDING`` — nothing is ever dropped.
- Work stealing moves the *tail* of the most loaded worker's lease to an
  idle worker (the victim runs its lease FIFO, so the head is the job
  most likely already running); if the victim finishes a stolen job
  anyway, first-commit-wins and the loser is revoked.

Durability is *not* this module's job: the journal owns it.  A master
restarted from the journal is constructed with only the un-journaled
jobs, and results arriving for jobs it does not know (committed in a
previous life) are dropped as duplicates.

Heterogeneous workers: every result carries self-reported busy seconds
(the plumbing PR 1 added to the executors); the master fits an EWMA
seconds-per-cost rate per worker and sizes each lease to approximately
``lease_target_seconds`` of that worker's time — fast hosts get long
leases, slow hosts short ones, and the first lease is a 1-job probe.

>>> committed = {}
>>> master = FleetMaster(
...     [{"job_id": "a"}, {"job_id": "b"}],
...     commit=lambda job_id, record: committed.setdefault(job_id, record),
... )
>>> out = master.on_hello("w0", now=0.0)
>>> [m["type"] for _, m in out]
['welcome', 'lease']
>>> lease = out[1][1]["jobs"]; [j["job_id"] for j in lease]
['a']
>>> _ = master.on_result("w0", "a", {"job_id": "a"}, seconds=0.5, now=1.0)
>>> _ = master.on_result("w0", "b", {"job_id": "b"}, seconds=0.5, now=2.0)
>>> master.done, sorted(committed)
(True, ['a', 'b'])
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FleetMaster", "FleetStats", "WorkerView"]

Outbound = List[Tuple[str, dict]]


@dataclass
class WorkerView:
    """The master's view of one registered worker."""

    worker_id: str
    slots: int = 1
    last_seen: float = 0.0
    #: job_id -> grant time, in FIFO grant order (dicts preserve it);
    #: the grant time gates heartbeat reconciliation (see ``lease_grace``)
    leased: Dict[str, float] = field(default_factory=dict)
    #: EWMA of self-reported seconds per unit job cost; None until the
    #: first result (the probe lease)
    rate: Optional[float] = None
    jobs_done: int = 0
    busy_seconds: float = 0.0


@dataclass
class FleetStats:
    """Protocol-level accounting, mirrored into sweep reports."""

    commits: int = 0
    duplicates: int = 0          # results dropped by first-commit-wins
    requeues: int = 0            # leased jobs returned to pending
    steals: int = 0              # jobs moved between live workers
    timeouts: int = 0            # workers expired by heartbeat silence
    registrations: int = 0
    max_lease: int = 0           # largest single lease granted


class FleetMaster:
    """FCFS master over remote workers; same job-queue contract as
    :func:`repro.parallel.dispatcher.dispatch_jobs`, but with explicit
    registration, leases, heartbeats, and stealing instead of futures.

    Parameters
    ----------
    jobs:
        The *un-journaled* jobs only, each a dict with a unique
        ``"job_id"`` (any other keys ride along to the worker).
    commit:
        ``commit(job_id, record)`` — called exactly once per job, in
        completion order; the sweep binding appends to the fsync'd
        journal here, making it the single source of durability.
    heartbeat_timeout:
        Silence longer than this expires a worker and requeues its lease.
    lease_target_seconds:
        Lease sizing target: enough jobs to keep a worker busy about
        this long between round trips.
    max_lease:
        Hard cap on jobs per lease (bounds what one death can delay).
    lease_grace:
        Heartbeat reconciliation ignores leases younger than this, so a
        lease still in flight is not mistaken for a lost one.
    cost_of:
        ``cost_of(job) -> float`` relative cost estimate (default 1.0
        per job) — the other half of the lease-sizing model.
    """

    def __init__(
        self,
        jobs: Iterable[dict],
        commit: Callable[[str, dict], None],
        *,
        heartbeat_timeout: float = 10.0,
        lease_target_seconds: float = 2.0,
        max_lease: int = 8,
        lease_grace: Optional[float] = None,
        cost_of: Optional[Callable[[dict], float]] = None,
    ):
        self._jobs: Dict[str, dict] = {}
        self._pending: deque = deque()
        for job in jobs:
            job_id = job.get("job_id")
            if not job_id or job_id in self._jobs:
                raise ValueError(f"jobs need unique job_id fields: {job_id!r}")
            self._jobs[job_id] = job
            self._pending.append(job_id)
        self._commit = commit
        self._committed: set = set()
        self._workers: Dict[str, WorkerView] = {}
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.lease_target_seconds = float(lease_target_seconds)
        self.max_lease = int(max_lease)
        self.lease_grace = (
            self.heartbeat_timeout / 4 if lease_grace is None else float(lease_grace)
        )
        self._cost_of = cost_of or (lambda job: 1.0)
        self.stats = FleetStats()
        self._drained: set = set()  # workers already told to drain
        #: every worker id that ever registered (re-registration keeps it)
        self.workers_seen: set = set()
        #: busy seconds per worker id, surviving re-registration
        self.busy_by_worker: Dict[str, float] = {}

    # -- introspection -------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    @property
    def n_committed(self) -> int:
        return len(self._committed)

    @property
    def done(self) -> bool:
        return len(self._committed) == len(self._jobs)

    @property
    def workers(self) -> Dict[str, WorkerView]:
        return self._workers

    def pending_ids(self) -> List[str]:
        return list(self._pending)

    def status_snapshot(self, now: float) -> dict:
        """Live gauges for a ``status`` frame: backlog depth, per-worker
        leases held / fitted rate / busy seconds / heartbeat age, and
        the protocol stats — everything the fleet ``--status`` CLI
        renders.  Read-only: answering a status query never mutates the
        state machine."""
        return {
            "n_jobs": self.n_jobs,
            "n_committed": self.n_committed,
            "backlog": len(self._pending),
            "stats": {
                "commits": self.stats.commits,
                "duplicates": self.stats.duplicates,
                "requeues": self.stats.requeues,
                "steals": self.stats.steals,
                "timeouts": self.stats.timeouts,
                "registrations": self.stats.registrations,
                "max_lease": self.stats.max_lease,
            },
            "workers": {
                view.worker_id: {
                    "leased": len(view.leased),
                    "jobs_done": view.jobs_done,
                    "busy_seconds": round(view.busy_seconds, 6),
                    "seconds_per_cost": (
                        None if view.rate is None else round(view.rate, 6)
                    ),
                    "silent_seconds": round(max(0.0, now - view.last_seen), 3),
                }
                for view in sorted(
                    self._workers.values(), key=lambda v: v.worker_id
                )
            },
        }

    def check_invariant(self) -> None:
        """Every job is pending, leased to exactly one worker, or
        committed — and in exactly one of the three (test hook)."""
        seen: Dict[str, str] = {}
        for job_id in self._pending:
            seen[job_id] = "pending"
        for view in self._workers.values():
            for job_id in view.leased:
                if job_id in seen:
                    raise AssertionError(
                        f"{job_id} is {seen[job_id]} AND leased to "
                        f"{view.worker_id}"
                    )
                seen[job_id] = f"leased:{view.worker_id}"
        for job_id in self._committed:
            if job_id in seen:
                raise AssertionError(f"{job_id} is {seen[job_id]} AND committed")
            seen[job_id] = "committed"
        missing = set(self._jobs) - set(seen)
        if missing:
            raise AssertionError(f"jobs lost: {sorted(missing)}")

    # -- event handlers ------------------------------------------------
    def handle(self, message: dict, now: float) -> Outbound:
        """Transport-binding entry point: dispatch one decoded frame."""
        kind = message.get("type")
        worker = message.get("worker")
        if kind == "hello":
            return self.on_hello(
                worker,
                now=now,
                slots=int(message.get("slots", 1)),
                held=message.get("held", ()),
            )
        if kind == "heartbeat":
            return self.on_heartbeat(worker, now=now, held=message.get("held"))
        if kind == "result":
            return self.on_result(
                worker,
                message.get("job_id"),
                message.get("record") or {},
                seconds=message.get("seconds"),
                now=now,
            )
        if kind == "goodbye":
            return self.on_disconnect(worker, now=now)
        return []

    def on_hello(
        self,
        worker: str,
        now: float,
        slots: int = 1,
        held: Sequence[str] = (),
    ) -> Outbound:
        """Register (or re-register) a worker.

        ``held`` lists jobs the worker still has from a previous life —
        a reconnect across a master restart, say.  Held jobs this master
        knows as pending are *adopted* (leased back to the worker, no
        re-run); held jobs that are committed or unknown are revoked.
        """
        if not worker:
            return []
        out: Outbound = []
        if worker in self._workers:
            # stale registration: whatever we thought it held is gone
            self._requeue_worker(worker)
        view = WorkerView(worker_id=worker, slots=max(1, slots), last_seen=now)
        self._workers[worker] = view
        self._drained.discard(worker)
        self.stats.registrations += 1
        self.workers_seen.add(worker)
        adopted, revoke = self._reconcile_held(view, held, now)
        out.append(
            (
                worker,
                {
                    "type": "welcome",
                    "worker": worker,
                    "n_jobs": self.n_jobs,
                    "n_done": self.n_committed,
                    "adopted": adopted,
                },
            )
        )
        if revoke:
            out.append((worker, {"type": "revoke", "job_ids": revoke}))
        out += self._grant_all(now)
        out += self._drain_if_done()
        return out

    def on_heartbeat(
        self, worker: str, now: float, held: Optional[Sequence[str]] = None
    ) -> Outbound:
        """Liveness plus lease reconciliation against the ``held`` list."""
        view = self._workers.get(worker)
        if view is None:
            # a heartbeat from a worker we expired (or never met): make it
            # re-register so both sides agree on its lease from scratch
            return [(worker, {"type": "welcome", "worker": worker,
                              "n_jobs": self.n_jobs, "n_done": self.n_committed,
                              "adopted": [], "reregister": True})]
        view.last_seen = now
        out: Outbound = []
        if held is not None:
            held_set = set(held)
            # leased here but not held there: the lease frame was lost
            # (partition, worker restart) — requeue, unless the grant is
            # so fresh the frame may simply still be in flight
            for job_id, granted in list(view.leased.items()):
                if job_id not in held_set and now - granted >= self.lease_grace:
                    del view.leased[job_id]
                    self._pending.append(job_id)
                    self.stats.requeues += 1
            # held there but not leased here: adopt pending ones, revoke
            # the rest (committed elsewhere, or a previous master's era)
            _, revoke = self._reconcile_held(view, held_set, now)
            if revoke:
                out.append((worker, {"type": "revoke", "job_ids": revoke}))
        out += self._grant_all(now)
        out += self._drain_if_done()
        return out

    def on_result(
        self,
        worker: str,
        job_id: Optional[str],
        record: dict,
        seconds: Optional[float],
        now: float,
    ) -> Outbound:
        """Commit one result — exactly once, whoever delivers it first."""
        view = self._workers.get(worker)
        if view is not None:
            view.last_seen = now
        if not job_id:
            return []
        out: Outbound = []
        if job_id in self._committed or job_id not in self._jobs:
            # duplicate delivery, a stolen job's loser, or a result for a
            # job journaled before this master started: drop, and make
            # sure the sender does not keep it queued
            self.stats.duplicates += 1
            if view is not None and job_id in view.leased:
                del view.leased[job_id]
        else:
            self._committed.add(job_id)
            self.stats.commits += 1
            self._commit(job_id, record)
            holder = self._find_holder(job_id)
            if holder is not None:
                del self._workers[holder].leased[job_id]
                if holder != worker:
                    # a steal raced the victim's completion and the
                    # victim won: tell the thief to drop its copy
                    out.append((holder, {"type": "revoke", "job_ids": [job_id]}))
            else:
                self._remove_pending(job_id)
        if view is not None:
            view.jobs_done += 1
            if seconds is not None:
                view.busy_seconds += float(seconds)
                self.busy_by_worker[worker] = (
                    self.busy_by_worker.get(worker, 0.0) + float(seconds)
                )
                self._update_rate(view, job_id, float(seconds))
        out += self._grant_all(now)
        out += self._drain_if_done()
        return out

    def on_disconnect(self, worker: str, now: float) -> Outbound:
        """Connection lost (or ``goodbye``): requeue the worker's lease."""
        if worker not in self._workers:
            return []
        self._requeue_worker(worker)
        del self._workers[worker]
        self._drained.discard(worker)
        out = self._grant_all(now)
        out += self._drain_if_done()
        return out

    def check_timeouts(self, now: float) -> Outbound:
        """Expire workers silent for longer than ``heartbeat_timeout``."""
        out: Outbound = []
        for worker, view in list(self._workers.items()):
            if now - view.last_seen > self.heartbeat_timeout:
                self.stats.timeouts += 1
                out += self.on_disconnect(worker, now)
        return out

    # -- lease sizing and stealing -------------------------------------
    def _lease_budget(self, view: WorkerView) -> int:
        """How many jobs this worker should hold, from its fitted rate."""
        if view.rate is None:
            return view.slots  # probe lease: one job per slot
        budget = 0
        predicted = 0.0
        # size against the pending head the worker would actually get
        for job_id in self._pending:
            predicted += max(view.rate * self._cost_of(self._jobs[job_id]), 1e-9)
            budget += 1
            if predicted >= self.lease_target_seconds or budget >= self.max_lease:
                break
        return max(view.slots, budget)

    def _grant(self, view: WorkerView, now: float) -> Outbound:
        want = self._lease_budget(view) - len(view.leased)
        jobs = []
        while want > 0 and self._pending:
            job_id = self._pending.popleft()
            view.leased[job_id] = now
            jobs.append(self._jobs[job_id])
            want -= 1
        if not jobs:
            return []
        self.stats.max_lease = max(self.stats.max_lease, len(jobs))
        return [(view.worker_id, {"type": "lease", "jobs": jobs})]

    def _grant_all(self, now: float) -> Outbound:
        """Fill every worker's lease; steal for the ones left idle."""
        out: Outbound = []
        # idle workers first so a drained queue steals before others top up
        for view in sorted(self._workers.values(), key=lambda v: len(v.leased)):
            out += self._grant(view, now)
        if not self._pending:
            for view in self._workers.values():
                if not view.leased:
                    out += self._steal_for(view, now)
        return out

    def _steal_for(self, thief: WorkerView, now: float) -> Outbound:
        """Move the tail of the largest lease backlog to an idle worker.

        The victim runs its lease FIFO, so the head job is the one most
        likely already running and is never taken; of the rest, half
        (rounded up) move.  First-commit-wins arbitration in
        :meth:`on_result` makes the race with the victim harmless.
        """
        victims = [
            v
            for v in self._workers.values()
            if v.worker_id != thief.worker_id and len(v.leased) > 1
        ]
        if not victims:
            return []
        victim = max(victims, key=lambda v: len(v.leased))
        backlog = list(victim.leased)[1:]  # grant order; head stays
        take = backlog[len(backlog) - (len(backlog) + 1) // 2 :]
        if not take:
            return []
        for job_id in take:
            del victim.leased[job_id]
            thief.leased[job_id] = now
        self.stats.steals += len(take)
        self.stats.max_lease = max(self.stats.max_lease, len(take))
        return [
            (victim.worker_id, {"type": "revoke", "job_ids": take}),
            (thief.worker_id, {"type": "lease",
                               "jobs": [self._jobs[j] for j in take]}),
        ]

    # -- internals -----------------------------------------------------
    def _update_rate(self, view: WorkerView, job_id: str, seconds: float) -> None:
        cost = max(self._cost_of(self._jobs.get(job_id, {})), 1e-9)
        observed = max(seconds, 1e-9) / cost
        view.rate = (
            observed if view.rate is None else 0.5 * view.rate + 0.5 * observed
        )

    def _reconcile_held(
        self, view: WorkerView, held: Iterable[str], now: float
    ) -> Tuple[List[str], List[str]]:
        """Adopt held-but-pending jobs; list held-but-unknown for revoke."""
        adopted, revoke = [], []
        for job_id in held:
            if job_id in view.leased:
                continue
            holder = self._find_holder(job_id)
            if job_id in self._jobs and job_id not in self._committed and (
                holder is None
            ):
                self._remove_pending(job_id)
                view.leased[job_id] = now
                adopted.append(job_id)
            elif holder != view.worker_id:
                revoke.append(job_id)
        return adopted, revoke

    def _requeue_worker(self, worker: str) -> None:
        view = self._workers[worker]
        for job_id in view.leased:
            self._pending.append(job_id)
            self.stats.requeues += 1
        view.leased.clear()

    def _find_holder(self, job_id: str) -> Optional[str]:
        for view in self._workers.values():
            if job_id in view.leased:
                return view.worker_id
        return None

    def _remove_pending(self, job_id: str) -> None:
        try:
            self._pending.remove(job_id)
        except ValueError:
            pass

    def _drain_if_done(self) -> Outbound:
        if not self.done:
            return []
        out = [
            (worker, {"type": "drain"})
            for worker in self._workers
            if worker not in self._drained
        ]
        self._drained.update(self._workers)
        return out
