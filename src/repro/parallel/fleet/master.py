"""Asyncio socket binding of the fleet master, plus the sweep glue.

:func:`serve_fleet` runs a :class:`~repro.parallel.fleet.protocol.
FleetMaster` behind an asyncio TCP server speaking newline-delimited
JSON frames (:mod:`~repro.parallel.fleet.messages`).  The binding is
deliberately thin: every protocol decision lives in the transport-free
state machine, which the simulator and property tests already pinned
down; this module only moves frames and the clock.

:func:`run_fleet_master` is the sweep-engine entry point behind
``python -m repro.sweep run SPEC --checkpoint DIR --fleet master``: it
loads the journal, serves only the un-journaled jobs, commits each
arriving result straight into the fsync'd journal, and returns the same
:class:`~repro.sweep.engine.SweepReport` shape the local engine does.
The journal stays the *single* source of durability — ``SIGKILL`` the
master at any instant and a restart (same command) resumes from exactly
the committed records, while workers reconnect and keep their in-flight
jobs via the ``held`` handshake.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from .messages import decode_line, encode_frame
from .protocol import FleetMaster

__all__ = [
    "FleetMasterReport",
    "serve_fleet",
    "run_fleet_master",
    "fetch_fleet_status",
]


def fetch_fleet_status(host: str, port: int, timeout: float = 5.0) -> dict:
    """Query a live master's gauges over one blocking TCP round trip.

    Sends a ``status`` frame and returns the decoded ``status_reply``
    (see :meth:`~repro.parallel.fleet.protocol.FleetMaster.
    status_snapshot`).  Raises ``OSError`` when the master is
    unreachable and ``ValueError`` on a malformed reply.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(encode_frame({"type": "status"}))
        conn.settimeout(timeout)
        buf = b""
        while b"\n" not in buf:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
    reply = decode_line(buf.split(b"\n", 1)[0])
    if reply is None or reply.get("type") != "status_reply":
        raise ValueError(f"not a status reply: {buf[:120]!r}")
    return reply


@dataclass
class FleetMasterReport:
    """What one master invocation observed (wrapped into SweepReport
    by the sweep binding; used directly by benchmarks and tests)."""

    n_jobs: int
    n_committed: int
    wall_seconds: float = 0.0
    workers_seen: List[str] = field(default_factory=list)
    busy_by_worker: Dict[str, float] = field(default_factory=dict)
    commits: int = 0
    duplicates: int = 0
    requeues: int = 0
    steals: int = 0
    timeouts: int = 0
    registrations: int = 0
    max_lease: int = 0

    @property
    def complete(self) -> bool:
        return self.n_committed == self.n_jobs


class _FleetService:
    """Connection plumbing around one FleetMaster instance."""

    def __init__(self, master: FleetMaster):
        self.master = master
        self.writers: Dict[str, asyncio.StreamWriter] = {}
        self.done_event = asyncio.Event()

    async def _send(self, worker: str, message: dict) -> None:
        writer = self.writers.get(worker)
        if writer is None:
            return
        try:
            writer.write(encode_frame(message))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            # the heartbeat timeout (or the reader's EOF) reclaims the
            # worker; losing one frame is a case the protocol already
            # handles via held-list reconciliation
            pass

    async def _route(self, outbound) -> None:
        for worker, message in outbound:
            await self._send(worker, message)
        if self.master.done:
            self.done_event.set()

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker_id: Optional[str] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = decode_line(line)
                if message is None:
                    continue  # torn or garbage frame: resync at next line
                if message.get("type") == "status":
                    # observer query: answer on this connection and keep
                    # it outside the worker lifecycle (no registration,
                    # nothing to requeue when it closes)
                    reply = {"type": "status_reply"}
                    reply.update(
                        self.master.status_snapshot(time.monotonic())
                    )
                    try:
                        writer.write(encode_frame(reply))
                        await writer.drain()
                    except (ConnectionError, RuntimeError, OSError):
                        pass
                    continue
                if message.get("type") == "hello":
                    worker_id = message.get("worker")
                    if worker_id:
                        old = self.writers.get(worker_id)
                        self.writers[worker_id] = writer
                        if old is not None and old is not writer:
                            # a reconnect superseded the old channel
                            old.close()
                await self._route(self.master.handle(message, time.monotonic()))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            if worker_id is not None and self.writers.get(worker_id) is writer:
                del self.writers[worker_id]
                # only the *current* channel's death means the worker is
                # gone; a superseded channel closing must not requeue the
                # re-registered worker's fresh lease
                await self._route(
                    self.master.on_disconnect(worker_id, time.monotonic())
                )
            try:
                writer.close()
            except RuntimeError:
                pass

    async def poll_timeouts(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await self._route(self.master.check_timeouts(time.monotonic()))


async def serve_fleet(
    jobs: Iterable[dict],
    commit: Callable[[str, dict], None],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    heartbeat_timeout: float = 5.0,
    lease_target_seconds: float = 2.0,
    max_lease: int = 8,
    cost_of: Optional[Callable[[dict], float]] = None,
    on_listening: Optional[Callable[[str, int], None]] = None,
    linger_seconds: float = 0.2,
) -> FleetMaster:
    """Serve ``jobs`` to TCP workers until every one is committed.

    Returns the (finished) state machine so callers can read its stats.
    ``on_listening(host, port)`` fires once the socket is bound — with
    ``port=0`` this is how callers learn the chosen port.
    """
    master = FleetMaster(
        jobs,
        commit,
        heartbeat_timeout=heartbeat_timeout,
        lease_target_seconds=lease_target_seconds,
        max_lease=max_lease,
        cost_of=cost_of,
    )
    if master.done:  # nothing pending (a fully journaled resume)
        if on_listening is not None:
            on_listening(host, port)
        return master
    service = _FleetService(master)
    server = await asyncio.start_server(service.handle_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    if on_listening is not None:
        on_listening(host, bound_port)
    poll = min(1.0, max(heartbeat_timeout / 4, 0.05))
    poller = asyncio.create_task(service.poll_timeouts(poll))
    try:
        await service.done_event.wait()
        # give the drain frames a moment to flush before tearing down
        await asyncio.sleep(linger_seconds)
    finally:
        poller.cancel()
        try:
            await poller
        except asyncio.CancelledError:
            pass
        server.close()
        await server.wait_closed()
        for writer in list(service.writers.values()):
            try:
                writer.close()
            except RuntimeError:
                pass
    return master


def _master_report(master: FleetMaster, wall: float) -> FleetMasterReport:
    return FleetMasterReport(
        n_jobs=master.n_jobs,
        n_committed=master.n_committed,
        wall_seconds=wall,
        workers_seen=sorted(master.workers_seen),
        busy_by_worker=dict(master.busy_by_worker),
        commits=master.stats.commits,
        duplicates=master.stats.duplicates,
        requeues=master.stats.requeues,
        steals=master.stats.steals,
        timeouts=master.stats.timeouts,
        registrations=master.stats.registrations,
        max_lease=master.stats.max_lease,
    )


def run_fleet_master(
    spec,
    checkpoint: "str | Path",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    heartbeat_timeout: float = 5.0,
    lease_target_seconds: float = 2.0,
    max_lease: int = 8,
    on_listening: Optional[Callable[[str, int], None]] = None,
):
    """Run the fleet master for one sweep spec against a checkpoint.

    Same contract as :func:`repro.sweep.engine.run_sweep`, with remote
    workers instead of a local pool: jobs already in the journal are
    skipped, every arriving result is fsync'd to the journal before it
    is acknowledged, and the manifest is finalized on the way out.
    Returns a :class:`~repro.sweep.engine.SweepReport` whose ``fleet``
    field carries the protocol stats.
    """
    from ...sweep.engine import SweepReport
    from ...sweep.journal import SweepJournal

    journal = SweepJournal(checkpoint)
    journal.initialize(spec.to_dict())
    done = journal.load_records()
    pending = [job for job in spec.jobs if job.job_id not in done]
    report = SweepReport(
        spec=spec,
        schedule="fleet",
        mode="fleet",
        n_workers=0,
        records=dict(done),
        skipped=len(done),
    )
    journal.write_manifest(
        spec.n_jobs, len(done), "running", {"name": spec.name}
    )
    payloads = [
        {"job_id": job.job_id, "job": job.to_dict()} for job in pending
    ]
    t_wall = time.perf_counter()

    def commit(job_id: str, record: dict) -> None:
        journal.append(record)
        report.records[job_id] = record
        report.ran_job_ids.append(job_id)

    master = None
    try:
        with journal:
            master = asyncio.run(
                serve_fleet(
                    payloads,
                    commit,
                    host=host,
                    port=port,
                    heartbeat_timeout=heartbeat_timeout,
                    lease_target_seconds=lease_target_seconds,
                    max_lease=max_lease,
                    on_listening=on_listening,
                )
            )
    finally:
        from ...sweep.engine import aggregate_job_telemetry

        report.wall_seconds = time.perf_counter() - t_wall
        status = "complete" if report.complete else "incomplete"
        extra = {"name": spec.name}
        if master is not None:
            fleet = _master_report(master, report.wall_seconds)
            report.n_workers = max(len(fleet.workers_seen), 1)
            report.worker_busy_seconds = sorted(
                fleet.busy_by_worker.values(), reverse=True
            ) or [0.0]
            report.fleet = {
                "workers_seen": fleet.workers_seen,
                "busy_by_worker": {
                    w: round(s, 6)
                    for w, s in sorted(fleet.busy_by_worker.items())
                },
                "commits": fleet.commits,
                "duplicates": fleet.duplicates,
                "requeues": fleet.requeues,
                "steals": fleet.steals,
                "timeouts": fleet.timeouts,
                "registrations": fleet.registrations,
                "max_lease": fleet.max_lease,
            }
            # persist the stats: `repro.sweep report --format json` reads
            # the journal directory, not this in-memory report
            extra["fleet"] = report.fleet
        report.telemetry = aggregate_job_telemetry(report.records.values())
        journal.write_manifest(spec.n_jobs, report.n_done, status, extra)
    return report
