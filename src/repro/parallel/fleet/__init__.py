"""Multi-host sweep fleet: lease-based master/worker protocol over TCP.

The package splits the paper's cluster story into three layers:

- :mod:`~repro.parallel.fleet.protocol` — the lease/ack/requeue state
  machine, transport-free, exercised exhaustively by
  :mod:`repro.simcluster.fleet_sim` and the hypothesis suite;
- :mod:`~repro.parallel.fleet.messages` — newline-delimited JSON frames;
- :mod:`~repro.parallel.fleet.master` / :mod:`~repro.parallel.fleet.worker`
  — the asyncio socket bindings plus the sweep-engine glue behind
  ``python -m repro.sweep run --fleet master|worker``.
"""

from .messages import (
    MESSAGE_TYPES,
    FleetProtocolError,
    decode_frame,
    decode_line,
    encode_frame,
)
from .protocol import FleetMaster, FleetStats, WorkerView
from .master import (
    FleetMasterReport,
    fetch_fleet_status,
    run_fleet_master,
    serve_fleet,
)
from .worker import FleetWorkerStats, run_fleet_worker, run_sweep_worker

__all__ = [
    "MESSAGE_TYPES",
    "FleetProtocolError",
    "decode_frame",
    "decode_line",
    "encode_frame",
    "FleetMaster",
    "FleetStats",
    "WorkerView",
    "FleetMasterReport",
    "fetch_fleet_status",
    "run_fleet_master",
    "serve_fleet",
    "FleetWorkerStats",
    "run_fleet_worker",
    "run_sweep_worker",
]
