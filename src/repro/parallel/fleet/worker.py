"""The fleet worker agent: lease, run, heartbeat, survive the master.

One agent is one registered worker.  It keeps a local FIFO of leased
jobs and runs them one at a time in a thread
(:func:`asyncio.to_thread`), so heartbeats and revokes keep flowing
while a job computes.  Self-measured busy seconds ride along on every
``result`` frame — the master's lease-sizing cost model is fitted from
them.

Failure behaviour, matching the protocol's recovery story:

- **Connection lost** (master killed, partition): the agent keeps its
  queue *and* the running job, finishes it, stashes any unsendable
  results, and retries the connection for up to ``reconnect_seconds``.
  On reconnect it re-registers with the ``held`` job-id list (so a
  restarted master adopts the jobs instead of re-running them) and
  resends the stashed results (the master dedupes by first-commit-wins).
- **Revoke** (a peer stole from our backlog, or our straggler result
  lost the commit race): the ids vanish from the local queue; a job
  already running just finishes and lets the master drop the duplicate.
- **Drain**: no more work will ever come — finish the queue and exit.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .messages import decode_line, encode_frame

__all__ = ["FleetWorkerStats", "run_fleet_worker", "run_sweep_worker"]


@dataclass
class FleetWorkerStats:
    """What one agent did over its lifetime (all reconnects included)."""

    worker_id: str
    jobs_done: int = 0
    busy_seconds: float = 0.0
    reconnects: int = 0
    revoked: int = 0
    results_resent: int = 0
    gave_up: bool = False
    job_ids: List[str] = field(default_factory=list)


def default_worker_id() -> str:
    """Host + pid + random tail: unique across the fleet, readable in logs."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _Agent:
    def __init__(
        self,
        host: str,
        port: int,
        run_job: Callable[[dict], dict],
        *,
        worker_id: Optional[str],
        heartbeat_interval: float,
        reconnect_seconds: float,
        reconnect_delay: float,
    ):
        self.host, self.port = host, port
        self.run_job = run_job
        self.stats = FleetWorkerStats(worker_id=worker_id or default_worker_id())
        self.heartbeat_interval = heartbeat_interval
        self.reconnect_seconds = reconnect_seconds
        self.reconnect_delay = reconnect_delay
        self.queue: deque = deque()
        self.running_id: Optional[str] = None
        self.drained = False
        self.stopping = False
        self.writer: Optional[asyncio.StreamWriter] = None
        self.unsent: List[dict] = []
        self.wake = asyncio.Event()

    # -- frame plumbing ------------------------------------------------
    def _held(self) -> List[str]:
        held = [p["job_id"] for p in self.queue]
        if self.running_id is not None:
            held.insert(0, self.running_id)
        return held

    async def _send(self, message: dict) -> bool:
        if self.writer is None:
            return False
        try:
            self.writer.write(encode_frame(message))
            await self.writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            return False

    async def _send_result(self, message: dict) -> None:
        if not await self._send(message):
            # connection is down: keep the result and resend after the
            # next registration — the master dedupes, so this can only
            # save work, never double-commit
            self.unsent.append(message)

    # -- tasks ---------------------------------------------------------
    async def runner(self) -> None:
        """FIFO job loop; exits when drained and empty (or told to stop)."""
        while True:
            if self.stopping:
                return
            if self.queue:
                payload = self.queue.popleft()
                self.running_id = payload["job_id"]
                t0 = time.perf_counter()
                record = await asyncio.to_thread(self.run_job, payload)
                seconds = time.perf_counter() - t0
                self.running_id = None
                self.stats.jobs_done += 1
                self.stats.busy_seconds += seconds
                self.stats.job_ids.append(payload["job_id"])
                await self._send_result(
                    {
                        "type": "result",
                        "worker": self.stats.worker_id,
                        "job_id": payload["job_id"],
                        "record": record,
                        "seconds": seconds,
                    }
                )
            elif self.drained:
                return
            else:
                self.wake.clear()
                await self.wake.wait()

    async def heartbeater(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            await self._send(
                {
                    "type": "heartbeat",
                    "worker": self.stats.worker_id,
                    "held": self._held(),
                }
            )

    def _on_message(self, message: dict) -> None:
        kind = message.get("type")
        if kind == "lease":
            held = set(self._held())
            for payload in message.get("jobs", ()):
                if payload.get("job_id") not in held:
                    self.queue.append(payload)
            self.wake.set()
        elif kind == "revoke":
            drop = set(message.get("job_ids", ()))
            before = len(self.queue)
            self.queue = deque(
                p for p in self.queue if p["job_id"] not in drop
            )
            self.stats.revoked += before - len(self.queue)
        elif kind == "drain":
            self.drained = True
            self.wake.set()
        elif kind == "welcome" and message.get("reregister"):
            # the master expired us while the channel stayed up: it
            # wants a fresh hello to rebuild its lease view
            asyncio.ensure_future(self._register())

    async def _register(self) -> None:
        await self._send(
            {
                "type": "hello",
                "worker": self.stats.worker_id,
                "slots": 1,
                "held": self._held(),
            }
        )
        if self.unsent:
            stashed, self.unsent = self.unsent, []
            for message in stashed:
                self.stats.results_resent += 1
                await self._send_result(message)

    async def connection_loop(self) -> None:
        """Connect, register, read frames; reconnect on loss until the
        runner is done or the reconnect budget runs out."""
        last_alive = time.monotonic()
        first = True
        while not (self.drained and not self.queue and self.running_id is None):
            try:
                reader, self.writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except OSError:
                self.writer = None
                if time.monotonic() - last_alive > self.reconnect_seconds:
                    self.stats.gave_up = True
                    self.stopping = True
                    self.wake.set()
                    return
                await asyncio.sleep(self.reconnect_delay)
                continue
            if not first:
                self.stats.reconnects += 1
            first = False
            last_alive = time.monotonic()
            await self._register()
            beat = asyncio.create_task(self.heartbeater())
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    last_alive = time.monotonic()
                    message = decode_line(line)
                    if message is not None:
                        self._on_message(message)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                pass
            finally:
                beat.cancel()
                try:
                    await beat
                except asyncio.CancelledError:
                    pass
                if self.writer is not None:
                    try:
                        self.writer.close()
                    except RuntimeError:
                        pass
                    self.writer = None


async def run_fleet_worker(
    host: str,
    port: int,
    run_job: Callable[[dict], dict],
    *,
    worker_id: Optional[str] = None,
    heartbeat_interval: float = 1.0,
    reconnect_seconds: float = 10.0,
    reconnect_delay: float = 0.25,
) -> FleetWorkerStats:
    """Run one worker agent until the fleet drains (or the master stays
    unreachable past the reconnect budget; see ``stats.gave_up``)."""
    agent = _Agent(
        host,
        port,
        run_job,
        worker_id=worker_id,
        heartbeat_interval=heartbeat_interval,
        reconnect_seconds=reconnect_seconds,
        reconnect_delay=reconnect_delay,
    )
    conn = asyncio.create_task(agent.connection_loop())
    await agent.runner()
    # best-effort goodbye so the master requeues nothing on our exit
    await agent._send({"type": "goodbye", "worker": agent.stats.worker_id})
    conn.cancel()
    try:
        await conn
    except asyncio.CancelledError:
        pass
    if agent.writer is not None:
        try:
            agent.writer.close()
        except RuntimeError:
            pass
    return agent.stats


def _sweep_job_runner(payload: dict) -> dict:
    """Run one sweep job payload (the ``job`` sub-dict is a JobSpec)."""
    from ...sweep.engine import _run_job_timed

    record, _busy, _key = _run_job_timed(payload["job"])
    return record


def run_sweep_worker(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    heartbeat_interval: float = 1.0,
    reconnect_seconds: float = 10.0,
    reconnect_delay: float = 0.25,
) -> FleetWorkerStats:
    """Synchronous sweep-worker entry point (the CLI's ``--fleet worker``)."""
    return asyncio.run(
        run_fleet_worker(
            host,
            port,
            _sweep_job_runner,
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            reconnect_seconds=reconnect_seconds,
            reconnect_delay=reconnect_delay,
        )
    )
