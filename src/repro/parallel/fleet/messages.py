"""Wire format of the fleet protocol: newline-delimited JSON frames.

One frame is one JSON object on one line, terminated by ``\\n`` — the
oldest streaming format there is, chosen because it survives everything
the fleet must survive: a torn frame (a peer died mid-write) is exactly
one undecodable line, and the next line is a clean parse boundary, the
same property the sweep journal (:mod:`repro.sweep.journal`) relies on.

Every message carries a ``type`` and, for worker-originated frames, the
``worker`` id.  The full vocabulary (see ``docs/fleet.md`` for the table
with field-by-field semantics):

worker -> master
    ``hello``      register (or re-register after a reconnect); carries
                   ``held``, the job ids the worker still has queued or
                   running, so a restarted master adopts them instead of
                   re-running them.
    ``heartbeat``  liveness plus the same ``held`` list — the master
                   reconciles its lease view against it, recovering
                   leases lost to a partition in either direction.
    ``result``     one finished job: ``job_id``, the journal ``record``,
                   and self-reported busy ``seconds`` (the cost model's
                   input).
    ``goodbye``    graceful exit; the master requeues anything leased.

observer -> master
    ``status``     live-gauges query (any client, not just workers); the
                   master replies on the same connection with
                   ``status_reply`` and the connection stays outside the
                   worker lifecycle — no registration, no requeue on
                   close.

master -> worker
    ``status_reply``  the :meth:`~repro.parallel.fleet.protocol.
                   FleetMaster.status_snapshot` gauges: backlog depth,
                   per-worker leases held / fitted seconds-per-cost /
                   busy seconds / heartbeat age, and protocol stats.
    ``welcome``    registration ack with sweep-level counts.
    ``lease``      a batch of jobs (each ``{"job_id": ..., "job": ...}``),
                   sized by the worker's fitted cost rate.
    ``revoke``     job ids the worker must drop from its queue (stolen by
                   an idle peer, or committed by someone else first).
    ``drain``      every job is committed; finish up and exit.

>>> frame = encode_frame({"type": "heartbeat", "worker": "w0", "held": []})
>>> decode_frame(frame)
{'held': [], 'type': 'heartbeat', 'worker': 'w0'}
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = [
    "MESSAGE_TYPES",
    "FleetProtocolError",
    "encode_frame",
    "decode_frame",
    "decode_line",
]

#: Every frame type either side may legally send.
MESSAGE_TYPES = (
    "hello",
    "heartbeat",
    "result",
    "goodbye",
    "welcome",
    "lease",
    "revoke",
    "drain",
    "status",
    "status_reply",
)


class FleetProtocolError(ValueError):
    """A frame that decodes but violates the protocol (bad type/fields)."""


def encode_frame(message: dict) -> bytes:
    """One message -> one newline-terminated JSON line (UTF-8 bytes)."""
    if message.get("type") not in MESSAGE_TYPES:
        raise FleetProtocolError(f"unknown message type {message.get('type')!r}")
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_frame(frame: bytes) -> dict:
    """Inverse of :func:`encode_frame`; raises on malformed frames."""
    message = json.loads(frame.decode("utf-8"))
    if not isinstance(message, dict) or message.get("type") not in MESSAGE_TYPES:
        raise FleetProtocolError(f"not a fleet frame: {frame[:80]!r}")
    return message


def decode_line(line: bytes) -> Optional[dict]:
    """Tolerant decode for receive loops: ``None`` for blank/torn lines.

    A peer killed mid-write leaves at most one torn line in the stream;
    the caller skips it and resynchronizes at the next newline (the peer
    is re-registering or being timed out anyway).
    """
    line = line.strip()
    if not line:
        return None
    try:
        return decode_frame(line)
    except (FleetProtocolError, UnicodeDecodeError, json.JSONDecodeError):
        return None
