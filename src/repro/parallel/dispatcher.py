"""Generic dynamic master/worker job dispatcher (the paper's FCFS protocol).

Extracted from the Pieri tree scheduler so that *any* job-shaped workload
— tree edges, whole solve jobs of a sweep — runs the same master loop:

1. hand queued jobs to idle workers, first-come-first-served;
2. wait for any worker to finish;
3. let the caller consume the result and enqueue the jobs it enables
   (the Pieri ``expand`` step, or nothing for a flat job list);
4. re-enqueue jobs whose worker *crashed* (raised, as opposed to
   returning a failure value) up to a retry budget;
5. terminate when the queue is drained and every worker is parked.

The dispatcher is executor-agnostic: it only sees a ``submit`` callable
returning :class:`concurrent.futures.Future` objects.  If the underlying
pool is a :class:`~concurrent.futures.ProcessPoolExecutor` and a worker
*process* dies (``BrokenExecutor``), every in-flight job is lost at once;
with a ``rebuild_pool`` factory the dispatcher rebuilds the pool,
re-enqueues the in-flight jobs, and keeps going — without one, the error
propagates.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional

__all__ = ["DispatchTelemetry", "dispatch_jobs", "dispatch_with_pool"]


@dataclass
class DispatchTelemetry:
    """What the master observed: throughput, backlog, and crash accounting."""

    jobs_done: int = 0
    max_queue_length: int = 0
    max_active_jobs: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    jobs_abandoned: int = 0


def dispatch_jobs(
    initial_jobs: Iterable[Any],
    submit: Callable[[Any], Future],
    on_result: Callable[[Any, Any], Optional[Iterable[Any]]],
    n_workers: int,
    max_retries: int = 0,
    retry_key: Callable[[Any], Any] = id,
    on_abandoned: Optional[Callable[[Any], None]] = None,
    rebuild_pool: Optional[Callable[[], Callable[[Any], Future]]] = None,
    telemetry: Optional[DispatchTelemetry] = None,
) -> DispatchTelemetry:
    """Run the dynamic master loop until every job is done or abandoned.

    Parameters
    ----------
    initial_jobs:
        Jobs known at startup (the Pieri tree-root jobs, or a sweep's
        full pending list).
    submit:
        ``submit(job) -> Future``; typically wraps ``pool.submit``.
    on_result:
        ``on_result(job, result)`` consumes one worker result and returns
        the newly enabled jobs (or ``None``).  Called from the master
        thread only, so it may mutate shared state freely.
    n_workers:
        Upper bound on concurrently submitted jobs (the pool size).
    max_retries:
        How many times a job whose worker crashed is re-enqueued before
        being abandoned (``on_abandoned`` is then called if given).
    retry_key:
        Maps a job to the hashable key its retry budget is tracked under;
        defaults to object identity, which is correct because the same
        job object is re-enqueued.
    rebuild_pool:
        Optional factory returning a fresh ``submit`` after the executor
        broke (a worker process died).  A breakage cannot be attributed
        to one job, so no individual retry budget is charged: results
        that completed in the breakage race window are harvested, and
        every other in-flight job is re-enqueued.  Termination is still
        guaranteed — after ``max_retries + 1`` consecutive breakages
        (at submit or result time) with no job completing in between,
        the jobs in flight at the last breakage are collectively
        abandoned and the rest of the queue continues.
    telemetry:
        Pass a :class:`DispatchTelemetry` to have it mutated in place —
        the caller then keeps the partial counts even when ``on_result``
        raises to abort the run mid-flight.
    """
    queue: deque = deque(initial_jobs)
    active: Dict[Future, Any] = {}
    attempts: Dict[Any, int] = {}
    telemetry = DispatchTelemetry() if telemetry is None else telemetry
    fruitless_breaks = 0
    done_at_last_break = 0

    def abandon(job: Any) -> None:
        telemetry.jobs_abandoned += 1
        if on_abandoned is not None:
            on_abandoned(job)

    def crash(job: Any) -> None:
        telemetry.worker_crashes += 1
        key = retry_key(job)
        attempts[key] = attempts.get(key, 0) + 1
        if attempts[key] <= max_retries:
            queue.append(job)
        else:
            abandon(job)

    def harvest(fut: Future, job: Any, lost: list) -> None:
        """Consume one settled future: result, own crash, or breakage."""
        try:
            result = fut.result()
        except BrokenExecutor:
            lost.append(job)
        except Exception:
            crash(job)
        else:
            telemetry.jobs_done += 1
            queue.extend(on_result(job, result) or ())

    def reclaim_active() -> list:
        """Empty ``active`` after a breakage: harvest results that
        completed in the race window so their jobs are not executed
        twice, and return the jobs that were genuinely lost.  A job
        that *crashed on its own* in the window (any exception other
        than the breakage itself) still pays its retry budget."""
        lost = []
        for fut, job in list(active.items()):
            if fut.done():
                harvest(fut, job, lost)
            elif fut.cancel():
                lost.append(job)
            else:
                # cancel() failing means the future slipped past the
                # done() check and completed (or is completing) in the
                # race window: requeueing it here would run — and
                # potentially commit — the job twice.  Harvest instead.
                harvest(fut, job, lost)
        active.clear()
        return lost

    def note_breakage(in_flight) -> None:
        """One pool breakage: re-enqueue the lost jobs (no individual
        retry charge — blame is unattributable) unless breakage repeats
        with zero progress, then abandon them together; rebuild."""
        nonlocal submit, fruitless_breaks, done_at_last_break
        telemetry.worker_crashes += 1
        telemetry.pool_rebuilds += 1
        if telemetry.jobs_done == done_at_last_break:
            fruitless_breaks += 1
        else:
            fruitless_breaks = 1
        done_at_last_break = telemetry.jobs_done
        if fruitless_breaks > max_retries:
            for job in in_flight:
                abandon(job)
            fruitless_breaks = 0
        else:
            queue.extend(in_flight)
        submit = rebuild_pool()

    while queue or active:
        while queue and len(active) < n_workers:
            job = queue.popleft()
            try:
                fut = submit(job)
            except BrokenExecutor:
                if rebuild_pool is None:
                    raise
                # the dead pool's in-flight futures die with it: reclaim
                # them now so the same breakage is not processed twice
                note_breakage([job] + reclaim_active())
                continue
            active[fut] = job
        telemetry.max_queue_length = max(telemetry.max_queue_length, len(queue))
        telemetry.max_active_jobs = max(telemetry.max_active_jobs, len(active))
        if not active:
            continue
        done, _ = wait(list(active), return_when=FIRST_COMPLETED)
        broken = False
        in_flight = []
        for fut in done:
            job = active.pop(fut)
            try:
                result = fut.result()
            except BrokenExecutor:
                if rebuild_pool is None:
                    raise
                broken = True
                in_flight.append(job)
                continue
            except Exception:
                crash(job)
                continue
            telemetry.jobs_done += 1
            queue.extend(on_result(job, result) or ())
        if broken:
            note_breakage(in_flight + reclaim_active())
    return telemetry


def dispatch_with_pool(
    make_pool: Callable[[], Any],
    submit_job: Callable[[Any, Any], Future],
    initial_jobs: Iterable[Any],
    on_result: Callable[[Any, Any], Optional[Iterable[Any]]],
    n_workers: int,
    max_retries: int = 0,
    retry_key: Callable[[Any], Any] = id,
    on_abandoned: Optional[Callable[[Any], None]] = None,
    rebuildable: bool = True,
    cancel_on_exit: bool = False,
    telemetry: Optional[DispatchTelemetry] = None,
) -> DispatchTelemetry:
    """:func:`dispatch_jobs` plus executor lifecycle, in one call.

    Owns the pool: creates it via ``make_pool``, submits through
    ``submit_job(pool, job)``, transparently replaces a broken pool when
    ``rebuildable`` (pass ``False`` for thread pools, which cannot
    break), and always shuts the final pool down — waiting for stragglers
    by default, or cancelling them when ``cancel_on_exit`` is set (used
    by callers whose ``on_result`` aborts the run mid-flight).
    """
    state = {"pool": make_pool()}

    def submit(job: Any) -> Future:
        return submit_job(state["pool"], job)

    def rebuild_pool() -> Callable[[Any], Future]:
        state["pool"].shutdown(wait=False, cancel_futures=True)
        state["pool"] = make_pool()
        return submit

    try:
        return dispatch_jobs(
            initial_jobs,
            submit,
            on_result,
            n_workers=n_workers,
            max_retries=max_retries,
            retry_key=retry_key,
            on_abandoned=on_abandoned,
            rebuild_pool=rebuild_pool if rebuildable else None,
            telemetry=telemetry,
        )
    finally:
        if cancel_on_exit:
            state["pool"].shutdown(wait=False, cancel_futures=True)
        else:
            state["pool"].shutdown(wait=True)
