"""Print every regenerated table and figure: ``python -m repro.experiments``.

Options:
    --fast      skip the timed solver runs (combinatorics + simulator only)
    --full      also time the bigger Table IV cells (minutes of runtime)
"""

from __future__ import annotations

import sys

from .tables import fig1, fig2, figures345, table1, table2, table3, table4


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fast = "--fast" in argv
    full = "--full" in argv

    print(table1()[0])
    print()
    print(fig1()[0])
    print()
    print(table2()[0])
    print()
    print(fig2()[0])
    print()
    if fast:
        print(table3(run_solver=False)[0])
    else:
        print(table3(m=2, p=2, q=1)[0])
        print()
        print("Table III at the paper's size (m=3 p=2 q=1, 252 paths):")
        print(table3(m=3, p=2, q=1)[0])
    print()
    cells = [(2, 2, 0), (3, 2, 0), (2, 2, 1)]
    if full:
        cells += [(3, 3, 0), (3, 2, 1), (2, 2, 2)]
    print(table4(solve_cells=() if fast else tuple(cells))[0])
    print()
    print(figures345())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
