"""Experiment harness: regenerates every table and figure of the paper."""

from .calibration import measure_cyclic_costs, measure_rps_costs, resample_workload
from .formatting import render_series, render_table
from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4_COUNTS,
    fig1,
    fig2,
    figures345,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "measure_cyclic_costs",
    "measure_rps_costs",
    "resample_workload",
    "render_series",
    "render_table",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4_COUNTS",
    "fig1",
    "fig2",
    "figures345",
    "table1",
    "table2",
    "table3",
    "table4",
]
