"""Regeneration of every table and figure of the paper.

Each ``table*``/``fig*`` function returns ``(text, rows)`` where ``text``
prints the same rows the paper reports (with the paper's own numbers
alongside for comparison) and ``rows`` is the raw data for benchmarks and
EXPERIMENTS.md.  ``python -m repro.experiments`` prints everything.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..schubert import (
    LocalizationPattern,
    PieriInstance,
    PieriPoset,
    PieriProblem,
    PieriSolver,
    PieriTree,
    level_job_counts,
    pieri_root_count,
)
from ..simcluster import (
    ClusterSpec,
    cyclic10_workload,
    rps_workload,
    simulate_dynamic,
    simulate_static,
    speedup_table,
)
from .formatting import render_series, render_table

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4_COUNTS",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig2",
    "figures345",
]

#: Paper Table I: cyclic 10-roots on the Platinum cluster (user CPU minutes).
PAPER_TABLE1 = {
    1: (480.0, 1.0, 480.0, 1.0),
    8: (75.5, 6.4, 66.6, 7.2),
    16: (36.4, 13.2, 31.7, 15.2),
    32: (19.0, 25.3, 15.7, 30.7),
    64: (10.2, 46.9, 7.9, 60.5),
    128: (6.6, 73.3, 4.3, 112.9),
}

#: Paper Table II: the RPS mechanism-design system (user CPU minutes).
PAPER_TABLE2 = {
    8: (417.5, 7.5, 388.9, 8.0),
    16: (195.1, 15.9, 183.7, 16.9),
    32: (94.7, 32.9, 96.1, 32.4),
    64: (49.8, 62.5, 47.5, 65.5),
    128: (25.1, 124.0, 22.0, 141.4),
}

#: Paper Table III: #paths per level for m=3, p=2, q=1 (total 252).
PAPER_TABLE3 = [1, 2, 3, 5, 8, 13, 21, 34, 55, 55, 55]

#: Paper Table IV: solution counts per (m, p, q) *as printed in the paper*.
#: The (3,3,2) cell prints 17462; the DP (verified against the q-analogue
#: recurrences: d(2,2,q) = 2*4^q and d(3,2,q) = Fib(5q+5)) gives 174762 —
#: a dropped digit in the paper, flagged "paper typo" by table4().
PAPER_TABLE4_COUNTS = {
    (2, 2, 0): 2, (2, 2, 1): 8, (2, 2, 2): 32, (2, 2, 3): 128,
    (3, 2, 0): 5, (3, 2, 1): 55, (3, 2, 2): 610, (3, 2, 3): 6765,
    (3, 3, 0): 42, (3, 3, 1): 2730, (3, 3, 2): 17462,
    (4, 3, 0): 462, (4, 3, 1): 135660,
    (4, 4, 0): 24024,
}


def table1(
    cpu_counts: Sequence[int] = (1, 8, 16, 32, 64, 128),
    seed: int = 3,
    spec: ClusterSpec | None = None,
) -> Tuple[str, List[dict]]:
    """Table I: static vs dynamic on the simulated cyclic 10-roots run."""
    wl = cyclic10_workload(np.random.default_rng(seed))
    rows = speedup_table(wl, list(cpu_counts), spec)
    out = []
    for r in rows:
        paper = PAPER_TABLE1.get(r["cpus"])
        out.append(
            [
                r["cpus"],
                round(r["static_minutes"], 1),
                round(r["static_speedup"], 1),
                round(r["dynamic_minutes"], 1),
                round(r["dynamic_speedup"], 1),
                f"{r['improvement_pct']:.2f}%",
                f"{paper[0]}/{paper[2]}" if paper else "-",
                f"{paper[1]}/{paper[3]}" if paper else "-",
            ]
        )
    text = render_table(
        [
            "#CPUs",
            "static min",
            "static x",
            "dynamic min",
            "dynamic x",
            "improv",
            "paper st/dy min",
            "paper st/dy x",
        ],
        out,
        title="Table I - cyclic 10-roots, 35940 paths, static vs dynamic "
        "(simulated cluster, calibrated to 480 CPU-min at 1 GHz)",
    )
    return text, rows


def table2(
    cpu_counts: Sequence[int] = (8, 16, 32, 64, 128),
    seed: int = 1,
    spec: ClusterSpec | None = None,
) -> Tuple[str, List[dict]]:
    """Table II: the RPS run — low variance, dynamic barely wins."""
    wl = rps_workload(np.random.default_rng(seed))
    rows = speedup_table(wl, list(cpu_counts), spec)
    out = []
    for r in rows:
        paper = PAPER_TABLE2.get(r["cpus"])
        out.append(
            [
                r["cpus"],
                round(r["static_minutes"], 1),
                round(r["static_speedup"], 1),
                round(r["dynamic_minutes"], 1),
                round(r["dynamic_speedup"], 1),
                f"{r['improvement_pct']:.2f}%",
                f"{paper[0]}/{paper[2]}" if paper else "-",
            ]
        )
    text = render_table(
        [
            "#CPUs",
            "static min",
            "static x",
            "dynamic min",
            "dynamic x",
            "improv",
            "paper st/dy min",
        ],
        out,
        title="Table II - RPS mechanism design, 9216 paths, >8000 divergent "
        "with near-constant cost (simulated cluster, 3111.2 CPU-min)",
    )
    return text, rows


def table3(
    m: int = 3,
    p: int = 2,
    q: int = 1,
    seed: int = 5,
    run_solver: bool = True,
) -> Tuple[str, Dict]:
    """Table III: #paths and time per level of the Pieri tree.

    With ``run_solver`` the real tracker is timed per level (the paper's
    'user CPU time' column); otherwise only the combinatorial counts are
    printed (instant).
    """
    counts = level_job_counts(m, p, q)
    seconds = {}
    if run_solver:
        instance = PieriInstance.random(m, p, q, np.random.default_rng(seed))
        report = PieriSolver(instance, seed=seed).solve()
        seconds = report.seconds_per_level
        assert [report.jobs_per_level[i + 1] for i in range(len(counts))] == counts
    rows = []
    for n, c in enumerate(counts, start=1):
        paper = PAPER_TABLE3[n - 1] if n - 1 < len(PAPER_TABLE3) else "-"
        rows.append(
            [
                n,
                c,
                f"{seconds.get(n, float('nan')):.3f}s" if run_solver else "-",
                paper,
            ]
        )
    rows.append(
        [
            "total",
            sum(counts),
            f"{sum(seconds.values()):.3f}s" if run_solver else "-",
            sum(PAPER_TABLE3),
        ]
    )
    text = render_table(
        ["level n", "#paths", "time", "paper #paths"],
        rows,
        title=f"Table III - paths and time per level, m={m} p={p} q={q}",
    )
    return text, {"counts": counts, "seconds": seconds}


def table4(
    solve_cells: Sequence[Tuple[int, int, int]] = (
        (2, 2, 0),
        (3, 2, 0),
        (2, 2, 1),
    ),
    seed: int = 7,
) -> Tuple[str, Dict]:
    """Table IV: root counts for every paper cell; timed solves for the
    tractable ones (the upper-left of the paper's triangle)."""
    timings: Dict[Tuple[int, int, int], float] = {}
    solved: Dict[Tuple[int, int, int], int] = {}
    for m, p, q in solve_cells:
        instance = PieriInstance.random(m, p, q, np.random.default_rng(seed))
        t0 = time.perf_counter()
        report = PieriSolver(instance, seed=seed).solve()
        timings[(m, p, q)] = time.perf_counter() - t0
        solved[(m, p, q)] = report.n_solutions
    rows = []
    for (m, p, q), paper_count in sorted(PAPER_TABLE4_COUNTS.items()):
        ours = pieri_root_count(m, p, q)
        cell = (m, p, q)
        rows.append(
            [
                f"({m},{p})",
                q,
                ours,
                paper_count,
                "OK" if ours == paper_count else "paper typo",
                f"{timings[cell]:.2f}s" if cell in timings else "-",
                solved.get(cell, "-"),
            ]
        )
    text = render_table(
        ["(m,p)", "q", "#solutions", "paper", "check", "solve time", "#found"],
        rows,
        title="Table IV - root counts d(m,p,q) and solve times",
    )
    return text, {"timings": timings, "solved": solved}


def fig1(
    cpu_counts: Sequence[int] = (1, 8, 16, 32, 64, 128), seed: int = 3
) -> Tuple[str, Dict]:
    """Fig 1: speedup curves (static, dynamic, optimal) for cyclic 10."""
    _, rows = table1(cpu_counts, seed)
    xs = [r["cpus"] for r in rows]
    series = {
        "static": [round(r["static_speedup"], 1) for r in rows],
        "dynamic": [round(r["dynamic_speedup"], 1) for r in rows],
        "optimal": [float(x) for x in xs],
    }
    return (
        render_series("Fig 1 - speedup comparison, cyclic 10-roots", xs, series),
        {"x": xs, **series},
    )


def fig2(
    cpu_counts: Sequence[int] = (8, 16, 32, 64, 128), seed: int = 1
) -> Tuple[str, Dict]:
    """Fig 2: speedup curves for the RPS run."""
    _, rows = table2(cpu_counts, seed)
    xs = [r["cpus"] for r in rows]
    series = {
        "static": [round(r["static_speedup"], 1) for r in rows],
        "dynamic": [round(r["dynamic_speedup"], 1) for r in rows],
        "optimal": [float(x) for x in xs],
    }
    return (
        render_series("Fig 2 - speedup comparison, RPS application", xs, series),
        {"x": xs, **series},
    )


def figures345() -> str:
    """Figs 3-5: the localization pattern, poset and Pieri tree for
    m=2, p=2, q=1, rendered as ASCII."""
    prob = PieriProblem(2, 2, 1)
    pattern = LocalizationPattern(prob, (4, 7))
    poset = PieriPoset.build(prob)
    tree = PieriTree(prob)
    parts = [
        "Fig 3 - localization pattern [4 7] for m=2, p=2, q=1 "
        "(concatenated form, stars = free coefficients):",
        pattern.ascii_art(),
        "",
        "Fig 4 - Pieri poset with chain counts (root count at the bottom):",
        poset.ascii_art(),
        "",
        "Fig 5 - Pieri tree (indentation = depth; 8 leaves = 8 solutions):",
        tree.ascii_art(max_depth=8),
    ]
    return "\n".join(parts)
