"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table (the harness's output format)."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, series: dict[str, Sequence[float]]
) -> str:
    """Figure data as aligned columns: x then one column per curve."""
    headers = ["x"] + list(series.keys())
    rows = [
        [x] + [series[k][i] for k in series] for i, x in enumerate(xs)
    ]
    return render_table(headers, rows, title=name)
