"""Calibration of the cluster simulator against this repository's tracker.

The paper's absolute times come from 1 GHz Platinum CPUs running Ada; ours
come from the Python tracker on local hardware.  What must carry over is
the *distribution shape* of per-path costs, so the calibration runs a real
(small) instance of each workload family, builds the empirical cost
distribution, and resamples it to the paper's path counts — giving the
simulator a measured, not assumed, variance profile.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..homotopy import make_homotopy_and_starts
from ..simcluster import Workload, workload_from_results
from ..systems import cyclic_roots_system, rps_surrogate_system
from ..tracker import PathTracker, TrackerOptions

__all__ = ["measure_cyclic_costs", "measure_rps_costs", "resample_workload"]


def measure_cyclic_costs(
    n: int = 5, seed: int = 0, options: TrackerOptions | None = None
) -> Workload:
    """Track all cyclic-``n`` paths for real and return the measured costs."""
    target = cyclic_roots_system(n)
    homotopy, starts = make_homotopy_and_starts(
        target, rng=np.random.default_rng(seed)
    )
    tracker = PathTracker(options or TrackerOptions())
    results = tracker.track_many(homotopy, starts)
    return workload_from_results(results, name=f"cyclic{n}-measured")


def measure_rps_costs(
    n: int = 5, seed: int = 0, options: TrackerOptions | None = None
) -> Workload:
    """Track the RPS surrogate (2^n paths, ~all divergent) for real."""
    target = rps_surrogate_system(n, rng=np.random.default_rng(seed))
    homotopy, starts = make_homotopy_and_starts(
        target, rng=np.random.default_rng(seed + 1)
    )
    tracker = PathTracker(options or TrackerOptions())
    results = tracker.track_many(homotopy, starts)
    return workload_from_results(results, name=f"rps{n}-measured")


def resample_workload(
    measured: Workload,
    n_paths: int,
    total_cpu_minutes: float,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Bootstrap the measured distribution up to the paper's path count."""
    rng = np.random.default_rng(0) if rng is None else rng
    sample = rng.choice(measured.costs, size=n_paths, replace=True)
    return Workload(f"{measured.name}-x{n_paths}", sample).scaled_to_total_minutes(
        total_cpu_minutes
    )
