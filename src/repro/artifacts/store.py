"""Disk-backed, process-shared artifact store (JSON meta + NPZ arrays).

One artifact is two files under the store root, both committed by
atomic rename (the :mod:`repro.sweep.journal` idiom):

- ``<key>.npz``  — the numeric payload (complex arrays savez'd as-is);
- ``<key>.json`` — the metadata, written *last* as the commit marker.

Readers open the JSON first; a key whose JSON is present but whose NPZ
is missing or unreadable was torn by a dying writer and reads as a
**miss**, never as a wrong answer — the caller falls back to the
ab-initio solve and (optionally) re-stores.  Concurrent writers of the
same key are safe for the same reason: each writes to a private
``*.tmp.<pid>`` pair and renames, so the loser's rename simply
overwrites the winner's files with an equally complete artifact.

Lookups and stores tick ambient :class:`~repro.telemetry.Telemetry`
counters (``artifacts.hit`` / ``artifacts.miss`` /
``artifacts.corrupt`` / ``artifacts.store``) and a local ``stats``
dict, so the hit economics show up in solve summaries and sweep
reports.

>>> import numpy as np, tempfile
>>> store = ArtifactStore(tempfile.mkdtemp())
>>> store.put("k1", {"kind": "demo"}, {"x": np.arange(3) + 0j})
>>> meta, arrays = store.get("k1")
>>> meta["kind"], arrays["x"].tolist()
('demo', [0j, (1+0j), (2+0j)])
>>> store.get("nope") is None
True
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..telemetry import current_telemetry

__all__ = ["ArtifactStore", "default_store", "resolve_store"]

#: Environment variable naming the store root for worker processes
#: (the sweep pool and the serve workers inherit it).
STORE_ENV = "REPRO_ARTIFACT_STORE"

_FORMAT_VERSION = 1


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ArtifactStore:
    """Structure-keyed artifact cache shared by every process on a host.

    Keys are fingerprint strings (see
    :mod:`repro.artifacts.fingerprints`); values are a JSON-able
    metadata dict plus a mapping of numpy arrays.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "corrupt": 0, "stores": 0}

    # ------------------------------------------------------------------
    def _meta_path(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"bad artifact key {key!r}")
        return self.root / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self):
        """Committed keys (JSON marker present), sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[dict, Dict[str, np.ndarray]]]:
        """``(meta, arrays)`` for a committed key, else ``None``.

        Any torn, missing or undecodable state — half-written JSON, a
        JSON marker without its NPZ, an NPZ numpy cannot parse — counts
        as a miss (``artifacts.corrupt`` distinguishes it from a clean
        miss); the store never serves a partial artifact.
        """
        tel = current_telemetry()
        meta_path = self._meta_path(key)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if not isinstance(meta, dict) or "kind" not in meta:
                raise ValueError("artifact meta is not a kinded dict")
            with np.load(self._npz_path(key)) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except FileNotFoundError:
            if meta_path.exists():
                # committed marker without payload: a torn write
                self.stats["corrupt"] += 1
                if tel is not None:
                    tel.count("artifacts.corrupt")
            self.stats["misses"] += 1
            if tel is not None:
                tel.count("artifacts.miss")
            return None
        except (ValueError, OSError, KeyError, json.JSONDecodeError):
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            if tel is not None:
                tel.count("artifacts.corrupt")
                tel.count("artifacts.miss")
            return None
        self.stats["hits"] += 1
        if tel is not None:
            tel.count("artifacts.hit")
        return meta, arrays

    def put(
        self,
        key: str,
        meta: Mapping,
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Commit an artifact atomically (NPZ first, JSON marker last)."""
        meta_path = self._meta_path(key)
        npz_path = self._npz_path(key)
        record = dict(meta)
        record.setdefault("version", _FORMAT_VERSION)
        if "kind" not in record:
            raise ValueError("artifact meta must carry a 'kind'")
        suffix = f".tmp.{os.getpid()}"
        npz_tmp = npz_path.with_name(npz_path.name + suffix)
        meta_tmp = meta_path.with_name(meta_path.name + suffix)
        with open(npz_tmp, "wb") as fh:
            np.savez(fh, **{k: np.asarray(v) for k, v in (arrays or {}).items()})
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(npz_tmp, npz_path)
        with open(meta_tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(meta_tmp, meta_path)
        _fsync_dir(self.root)
        self.stats["stores"] += 1
        tel = current_telemetry()
        if tel is not None:
            tel.count("artifacts.store")

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r}, {len(self.keys())} keys)"


def default_store() -> Optional[ArtifactStore]:
    """The store named by ``$REPRO_ARTIFACT_STORE``, if any."""
    root = os.environ.get(STORE_ENV)
    return ArtifactStore(root) if root else None


def resolve_store(cache) -> Optional[ArtifactStore]:
    """Normalize a user-facing ``cache=`` argument.

    ``None``/``False`` disable caching; ``True`` uses the environment
    default (:func:`default_store`); a path creates/opens a store
    there; an :class:`ArtifactStore` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_store()
    if isinstance(cache, ArtifactStore):
        return cache
    return ArtifactStore(cache)
