"""Polyhedral artifacts: supports -> cells, generic system, endpoints.

One artifact per Newton-polytope structure covers the ISSUE's kinds (a)
and (c) together, because they are one pipeline in this repo:

- the **subdivision** (lifting seed + values, cell edges/volumes) — the
  memoized mixed cells; binomial start data is derived from cell edges
  and the stored generic coefficients, exactly as
  :meth:`~repro.polyhedral.PolyhedralStart.cell_starts` does;
- the **generic coefficient system** drawn on the (augmented) supports;
- the **solved endpoints** of phase 1 — one start point per unit of
  mixed volume, already tracked to the generic system.

A warm query with the same supports skips cell enumeration *and* the
per-cell phase-1 tracking: it builds a
:class:`~repro.homotopy.coefficient.CoefficientHomotopy` from the
stored generic coefficients to its own coefficients and tracks the
stored endpoints — mixed-volume-many paths, nothing else.

Only *clean* phase-1 results are stored (``phase1_failures == 0``): a
missing endpoint would silently lose a root of every warm query.
Loading re-validates shapes and, optionally, the lifting against its
journaled seed (:func:`validate_lifting_seed`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .fingerprints import supports_fingerprint
from .store import ArtifactStore

__all__ = [
    "polyhedral_key",
    "store_polyhedral_start",
    "load_polyhedral_start",
    "load_subdivision",
    "validate_lifting_seed",
]


def polyhedral_key(target, affine: bool = True) -> str:
    """Store key of a system's Newton-polytope structure."""
    from ..polyhedral.supports import supports_of

    key = supports_fingerprint(supports_of(target))
    return key if affine else key + "-torus"


def store_polyhedral_start(
    store: ArtifactStore, target, poly_start, starts
) -> str:
    """Persist a clean phase-1 result for the target's supports.

    ``starts`` are the tracked toric endpoints (solutions of the
    generic system), one per unit of mixed volume; ``poly_start`` is
    the :class:`~repro.polyhedral.PolyhedralStart` that produced them.
    Returns the key.
    """
    if poly_start.phase1_failures:
        raise ValueError("refusing to cache an incomplete phase-1 result")
    sub = poly_start.subdivision
    key = polyhedral_key(target)
    starts = np.asarray(starts, dtype=complex)
    meta = {
        "kind": "polyhedral",
        "neqs": len(sub.supports),
        "nvars": int(sub.supports[0].shape[1]),
        "mixed_volume": int(sub.mixed_volume),
        "n_cells": int(sub.n_cells),
        "lifting_seed": (
            None if sub.lifting_seed is None else int(sub.lifting_seed)
        ),
        "relifts": int(sub.relifts),
        "lifting_bound": int(sub.lifting_bound),
        "cells": [
            {
                "edges": [[int(a), int(b)] for a, b in cell.edges],
                "volume": int(cell.volume),
            }
            for cell in sub.cells
        ],
    }
    arrays = {"starts": starts}
    for i, support in enumerate(sub.supports):
        arrays[f"support_{i}"] = np.asarray(support, dtype=np.int64)
        arrays[f"lifting_{i}"] = np.asarray(sub.lifting[i], dtype=np.int64)
        arrays[f"coeff_{i}"] = np.asarray(
            poly_start.coefficients[i], dtype=complex
        )
    store.put(key, meta, arrays)
    return key


def load_polyhedral_start(store: ArtifactStore, target) -> Optional[dict]:
    """The warm-start bundle for a target's supports, or ``None``.

    Returns ``{"supports", "coefficients", "generic_system", "starts",
    "meta"}`` after shape validation; any inconsistency reads as a miss.
    """
    from ..polyhedral.supports import coefficient_system

    loaded = store.get(polyhedral_key(target))
    if loaded is None:
        return None
    meta, arrays = loaded
    try:
        if meta.get("kind") != "polyhedral":
            return None
        neqs = int(meta["neqs"])
        nvars = int(meta["nvars"])
        if neqs != target.neqs or nvars != target.nvars:
            return None
        supports: List[np.ndarray] = []
        coefficients: List[np.ndarray] = []
        for i in range(neqs):
            support = arrays[f"support_{i}"]
            coeffs = arrays[f"coeff_{i}"]
            if support.ndim != 2 or support.shape[1] != nvars:
                return None
            if coeffs.shape != (support.shape[0],):
                return None
            supports.append(support)
            coefficients.append(coeffs)
        starts = arrays["starts"]
        if starts.shape != (int(meta["mixed_volume"]), nvars):
            return None
    except (KeyError, ValueError, TypeError):
        return None
    return {
        "supports": supports,
        "coefficients": coefficients,
        "generic_system": coefficient_system(supports, coefficients),
        "starts": starts,
        "meta": meta,
    }


def load_subdivision(store: ArtifactStore, target):
    """Rebuild the memoized :class:`~repro.polyhedral.cells.
    MixedSubdivision` (cells with exact gamma/etas) for a target.

    Re-runs :func:`~repro.polyhedral.cells.induced_subdivision` on the
    stored supports + lifting — exact integer work, no retries — and
    cross-checks cell count and mixed volume against the stored summary.
    Returns ``None`` on any mismatch.
    """
    from ..polyhedral.cells import DegenerateLiftingError, induced_subdivision

    loaded = store.get(polyhedral_key(target))
    if loaded is None:
        return None
    meta, arrays = loaded
    try:
        neqs = int(meta["neqs"])
        supports = [arrays[f"support_{i}"] for i in range(neqs)]
        lifting = [arrays[f"lifting_{i}"] for i in range(neqs)]
        subdivision = induced_subdivision(supports, lifting)
    except (KeyError, ValueError, DegenerateLiftingError):
        return None
    if subdivision.n_cells != int(meta["n_cells"]):
        return None
    if subdivision.mixed_volume != int(meta["mixed_volume"]):
        return None
    subdivision.lifting_seed = meta.get("lifting_seed")
    subdivision.relifts = int(meta.get("relifts", 0))
    return subdivision


def validate_lifting_seed(store: ArtifactStore, target) -> Optional[bool]:
    """Does the stored lifting match its journaled seed?

    Replays the dedicated lifting stream — ``default_rng(seed)`` drawn
    ``relifts + 1`` times, as :func:`~repro.polyhedral.cells.
    mixed_cells` does — and compares the final draw against the stored
    lifting arrays.  ``None`` when the artifact is absent or carries no
    seed; otherwise the verdict.
    """
    from ..polyhedral.supports import random_lifting

    loaded = store.get(polyhedral_key(target))
    if loaded is None:
        return None
    meta, arrays = loaded
    seed = meta.get("lifting_seed")
    if seed is None:
        return None
    neqs = int(meta["neqs"])
    supports = [arrays[f"support_{i}"] for i in range(neqs)]
    stored = [arrays[f"lifting_{i}"] for i in range(neqs)]
    rng = np.random.default_rng(int(seed))
    bound = int(meta.get("lifting_bound", 4096))
    for _ in range(int(meta.get("relifts", 0)) + 1):
        lifting = random_lifting(supports, rng, bound=bound)
    return all(
        np.array_equal(a, b) for a, b in zip(lifting, stored)
    )
