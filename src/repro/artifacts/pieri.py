"""Pieri artifacts: one solved generic instance per shape ``(m, p, q)``.

The paper's offline/online split, made durable: the expensive tree
solve over a general-position instance happens once per shape and is
stored here; every later query of the same shape warm-starts a
``d(m, p, q)``-path coefficient-parameter continuation from the cached
instance (:func:`repro.schubert.continue_to_instance`) instead of
re-running the ``sum(level counts)``-path tree.

An artifact holds the generic instance (planes + interpolation points),
its full solution set in the standard chart, the root count it must
have, and the tree's per-level job counts (the memoized poset/tree
summary).  Loading re-validates the counts — a cached instance with a
missing solution would silently lose endpoints of every warm query, so
an incomplete artifact reads as a miss, never as an answer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .fingerprints import pieri_fingerprint
from .store import ArtifactStore

__all__ = ["pieri_key", "store_pieri_generic", "load_pieri_generic"]


def pieri_key(m: int, p: int, q: int) -> str:
    """Store key of the shape (alias of :func:`pieri_fingerprint`)."""
    return pieri_fingerprint(m, p, q)


def store_pieri_generic(
    store: ArtifactStore,
    instance,
    solutions: List[np.ndarray],
    jobs_per_level: Optional[dict] = None,
) -> str:
    """Persist a *fully* solved generic instance; returns the key.

    The caller must only store complete solves (every expected root
    found, zero failures) — :meth:`~repro.schubert.PieriSolver.solve`
    enforces this before calling in.
    """
    problem = instance.problem
    key = pieri_key(problem.m, problem.p, problem.q)
    meta = {
        "kind": "pieri",
        "m": int(problem.m),
        "p": int(problem.p),
        "q": int(problem.q),
        "d": len(solutions),
        "jobs_per_level": {
            str(k): int(v) for k, v in (jobs_per_level or {}).items()
        },
    }
    arrays = {
        "planes": np.stack(instance.planes).astype(complex),
        "points": np.asarray(instance.points, dtype=complex),
        "solutions": np.stack(solutions).astype(complex),
    }
    store.put(key, meta, arrays)
    return key


def load_pieri_generic(
    store: ArtifactStore, m: int, p: int, q: int
) -> Optional[Tuple[object, List[np.ndarray], dict]]:
    """``(generic_instance, solutions, meta)`` for a shape, or ``None``.

    Validates shape and completeness: the solution count must equal the
    Pieri root count ``d(m, p, q)`` and the plane/point arrays must
    match the problem dimensions, else the artifact reads as a miss.
    """
    from ..schubert.poset import pieri_root_count
    from ..schubert.solver import PieriInstance, PieriProblem

    loaded = store.get(pieri_key(m, p, q))
    if loaded is None:
        return None
    meta, arrays = loaded
    try:
        if meta.get("kind") != "pieri" or (
            (meta["m"], meta["p"], meta["q"]) != (m, p, q)
        ):
            return None
        problem = PieriProblem(m, p, q)
        n = problem.num_conditions
        planes = arrays["planes"]
        points = arrays["points"]
        solutions = arrays["solutions"]
        expected = pieri_root_count(m, p, q)
        if planes.shape != (n, problem.ambient, m):
            return None
        if points.shape != (n,):
            return None
        if solutions.shape[0] != expected or int(meta["d"]) != expected:
            return None
        instance = PieriInstance(
            problem,
            [planes[i] for i in range(n)],
            [complex(s) for s in points],
        )
    except (KeyError, ValueError, TypeError):
        return None
    return instance, [solutions[i] for i in range(solutions.shape[0])], meta
