"""Structure fingerprints for the artifact store.

Keys follow the :mod:`repro.kernels.cache` idiom — a SHA-1 over the
*structure* of a problem, never its floating-point data — extended to
the two problem families the store serves:

- **Newton-polytope supports**: two polynomial systems share every
  cached polyhedral artifact (mixed cells, generic coefficient system,
  solved start endpoints) iff they share supports, because the BKK
  count, the subdivision and the continuation structure depend on the
  supports alone.
- **Pieri shapes** ``(m, p, q)``: every pole-placement query of the
  same shape shares the poset/tree, the root count ``d(m, p, q)`` and —
  the expensive part — one solved generic instance to continue from.

Fingerprints are deliberately *insensitive to coefficients*: a warm
lookup must hit for a brand-new random instance of a known structure.
Exact coefficient identity (artifact kind (c) of the store) reuses
:func:`repro.kernels.cache.coefficient_fingerprint` on top of the
structure key.

>>> pieri_fingerprint(2, 2, 1) == pieri_fingerprint(2, 2, 1)
True
>>> pieri_fingerprint(2, 2, 1) != pieri_fingerprint(2, 2, 0)
True
"""

from __future__ import annotations

import hashlib
from typing import Sequence

__all__ = [
    "supports_fingerprint",
    "system_fingerprint",
    "pieri_fingerprint",
]


def supports_fingerprint(supports: Sequence[Sequence[tuple]]) -> str:
    """Hash of a tuple-of-support-sets (one set of exponent tuples per
    equation), insensitive to coefficients.

    Each equation's support is canonicalized (lex-sorted) before
    hashing, so the key depends on the support *sets* — not on the
    monomial order a particular caller enumerated them in.  Equation
    order still matters: it indexes the start data.
    """
    h = hashlib.sha1(f"supports|{len(supports)}".encode())
    for support in supports:
        h.update(b"|eq|")
        rows = sorted(tuple(int(c) for c in point) for point in support)
        for point in rows:
            h.update(("," .join(str(c) for c in point) + ";").encode())
    return "poly-" + h.hexdigest()


def system_fingerprint(system) -> str:
    """Supports fingerprint of a :class:`~repro.systems.PolynomialSystem`."""
    from ..polyhedral.supports import supports_of

    return supports_fingerprint(supports_of(system))


def pieri_fingerprint(m: int, p: int, q: int) -> str:
    """Key of the Pieri shape — fixes ambient dims, poset and root count."""
    h = hashlib.sha1(f"pieri|{int(m)}|{int(p)}|{int(q)}".encode())
    return "pieri-" + h.hexdigest()
