"""Structure-keyed artifact cache: solve ab-initio once, continue ever after.

The source paper's application — pole placement via Pieri homotopies —
solves the *same* generic instance for every query; only the target
poles change.  Polyhedral solves likewise re-enumerate mixed cells and
re-track phase 1 for every system sharing one Newton-polytope
structure.  This package makes that offline/online split durable and
process-shared:

- :class:`ArtifactStore` (:mod:`repro.artifacts.store`) — a disk-backed
  JSON + NPZ store with atomic-rename commits; torn or corrupted
  entries read as misses, never as answers.
- :mod:`repro.artifacts.fingerprints` — structure keys, extending the
  :mod:`repro.kernels.cache` idiom to Newton-polytope support tuples
  and Pieri shapes.
- :mod:`repro.artifacts.pieri` / :mod:`repro.artifacts.polyhedral` —
  the codecs: a solved generic Pieri instance per shape, and mixed
  cells + generic coefficients + solved phase-1 endpoints per support
  structure.

Consumers: ``repro.homotopy.solve(..., cache=...)`` and
``PieriSolver.solve(cache=...)`` consult the store and route warm
queries through coefficient-parameter continuation; ``repro.serve``
batches concurrent warm queries into stacked fronts; the sweep engine
shares one store across workers via ``$REPRO_ARTIFACT_STORE``.

>>> import numpy as np, tempfile
>>> from repro.schubert import PieriInstance, PieriSolver
>>> store = ArtifactStore(tempfile.mkdtemp())
>>> inst = PieriInstance.random(2, 2, 0, np.random.default_rng(0))
>>> cold = PieriSolver(inst, seed=1).solve(mode="batch", cache=store)
>>> cold.cache["status"]
'cold'
>>> query = PieriInstance.random(2, 2, 0, np.random.default_rng(7))
>>> warm = PieriSolver(query, seed=1).solve(mode="batch", cache=store)
>>> warm.cache["status"], warm.cache["n_paths"]   # d(2,2,0) == 2 paths
('warm', 2)
"""

from .fingerprints import (
    pieri_fingerprint,
    supports_fingerprint,
    system_fingerprint,
)
from .pieri import load_pieri_generic, pieri_key, store_pieri_generic
from .polyhedral import (
    load_polyhedral_start,
    load_subdivision,
    polyhedral_key,
    store_polyhedral_start,
    validate_lifting_seed,
)
from .store import STORE_ENV, ArtifactStore, default_store, resolve_store

__all__ = [
    "ArtifactStore",
    "STORE_ENV",
    "default_store",
    "resolve_store",
    "supports_fingerprint",
    "system_fingerprint",
    "pieri_fingerprint",
    "pieri_key",
    "store_pieri_generic",
    "load_pieri_generic",
    "polyhedral_key",
    "store_polyhedral_start",
    "load_polyhedral_start",
    "load_subdivision",
    "validate_lifting_seed",
]
