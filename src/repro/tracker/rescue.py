"""Tracker-level path rescue: re-patch escaping paths and resume them.

A path that blows past the divergence bound mid-way is not necessarily
going to infinity — it may simply be leaving the *chart* its homotopy
tracks in.  The Pieri determinant homotopies hit this constantly (the
pinned entry of the moving column tends to zero; re-pinning the largest
entry re-scales the same geometric path into bounded coordinates), and
plain polynomial homotopies hit it on genuinely infinite endpoints
(where a projective patch turns "diverged" into a well-scaled point
with first coordinate tending to zero).

The generalized mechanism lives here, one layer below the solvers:
any homotopy may implement
:meth:`~repro.tracker.interface.HomotopyFunction.rescale_patch`,
returning ``(new_homotopy, new_x)`` — the same path in better
coordinates — and optionally
:meth:`~repro.tracker.interface.HomotopyFunction.finalize_rescued` to
map a finished result back to the caller's coordinate conventions.
:func:`track_with_rescue` drives one path through that protocol;
:func:`rescue_diverged` sweeps a whole result list (the batch-mode
pipeline: diverged paths are rare, so they resume on the scalar
tracker).  The Schubert solver's chart switching and the blackbox
solver's projective rescue are both thin clients of these two calls.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..telemetry import current_telemetry
from .result import PathResult, PathStatus

__all__ = [
    "track_with_rescue",
    "rescue_diverged",
    "keep_rescue",
    "fold_rescued_effort",
]


def keep_rescue(resumed: PathResult) -> bool:
    """Does a resumed path's outcome supersede the diverged original?

    Only a *finished* classification does: SUCCESS, AT_INFINITY (the
    projective patch classified the escape), or an endgame-measured
    singularity.  Anything else keeps the original diverged result,
    exactly as the Schubert chart switch always behaved.
    """
    return (
        resumed.success
        or resumed.status is PathStatus.AT_INFINITY
        or (
            resumed.status is PathStatus.SINGULAR
            and resumed.winding_number is not None
        )
    )


def fold_rescued_effort(resumed: PathResult, prior: PathResult) -> PathResult:
    """Account the diverged attempt's effort on the kept rescue result.

    Shared by every rescue driver (the scalar pipeline here and the
    batched Schubert chart-switch requeue) so a rescued path reports
    the same bookkeeping — ``stats.rescues``, accumulated step/Newton
    counts, the *original* start point — no matter which driver rescued
    it.
    """
    resumed.stats.rescues = prior.stats.rescues + 1
    resumed.stats.steps_accepted += prior.stats.steps_accepted
    resumed.stats.steps_rejected += prior.stats.steps_rejected
    resumed.stats.newton_iterations += prior.stats.newton_iterations
    resumed.stats.seconds += prior.stats.seconds
    resumed.start = np.asarray(prior.start, dtype=complex)
    return resumed


def track_with_rescue(
    tracker,
    homotopy,
    start: Sequence[complex],
    path_id: int = -1,
    t_start: float = 0.0,
    max_rescues: int = 1,
):
    """Track one path; on mid-way divergence re-patch and resume it.

    Returns ``(result, final_homotopy)``: the homotopy whose coordinates
    the result's solution lives in — the original one, or the last
    re-patched one if a rescue succeeded.  A rescue is kept only when
    the resumed path *finishes* (SUCCESS, classified SINGULAR, or
    AT_INFINITY after :meth:`finalize_rescued`); otherwise the original
    diverged result stands, exactly as the Schubert chart-switch always
    behaved.
    """
    result = tracker.track(homotopy, start, path_id=path_id, t_start=t_start)
    hom = homotopy
    for _ in range(max_rescues):
        if result.status is not PathStatus.DIVERGED:
            break
        t = result.stats.t_reached
        if not 0.0 < t < 1.0:
            break
        patch = hom.rescale_patch(result.solution, t)
        if patch is None:
            break
        new_hom, x1 = patch
        tel = current_telemetry()
        if tel is not None:
            tel.count("tracker.rescue_attempts")
            tel.instant("rescue_attempt", "tracker", path=int(path_id), t=float(t))
        resumed = tracker.track(new_hom, x1, path_id=path_id, t_start=t)
        resumed = new_hom.finalize_rescued(resumed)
        if not keep_rescue(resumed):
            break
        if tel is not None:
            tel.count("tracker.rescues_kept")
        result, hom = fold_rescued_effort(resumed, result), new_hom
    return result, hom


def rescue_diverged(
    tracker,
    homotopy,
    results: List[PathResult],
) -> tuple[List[PathResult], int]:
    """Re-patch and resume every DIVERGED path of a finished batch.

    ``results`` is mutated in place (and returned) together with the
    number of paths whose classification a rescue changed.  Each rescued
    path resumes from its own reached ``t`` on the (scalar) ``tracker``
    — divergence is the rare case, so there is no batching win to chase
    here.
    """
    changed = 0
    for i, r in enumerate(results):
        if r.status is not PathStatus.DIVERGED:
            continue
        t = r.stats.t_reached
        if not 0.0 < t < 1.0:
            continue
        patch = homotopy.rescale_patch(r.solution, t)
        if patch is None:
            continue
        new_hom, x1 = patch
        tel = current_telemetry()
        if tel is not None:
            tel.count("tracker.rescue_attempts")
            tel.instant("rescue_attempt", "tracker", path=int(r.path_id), t=float(t))
        resumed = tracker.track(new_hom, x1, path_id=r.path_id, t_start=t)
        resumed = new_hom.finalize_rescued(resumed)
        if keep_rescue(resumed):
            if tel is not None:
                tel.count("tracker.rescues_kept")
            results[i] = fold_rescued_effort(resumed, r)
            changed += 1
    return results, changed
