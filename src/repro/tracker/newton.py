"""Newton correctors.

Three flavours: a corrector against a :class:`HomotopyFunction` at fixed t
(the inner loop of the path tracker), a structure-of-arrays corrector
against a :class:`BatchHomotopy` that runs the same iteration on a whole
batch of paths with one stacked ``np.linalg.solve`` per sweep, and a root
refiner for plain :class:`~repro.polynomials.PolynomialSystem` objects
(used by endgames and by tests to sharpen solutions to near machine
precision).

The batch corrector is semantically path-by-path identical to the scalar
one: each path converges, underflows, or goes singular by exactly the same
criteria, and paths that finish early are masked out of later sweeps so no
work (or divergence) from one path can perturb another.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .interface import BatchHomotopy, HomotopyFunction, _per_path_t

__all__ = [
    "NewtonResult",
    "BatchNewtonResult",
    "newton_correct",
    "batch_newton_correct",
    "newton_refine_system",
]

#: contraction factor gating loose update-size acceptance: an update may
#: take the loose exit only when it shrank to at most this fraction of
#: the previous update — evidence the iteration is in its quadratic
#: regime, not inching along a near-singular stretch
CONTRACTION = 0.1


@dataclass
class NewtonResult:
    """Outcome of a Newton iteration.

    ``jacobian`` (requested via ``want_jacobian``) is ``J_x`` at (or,
    under update-size acceptance, within ``update_tol`` of) the returned
    point — available when convergence was declared on the residual
    check (whose evaluation produced the matrix anyway) or on a small
    update (the final sweep's matrix, off by that update).  Underflow-
    and tail-converged runs moved ``x`` a noise-floor-sized but
    *unvalidated* distance after the last Jacobian evaluation, so their
    matrix is never handed out.  ``jac_evaluations`` counts the
    ``evaluate_and_jacobian`` calls this run made (the tracker's
    effort accounting).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    singular: bool = False
    jacobian: np.ndarray | None = None
    jac_evaluations: int = 0


def _solve(jac: np.ndarray, res: np.ndarray) -> np.ndarray | None:
    """Solve J dx = -res, returning None when J is numerically singular."""
    try:
        dx = np.linalg.solve(jac, -res)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(dx)):
        return None
    return dx


def newton_correct(
    homotopy: HomotopyFunction,
    x: np.ndarray,
    t: float,
    tol: float = 1e-10,
    max_iterations: int = 6,
    want_jacobian: bool = False,
    update_tol: float | None = None,
    loose_tol: float | None = None,
    fail_fast: bool = False,
    frozen: bool = False,
) -> NewtonResult:
    """Newton's method on ``H(., t) = 0`` starting from ``x``.

    Convergence is declared on the max-norm of the *residual*; the corrector
    also stops early if the update underflows (quadratic convergence hit the
    noise floor).  With ``want_jacobian`` the residual-converged outcome
    carries ``J_x`` at the accepted point (see :class:`NewtonResult`) —
    exactly the matrix the tracker's next tangent solve needs.

    ``update_tol`` additionally accepts on *update size* (PHCpack's path
    corrector criterion): once ``|dx|`` falls below it, quadratic
    convergence puts the next residual below tolerance, so the
    verification sweep is skipped — one fused evaluation saved per
    accepted step.  The handed-out Jacobian is then the final sweep's,
    current to within ``|dx| <= update_tol`` of the returned point —
    far more accuracy than a tangent solve needs.  ``loose_tol`` (>=
    ``update_tol``) accepts a step earlier still, but only with
    *quadratic-contraction evidence*: the update must also have shrunk
    to at most :data:`CONTRACTION` times the previous one, so a
    corrector that is merely inching along (near-singular endgame
    region, wandering path) never takes the loose exit and falls back
    to the strict criteria.

    ``fail_fast`` rejects as soon as an update *grows*: a contracting
    Newton run shrinks its update every sweep, so growth means the
    prediction missed the basin and the remaining sweeps are almost
    always wasted — the tracker learns of the rejection several fused
    evaluations earlier and retries with a smaller step.

    ``frozen`` runs the *chord* (frozen-Jacobian) variant instead:
    ``J_x`` is evaluated once, fused, at the entry point, factored into
    every subsequent solve, and residuals come from cheap eval-only
    sweeps — so a whole corrector run charges exactly one Jacobian
    evaluation.  The iteration contracts linearly at rate
    ``O(|x - x_entry|)``, which a higher-order predictor keeps tiny;
    it is the operator-recycling half of the predictor pipeline and is
    never used by the seed Euler loop.
    """
    x = np.asarray(x, dtype=complex).copy()
    if frozen:
        return _newton_correct_frozen(
            homotopy, x, t, tol, max_iterations, want_jacobian, update_tol
        )
    residual = float("inf")
    evals = 0
    dx_prev = np.inf
    for it in range(1, max_iterations + 1):
        res, jac = homotopy.evaluate_and_jacobian_x(x, t)
        evals += 1
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(
                x, True, it - 1, residual,
                jacobian=jac if want_jacobian else None,
                jac_evaluations=evals,
            )
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(
                x, False, it - 1, residual, singular=True,
                jac_evaluations=evals,
            )
        x = x + dx
        dxnorm = float(np.max(np.abs(dx)))
        # update-size acceptance is deliberately *absolute*, like the
        # residual criterion it replaces: a relative threshold would
        # balloon on diverging paths (|x| huge) and accept junk steps
        if update_tol is not None and (
            dxnorm <= update_tol
            or (
                loose_tol is not None
                and dxnorm <= loose_tol
                # finite guard: dx_prev is inf on the first sweep, and
                # a single update is no contraction evidence at all
                and np.isfinite(dx_prev)
                and dxnorm <= CONTRACTION * dx_prev
            )
        ):
            return NewtonResult(
                x, True, it, residual,
                jacobian=jac if want_jacobian else None,
                jac_evaluations=evals,
            )
        if fail_fast and dxnorm > dx_prev:
            return NewtonResult(x, False, it, residual, jac_evaluations=evals)
        dx_prev = dxnorm
        if np.max(np.abs(dx)) <= 1e-15 * max(1.0, np.max(np.abs(x))):
            res = homotopy.evaluate(x, t)
            residual = float(np.max(np.abs(res)))
            return NewtonResult(
                x, residual <= tol * 1e3, it, residual, jac_evaluations=evals
            )
    res = homotopy.evaluate(x, t)
    residual = float(np.max(np.abs(res)))
    return NewtonResult(
        x, residual <= tol, max_iterations, residual, jac_evaluations=evals
    )


def _newton_correct_frozen(
    homotopy: HomotopyFunction,
    x: np.ndarray,
    t: float,
    tol: float,
    max_iterations: int,
    want_jacobian: bool,
    update_tol: float | None,
) -> NewtonResult:
    """Chord corrector: one fused evaluation, then eval-only sweeps.

    The handed-out Jacobian is the frozen entry matrix — stale by the
    total correction, which the error-model step control keeps below
    the prediction target, well within tangent-solve accuracy.
    """
    res, jac = homotopy.evaluate_and_jacobian_x(x, t)
    handout = jac if want_jacobian else None
    residual = float(np.max(np.abs(res)))
    if residual <= tol:
        return NewtonResult(
            x, True, 0, residual, jacobian=handout, jac_evaluations=1
        )
    for it in range(1, max_iterations + 1):
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(
                x, False, it - 1, residual, singular=True, jac_evaluations=1
            )
        x = x + dx
        dxnorm = np.max(np.abs(dx))
        if update_tol is not None and dxnorm <= update_tol:
            return NewtonResult(
                x, True, it, residual, jacobian=handout, jac_evaluations=1
            )
        res = homotopy.evaluate(x, t)
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(
                x, True, it, residual, jacobian=handout, jac_evaluations=1
            )
        if dxnorm <= 1e-15 * max(1.0, np.max(np.abs(x))):
            return NewtonResult(
                x, residual <= tol * 1e3, it, residual, jac_evaluations=1
            )
    return NewtonResult(x, False, max_iterations, residual, jac_evaluations=1)


@dataclass
class BatchNewtonResult:
    """Outcome of one batched Newton run; leading axis is the path axis.

    ``jacobian``/``jac_current`` are populated only under
    ``want_jacobian``: rows with ``jac_current`` True hold ``J_x`` at
    the returned point (residual-check convergence — the evaluation
    that declared convergence produced the matrix) or within the
    update-size threshold of it (update acceptance — the final sweep's
    matrix), ready for the tracker to recycle into its next tangent
    solve.  Underflow- and tail-converged rows have a stale matrix and
    stay False.
    ``jac_evaluations`` counts, per path, the fused
    ``evaluate_and_jacobian_batch`` sweeps the path took part in.
    """

    x: np.ndarray           # (npaths, dim) corrected points
    converged: np.ndarray   # (npaths,) bool
    iterations: np.ndarray  # (npaths,) int
    residual: np.ndarray    # (npaths,) float max-norm residuals
    singular: np.ndarray    # (npaths,) bool
    jac_evaluations: np.ndarray | None = None  # (npaths,) int
    jacobian: np.ndarray | None = None         # (npaths, dim, dim)
    jac_current: np.ndarray | None = None      # (npaths,) bool


def _solve_batch(jac: np.ndarray, res: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve J_i dx_i = -res_i over a stack, flagging singular members.

    The stacked LAPACK call raises for the whole batch when any member is
    exactly singular, so on failure we fall back to per-member solves and
    mark only the offenders.
    """
    k = jac.shape[0]
    ok = np.ones(k, dtype=bool)
    dx = np.zeros_like(res)
    try:
        dx = np.linalg.solve(jac, -res[..., None])[..., 0]
    except np.linalg.LinAlgError:
        for i in range(k):
            try:
                dx[i] = np.linalg.solve(jac[i], -res[i])
            except np.linalg.LinAlgError:
                ok[i] = False
    ok &= np.all(np.isfinite(dx), axis=1)
    return dx, ok


def batch_newton_correct(
    homotopy: BatchHomotopy,
    X: np.ndarray,
    t,
    tol: float = 1e-10,
    max_iterations: int = 6,
    active: np.ndarray | None = None,
    want_jacobian: bool = False,
    update_tol: float | None = None,
    loose_tol: float | None = None,
    fail_fast: bool = False,
    frozen: bool = False,
) -> BatchNewtonResult:
    """Newton's method on ``H(., t_i) = 0`` for a whole batch of paths.

    ``X`` is ``(npaths, dim)``, ``t`` a scalar or ``(npaths,)`` vector.
    Paths where ``active`` is False are left untouched (reported as not
    converged with infinite residual); among active paths, each one
    converges, underflows, or is flagged singular by exactly the criteria
    of :func:`newton_correct` (including the ``update_tol`` update-size
    acceptance, the contraction-gated ``loose_tol`` exit, and the
    ``fail_fast`` growing-update rejection),
    and finished paths drop out of later sweeps.  Each
    sweep costs one batched evaluation plus one stacked
    ``np.linalg.solve`` over the still-working paths.  With
    ``want_jacobian`` the residual- and update-converged rows
    additionally hand out ``J_x`` at (or within ``update_tol`` of)
    their accepted point (see :class:`BatchNewtonResult`).  ``frozen``
    selects the chord variant (see :func:`newton_correct`): one fused
    sweep at entry, eval-only residual sweeps after — each active path
    is charged exactly one Jacobian evaluation.
    """
    X = np.asarray(X, dtype=complex).copy()
    if X.ndim != 2:
        raise ValueError("X must have shape (npaths, dim)")
    npaths = X.shape[0]
    tt = _per_path_t(t, npaths)
    converged = np.zeros(npaths, dtype=bool)
    singular = np.zeros(npaths, dtype=bool)
    iterations = np.zeros(npaths, dtype=np.int64)
    residual = np.full(npaths, np.inf)
    jac_evals = np.zeros(npaths, dtype=np.int64)
    jac_out = jac_cur = None
    if want_jacobian:
        jac_out = np.zeros((npaths, X.shape[1], X.shape[1]), dtype=complex)
        jac_cur = np.zeros(npaths, dtype=bool)

    def result() -> BatchNewtonResult:
        return BatchNewtonResult(
            X, converged, iterations, residual, singular,
            jac_evaluations=jac_evals, jacobian=jac_out, jac_current=jac_cur,
        )

    if active is None:
        work = np.arange(npaths)
    else:
        work = np.flatnonzero(np.asarray(active, dtype=bool))
    if frozen:
        return _batch_frozen_sweeps(
            homotopy, X, tt, tol, max_iterations, update_tol, work,
            converged, singular, iterations, residual, jac_evals,
            jac_out, jac_cur, result,
        )
    bh_work = None
    local = np.arange(0)
    dx_prev = np.full(npaths, np.inf)
    for it in range(1, max_iterations + 1):
        if work.size == 0:
            return result()
        bh_work = homotopy.restrict(work)
        # positions of the surviving rows within bh_work: restriction
        # composes, so mid-sweep re-checks can reuse this restricted
        # view instead of re-slicing the full stack from scratch
        local = np.arange(work.size)
        res, jac = bh_work.evaluate_and_jacobian_batch(X[work], tt[work])
        jac_evals[work] += 1
        resnorm = np.max(np.abs(res), axis=1)
        residual[work] = resnorm
        done = resnorm <= tol
        converged[work[done]] = True
        iterations[work[done]] = it - 1
        if want_jacobian and np.any(done):
            jac_out[work[done]] = jac[done]
            jac_cur[work[done]] = True
        work, res, jac, local = work[~done], res[~done], jac[~done], local[~done]
        if work.size == 0:
            return result()
        dx, ok = _solve_batch(jac, res)
        singular[work[~ok]] = True
        iterations[work[~ok]] = it - 1
        work, dx, jac, local = work[ok], dx[ok], jac[ok], local[ok]
        if work.size == 0:
            return result()
        X[work] += dx
        xnorm = np.maximum(1.0, np.max(np.abs(X[work]), axis=1))
        dxnorm = np.max(np.abs(dx), axis=1)
        if update_tol is not None:
            # update-size acceptance: quadratic convergence puts the
            # next residual below tolerance, so skip its verification
            # sweep; the handed-out Jacobian is the final sweep's,
            # current to within |dx| of the accepted point.  The
            # threshold is absolute, like the residual criterion it
            # replaces — a relative one balloons on diverging paths
            small = dxnorm <= update_tol
            if loose_tol is not None:
                prev = dx_prev[work]
                small |= (
                    (dxnorm <= loose_tol)
                    # finite guard: prev is inf on a row's first sweep,
                    # and one update is no contraction evidence at all
                    & np.isfinite(prev)
                    & (dxnorm <= CONTRACTION * prev)
                )
            if np.any(small):
                s = work[small]
                converged[s] = True
                iterations[s] = it
                if want_jacobian:
                    jac_out[s] = jac[small]
                    jac_cur[s] = True
                keep = ~small
                work, dx, local = work[keep], dx[keep], local[keep]
                xnorm, dxnorm = xnorm[keep], dxnorm[keep]
                if work.size == 0:
                    return result()
        if fail_fast:
            grew = dxnorm > dx_prev[work]
            if np.any(grew):
                iterations[work[grew]] = it
                keep = ~grew
                work, dx, local = work[keep], dx[keep], local[keep]
                xnorm, dxnorm = xnorm[keep], dxnorm[keep]
                if work.size == 0:
                    return result()
        dx_prev[work] = dxnorm
        # update underflow: quadratic convergence hit the noise floor
        under = dxnorm <= 1e-15 * xnorm
        if np.any(under):
            u = work[under]
            rn = np.max(
                np.abs(
                    bh_work.restrict(local[under]).evaluate_batch(X[u], tt[u])
                ),
                axis=1,
            )
            residual[u] = rn
            converged[u] = rn <= tol * 1e3
            iterations[u] = it
            work, local = work[~under], local[~under]
    if work.size:
        sub = homotopy.restrict(work) if bh_work is None else bh_work.restrict(local)
        rn = np.max(np.abs(sub.evaluate_batch(X[work], tt[work])), axis=1)
        residual[work] = rn
        converged[work] = rn <= tol
        iterations[work] = max_iterations
    return result()


def _batch_frozen_sweeps(
    homotopy, X, tt, tol, max_iterations, update_tol, work,
    converged, singular, iterations, residual, jac_evals,
    jac_out, jac_cur, result,
):
    """Chord sweeps for :func:`batch_newton_correct` (``frozen=True``).

    One fused evaluation per active path builds the frozen per-path
    Jacobians; every later sweep is an eval-only residual pass plus a
    stacked solve against the frozen stack.  Convergence criteria (and
    their ordering) mirror the scalar :func:`_newton_correct_frozen`
    path by path.
    """
    if work.size == 0:
        return result()
    bh_work = homotopy.restrict(work)
    local = np.arange(work.size)
    res, jac = bh_work.evaluate_and_jacobian_batch(X[work], tt[work])
    jac_evals[work] += 1
    if jac_out is not None:
        jac_out[work] = jac
    resnorm = np.max(np.abs(res), axis=1)
    residual[work] = resnorm
    done = resnorm <= tol
    converged[work[done]] = True
    if jac_cur is not None:
        jac_cur[work[done]] = True
    keep = ~done
    work, res, jac, local = work[keep], res[keep], jac[keep], local[keep]
    for it in range(1, max_iterations + 1):
        if work.size == 0:
            return result()
        dx, ok = _solve_batch(jac, res)
        singular[work[~ok]] = True
        iterations[work[~ok]] = it - 1
        work, dx, jac, local = work[ok], dx[ok], jac[ok], local[ok]
        if work.size == 0:
            return result()
        X[work] += dx
        dxnorm = np.max(np.abs(dx), axis=1)
        if update_tol is not None:
            small = dxnorm <= update_tol
            if np.any(small):
                s = work[small]
                converged[s] = True
                iterations[s] = it
                if jac_cur is not None:
                    jac_cur[s] = True
                keep = ~small
                work, dx, jac, local = (
                    work[keep], dx[keep], jac[keep], local[keep]
                )
                dxnorm = dxnorm[keep]
                if work.size == 0:
                    return result()
        res = bh_work.restrict(local).evaluate_batch(X[work], tt[work])
        resnorm = np.max(np.abs(res), axis=1)
        residual[work] = resnorm
        done = resnorm <= tol
        # the noise floor catches rows whose update underflowed without
        # meeting the residual tolerance: loosened acceptance, no J
        under = ~done & (
            dxnorm <= 1e-15 * np.maximum(1.0, np.max(np.abs(X[work]), axis=1))
        )
        loose = under & (resnorm <= tol * 1e3)
        converged[work[done | loose]] = True
        iterations[work[done | under]] = it
        if jac_cur is not None:
            jac_cur[work[done]] = True
        keep = ~(done | under)
        work, res, jac, local = work[keep], res[keep], jac[keep], local[keep]
    if work.size:
        iterations[work] = max_iterations
    return result()


def newton_refine_system(
    system,
    x: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int = 20,
) -> NewtonResult:
    """Refine an approximate root of a square :class:`PolynomialSystem`."""
    if not system.is_square():
        raise ValueError("Newton refinement needs a square system")
    x = np.asarray(x, dtype=complex).copy()
    residual = float("inf")
    for it in range(1, max_iterations + 1):
        res, jac = system.evaluate_and_jacobian(x)
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(x, True, it - 1, residual)
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(x, False, it - 1, residual, singular=True)
        x = x + dx
    res = system.evaluate(x)
    residual = float(np.max(np.abs(res)))
    return NewtonResult(x, residual <= tol, max_iterations, residual)
