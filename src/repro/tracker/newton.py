"""Newton correctors.

Two flavours: a corrector against a :class:`HomotopyFunction` at fixed t
(the inner loop of the path tracker) and a root refiner for plain
:class:`~repro.polynomials.PolynomialSystem` objects (used by endgames and
by tests to sharpen solutions to near machine precision).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .interface import HomotopyFunction

__all__ = ["NewtonResult", "newton_correct", "newton_refine_system"]


@dataclass
class NewtonResult:
    """Outcome of a Newton iteration."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    singular: bool = False


def _solve(jac: np.ndarray, res: np.ndarray) -> np.ndarray | None:
    """Solve J dx = -res, returning None when J is numerically singular."""
    try:
        dx = np.linalg.solve(jac, -res)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(dx)):
        return None
    return dx


def newton_correct(
    homotopy: HomotopyFunction,
    x: np.ndarray,
    t: float,
    tol: float = 1e-10,
    max_iterations: int = 6,
) -> NewtonResult:
    """Newton's method on ``H(., t) = 0`` starting from ``x``.

    Convergence is declared on the max-norm of the *residual*; the corrector
    also stops early if the update underflows (quadratic convergence hit the
    noise floor).
    """
    x = np.asarray(x, dtype=complex).copy()
    residual = float("inf")
    for it in range(1, max_iterations + 1):
        res, jac = homotopy.evaluate_and_jacobian_x(x, t)
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(x, True, it - 1, residual)
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(x, False, it - 1, residual, singular=True)
        x = x + dx
        if np.max(np.abs(dx)) <= 1e-15 * max(1.0, np.max(np.abs(x))):
            res = homotopy.evaluate(x, t)
            residual = float(np.max(np.abs(res)))
            return NewtonResult(x, residual <= tol * 1e3, it, residual)
    res = homotopy.evaluate(x, t)
    residual = float(np.max(np.abs(res)))
    return NewtonResult(x, residual <= tol, max_iterations, residual)


def newton_refine_system(
    system,
    x: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int = 20,
) -> NewtonResult:
    """Refine an approximate root of a square :class:`PolynomialSystem`."""
    if not system.is_square():
        raise ValueError("Newton refinement needs a square system")
    x = np.asarray(x, dtype=complex).copy()
    residual = float("inf")
    for it in range(1, max_iterations + 1):
        res, jac = system.evaluate_and_jacobian(x)
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(x, True, it - 1, residual)
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(x, False, it - 1, residual, singular=True)
        x = x + dx
    res = system.evaluate(x)
    residual = float(np.max(np.abs(res)))
    return NewtonResult(x, residual <= tol, max_iterations, residual)
