"""Newton correctors.

Three flavours: a corrector against a :class:`HomotopyFunction` at fixed t
(the inner loop of the path tracker), a structure-of-arrays corrector
against a :class:`BatchHomotopy` that runs the same iteration on a whole
batch of paths with one stacked ``np.linalg.solve`` per sweep, and a root
refiner for plain :class:`~repro.polynomials.PolynomialSystem` objects
(used by endgames and by tests to sharpen solutions to near machine
precision).

The batch corrector is semantically path-by-path identical to the scalar
one: each path converges, underflows, or goes singular by exactly the same
criteria, and paths that finish early are masked out of later sweeps so no
work (or divergence) from one path can perturb another.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .interface import BatchHomotopy, HomotopyFunction, _per_path_t

__all__ = [
    "NewtonResult",
    "BatchNewtonResult",
    "newton_correct",
    "batch_newton_correct",
    "newton_refine_system",
]


@dataclass
class NewtonResult:
    """Outcome of a Newton iteration."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    singular: bool = False


def _solve(jac: np.ndarray, res: np.ndarray) -> np.ndarray | None:
    """Solve J dx = -res, returning None when J is numerically singular."""
    try:
        dx = np.linalg.solve(jac, -res)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(dx)):
        return None
    return dx


def newton_correct(
    homotopy: HomotopyFunction,
    x: np.ndarray,
    t: float,
    tol: float = 1e-10,
    max_iterations: int = 6,
) -> NewtonResult:
    """Newton's method on ``H(., t) = 0`` starting from ``x``.

    Convergence is declared on the max-norm of the *residual*; the corrector
    also stops early if the update underflows (quadratic convergence hit the
    noise floor).
    """
    x = np.asarray(x, dtype=complex).copy()
    residual = float("inf")
    for it in range(1, max_iterations + 1):
        res, jac = homotopy.evaluate_and_jacobian_x(x, t)
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(x, True, it - 1, residual)
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(x, False, it - 1, residual, singular=True)
        x = x + dx
        if np.max(np.abs(dx)) <= 1e-15 * max(1.0, np.max(np.abs(x))):
            res = homotopy.evaluate(x, t)
            residual = float(np.max(np.abs(res)))
            return NewtonResult(x, residual <= tol * 1e3, it, residual)
    res = homotopy.evaluate(x, t)
    residual = float(np.max(np.abs(res)))
    return NewtonResult(x, residual <= tol, max_iterations, residual)


@dataclass
class BatchNewtonResult:
    """Outcome of one batched Newton run; leading axis is the path axis."""

    x: np.ndarray           # (npaths, dim) corrected points
    converged: np.ndarray   # (npaths,) bool
    iterations: np.ndarray  # (npaths,) int
    residual: np.ndarray    # (npaths,) float max-norm residuals
    singular: np.ndarray    # (npaths,) bool


def _solve_batch(jac: np.ndarray, res: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve J_i dx_i = -res_i over a stack, flagging singular members.

    The stacked LAPACK call raises for the whole batch when any member is
    exactly singular, so on failure we fall back to per-member solves and
    mark only the offenders.
    """
    k = jac.shape[0]
    ok = np.ones(k, dtype=bool)
    dx = np.zeros_like(res)
    try:
        dx = np.linalg.solve(jac, -res[..., None])[..., 0]
    except np.linalg.LinAlgError:
        for i in range(k):
            try:
                dx[i] = np.linalg.solve(jac[i], -res[i])
            except np.linalg.LinAlgError:
                ok[i] = False
    ok &= np.all(np.isfinite(dx), axis=1)
    return dx, ok


def batch_newton_correct(
    homotopy: BatchHomotopy,
    X: np.ndarray,
    t,
    tol: float = 1e-10,
    max_iterations: int = 6,
    active: np.ndarray | None = None,
) -> BatchNewtonResult:
    """Newton's method on ``H(., t_i) = 0`` for a whole batch of paths.

    ``X`` is ``(npaths, dim)``, ``t`` a scalar or ``(npaths,)`` vector.
    Paths where ``active`` is False are left untouched (reported as not
    converged with infinite residual); among active paths, each one
    converges, underflows, or is flagged singular by exactly the criteria
    of :func:`newton_correct`, and finished paths drop out of later
    sweeps.  Each sweep costs one batched evaluation plus one stacked
    ``np.linalg.solve`` over the still-working paths.
    """
    X = np.asarray(X, dtype=complex).copy()
    if X.ndim != 2:
        raise ValueError("X must have shape (npaths, dim)")
    npaths = X.shape[0]
    tt = _per_path_t(t, npaths)
    converged = np.zeros(npaths, dtype=bool)
    singular = np.zeros(npaths, dtype=bool)
    iterations = np.zeros(npaths, dtype=np.int64)
    residual = np.full(npaths, np.inf)
    if active is None:
        work = np.arange(npaths)
    else:
        work = np.flatnonzero(np.asarray(active, dtype=bool))
    for it in range(1, max_iterations + 1):
        if work.size == 0:
            return BatchNewtonResult(X, converged, iterations, residual, singular)
        res, jac = homotopy.restrict(work).evaluate_and_jacobian_batch(
            X[work], tt[work]
        )
        resnorm = np.max(np.abs(res), axis=1)
        residual[work] = resnorm
        done = resnorm <= tol
        converged[work[done]] = True
        iterations[work[done]] = it - 1
        work, res, jac = work[~done], res[~done], jac[~done]
        if work.size == 0:
            return BatchNewtonResult(X, converged, iterations, residual, singular)
        dx, ok = _solve_batch(jac, res)
        singular[work[~ok]] = True
        iterations[work[~ok]] = it - 1
        work, dx = work[ok], dx[ok]
        if work.size == 0:
            return BatchNewtonResult(X, converged, iterations, residual, singular)
        X[work] += dx
        # update underflow: quadratic convergence hit the noise floor
        xnorm = np.maximum(1.0, np.max(np.abs(X[work]), axis=1))
        under = np.max(np.abs(dx), axis=1) <= 1e-15 * xnorm
        if np.any(under):
            u = work[under]
            rn = np.max(
                np.abs(homotopy.restrict(u).evaluate_batch(X[u], tt[u])), axis=1
            )
            residual[u] = rn
            converged[u] = rn <= tol * 1e3
            iterations[u] = it
            work = work[~under]
    if work.size:
        rn = np.max(
            np.abs(homotopy.restrict(work).evaluate_batch(X[work], tt[work])),
            axis=1,
        )
        residual[work] = rn
        converged[work] = rn <= tol
        iterations[work] = max_iterations
    return BatchNewtonResult(X, converged, iterations, residual, singular)


def newton_refine_system(
    system,
    x: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int = 20,
) -> NewtonResult:
    """Refine an approximate root of a square :class:`PolynomialSystem`."""
    if not system.is_square():
        raise ValueError("Newton refinement needs a square system")
    x = np.asarray(x, dtype=complex).copy()
    residual = float("inf")
    for it in range(1, max_iterations + 1):
        res, jac = system.evaluate_and_jacobian(x)
        residual = float(np.max(np.abs(res)))
        if residual <= tol:
            return NewtonResult(x, True, it - 1, residual)
        dx = _solve(jac, res)
        if dx is None:
            return NewtonResult(x, False, it - 1, residual, singular=True)
        x = x + dx
    res = system.evaluate(x)
    residual = float(np.max(np.abs(res)))
    return NewtonResult(x, residual <= tol, max_iterations, residual)
