"""Pluggable path predictors: Euler tangent and cubic Hermite.

The predictor is the half of the increment-and-fix loop that guesses
where a path goes next; the corrector (Newton) pays for every digit the
guess is short.  Both tracker front-ends (:class:`~repro.tracker.tracker.
PathTracker` and :class:`~repro.tracker.batch.BatchTracker`) delegate the
guess to a :class:`Predictor`:

- :class:`EulerPredictor` (``"euler"``, the default) — first-order
  tangent prediction ``x + dt * dx/dt`` with a secant fallback when the
  tangent solve fails.  This is bit-identical to the seed arithmetic:
  the batch form below *is* the seed code, and the scalar tracker calls
  it with one-row arrays, so the scalar/batch parity suites pin it.
- :class:`HermitePredictor` (``"hermite"``) — each path remembers its
  last accepted ``(t, x, dx/dt)``; together with the current point and
  tangent that determines a cubic, evaluated past the current time
  (``s > 1`` extrapolation).  Local error is O(dt^4) against Euler's
  O(dt^2), so steps grow much faster under error-model step control,
  and the corrector starts closer — fewer Newton sweeps per step.

Predictors operate on *row batches*: ``predict`` takes ``(k, dim)``
arrays for the active front, and the scalar tracker passes one-row
arrays, which keeps every arithmetic decision bit-identical between the
two front-ends (elementwise batching does not change rounding).

Per-path history lives in a :class:`PredictorState` created per
``track``/``track_batch`` call — a resumed path (chart switch, retry,
rescue) therefore starts with *empty* history and cannot Hermite-
extrapolate across coordinates it no longer tracks in.

>>> import numpy as np
>>> pred = make_predictor("hermite")
>>> (pred.name, pred.order, pred.error_model)
('hermite', 4, True)
>>> state = pred.make_state(np.zeros((1, 1), complex), np.zeros(1))
>>> rows = np.arange(1)
>>> # no history yet: the first step falls back to plain Euler
>>> x = np.array([[1.0 + 0j]]); m = np.array([[2.0 + 0j]])
>>> pred.predict(state, rows, x, np.zeros(1), np.full(1, 0.1), m,
...              np.ones(1, bool))
array([[1.2+0.j]])
>>> # after an accepted step the cubic reproduces smooth paths closely:
>>> # x(t) = exp(2t) has x'(t) = 2 x(t)
>>> pred.accepted(state, rows, x, np.zeros(1), m, np.ones(1, bool))
>>> x1 = np.exp(np.array([[0.2 + 0j]]))
>>> guess = pred.predict(state, rows, x1, np.full(1, 0.1),
...                      np.full(1, 0.1), 2 * x1, np.ones(1, bool))
>>> bool(abs(guess[0, 0] - np.exp(0.4)) < 5e-4)  # Euler is ~3e-2 off here
True
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PREDICTORS",
    "Predictor",
    "PredictorState",
    "EulerPredictor",
    "HermitePredictor",
    "make_predictor",
    "resolve_recycle",
    "resolve_update_tol",
    "resolve_loose_tol",
    "resolve_fail_fast",
    "resolve_frozen",
]

#: Registered predictor names (the choices ``TrackerOptions.predictor``
#: and ``solve(predictor=)`` accept).
PREDICTORS = ("euler", "hermite")


@dataclass
class PredictorState:
    """Per-path prediction history for one ``track``/``track_batch`` call.

    ``x_prev``/``t_prev`` hold the previously accepted point (seeded
    with the start point, so a path with no accepted step yet has
    ``t == t_prev`` and the secant fallback stays disabled — the seed
    behavior).  ``m_prev``/``has_tangent`` additionally remember the
    tangent used into the last accepted step; only the Hermite predictor
    reads them.
    """

    x_prev: np.ndarray        # (npaths, dim) last accepted point
    t_prev: np.ndarray        # (npaths,)
    m_prev: np.ndarray        # (npaths, dim) tangent at (x_prev, t_prev)
    has_tangent: np.ndarray   # (npaths,) bool — m_prev row is usable


class Predictor(abc.ABC):
    """Strategy protocol for the prediction half of the tracker loop.

    Concrete predictors are stateless; all per-path memory lives in the
    :class:`PredictorState` the tracker threads through, so one
    predictor instance can serve any number of concurrent tracks.
    """

    #: registry/reporting name
    name: str
    #: asymptotic order p of the local error model ``err ~ C dt^p``
    #: (the exponent error-model step control inverts)
    order: int
    #: True when the tracker should drive step size from the measured
    #: predictor error instead of the easy-streak heuristic (and, by
    #: default, recycle corrector Jacobians into the tangent solve)
    error_model: bool

    def make_state(self, X: np.ndarray, T: np.ndarray) -> PredictorState:
        """Fresh history seeded with the (uncorrected) start points."""
        X = np.asarray(X, dtype=complex)
        T = np.asarray(T, dtype=float)
        return PredictorState(
            x_prev=X.copy(),
            t_prev=T.copy(),
            m_prev=np.zeros_like(X),
            has_tangent=np.zeros(X.shape[0], dtype=bool),
        )

    @abc.abstractmethod
    def predict(
        self,
        state: PredictorState,
        rows: np.ndarray,
        X: np.ndarray,
        T: np.ndarray,
        dt: np.ndarray,
        tangent: np.ndarray,
        ok: np.ndarray,
    ) -> np.ndarray:
        """Predicted points at ``T + dt`` for the active rows.

        ``rows`` are global indices into ``state``; ``X``/``T``/``dt``/
        ``tangent``/``ok`` are the corresponding row slices.  Rows with
        ``ok`` False carry no usable tangent (the solve was singular)
        and must fall back to secant/identity prediction.
        """

    def accepted(
        self,
        state: PredictorState,
        rows: np.ndarray,
        x_old: np.ndarray,
        t_old: np.ndarray,
        tangent: np.ndarray,
        ok: np.ndarray,
    ) -> None:
        """Record an accepted step: the pre-step point becomes history."""
        state.x_prev[rows] = x_old
        state.t_prev[rows] = t_old
        state.m_prev[rows] = tangent
        state.has_tangent[rows] = ok


def _euler_predict(state, rows, X, T, dt, tangent, ok):
    """The seed prediction arithmetic, shared by both predictors.

    Tangent rows step ``x + dt * dx/dt``; rows whose tangent solve
    failed fall back to the secant through the last accepted point, or
    stay put when there is no history yet.  Bit-identical to the seed
    tracker loop (the parity suites pin this).
    """
    x_pred = X + dt[:, None] * tangent
    if not np.all(ok):
        fb = ~ok
        t_prev = state.t_prev[rows]
        have_hist = fb & (T > t_prev)
        ratio = np.zeros(rows.size)
        span = T - t_prev
        ratio[have_hist] = dt[have_hist] / span[have_hist]
        secant = X + (X - state.x_prev[rows]) * ratio[:, None]
        x_pred[fb] = np.where(have_hist[fb, None], secant[fb], X[fb])
    return x_pred


class EulerPredictor(Predictor):
    """First-order tangent prediction with secant fallback (the seed)."""

    name = "euler"
    order = 2
    error_model = False

    def predict(self, state, rows, X, T, dt, tangent, ok):
        return _euler_predict(state, rows, X, T, dt, tangent, ok)


class HermitePredictor(Predictor):
    """Cubic Hermite prediction through the last two accepted points.

    With ``(x0, m0)`` at ``t0`` (history) and ``(x1, m1)`` at ``t1``
    (current), the unique cubic matching both values and tangents is
    evaluated at ``s = (t1 + dt - t0) / (t1 - t0) > 1``.  Rows lacking
    history — the first step, or any resumed/requeued path — use the
    Euler arithmetic unchanged, as do rows whose current tangent solve
    failed (a cubic without the endpoint tangent is not Hermite).
    """

    name = "hermite"
    order = 4
    error_model = True

    def predict(self, state, rows, X, T, dt, tangent, ok):
        x_pred = _euler_predict(state, rows, X, T, dt, tangent, ok)
        h = T - state.t_prev[rows]
        use = ok & state.has_tangent[rows] & (h > 0.0)
        if np.any(use):
            u = np.flatnonzero(use)
            hu = h[u][:, None]
            s = ((dt[u] + h[u]) / h[u])[:, None]
            s2 = s * s
            s3 = s2 * s
            h00 = 2.0 * s3 - 3.0 * s2 + 1.0
            h10 = s3 - 2.0 * s2 + s
            h01 = -2.0 * s3 + 3.0 * s2
            h11 = s3 - s2
            x_pred[u] = (
                h00 * state.x_prev[rows[u]]
                + h10 * hu * state.m_prev[rows[u]]
                + h01 * X[u]
                + h11 * hu * tangent[u]
            )
        return x_pred


_REGISTRY = {
    "euler": EulerPredictor,
    "hermite": HermitePredictor,
}


def make_predictor(predictor) -> Predictor:
    """Resolve a predictor name (or pass an instance through).

    >>> make_predictor(None).name
    'euler'
    >>> make_predictor("hermite").name
    'hermite'
    >>> make_predictor(make_predictor("euler")).name
    'euler'
    """
    if predictor is None:
        return EulerPredictor()
    if isinstance(predictor, Predictor):
        return predictor
    try:
        cls = _REGISTRY[predictor]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown predictor {predictor!r}; expected one of "
            f"{sorted(_REGISTRY)} or a Predictor instance"
        ) from None
    return cls()


def resolve_recycle(options, predictor: Predictor) -> bool:
    """Whether this track should recycle corrector Jacobians.

    ``options.recycle_jacobians`` is a tri-state: ``None`` (default)
    enables recycling exactly when the predictor runs the error model —
    the seed Euler path stays untouched to the bit — and ``True``/
    ``False`` force it either way.
    """
    if options.recycle_jacobians is None:
        return predictor.error_model
    return bool(options.recycle_jacobians)


def resolve_update_tol(options, predictor: Predictor) -> float | None:
    """Update-size acceptance threshold for the step corrector, or None.

    Newton converges quadratically inside its basin, so once an update
    satisfies ``|dx| <= sqrt(corrector_tol)`` the *next* residual is
    already below tolerance — the verification sweep that the residual
    criterion would spend one more fused Jacobian evaluation on is
    provably redundant.  PHCpack's path corrector accepts on exactly
    this update-size criterion.  The tri-state mirrors
    :func:`resolve_recycle`: ``None`` (default) switches it on exactly
    with the predictor's error model, keeping the seed Euler loop
    byte-for-byte; a float forces the threshold; 0 disables.
    """
    cfg = options.corrector_update_tol
    if cfg is None:
        if predictor.error_model:
            return float(np.sqrt(options.corrector_tol))
        return None
    return float(cfg) if cfg > 0.0 else None


def resolve_loose_tol(options, predictor: Predictor) -> float | None:
    """Contraction-gated loose acceptance threshold, or None.

    A bolder exit than :func:`resolve_update_tol`: updates up to
    ``corrector_tol**(1/3)`` may be accepted, but *only* when the update
    also contracted to at most ``CONTRACTION`` times the previous one —
    evidence the iteration is in its quadratic regime, where one more
    (skipped) sweep would land far below tolerance.  The gate is what
    makes the looser threshold safe: an unconditional loose exit
    accepts the slow, barely-shrinking updates of near-singular
    stretches and strands those paths at the next step.  Tri-state like
    the others: ``None`` follows the predictor's error model, a float
    forces the threshold, 0 disables.
    """
    cfg = options.corrector_loose_tol
    if cfg is None:
        if predictor.error_model:
            return float(options.corrector_tol ** (1.0 / 3.0))
        return None
    return float(cfg) if cfg > 0.0 else None


def resolve_fail_fast(options, predictor: Predictor) -> bool:
    """Whether the step corrector rejects on a growing update.

    A contracting Newton run shrinks its update every sweep; growth
    means the prediction missed the basin, and burning the remaining
    ``corrector_iterations - it`` fused evaluations to confirm that is
    the single largest per-rejection cost in the loop.  Tri-state:
    ``None`` (default) follows the predictor's error model — the seed
    Euler corrector keeps its exhaustive sweeps, bit for bit.
    """
    if options.corrector_fail_fast is None:
        return predictor.error_model
    return bool(options.corrector_fail_fast)


def resolve_frozen(options, predictor: Predictor) -> bool:
    """Whether the step corrector runs frozen-Jacobian (chord) sweeps.

    The chord corrector charges one fused Jacobian evaluation per run
    but contracts only linearly, at rate ``O(correction distance)``.
    Benchmarked against full Newton with update-size acceptance it
    *loses* on these systems — the smaller convergence radius drives
    step rejections up and the equilibrium step size down, and recycling
    its entry Jacobian (stale by the whole correction) degrades the
    Hermite tangents — so the default ``None`` resolves to off for
    every predictor; it stays available as an explicit experiment knob.
    """
    if options.corrector_frozen is None:
        return False
    return bool(options.corrector_frozen)
