"""Batched structure-of-arrays path tracking.

:class:`BatchTracker` advances N solution paths at once: the state is one
``(npaths, dim)`` complex array plus per-path vectors for time, step size
and streak counters, and every stage of the predictor-corrector loop — the
tangent solve, the Newton sweeps, the step-control bookkeeping — is one
vectorized numpy call over the whole *active front* instead of N Python
round trips.  This is the data-parallel axis orthogonal to the paper's
distribution of whole paths across workers: where Verschelde-Wang amortize
path cost over MPI ranks, the batch tracker amortizes Python and numpy
dispatch overhead over paths, and the two compose (see
``mode="hybrid"`` in :func:`repro.parallel.track_paths_parallel`).

Semantics are path-by-path identical to :class:`~repro.tracker.tracker.
PathTracker`: each path keeps its own adaptive step size, so the decisions
it makes (accept/reject, expand/shrink, diverge, fail) depend only on its
own history, and the batch runs them in lockstep sweeps.  Paths that
finish — converged to t=1, diverged past the bound, or failed on step
underflow — are *culled* from the front, so late sweeps run on ever
smaller batches.  The endgame (sharpening at t=1) is deferred and run once
as a single batched Newton over every surviving path.

Time accounting: exclusive per-path cost is not observable when paths
share batched kernel calls, so per-path ``stats.seconds`` is *amortized*
— each sweep's wall-clock cost is split evenly over the paths live in
the front for that sweep (plus their share of the start-point check and
the endgame batch).  Per-path seconds are therefore comparable across
batch sizes, and they sum to the batch's wall clock.

With ``options.trace_paths`` set and an ambient
:class:`~repro.telemetry.Telemetry` context active, the tracker
additionally records per-path trace events (step accept/reject with t,
step size and Newton count; endgame handoffs) and predictor/corrector
spans; the default path keeps every hook behind a single ``None`` check.
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from ..telemetry import current_telemetry, maybe_span
from .interface import BatchHomotopy, HomotopyFunction, as_batch
from .newton import _solve_batch, batch_newton_correct
from .result import PathResult, PathStatus, TrackStats
from .tracker import TrackerOptions

__all__ = ["BatchTracker"]

# internal per-path state codes while the batch is in flight
_RUNNING = -1
_ENDGAME = -2
_STATUS_BY_CODE = {
    0: PathStatus.SUCCESS,
    1: PathStatus.DIVERGED,
    2: PathStatus.FAILED,
    3: PathStatus.SINGULAR,
    4: PathStatus.AT_INFINITY,
}
_CODE_BY_STATUS = {s: c for c, s in _STATUS_BY_CODE.items()}


class BatchTracker:
    """Tracks batches of solution paths from t=0 to t=1 as one SoA front.

    ``endgame`` picks the terminal-phase strategy (``None`` / a name /
    an :class:`~repro.endgame.EndgameStrategy` instance), exactly as on
    the scalar :class:`~repro.tracker.tracker.PathTracker`; the whole
    surviving front is finished by one
    :meth:`~repro.endgame.EndgameStrategy.finish_batch` call.
    """

    def __init__(
        self, options: TrackerOptions | None = None, endgame=None
    ) -> None:
        self.options = (options or TrackerOptions()).validated()
        # imported lazily: repro.endgame builds on the tracker submodules
        from ..endgame import make_endgame

        self.endgame = make_endgame(endgame)

    # ------------------------------------------------------------------
    def _tangents(
        self, homotopy: BatchHomotopy, X: np.ndarray, tt: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """dx/dt from J_x dx/dt = -J_t per path, plus a per-path ok flag."""
        jac_x, jac_t = homotopy.jacobians_batch(X, tt)
        return _solve_batch(jac_x, jac_t)

    def track_batch(
        self,
        homotopy: BatchHomotopy | HomotopyFunction,
        starts: Sequence[Sequence[complex]],
        path_ids: Sequence[int] | None = None,
        t_start: float | Sequence[float] = 0.0,
    ) -> List[PathResult]:
        """Track all ``starts`` from ``t=t_start`` to t=1 in lockstep sweeps.

        ``homotopy`` may be a native :class:`BatchHomotopy` or any scalar
        :class:`HomotopyFunction` (wrapped via
        :func:`~repro.tracker.interface.as_batch`); a
        :class:`~repro.tracker.stacked.StackedHomotopy` lets each row
        track its *own* homotopy.  ``t_start`` is a scalar or one value
        per path — per-path starts serve batched chart-switch
        continuation, where each resumed path picks up at the ``t`` it
        had reached.  Returns one :class:`PathResult` per start, in
        input order.
        """
        tel = current_telemetry() if self.options.trace_paths else None
        if tel is None:
            return self._track_batch(homotopy, starts, path_ids, t_start, None)
        with tel.trace():
            return self._track_batch(homotopy, starts, path_ids, t_start, tel)

    def _track_batch(
        self,
        homotopy: BatchHomotopy | HomotopyFunction,
        starts: Sequence[Sequence[complex]],
        path_ids: Sequence[int] | None,
        t_start: float | Sequence[float],
        tel,
    ) -> List[PathResult]:
        opts = self.options
        bh = as_batch(homotopy)
        X = np.array([np.asarray(s, dtype=complex) for s in starts], dtype=complex)
        if X.size == 0:
            return []
        if X.ndim != 2 or X.shape[1] != bh.dim:
            raise ValueError(f"expected starts of shape (npaths, {bh.dim})")
        n = X.shape[0]
        T = np.asarray(t_start, dtype=float)
        if T.ndim == 0:
            T = np.full(n, float(T))
        elif T.shape != (n,):
            raise ValueError(f"expected t_start scalar or shape ({n},)")
        else:
            T = T.copy()
        if np.any((T < 0.0) | (T >= 1.0)):
            raise ValueError("t_start must lie in [0, 1)")
        if path_ids is None:
            path_ids = list(range(n))
        elif len(path_ids) != n:
            raise ValueError("path_ids must match the number of starts")

        x_start = X.copy()
        step = np.full(n, opts.initial_step)
        easy = np.zeros(n, dtype=np.int64)
        accepted = np.zeros(n, dtype=np.int64)
        rejected = np.zeros(n, dtype=np.int64)
        newton = np.zeros(n, dtype=np.int64)
        state = np.full(n, _RUNNING, dtype=np.int64)
        res_final = np.full(n, np.inf)
        t_reached = np.zeros(n)
        charged = np.zeros(n)
        x_prev, t_prev = X.copy(), T.copy()

        mark = time.perf_counter()

        def charge(idx: np.ndarray) -> None:
            # amortize the wall time since the last mark evenly over the
            # paths that were live in the front for it
            nonlocal mark
            now = time.perf_counter()
            if idx.size:
                charged[idx] += (now - mark) / idx.size
            mark = now

        def classify(idx: np.ndarray, status: PathStatus, res: np.ndarray) -> None:
            state[idx] = _CODE_BY_STATUS[status]
            res_final[idx] = res
            t_reached[idx] = T[idx]

        # make sure the start points actually solve H(., t_start)
        with maybe_span(tel, "start_check", "corrector"):
            check = batch_newton_correct(
                bh, X, T, tol=opts.corrector_tol, max_iterations=opts.corrector_iterations
            )
        newton += check.iterations
        bad = np.flatnonzero(~check.converged)
        classify(bad, PathStatus.FAILED, check.residual[bad])
        # failed paths keep their original start point (as PathTracker does);
        # only converged paths adopt the corrected one
        X[check.converged] = check.x[check.converged]
        charge(np.arange(n))

        # --- main predictor-corrector sweeps over the active front
        while True:
            run = np.flatnonzero(state == _RUNNING)
            if run.size == 0:
                break
            over = run[accepted[run] + rejected[run] >= opts.max_steps]
            if over.size:
                classify(over, PathStatus.FAILED, np.full(over.size, np.inf))
                run = np.flatnonzero(state == _RUNNING)
                if run.size == 0:
                    break
            dt = np.minimum(step[run], 1.0 - T[run])
            t_new = T[run] + dt

            # --- predict: batched tangent, secant fallback per failed path
            bh_run = bh.restrict(run)
            with maybe_span(tel, "tangent", "predictor"):
                tangent, ok = self._tangents(bh_run, X[run], T[run])
                x_pred = X[run] + dt[:, None] * tangent
                if not np.all(ok):
                    fb = ~ok
                    have_hist = fb & (T[run] > t_prev[run])
                    ratio = np.zeros(run.size)
                    span = T[run] - t_prev[run]
                    ratio[have_hist] = dt[have_hist] / span[have_hist]
                    secant = X[run] + (X[run] - x_prev[run]) * ratio[:, None]
                    x_pred[fb] = np.where(
                        have_hist[fb, None], secant[fb], X[run][fb]
                    )

            # --- correct
            with maybe_span(tel, "newton", "corrector"):
                corr = batch_newton_correct(
                    bh_run,
                    x_pred,
                    t_new,
                    tol=opts.corrector_tol,
                    max_iterations=opts.corrector_iterations,
                )
            newton[run] += corr.iterations

            conv = corr.converged
            if tel is not None:
                for k in range(run.size):
                    tel.instant(
                        "step_accept" if conv[k] else "step_reject",
                        "tracker",
                        path=int(path_ids[run[k]]),
                        t=float(t_new[k]),
                        dt=float(dt[k]),
                        newton=int(corr.iterations[k]),
                    )
                    tel.observe("step_size", float(dt[k]))
            acc = run[conv]
            if acc.size:
                x_prev[acc], t_prev[acc] = X[acc], T[acc]
                X[acc] = corr.x[conv]
                T[acc] = t_new[conv]
                accepted[acc] += 1
                easy[acc] += 1
                expand = (easy[acc] >= opts.expand_after) & (
                    corr.iterations[conv] <= 2
                )
                grow = acc[expand]
                step[grow] = np.minimum(step[grow] * opts.expand, opts.max_step)
                easy[grow] = 0
                norms = np.max(np.abs(X[acc]), axis=1)
                div = norms > opts.divergence_bound
                classify(acc[div], PathStatus.DIVERGED, corr.residual[conv][div])
                # survivors that reached t=1 leave the front for the endgame
                done = (~div) & (T[acc] >= 1.0)
                state[acc[done]] = _ENDGAME
                if tel is not None:
                    for p in acc[done]:
                        tel.instant(
                            "endgame_handoff",
                            "tracker",
                            path=int(path_ids[p]),
                            reason="arrived",
                        )

            rej = run[~conv]
            if rej.size:
                rejected[rej] += 1
                easy[rej] = 0
                step[rej] *= opts.shrink
                under = step[rej] < opts.min_step
                dead = rej[under]
                if dead.size:
                    blew_up = np.max(np.abs(X[dead]), axis=1) > 1e3
                    res_dead = corr.residual[~conv][under]
                    classify(
                        dead[blew_up], PathStatus.DIVERGED, res_dead[blew_up]
                    )
                    fail = dead[~blew_up]
                    # stalls inside the endgame's operating radius are
                    # handed to the strategy instead of failing
                    over = T[fail] > 1.0 - self.endgame.operating_radius
                    state[fail[over]] = _ENDGAME
                    if tel is not None:
                        for p in fail[over]:
                            tel.instant(
                                "endgame_handoff",
                                "tracker",
                                path=int(path_ids[p]),
                                reason="stalled",
                                t=float(T[p]),
                            )
                    classify(
                        fail[~over], PathStatus.FAILED, res_dead[~blew_up][~over]
                    )

            charge(run)

        # --- endgame: the whole surviving front finishes as one batch
        endg = np.flatnonzero(state == _ENDGAME)
        winding = np.zeros(n, dtype=np.int64)
        finished_by_endgame = np.zeros(n, dtype=bool)
        finished_by_endgame[endg] = True
        if endg.size:
            with maybe_span(tel, "finish", "endgame"):
                out = self.endgame.finish_batch(
                    bh.restrict(endg), X[endg], T[endg], opts
                )
            newton[endg] += out.iterations
            X[endg] = out.x
            winding[endg] = out.winding_number
            for st in (
                PathStatus.SUCCESS,
                PathStatus.FAILED,
                PathStatus.SINGULAR,
                PathStatus.DIVERGED,
                PathStatus.AT_INFINITY,
            ):
                mask = np.array([s is st for s in out.status], dtype=bool)
                if mask.any():
                    classify(endg[mask], st, out.residual[mask])
            charge(endg)

        # --- gather SoA state back into per-path results
        results: List[PathResult] = []
        for i in range(n):
            stats = TrackStats(
                steps_accepted=int(accepted[i]),
                steps_rejected=int(rejected[i]),
                newton_iterations=int(newton[i]),
                t_reached=float(t_reached[i]),
                seconds=float(charged[i]),
            )
            w = int(winding[i])
            results.append(
                PathResult(
                    _STATUS_BY_CODE[int(state[i])],
                    X[i],
                    x_start[i],
                    float(res_final[i]),
                    stats,
                    int(path_ids[i]),
                    endgame=self.endgame.name if finished_by_endgame[i] else None,
                    winding_number=w if w > 0 else None,
                    multiplicity=w if w > 0 else None,
                )
            )
        return results

    # alias matching PathTracker.track_many's shape for drop-in use
    track_many = track_batch
