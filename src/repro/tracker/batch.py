"""Batched structure-of-arrays path tracking.

:class:`BatchTracker` advances N solution paths at once: the state is one
``(npaths, dim)`` complex array plus per-path vectors for time, step size
and streak counters, and every stage of the predictor-corrector loop — the
tangent solve, the Newton sweeps, the step-control bookkeeping — is one
vectorized numpy call over the whole *active front* instead of N Python
round trips.  This is the data-parallel axis orthogonal to the paper's
distribution of whole paths across workers: where Verschelde-Wang amortize
path cost over MPI ranks, the batch tracker amortizes Python and numpy
dispatch overhead over paths, and the two compose (see
``mode="hybrid"`` in :func:`repro.parallel.track_paths_parallel`).

Semantics are path-by-path identical to :class:`~repro.tracker.tracker.
PathTracker`: each path keeps its own adaptive step size, so the decisions
it makes (accept/reject, expand/shrink, diverge, fail) depend only on its
own history, and the batch runs them in lockstep sweeps.  Paths that
finish — converged to t=1, diverged past the bound, or failed on step
underflow — are *culled* from the front, so late sweeps run on ever
smaller batches.  The endgame (sharpening at t=1) is deferred and run once
as a single batched Newton over every surviving path.

Time accounting: exclusive per-path cost is not observable when paths
share batched kernel calls, so per-path ``stats.seconds`` is *amortized*
— each sweep's wall-clock cost is split evenly over the paths live in
the front for that sweep (plus their share of the start-point check and
the endgame batch).  Per-path seconds are therefore comparable across
batch sizes, and they sum to the batch's wall clock.

With ``options.trace_paths`` set and an ambient
:class:`~repro.telemetry.Telemetry` context active, the tracker
additionally records per-path trace events (step accept/reject with t,
step size and Newton count; endgame handoffs) and predictor/corrector
spans; the default path keeps every hook behind a single ``None`` check.
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from ..telemetry import current_telemetry, maybe_span
from .interface import BatchHomotopy, HomotopyFunction, as_batch
from .newton import _solve_batch, batch_newton_correct
from .predictor import (
    make_predictor,
    resolve_fail_fast,
    resolve_frozen,
    resolve_loose_tol,
    resolve_recycle,
    resolve_update_tol,
)
from .result import PathResult, PathStatus, TrackStats
from .tracker import TrackerOptions

__all__ = ["BatchTracker"]

# internal per-path state codes while the batch is in flight
_RUNNING = -1
_ENDGAME = -2
_STATUS_BY_CODE = {
    0: PathStatus.SUCCESS,
    1: PathStatus.DIVERGED,
    2: PathStatus.FAILED,
    3: PathStatus.SINGULAR,
    4: PathStatus.AT_INFINITY,
}
_CODE_BY_STATUS = {s: c for c, s in _STATUS_BY_CODE.items()}


class BatchTracker:
    """Tracks batches of solution paths from t=0 to t=1 as one SoA front.

    ``endgame`` picks the terminal-phase strategy (``None`` / a name /
    an :class:`~repro.endgame.EndgameStrategy` instance), exactly as on
    the scalar :class:`~repro.tracker.tracker.PathTracker`; the whole
    surviving front is finished by one
    :meth:`~repro.endgame.EndgameStrategy.finish_batch` call.
    """

    def __init__(
        self, options: TrackerOptions | None = None, endgame=None
    ) -> None:
        self.options = (options or TrackerOptions()).validated()
        # imported lazily: repro.endgame builds on the tracker submodules
        from ..endgame import make_endgame

        self.endgame = make_endgame(endgame)

    # ------------------------------------------------------------------
    def _tangents(
        self,
        homotopy: BatchHomotopy,
        X: np.ndarray,
        tt: np.ndarray,
        jac: np.ndarray | None = None,
        jac_ok: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """dx/dt from J_x dx/dt = -J_t per path, plus a per-path ok flag.

        ``jac``/``jac_ok`` hand recycled corrector Jacobians across the
        step boundary: rows with ``jac_ok`` True reuse their matrix and
        only evaluate ``J_t`` (an eval-only pass — on the SLP backend
        one "eval" program instead of the fused "eval_jac"); the rest
        take the full fused ``jacobians_batch`` route.
        """
        if jac is None or jac_ok is None or not jac_ok.any():
            jac_x, jac_t = homotopy.jacobians_batch(X, tt)
            return _solve_batch(jac_x, jac_t)
        if jac_ok.all():
            return _solve_batch(jac, homotopy.jacobian_t_batch(X, tt))
        loc_r = np.flatnonzero(jac_ok)
        loc_f = np.flatnonzero(~jac_ok)
        jac_x = np.empty((X.shape[0], X.shape[1], X.shape[1]), dtype=complex)
        jac_t = np.empty_like(X)
        jac_x[loc_r] = jac[loc_r]
        jac_t[loc_r] = homotopy.restrict(loc_r).jacobian_t_batch(
            X[loc_r], tt[loc_r]
        )
        jac_x[loc_f], jac_t[loc_f] = homotopy.restrict(loc_f).jacobians_batch(
            X[loc_f], tt[loc_f]
        )
        return _solve_batch(jac_x, jac_t)

    def track_batch(
        self,
        homotopy: BatchHomotopy | HomotopyFunction,
        starts: Sequence[Sequence[complex]],
        path_ids: Sequence[int] | None = None,
        t_start: float | Sequence[float] = 0.0,
    ) -> List[PathResult]:
        """Track all ``starts`` from ``t=t_start`` to t=1 in lockstep sweeps.

        ``homotopy`` may be a native :class:`BatchHomotopy` or any scalar
        :class:`HomotopyFunction` (wrapped via
        :func:`~repro.tracker.interface.as_batch`); a
        :class:`~repro.tracker.stacked.StackedHomotopy` lets each row
        track its *own* homotopy.  ``t_start`` is a scalar or one value
        per path — per-path starts serve batched chart-switch
        continuation, where each resumed path picks up at the ``t`` it
        had reached.  Returns one :class:`PathResult` per start, in
        input order.
        """
        tel = current_telemetry() if self.options.trace_paths else None
        if tel is None:
            return self._track_batch(homotopy, starts, path_ids, t_start, None)
        with tel.trace():
            return self._track_batch(homotopy, starts, path_ids, t_start, tel)

    def _track_batch(
        self,
        homotopy: BatchHomotopy | HomotopyFunction,
        starts: Sequence[Sequence[complex]],
        path_ids: Sequence[int] | None,
        t_start: float | Sequence[float],
        tel,
    ) -> List[PathResult]:
        opts = self.options
        bh = as_batch(homotopy)
        X = np.array([np.asarray(s, dtype=complex) for s in starts], dtype=complex)
        if X.size == 0:
            return []
        if X.ndim != 2 or X.shape[1] != bh.dim:
            raise ValueError(f"expected starts of shape (npaths, {bh.dim})")
        n = X.shape[0]
        T = np.asarray(t_start, dtype=float)
        if T.ndim == 0:
            T = np.full(n, float(T))
        elif T.shape != (n,):
            raise ValueError(f"expected t_start scalar or shape ({n},)")
        else:
            T = T.copy()
        if np.any((T < 0.0) | (T >= 1.0)):
            raise ValueError("t_start must lie in [0, 1)")
        if path_ids is None:
            path_ids = list(range(n))
        elif len(path_ids) != n:
            raise ValueError("path_ids must match the number of starts")

        x_start = X.copy()
        step = np.full(n, opts.initial_step)
        easy = np.zeros(n, dtype=np.int64)
        accepted = np.zeros(n, dtype=np.int64)
        rejected = np.zeros(n, dtype=np.int64)
        newton = np.zeros(n, dtype=np.int64)
        jac_evals = np.zeros(n, dtype=np.int64)
        recycled = np.zeros(n, dtype=np.int64)
        state = np.full(n, _RUNNING, dtype=np.int64)
        res_final = np.full(n, np.inf)
        t_reached = np.zeros(n)
        charged = np.zeros(n)
        pred = make_predictor(opts.predictor)
        recycle = resolve_recycle(opts, pred)
        update_tol = resolve_update_tol(opts, pred)
        loose_tol = resolve_loose_tol(opts, pred)
        fail_fast = resolve_fail_fast(opts, pred)
        frozen = resolve_frozen(opts, pred)
        # per-call predictor history (secant/Hermite memory), seeded with
        # the uncorrected starts — a requeued/resumed batch (chart-switch
        # continuation with per-path t_start) begins with *empty* history
        pstate = pred.make_state(X, T)
        if recycle:
            # corrector Jacobians carried across the step boundary; rows
            # stay valid over rejections (the point did not move)
            re_jac = np.zeros((n, bh.dim, bh.dim), dtype=complex)
            re_ok = np.zeros(n, dtype=bool)

        mark = time.perf_counter()

        def charge(idx: np.ndarray) -> None:
            # amortize the wall time since the last mark evenly over the
            # paths that were live in the front for it
            nonlocal mark
            now = time.perf_counter()
            if idx.size:
                charged[idx] += (now - mark) / idx.size
            mark = now

        def classify(idx: np.ndarray, status: PathStatus, res: np.ndarray) -> None:
            state[idx] = _CODE_BY_STATUS[status]
            res_final[idx] = res
            t_reached[idx] = T[idx]

        # make sure the start points actually solve H(., t_start)
        with maybe_span(tel, "start_check", "corrector"):
            check = batch_newton_correct(
                bh, X, T, tol=opts.corrector_tol,
                max_iterations=opts.corrector_iterations,
                want_jacobian=recycle,
            )
        newton += check.iterations
        jac_evals += check.jac_evaluations
        bad = np.flatnonzero(~check.converged)
        classify(bad, PathStatus.FAILED, check.residual[bad])
        # failed paths keep their original start point (as PathTracker does);
        # only converged paths adopt the corrected one
        X[check.converged] = check.x[check.converged]
        if recycle:
            re_ok[:] = check.jac_current
            re_jac[check.jac_current] = check.jacobian[check.jac_current]
        charge(np.arange(n))

        # --- main predictor-corrector sweeps over the active front
        while True:
            run = np.flatnonzero(state == _RUNNING)
            if run.size == 0:
                break
            exhausted = run[accepted[run] + rejected[run] >= opts.max_steps]
            if exhausted.size:
                classify(
                    exhausted, PathStatus.FAILED, np.full(exhausted.size, np.inf)
                )
                run = np.flatnonzero(state == _RUNNING)
                if run.size == 0:
                    break
            dt = np.minimum(step[run], 1.0 - T[run])
            t_new = T[run] + dt

            # --- predict: batched tangent (recycled J_x where valid),
            # predictor-strategy point guess with secant fallback
            bh_run = bh.restrict(run)
            with maybe_span(tel, "tangent", "predictor"):
                if recycle and np.any(re_ok[run]):
                    hit = re_ok[run]
                    tangent, ok = self._tangents(
                        bh_run, X[run], T[run], jac=re_jac[run], jac_ok=hit
                    )
                    recycled[run[hit]] += 1
                    jac_evals[run[~hit]] += 1
                    if tel is not None:
                        tel.count(
                            "tracker.tangents_recycled", int(hit.sum())
                        )
                else:
                    tangent, ok = self._tangents(bh_run, X[run], T[run])
                    jac_evals[run] += 1
                x_pred = pred.predict(
                    pstate, run, X[run], T[run], dt, tangent, ok
                )

            # --- correct
            with maybe_span(tel, "newton", "corrector"):
                corr = batch_newton_correct(
                    bh_run,
                    x_pred,
                    t_new,
                    tol=opts.corrector_tol,
                    max_iterations=opts.corrector_iterations,
                    want_jacobian=recycle,
                    update_tol=update_tol,
                    loose_tol=loose_tol,
                    fail_fast=fail_fast,
                    frozen=frozen,
                )
            newton[run] += corr.iterations
            jac_evals[run] += corr.jac_evaluations

            conv = corr.converged
            err_all = None
            if pred.error_model and np.any(conv):
                # suspected path jump: the corrector converged, but to a
                # point far beyond what the prediction's error model can
                # explain — almost certainly a neighboring path's basin.
                # Rejecting here costs one retry at a smaller step and
                # saves the whole endpoint-collision retracking rung the
                # jump would otherwise trigger
                err_all = np.max(np.abs(corr.x - x_pred), axis=1)
                jump = conv & (
                    err_all
                    > opts.predictor_jump_factor * opts.predictor_target_error
                )
                if np.any(jump):
                    conv = conv & ~jump
                    if tel is not None:
                        tel.count("tracker.jump_rejections", int(jump.sum()))
            if tel is not None:
                for k in range(run.size):
                    tel.instant(
                        "step_accept" if conv[k] else "step_reject",
                        "tracker",
                        path=int(path_ids[run[k]]),
                        t=float(t_new[k]),
                        dt=float(dt[k]),
                        newton=int(corr.iterations[k]),
                    )
                    tel.observe("step_size", float(dt[k]))
            acc = run[conv]
            if acc.size:
                pred.accepted(
                    pstate, acc, X[acc], T[acc], tangent[conv], ok[conv]
                )
                X[acc] = corr.x[conv]
                T[acc] = t_new[conv]
                accepted[acc] += 1
                if recycle:
                    re_ok[acc] = corr.jac_current[conv]
                    cur = conv & corr.jac_current
                    re_jac[run[cur]] = corr.jacobian[cur]
                if pred.error_model:
                    # asymptotic error model: err ~ C dt^p per path, so
                    # the dt that would have hit the target error is
                    # dt * (target / err)^(1/p), damped by safety and
                    # capped at max_growth per step
                    err = err_all[conv]
                    growth = np.full(acc.size, opts.predictor_max_growth)
                    pos = err > 0.0
                    growth[pos] = np.minimum(
                        opts.predictor_max_growth,
                        opts.predictor_safety
                        * (opts.predictor_target_error / err[pos])
                        ** (1.0 / pred.order),
                    )
                    step[acc] = np.minimum(
                        np.maximum(dt[conv] * growth, opts.min_step),
                        opts.max_step,
                    )
                    if tel is not None:
                        for e in err:
                            tel.observe("predictor_error", float(e))
                else:
                    easy[acc] += 1
                    expand = (easy[acc] >= opts.expand_after) & (
                        corr.iterations[conv] <= 2
                    )
                    grow = acc[expand]
                    step[grow] = np.minimum(
                        step[grow] * opts.expand, opts.max_step
                    )
                    easy[grow] = 0
                norms = np.max(np.abs(X[acc]), axis=1)
                div = norms > opts.divergence_bound
                classify(acc[div], PathStatus.DIVERGED, corr.residual[conv][div])
                # survivors that reached t=1 leave the front for the endgame
                done = (~div) & (T[acc] >= 1.0)
                state[acc[done]] = _ENDGAME
                if tel is not None:
                    for p in acc[done]:
                        tel.instant(
                            "endgame_handoff",
                            "tracker",
                            path=int(path_ids[p]),
                            reason="arrived",
                        )

            rej = run[~conv]
            if rej.size:
                rejected[rej] += 1
                easy[rej] = 0
                step[rej] *= opts.shrink
                under = step[rej] < opts.min_step
                dead = rej[under]
                if dead.size:
                    blew_up = np.max(np.abs(X[dead]), axis=1) > 1e3
                    res_dead = corr.residual[~conv][under]
                    classify(
                        dead[blew_up], PathStatus.DIVERGED, res_dead[blew_up]
                    )
                    fail = dead[~blew_up]
                    # stalls inside the endgame's operating radius are
                    # handed to the strategy instead of failing
                    in_radius = T[fail] > 1.0 - self.endgame.operating_radius
                    state[fail[in_radius]] = _ENDGAME
                    if tel is not None:
                        for p in fail[in_radius]:
                            tel.instant(
                                "endgame_handoff",
                                "tracker",
                                path=int(path_ids[p]),
                                reason="stalled",
                                t=float(T[p]),
                            )
                    classify(
                        fail[~in_radius],
                        PathStatus.FAILED,
                        res_dead[~blew_up][~in_radius],
                    )

            charge(run)

        # --- endgame: the whole surviving front finishes as one batch
        endg = np.flatnonzero(state == _ENDGAME)
        winding = np.zeros(n, dtype=np.int64)
        finished_by_endgame = np.zeros(n, dtype=bool)
        finished_by_endgame[endg] = True
        if endg.size:
            with maybe_span(tel, "finish", "endgame"):
                out = self.endgame.finish_batch(
                    bh.restrict(endg), X[endg], T[endg], opts
                )
            newton[endg] += out.iterations
            X[endg] = out.x
            winding[endg] = out.winding_number
            for st in (
                PathStatus.SUCCESS,
                PathStatus.FAILED,
                PathStatus.SINGULAR,
                PathStatus.DIVERGED,
                PathStatus.AT_INFINITY,
            ):
                mask = np.array([s is st for s in out.status], dtype=bool)
                if mask.any():
                    classify(endg[mask], st, out.residual[mask])
            charge(endg)

        # --- gather SoA state back into per-path results
        results: List[PathResult] = []
        for i in range(n):
            stats = TrackStats(
                steps_accepted=int(accepted[i]),
                steps_rejected=int(rejected[i]),
                newton_iterations=int(newton[i]),
                t_reached=float(t_reached[i]),
                seconds=float(charged[i]),
                jacobian_evaluations=int(jac_evals[i]),
                tangents_recycled=int(recycled[i]),
            )
            w = int(winding[i])
            results.append(
                PathResult(
                    _STATUS_BY_CODE[int(state[i])],
                    X[i],
                    x_start[i],
                    float(res_final[i]),
                    stats,
                    int(path_ids[i]),
                    endgame=self.endgame.name if finished_by_endgame[i] else None,
                    winding_number=w if w > 0 else None,
                    multiplicity=w if w > 0 else None,
                )
            )
        return results

    # alias matching PathTracker.track_many's shape for drop-in use
    track_many = track_batch
