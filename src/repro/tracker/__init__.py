"""Predictor-corrector path tracking (PHCpack's continuation, in Python).

Two tracker front-ends share the same options and result records:

- :class:`PathTracker` — one path at a time (the paper's unit of work).
- :class:`BatchTracker` — N paths as a structure-of-arrays front, one
  vectorized numpy call per predictor/corrector stage.
"""

from .batch import BatchTracker
from .interface import (
    BatchHomotopy,
    HomotopyFunction,
    ScalarBatchAdapter,
    as_batch,
)
from .newton import (
    BatchNewtonResult,
    NewtonResult,
    batch_newton_correct,
    newton_correct,
    newton_refine_system,
)
from .result import PathResult, PathStatus, TrackStats, summarize_results
from .tracker import PathTracker, TrackerOptions, refine_solutions

__all__ = [
    "HomotopyFunction",
    "BatchHomotopy",
    "ScalarBatchAdapter",
    "as_batch",
    "NewtonResult",
    "BatchNewtonResult",
    "newton_correct",
    "batch_newton_correct",
    "newton_refine_system",
    "PathResult",
    "PathStatus",
    "TrackStats",
    "summarize_results",
    "PathTracker",
    "BatchTracker",
    "TrackerOptions",
    "refine_solutions",
]
