"""Predictor-corrector path tracking (PHCpack's continuation, in Python).

Two tracker front-ends share the same options and result records:

- :class:`PathTracker` — one path at a time (the paper's unit of work).
- :class:`BatchTracker` — N paths as a structure-of-arrays front, one
  vectorized numpy call per predictor/corrector stage.

Both consume any homotopy implementing the :class:`HomotopyFunction`
protocol (``evaluate`` / ``jacobian_x`` / ``jacobian_t`` and ``dim``);
scalar-only homotopies batch through :class:`ScalarBatchAdapter`, and
per-path decisions are bit-identical between the two front-ends.  A batch
need not track one homotopy from many starts: :class:`StackedHomotopy`
stacks *distinct same-shape* homotopies (e.g. every Pieri edge of one
tree level) into a single structure-of-arrays front.

Track the four total-degree paths of katsura-2 both ways:

>>> import numpy as np
>>> from repro.homotopy import make_homotopy_and_starts
>>> from repro.systems import katsura_system
>>> homotopy, starts = make_homotopy_and_starts(
...     katsura_system(2), rng=np.random.default_rng(0))
>>> one = PathTracker().track(homotopy, starts[0])
>>> one.success and 0.0 <= one.stats.t_reached <= 1.0
True
>>> front = BatchTracker().track_batch(homotopy, starts)
>>> [r.status == one.status for r in front][0]
True
>>> summarize_results(front)["total"]
4
"""

from .batch import BatchTracker
from .interface import (
    BatchHomotopy,
    HomotopyFunction,
    ScalarBatchAdapter,
    as_batch,
)
from .newton import (
    BatchNewtonResult,
    NewtonResult,
    batch_newton_correct,
    newton_correct,
    newton_refine_system,
)
from .predictor import (
    PREDICTORS,
    EulerPredictor,
    HermitePredictor,
    Predictor,
    PredictorState,
    make_predictor,
)
from .rescue import rescue_diverged, track_with_rescue
from .result import (
    PathResult,
    PathStatus,
    TrackStats,
    duplicate_path_ids,
    greedy_cluster_indices,
    retrack_duplicate_clusters,
    summarize_results,
    tighten_options,
)
from .stacked import StackedHomotopy
from .tracker import PathTracker, TrackerOptions, refine_solutions

__all__ = [
    "HomotopyFunction",
    "BatchHomotopy",
    "ScalarBatchAdapter",
    "StackedHomotopy",
    "as_batch",
    "NewtonResult",
    "BatchNewtonResult",
    "newton_correct",
    "batch_newton_correct",
    "newton_refine_system",
    "PathResult",
    "PathStatus",
    "TrackStats",
    "duplicate_path_ids",
    "greedy_cluster_indices",
    "retrack_duplicate_clusters",
    "tighten_options",
    "summarize_results",
    "track_with_rescue",
    "rescue_diverged",
    "PathTracker",
    "BatchTracker",
    "TrackerOptions",
    "refine_solutions",
    "PREDICTORS",
    "Predictor",
    "PredictorState",
    "EulerPredictor",
    "HermitePredictor",
    "make_predictor",
]
