"""Predictor-corrector path tracking (PHCpack's continuation, in Python)."""

from .interface import HomotopyFunction
from .newton import NewtonResult, newton_correct, newton_refine_system
from .result import PathResult, PathStatus, TrackStats, summarize_results
from .tracker import PathTracker, TrackerOptions, refine_solutions

__all__ = [
    "HomotopyFunction",
    "NewtonResult",
    "newton_correct",
    "newton_refine_system",
    "PathResult",
    "PathStatus",
    "TrackStats",
    "summarize_results",
    "PathTracker",
    "TrackerOptions",
    "refine_solutions",
]
