"""The homotopy-function interface consumed by the path tracker.

A homotopy is any object H(x, t) with x in C^n and t in [0, 1] that can
produce its residual and both partial Jacobians.  Keeping this as a tiny
structural interface (rather than importing concrete homotopy classes) lets
the tracker serve three very different clients without modification:

- polynomial convex-combination homotopies (:mod:`repro.homotopy`),
- determinant-based Pieri homotopies (:mod:`repro.schubert.homotopy`),
- synthetic test homotopies used by the unit tests.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["HomotopyFunction"]


class HomotopyFunction(abc.ABC):
    """Abstract H : C^n x [0,1] -> C^n with Jacobians."""

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Number of variables (and equations); the system is square."""

    @abc.abstractmethod
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        """Residual H(x, t), shape ``(dim,)``."""

    @abc.abstractmethod
    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        """Jacobian dH/dx, shape ``(dim, dim)``."""

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        """Jacobian dH/dt, shape ``(dim,)``.

        Default: central finite difference; concrete homotopies override
        with the analytic derivative when it is cheap.
        """
        h = 1e-7
        lo = max(0.0, t - h)
        hi = min(1.0, t + h)
        return (self.evaluate(x, hi) - self.evaluate(x, lo)) / (hi - lo)

    def evaluate_and_jacobian_x(
        self, x: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual and dH/dx together (override to share work)."""
        return self.evaluate(x, t), self.jacobian_x(x, t)
