"""The homotopy-function interfaces consumed by the path trackers.

A homotopy is any object H(x, t) with x in C^n and t in [0, 1] that can
produce its residual and both partial Jacobians.  Keeping this as a tiny
structural interface (rather than importing concrete homotopy classes) lets
the tracker serve three very different clients without modification:

- polynomial convex-combination homotopies (:mod:`repro.homotopy`),
- determinant-based Pieri homotopies (:mod:`repro.schubert.homotopy`),
- synthetic test homotopies used by the unit tests.

Two interfaces live here:

- :class:`HomotopyFunction` — the scalar protocol: one point, one t.
- :class:`BatchHomotopy` — the structure-of-arrays protocol consumed by
  :class:`~repro.tracker.batch.BatchTracker`: ``npaths`` points evaluated
  in one call, each at its own ``t`` (paths in a batch advance with
  independent adaptive step sizes, so ``t`` is a per-path vector).

Any scalar homotopy can serve as a batch homotopy through
:class:`ScalarBatchAdapter` (a Python loop, correct but slow); homotopies
with genuinely vectorized evaluators (e.g.
:class:`~repro.homotopy.convex.ConvexHomotopy`) implement
:class:`BatchHomotopy` natively and the adapter is skipped by
:func:`as_batch`.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "HomotopyFunction",
    "BatchHomotopy",
    "ScalarBatchAdapter",
    "as_batch",
]


class HomotopyFunction(abc.ABC):
    """Abstract H : C^n x [0,1] -> C^n with Jacobians."""

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Number of variables (and equations); the system is square."""

    @abc.abstractmethod
    def evaluate(self, x: np.ndarray, t: float) -> np.ndarray:
        """Residual H(x, t), shape ``(dim,)``."""

    @abc.abstractmethod
    def jacobian_x(self, x: np.ndarray, t: float) -> np.ndarray:
        """Jacobian dH/dx, shape ``(dim, dim)``."""

    def jacobian_t(self, x: np.ndarray, t: float) -> np.ndarray:
        """Jacobian dH/dt, shape ``(dim,)``.

        Default: central finite difference; concrete homotopies override
        with the analytic derivative when it is cheap.
        """
        h = 1e-7
        lo = max(0.0, t - h)
        hi = min(1.0, t + h)
        return (self.evaluate(x, hi) - self.evaluate(x, lo)) / (hi - lo)

    def evaluate_and_jacobian_x(
        self, x: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual and dH/dx together (override to share work)."""
        return self.evaluate(x, t), self.jacobian_x(x, t)

    # -- rescue hooks (see repro.tracker.rescue) -----------------------
    def rescale_patch(self, x: np.ndarray, t: float):
        """Offer better coordinates for a path escaping at time ``t``.

        Called by the tracker-level rescue pipeline when a path is about
        to be classified DIVERGED mid-way (``0 < t < 1``).  A homotopy
        whose coordinates are a *chart* of some larger space — the
        Pieri determinant homotopies (column-scaling charts) and the
        projective patch of polynomial homotopies — returns
        ``(new_homotopy, new_x)``: the *same geometric path* re-expressed
        in well-scaled coordinates, ready to resume from ``t``.  The
        default returns ``None``: no re-patching available.
        """
        del x, t
        return None

    def finalize_rescued(self, result):
        """Map a rescued path's result back to the caller's coordinates.

        After a rescued path finishes in re-patched coordinates, the
        rescue pipeline passes its :class:`~repro.tracker.result.
        PathResult` through this hook.  The default is the identity;
        the projective patch overrides it to dehomogenize endpoints and
        classify points at infinity.
        """
        return result


def _per_path_t(t, npaths: int) -> np.ndarray:
    """Broadcast a scalar or (npaths,) ``t`` to a float (or complex) vector.

    Real ``t`` — the tracking regime — is kept as float64 exactly as
    before.  Complex ``t`` is passed through: the Cauchy endgame tracks
    paths around small circles ``t = 1 - r e^{i theta}`` in the complex
    time plane, and every vectorized homotopy kernel in this codebase is
    elementwise in ``t``, so complex times flow through unchanged.
    """
    tt = np.asarray(t)
    dtype = complex if np.iscomplexobj(tt) else float
    tt = tt.astype(dtype, copy=False)
    if tt.ndim == 0:
        return np.full(npaths, tt[()])
    if tt.shape != (npaths,):
        raise ValueError(f"expected t scalar or shape ({npaths},), got {tt.shape}")
    return tt


class BatchHomotopy(abc.ABC):
    """Structure-of-arrays H : C^(N x n) x [0,1]^N -> C^(N x n).

    ``X`` has shape ``(npaths, dim)`` — one row per path — and ``t`` is a
    scalar or a ``(npaths,)`` vector (each path at its own time).  All
    methods return arrays whose leading axis is the path axis, so one call
    advances the whole active front of a batched tracker.
    """

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Number of variables (and equations); the system is square."""

    @abc.abstractmethod
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        """Residuals H(X_i, t_i), shape ``(npaths, dim)``."""

    @abc.abstractmethod
    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        """Jacobians dH/dx per path, shape ``(npaths, dim, dim)``."""

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        """dH/dt per path, shape ``(npaths, dim)``.

        Default: central finite difference clipped to [0, 1]; override
        with the analytic derivative when it is cheap.
        """
        tt = _per_path_t(t, X.shape[0])
        h = 1e-7
        lo = np.maximum(0.0, tt - h)
        hi = np.minimum(1.0, tt + h)
        num = self.evaluate_batch(X, hi) - self.evaluate_batch(X, lo)
        return num / (hi - lo)[:, None]

    def evaluate_and_jacobian_batch(
        self, X: np.ndarray, t
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residuals and dH/dx together (override to share work)."""
        return self.evaluate_batch(X, t), self.jacobian_x_batch(X, t)

    def jacobians_batch(self, X: np.ndarray, t) -> tuple[np.ndarray, np.ndarray]:
        """dH/dx and dH/dt together — the tangent predictor's inputs.

        Override when both Jacobians share underlying evaluations (the
        convex homotopy computes them from one pass over each system).
        """
        return self.jacobian_x_batch(X, t), self.jacobian_t_batch(X, t)

    # -- rescue hooks (see repro.tracker.rescue) -----------------------
    def rescale_patch(self, x: np.ndarray, t: float):
        """Offer better coordinates for one escaping path (see
        :meth:`HomotopyFunction.rescale_patch`); default: none."""
        del x, t
        return None

    def finalize_rescued(self, result):
        """Map a rescued path's result back to the caller's coordinates
        (see :meth:`HomotopyFunction.finalize_rescued`); default:
        identity."""
        return result

    def restrict(self, rows) -> "BatchHomotopy":
        """The batch homotopy seen by the given subset of path rows.

        The trackers cull finished paths from their active front, so a
        batch call may cover any subset of the original rows.  For a
        homogeneous batch (every row tracks the same homotopy) the rows
        are interchangeable and the default returns ``self``; a batch
        whose rows belong to *distinct* member homotopies — the
        :class:`~repro.tracker.stacked.StackedHomotopy` combinator —
        overrides this to slice its ownership vector along.  ``rows``
        index into this object's rows, so restrictions compose.
        """
        del rows
        return self


class ScalarBatchAdapter(BatchHomotopy):
    """Present any scalar :class:`HomotopyFunction` as a :class:`BatchHomotopy`.

    Evaluation loops over the paths in Python, so this gains nothing in
    speed — it exists so that :class:`~repro.tracker.batch.BatchTracker`
    can run (and be parity-tested) against every existing homotopy,
    including the determinant-based Pieri edges.
    """

    def __init__(self, homotopy: HomotopyFunction) -> None:
        self.scalar = homotopy

    @property
    def dim(self) -> int:
        return self.scalar.dim

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        if X.ndim != 2 or X.shape[1] != self.dim:
            raise ValueError(f"expected X of shape (npaths, {self.dim})")
        return X

    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        out = np.empty_like(X)
        for i in range(X.shape[0]):
            out[i] = self.scalar.evaluate(X[i], tt[i])
        return out

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        out = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        for i in range(X.shape[0]):
            out[i] = self.scalar.jacobian_x(X[i], tt[i])
        return out

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        out = np.empty_like(X)
        for i in range(X.shape[0]):
            out[i] = self.scalar.jacobian_t(X[i], tt[i])
        return out

    def evaluate_and_jacobian_batch(self, X, t):
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        res = np.empty_like(X)
        jac = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        for i in range(X.shape[0]):
            res[i], jac[i] = self.scalar.evaluate_and_jacobian_x(X[i], tt[i])
        return res, jac

    def rescale_patch(self, x: np.ndarray, t: float):
        return self.scalar.rescale_patch(x, t)

    def finalize_rescued(self, result):
        return self.scalar.finalize_rescued(result)

    def __repr__(self) -> str:
        return f"ScalarBatchAdapter({self.scalar!r})"


def as_batch(homotopy) -> BatchHomotopy:
    """Coerce a scalar or batch homotopy to the batch interface."""
    if isinstance(homotopy, BatchHomotopy):
        return homotopy
    if isinstance(homotopy, HomotopyFunction):
        return ScalarBatchAdapter(homotopy)
    raise TypeError(
        f"expected a HomotopyFunction or BatchHomotopy, got {type(homotopy)!r}"
    )
