"""Path-tracking results and statistics records.

These records double as the *workload evidence* for the parallel layer: the
paper's load-balancing story hinges on the large variance between cheap
converging paths and expensive diverging ones, so every result carries its
step/Newton counters and (when measured) wall-clock cost, which the cluster
simulator consumes to build empirical cost distributions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = [
    "PathStatus",
    "PathResult",
    "TrackStats",
    "greedy_cluster_indices",
    "duplicate_path_ids",
    "retrack_duplicate_clusters",
    "tighten_options",
    "summarize_results",
]


class PathStatus(enum.Enum):
    """Terminal classification of one tracked path."""

    SUCCESS = "success"          # reached t = 1 with a refined solution
    DIVERGED = "diverged"        # solution norm exceeded the divergence bound
    FAILED = "failed"            # step size underflow / Newton stagnation
    SINGULAR = "singular"        # Jacobian numerically singular at the end
    AT_INFINITY = "at_infinity"  # escaped the affine chart (projective rescue)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class TrackStats:
    """Effort counters for a single path."""

    steps_accepted: int = 0
    steps_rejected: int = 0
    newton_iterations: int = 0
    t_reached: float = 0.0
    seconds: float = 0.0
    rescues: int = 0
    #: fused J_x evaluations charged to this path (tangent solves that
    #: could not recycle, plus every corrector sweep the path took part
    #: in) — the denominator of the predictor pipeline's speedup gates
    jacobian_evaluations: int = 0
    #: tangent solves served by a recycled corrector Jacobian (only the
    #: cheap J_t evaluation was paid)
    tangents_recycled: int = 0

    @property
    def total_steps(self) -> int:
        return self.steps_accepted + self.steps_rejected


@dataclass
class PathResult:
    """Outcome of tracking one solution path.

    The three trailing fields are *endgame annotations*, populated only
    when an endgame strategy classified the endpoint beyond the plain
    Newton sharpen: ``endgame`` names the strategy that finished the
    path, ``winding_number`` is the measured cycle length ``w`` of a
    Cauchy loop (1 for a regular endpoint), and ``multiplicity`` is the
    path-level multiplicity estimate — ``w`` at tracking time, possibly
    raised to the endpoint-cluster size by the solve layer.
    """

    status: PathStatus
    solution: np.ndarray
    start: np.ndarray
    residual: float
    stats: TrackStats = field(default_factory=TrackStats)
    path_id: int = -1
    endgame: str | None = None
    winding_number: int | None = None
    multiplicity: int | None = None

    @property
    def success(self) -> bool:
        return self.status is PathStatus.SUCCESS

    @property
    def endgame_classified(self) -> bool:
        """True when an endgame verdict stands behind this endpoint.

        A SINGULAR result with a measured winding number is a *finished*
        classification — the endpoint was recovered as the mean of the
        Cauchy loop samples — so retry ladders (Pieri, polyhedral
        phase-1) should not burn re-tracking attempts on it.
        """
        return self.winding_number is not None and self.status in (
            PathStatus.SINGULAR,
            PathStatus.SUCCESS,
            PathStatus.AT_INFINITY,
        )

    def __repr__(self) -> str:
        extra = (
            f", w={self.winding_number}" if self.winding_number is not None else ""
        )
        return (
            f"PathResult(id={self.path_id}, status={self.status.value}, "
            f"residual={self.residual:.2e}, steps={self.stats.total_steps}{extra})"
        )


def greedy_cluster_indices(points, tol: float) -> List[List[int]]:
    """First-seen greedy clustering of points in the max norm.

    Each point joins the *first* earlier representative within ``tol``
    and opens a new cluster otherwise — semantically identical to the
    textbook quadratic double loop, but every membership test is one
    vectorized reduction against the whole representative matrix.  On a
    thousand-path result set the double loop costs ~n^2/2 separate
    numpy calls and dominates the entire post-tracking pipeline; this
    form is ~n calls and disappears from profiles.
    """
    clusters: List[List[int]] = []
    reps: np.ndarray | None = None
    nrep = 0
    for i, x in enumerate(points):
        x = np.asarray(x, dtype=complex)
        if nrep:
            hit = np.flatnonzero(
                np.max(np.abs(reps[:nrep] - x), axis=1) < tol
            )
            if hit.size:
                clusters[hit[0]].append(i)
                continue
        if reps is None:
            reps = np.empty((4, x.size), dtype=complex)
        elif nrep == reps.shape[0]:
            grown = np.empty((2 * nrep, x.size), dtype=complex)
            grown[:nrep] = reps
            reps = grown
        reps[nrep] = x
        nrep += 1
        clusters.append([i])
    return clusters


def duplicate_path_ids(results, tol: float = 1e-6) -> List[int]:
    """Path ids of *every* member of an endpoint-collision cluster.

    Two paths of a proper homotopy cannot share an endpoint at a regular
    root, so collisions indicate a predictor jump between close paths.
    Either party may be the one that jumped — the first path to arrive
    is no more trustworthy than the second — so all members of a cluster
    are candidates for conservative re-tracking, not just the
    later-arriving ones.  Shared by the blackbox ``solve()`` and the
    polyhedral phase-1 cell tracking.
    """
    succ = [r for r in results if r.success]
    clusters = greedy_cluster_indices([r.solution for r in succ], tol)
    return [
        succ[i].path_id for cluster in clusters if len(cluster) > 1
        for i in cluster
    ]


def tighten_options(options, factor: float = 0.25):
    """The generic escalation step for duplicate re-tracking.

    Shrinks the step-size window by ``factor`` and stretches the step
    budget to compensate, via ``dataclasses.replace`` so every field
    not listed keeps the *caller's* value (new options fields are never
    silently reset on escalation).  Drivers with tuned escalation
    profiles (the blackbox solver, polyhedral phase-1) keep their own
    variants; this is the default recipe for everyone else.
    """
    import dataclasses

    return dataclasses.replace(
        options,
        initial_step=max(options.initial_step * factor, options.min_step),
        min_step=options.min_step * factor,
        max_step=max(options.max_step * factor, options.min_step),
        max_steps=int(options.max_steps / factor),
    )


def retrack_duplicate_clusters(
    results: List[PathResult],
    retrack,
    tighten,
    options,
    rounds: int = 3,
    tol: float = 1e-6,
    retrack_batch=None,
) -> List[PathResult]:
    """Re-track endpoint-collision clusters until they separate or stall.

    The shared escalation loop behind the blackbox solver, the
    polyhedral phase-1 driver and the Pieri parameter continuation:
    every member of a colliding cluster (see :func:`duplicate_path_ids`)
    is re-tracked with progressively tightened options, up to ``rounds``
    times.  The *no-progress bail-out* is the subtle part, and the
    reason this lives in one place: when a re-track round reproduces
    every endpoint it re-tracked (nothing moved beyond ``tol``), the
    collision is a genuine multiple root — not a predictor jump — and
    tighter steps can never separate it, so escalating further would
    only burn time.

    Parameters
    ----------
    results:
        Per-path results ordered by path id (mutated in place and also
        returned).
    retrack:
        ``retrack(path_id, options) -> PathResult`` — re-track one path
        with the given (tightened) options.
    tighten:
        ``tighten(options) -> options`` — one escalation step.
    options:
        The options the main tracking pass used; tightened before the
        first re-track round.
    retrack_batch:
        Optional ``retrack_batch(path_ids, options) -> List[PathResult]``
        re-tracking a whole rung's members in one call (results aligned
        with ``path_ids``).  Tightened re-tracks take 4x the steps of
        the main pass at a quarter the step size, so a driver with a
        vectorized tracker should prefer this over ``rounds * len(dups)``
        scalar loops; ``retrack`` remains the fallback.
    """
    from ..telemetry import current_telemetry

    tel = current_telemetry()
    stable: set = set()
    for rung in range(rounds):
        dups = [
            pid for pid in duplicate_path_ids(results, tol=tol)
            if pid not in stable
        ]
        if not dups:
            break
        options = tighten(options)
        if tel is not None:
            tel.count("tracker.retry_rungs")
            tel.instant(
                "retry_rung", "tracker", rung=rung + 1, paths=len(dups)
            )
        moved = False
        if retrack_batch is not None:
            redone = retrack_batch(dups, options)
        else:
            redone = (retrack(pid, options) for pid in dups)
        for pid, retracked in zip(dups, redone):
            old = results[pid]
            if retracked.success or not old.success:
                if (
                    retracked.success
                    and old.success
                    and np.max(np.abs(retracked.solution - old.solution)) < tol
                ):
                    # this path reproduced its endpoint at tighter steps:
                    # its side of the collision is a genuine root, not a
                    # predictor jump — exclude it from later rungs so a
                    # single wandering path elsewhere cannot keep the
                    # whole stable cluster re-tracking
                    stable.add(pid)
                else:
                    moved = True
                results[pid] = retracked
        if not moved:
            # every re-track reproduced its endpoint: the collision is a
            # genuine multiple root, and tighter steps will never
            # separate it — stop escalating
            break
    return results


def summarize_results(results: List[PathResult]) -> dict:
    """Aggregate counts and effort over a batch of path results."""
    by_status = {s: 0 for s in PathStatus}
    for r in results:
        by_status[r.status] += 1
    seconds = [r.stats.seconds for r in results]
    steps = [r.stats.total_steps for r in results]
    return {
        "total": len(results),
        "success": by_status[PathStatus.SUCCESS],
        "diverged": by_status[PathStatus.DIVERGED],
        "failed": by_status[PathStatus.FAILED],
        "singular": by_status[PathStatus.SINGULAR],
        "at_infinity": by_status[PathStatus.AT_INFINITY],
        "seconds_total": float(np.sum(seconds)) if seconds else 0.0,
        "seconds_mean": float(np.mean(seconds)) if seconds else 0.0,
        "seconds_std": float(np.std(seconds)) if seconds else 0.0,
        "steps_mean": float(np.mean(steps)) if steps else 0.0,
        # deterministic effort totals for the predictor pipeline gates
        "newton_total": int(sum(r.stats.newton_iterations for r in results)),
        "jacobian_evaluations": int(
            sum(r.stats.jacobian_evaluations for r in results)
        ),
        "tangents_recycled": int(
            sum(r.stats.tangents_recycled for r in results)
        ),
    }
