"""Path-tracking results and statistics records.

These records double as the *workload evidence* for the parallel layer: the
paper's load-balancing story hinges on the large variance between cheap
converging paths and expensive diverging ones, so every result carries its
step/Newton counters and (when measured) wall-clock cost, which the cluster
simulator consumes to build empirical cost distributions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = [
    "PathStatus",
    "PathResult",
    "TrackStats",
    "duplicate_path_ids",
    "summarize_results",
]


class PathStatus(enum.Enum):
    """Terminal classification of one tracked path."""

    SUCCESS = "success"          # reached t = 1 with a refined solution
    DIVERGED = "diverged"        # solution norm exceeded the divergence bound
    FAILED = "failed"            # step size underflow / Newton stagnation
    SINGULAR = "singular"        # Jacobian numerically singular at the end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class TrackStats:
    """Effort counters for a single path."""

    steps_accepted: int = 0
    steps_rejected: int = 0
    newton_iterations: int = 0
    t_reached: float = 0.0
    seconds: float = 0.0

    @property
    def total_steps(self) -> int:
        return self.steps_accepted + self.steps_rejected


@dataclass
class PathResult:
    """Outcome of tracking one solution path."""

    status: PathStatus
    solution: np.ndarray
    start: np.ndarray
    residual: float
    stats: TrackStats = field(default_factory=TrackStats)
    path_id: int = -1

    @property
    def success(self) -> bool:
        return self.status is PathStatus.SUCCESS

    def __repr__(self) -> str:
        return (
            f"PathResult(id={self.path_id}, status={self.status.value}, "
            f"residual={self.residual:.2e}, steps={self.stats.total_steps})"
        )


def duplicate_path_ids(results, tol: float = 1e-6) -> List[int]:
    """Path ids of *every* member of an endpoint-collision cluster.

    Two paths of a proper homotopy cannot share an endpoint at a regular
    root, so collisions indicate a predictor jump between close paths.
    Either party may be the one that jumped — the first path to arrive
    is no more trustworthy than the second — so all members of a cluster
    are candidates for conservative re-tracking, not just the
    later-arriving ones.  Shared by the blackbox ``solve()`` and the
    polyhedral phase-1 cell tracking.
    """
    reps: List[np.ndarray] = []
    clusters: List[List[int]] = []
    for r in results:
        if not r.success:
            continue
        for k, s in enumerate(reps):
            if np.max(np.abs(r.solution - s)) < tol:
                clusters[k].append(r.path_id)
                break
        else:
            reps.append(r.solution)
            clusters.append([r.path_id])
    return [pid for cluster in clusters if len(cluster) > 1 for pid in cluster]


def summarize_results(results: List[PathResult]) -> dict:
    """Aggregate counts and effort over a batch of path results."""
    by_status = {s: 0 for s in PathStatus}
    for r in results:
        by_status[r.status] += 1
    seconds = [r.stats.seconds for r in results]
    steps = [r.stats.total_steps for r in results]
    return {
        "total": len(results),
        "success": by_status[PathStatus.SUCCESS],
        "diverged": by_status[PathStatus.DIVERGED],
        "failed": by_status[PathStatus.FAILED],
        "singular": by_status[PathStatus.SINGULAR],
        "seconds_total": float(np.sum(seconds)) if seconds else 0.0,
        "seconds_mean": float(np.mean(seconds)) if seconds else 0.0,
        "seconds_std": float(np.std(seconds)) if seconds else 0.0,
        "steps_mean": float(np.mean(steps)) if steps else 0.0,
    }
