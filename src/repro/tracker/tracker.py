"""Adaptive predictor-corrector path tracking.

This is the Python counterpart of PHCpack's increment-and-fix continuation:

- **predictor** — first-order (tangent) prediction ``x + dt * dx/dt`` where
  the tangent solves ``J_x (dx/dt) = -J_t``; a cheap secant predictor is
  used as a fallback when the tangent solve fails.
- **corrector** — a few Newton iterations at the new ``t`` (increment and
  fix), accepting the step only when the corrector converges.
- **step control** — multiply the step by ``expand`` after a run of easy
  steps, shrink by ``shrink`` on failure; abort the path when the step
  underflows ``min_step``.
- **divergence** — paths whose solution norm exceeds ``divergence_bound``
  are classified DIVERGED (the paper's "paths diverging to infinity"), with
  the time spent recorded — these are exactly the expensive jobs that make
  static load balancing lose to dynamic balancing in Tables I and II.
- **endgame** — the terminal phase is delegated to a pluggable
  :class:`~repro.endgame.EndgameStrategy`.  The default
  :class:`~repro.endgame.RefineEndgame` sharpens the solution at
  ``t = 1`` with extra Newton iterations at a tighter tolerance —
  exactly the seed behavior; :class:`~repro.endgame.CauchyEndgame`
  additionally recovers singular endpoints by winding-number loops and
  takes over paths that stall inside its operating radius.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..telemetry import current_telemetry, maybe_span
from .interface import HomotopyFunction
from .newton import newton_correct, newton_refine_system
from .result import PathResult, PathStatus, TrackStats

__all__ = ["TrackerOptions", "PathTracker"]


@dataclass
class TrackerOptions:
    """Tuning knobs for :class:`PathTracker` (defaults follow PHCpack's)."""

    initial_step: float = 0.05
    min_step: float = 1e-8
    max_step: float = 0.2
    expand: float = 1.5
    shrink: float = 0.5
    expand_after: int = 3          # consecutive accepted steps before expanding
    corrector_tol: float = 1e-9
    corrector_iterations: int = 5
    endgame_tol: float = 1e-12
    endgame_iterations: int = 15
    divergence_bound: float = 1e8
    max_steps: int = 2000
    # record per-path trace events into the ambient Telemetry context
    # (see repro.telemetry); off by default so the hot path stays free
    # of per-step allocation.  Never changes tracking decisions.
    trace_paths: bool = False

    def validated(self) -> "TrackerOptions":
        if not (0 < self.min_step <= self.initial_step <= self.max_step):
            raise ValueError("need 0 < min_step <= initial_step <= max_step")
        if not (0 < self.shrink < 1 < self.expand):
            raise ValueError("need 0 < shrink < 1 < expand")
        return self


class PathTracker:
    """Tracks solution paths of a :class:`HomotopyFunction` from t=0 to t=1.

    ``endgame`` picks the terminal-phase strategy: ``None`` (the default
    :class:`~repro.endgame.RefineEndgame` — seed behavior, bit for
    bit), a name (``"refine"`` / ``"cauchy"``), or any
    :class:`~repro.endgame.EndgameStrategy` instance.
    """

    def __init__(
        self, options: TrackerOptions | None = None, endgame=None
    ) -> None:
        self.options = (options or TrackerOptions()).validated()
        # imported lazily: repro.endgame builds on the tracker submodules
        from ..endgame import make_endgame

        self.endgame = make_endgame(endgame)

    # ------------------------------------------------------------------
    def _tangent(
        self, homotopy: HomotopyFunction, x: np.ndarray, t: float
    ) -> np.ndarray | None:
        """dx/dt from J_x dx/dt = -J_t, or None if J_x is singular."""
        jac_x = homotopy.jacobian_x(x, t)
        jac_t = homotopy.jacobian_t(x, t)
        try:
            dxdt = np.linalg.solve(jac_x, -jac_t)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(dxdt)):
            return None
        return dxdt

    def track(
        self,
        homotopy: HomotopyFunction,
        start: Sequence[complex],
        path_id: int = -1,
        t_start: float = 0.0,
    ) -> PathResult:
        """Track one path from the start solution at ``t=t_start`` to t=1.

        ``t_start > 0`` resumes a path from a mid-way point (used by chart
        switching: the same geometric path continued in new coordinates).
        """
        tel = current_telemetry() if self.options.trace_paths else None
        if tel is None:
            return self._track(homotopy, start, path_id, t_start, None)
        with tel.trace():
            return self._track(homotopy, start, path_id, t_start, tel)

    def _track(
        self,
        homotopy: HomotopyFunction,
        start: Sequence[complex],
        path_id: int,
        t_start: float,
        tel,
    ) -> PathResult:
        opts = self.options
        t0 = time.perf_counter()
        stats = TrackStats()
        x = np.asarray(start, dtype=complex).copy()
        x_start = x.copy()
        if not 0.0 <= t_start < 1.0:
            raise ValueError("t_start must lie in [0, 1)")
        t = float(t_start)
        step = opts.initial_step
        easy_streak = 0
        x_prev, t_prev = x.copy(), t  # for the secant fallback predictor

        def finish(status: PathStatus, xf: np.ndarray, res: float) -> PathResult:
            stats.t_reached = t
            stats.seconds = time.perf_counter() - t0
            return PathResult(status, xf, x_start, res, stats, path_id)

        # make sure the start point actually solves H(., t_start)
        check = newton_correct(
            homotopy, x, t, tol=opts.corrector_tol, max_iterations=opts.corrector_iterations
        )
        stats.newton_iterations += check.iterations
        if not check.converged:
            return finish(PathStatus.FAILED, x, check.residual)
        x = check.x

        while t < 1.0:
            if stats.total_steps >= opts.max_steps:
                return finish(PathStatus.FAILED, x, float("inf"))
            dt = min(step, 1.0 - t)
            t_new = t + dt

            # --- predict
            with maybe_span(tel, "tangent", "predictor"):
                tangent = self._tangent(homotopy, x, t)
                if tangent is not None:
                    x_pred = x + dt * tangent
                elif t > t_prev:
                    x_pred = x + (x - x_prev) * (dt / (t - t_prev))
                else:
                    x_pred = x.copy()

            # --- correct
            with maybe_span(tel, "newton", "corrector"):
                corr = newton_correct(
                    homotopy,
                    x_pred,
                    t_new,
                    tol=opts.corrector_tol,
                    max_iterations=opts.corrector_iterations,
                )
            stats.newton_iterations += corr.iterations
            if tel is not None:
                tel.instant(
                    "step_accept" if corr.converged else "step_reject",
                    "tracker",
                    path=int(path_id),
                    t=float(t_new),
                    dt=float(dt),
                    newton=int(corr.iterations),
                )
                tel.observe("step_size", float(dt))

            if corr.converged:
                x_prev, t_prev = x, t
                x, t = corr.x, t_new
                stats.steps_accepted += 1
                easy_streak += 1
                if easy_streak >= opts.expand_after and corr.iterations <= 2:
                    step = min(step * opts.expand, opts.max_step)
                    easy_streak = 0
                norm = float(np.max(np.abs(x)))
                if norm > opts.divergence_bound:
                    return finish(PathStatus.DIVERGED, x, corr.residual)
            else:
                stats.steps_rejected += 1
                easy_streak = 0
                step *= opts.shrink
                if step < opts.min_step:
                    if float(np.max(np.abs(x))) > 1e3:
                        return finish(PathStatus.DIVERGED, x, corr.residual)
                    if t > 1.0 - self.endgame.operating_radius:
                        # stall inside the endgame's operating radius:
                        # hand the path over instead of failing it
                        if tel is not None:
                            tel.instant(
                                "endgame_handoff",
                                "tracker",
                                path=int(path_id),
                                reason="stalled",
                                t=float(t),
                            )
                        break
                    return finish(PathStatus.FAILED, x, corr.residual)

        # --- endgame: the terminal phase belongs to the strategy
        if tel is not None and t >= 1.0:
            tel.instant(
                "endgame_handoff", "tracker", path=int(path_id), reason="arrived"
            )
        with maybe_span(tel, "finish", "endgame"):
            out = self.endgame.finish(homotopy, x, t, opts)
        stats.newton_iterations += out.iterations
        result = finish(out.status, out.x, out.residual)
        result.endgame = self.endgame.name
        result.winding_number = out.winding_number
        result.multiplicity = out.multiplicity
        return result

    # ------------------------------------------------------------------
    def track_many(
        self,
        homotopy: HomotopyFunction,
        starts: Sequence[Sequence[complex]],
    ) -> list[PathResult]:
        """Track a batch of paths sequentially (the 1-CPU baseline)."""
        return [
            self.track(homotopy, start, path_id=i) for i, start in enumerate(starts)
        ]


def refine_solutions(system, results, tol: float = 1e-12):
    """Endgame helper: Newton-refine SUCCESS results against a target system."""
    out = []
    for r in results:
        if r.success:
            nr = newton_refine_system(system, r.solution, tol=tol)
            r.solution = nr.x
            r.residual = nr.residual
        out.append(r)
    return out
