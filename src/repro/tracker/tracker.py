"""Adaptive predictor-corrector path tracking.

This is the Python counterpart of PHCpack's increment-and-fix continuation:

- **predictor** — first-order (tangent) prediction ``x + dt * dx/dt`` where
  the tangent solves ``J_x (dx/dt) = -J_t``; a cheap secant predictor is
  used as a fallback when the tangent solve fails.
- **corrector** — a few Newton iterations at the new ``t`` (increment and
  fix), accepting the step only when the corrector converges.
- **step control** — multiply the step by ``expand`` after a run of easy
  steps, shrink by ``shrink`` on failure; abort the path when the step
  underflows ``min_step``.
- **divergence** — paths whose solution norm exceeds ``divergence_bound``
  are classified DIVERGED (the paper's "paths diverging to infinity"), with
  the time spent recorded — these are exactly the expensive jobs that make
  static load balancing lose to dynamic balancing in Tables I and II.
- **endgame** — the terminal phase is delegated to a pluggable
  :class:`~repro.endgame.EndgameStrategy`.  The default
  :class:`~repro.endgame.RefineEndgame` sharpens the solution at
  ``t = 1`` with extra Newton iterations at a tighter tolerance —
  exactly the seed behavior; :class:`~repro.endgame.CauchyEndgame`
  additionally recovers singular endpoints by winding-number loops and
  takes over paths that stall inside its operating radius.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..telemetry import current_telemetry, maybe_span
from .interface import HomotopyFunction
from .newton import _solve, newton_correct, newton_refine_system
from .predictor import (
    make_predictor,
    resolve_frozen,
    resolve_fail_fast,
    resolve_loose_tol,
    resolve_recycle,
    resolve_update_tol,
)
from .result import PathResult, PathStatus, TrackStats

__all__ = ["TrackerOptions", "PathTracker"]


@dataclass
class TrackerOptions:
    """Tuning knobs for :class:`PathTracker` (defaults follow PHCpack's)."""

    initial_step: float = 0.05
    min_step: float = 1e-8
    max_step: float = 0.2
    expand: float = 1.5
    shrink: float = 0.5
    expand_after: int = 3          # consecutive accepted steps before expanding
    corrector_tol: float = 1e-9
    corrector_iterations: int = 5
    endgame_tol: float = 1e-12
    endgame_iterations: int = 15
    divergence_bound: float = 1e8
    max_steps: int = 2000
    # record per-path trace events into the ambient Telemetry context
    # (see repro.telemetry); off by default so the hot path stays free
    # of per-step allocation.  Never changes tracking decisions.
    trace_paths: bool = False
    # prediction strategy: "euler" (seed arithmetic, bit-identical) or
    # "hermite" (cubic through the last two accepted points + tangents);
    # also accepts a Predictor instance (see repro.tracker.predictor)
    predictor: object = "euler"
    # error-model step control (active when the predictor declares
    # ``error_model``): after an accepted step with measured predictor
    # error err, the next step is
    #   dt * min(max_growth, safety * (target / err) ** (1 / order))
    # clipped into [min_step, max_step] — replacing the streak heuristic.
    # The target is a *prediction* error the corrector must absorb, not
    # a solution accuracy; 0.03 keeps predictions inside Newton's basin
    # (and off neighboring paths — looser targets measurably raise
    # endpoint collisions) while letting steps grow to what the
    # corrector actually tolerates
    predictor_target_error: float = 0.03
    predictor_safety: float = 0.8
    predictor_max_growth: float = 2.0
    # jump rejection (error-model predictors only): a *converged* step
    # whose measured predictor error exceeds factor * target is treated
    # as a rejection — Newton converged, but to a point so far from the
    # prediction that it is almost certainly a neighboring path's basin,
    # not a continuation of this one.  One retry at a smaller step here
    # is far cheaper than the endpoint-collision re-tracking rung the
    # jump would otherwise trigger
    predictor_jump_factor: float = 10.0
    # recycle the corrector's final J_x into the next tangent solve so
    # an accepted step costs one fused evaluation instead of two; the
    # default None means "exactly when the predictor's error model is
    # active", keeping the Euler path byte-for-byte the seed loop
    recycle_jacobians: bool | None = None
    # corrector update-size acceptance (PHCpack's criterion): accept
    # once |dx| falls below this, skipping the residual-verification
    # sweep.  None (default) resolves to sqrt(corrector_tol) when the
    # error-model predictor is active and stays off otherwise; 0
    # forces it off, a positive float forces that threshold
    corrector_update_tol: float | None = None
    # contraction-gated loose acceptance: updates up to this (larger)
    # threshold are accepted when they also contracted to at most
    # CONTRACTION times the previous update — quadratic-regime evidence
    # that makes the loose exit safe near singular stretches.  None
    # resolves to corrector_tol**(1/3) under the error-model predictor
    # and off otherwise; 0 forces it off, a float forces the threshold
    corrector_loose_tol: float | None = None
    # reject a step as soon as a Newton update *grows* instead of
    # burning the remaining corrector sweeps confirming the miss; None
    # resolves to on exactly under the error-model predictor
    corrector_fail_fast: bool | None = None
    # frozen-Jacobian (chord) step corrector: one fused evaluation at
    # the predicted point, eval-only residual sweeps after.  Measured
    # slower than full Newton + update acceptance on the benchmark
    # systems (smaller convergence radius -> more rejections), so the
    # default None resolves to OFF; True opts in as an experiment
    corrector_frozen: bool | None = None

    def validated(self) -> "TrackerOptions":
        if not (0 < self.min_step <= self.initial_step <= self.max_step):
            raise ValueError("need 0 < min_step <= initial_step <= max_step")
        if not (0 < self.shrink < 1 < self.expand):
            raise ValueError("need 0 < shrink < 1 < expand")
        if not (self.predictor_target_error > 0 and self.predictor_safety > 0):
            raise ValueError("need positive predictor target error and safety")
        if self.corrector_update_tol is not None and self.corrector_update_tol < 0:
            raise ValueError("corrector_update_tol must be >= 0 (or None)")
        if self.corrector_loose_tol is not None and self.corrector_loose_tol < 0:
            raise ValueError("corrector_loose_tol must be >= 0 (or None)")
        if not self.predictor_max_growth > 1:
            raise ValueError("need predictor_max_growth > 1")
        if not self.predictor_jump_factor > 1:
            raise ValueError("need predictor_jump_factor > 1")
        make_predictor(self.predictor)  # raises on unknown names
        return self


class PathTracker:
    """Tracks solution paths of a :class:`HomotopyFunction` from t=0 to t=1.

    ``endgame`` picks the terminal-phase strategy: ``None`` (the default
    :class:`~repro.endgame.RefineEndgame` — seed behavior, bit for
    bit), a name (``"refine"`` / ``"cauchy"``), or any
    :class:`~repro.endgame.EndgameStrategy` instance.
    """

    def __init__(
        self, options: TrackerOptions | None = None, endgame=None
    ) -> None:
        self.options = (options or TrackerOptions()).validated()
        # imported lazily: repro.endgame builds on the tracker submodules
        from ..endgame import make_endgame

        self.endgame = make_endgame(endgame)

    # ------------------------------------------------------------------
    def _tangent(
        self, homotopy: HomotopyFunction, x: np.ndarray, t: float
    ) -> np.ndarray | None:
        """dx/dt from J_x dx/dt = -J_t, or None if J_x is singular."""
        jac_x = homotopy.jacobian_x(x, t)
        jac_t = homotopy.jacobian_t(x, t)
        try:
            dxdt = np.linalg.solve(jac_x, -jac_t)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(dxdt)):
            return None
        return dxdt

    def track(
        self,
        homotopy: HomotopyFunction,
        start: Sequence[complex],
        path_id: int = -1,
        t_start: float = 0.0,
    ) -> PathResult:
        """Track one path from the start solution at ``t=t_start`` to t=1.

        ``t_start > 0`` resumes a path from a mid-way point (used by chart
        switching: the same geometric path continued in new coordinates).
        """
        tel = current_telemetry() if self.options.trace_paths else None
        if tel is None:
            return self._track(homotopy, start, path_id, t_start, None)
        with tel.trace():
            return self._track(homotopy, start, path_id, t_start, tel)

    def _track(
        self,
        homotopy: HomotopyFunction,
        start: Sequence[complex],
        path_id: int,
        t_start: float,
        tel,
    ) -> PathResult:
        opts = self.options
        t0 = time.perf_counter()
        stats = TrackStats()
        x = np.asarray(start, dtype=complex).copy()
        x_start = x.copy()
        if not 0.0 <= t_start < 1.0:
            raise ValueError("t_start must lie in [0, 1)")
        t = float(t_start)
        step = opts.initial_step
        easy_streak = 0
        pred = make_predictor(opts.predictor)
        recycle = resolve_recycle(opts, pred)
        update_tol = resolve_update_tol(opts, pred)
        loose_tol = resolve_loose_tol(opts, pred)
        fail_fast = resolve_fail_fast(opts, pred)
        frozen = resolve_frozen(opts, pred)
        # per-track predictor history (secant/Hermite memory), seeded
        # with the uncorrected start — resumed paths start with *empty*
        # history, so a chart switch never extrapolates across charts
        pstate = pred.make_state(x[None, :], np.array([t]))
        row = np.zeros(1, dtype=np.intp)
        re_jac = None  # corrector Jacobian carried across the step boundary

        def finish(status: PathStatus, xf: np.ndarray, res: float) -> PathResult:
            stats.t_reached = t
            stats.seconds = time.perf_counter() - t0
            return PathResult(status, xf, x_start, res, stats, path_id)

        # make sure the start point actually solves H(., t_start)
        check = newton_correct(
            homotopy, x, t, tol=opts.corrector_tol,
            max_iterations=opts.corrector_iterations,
            want_jacobian=recycle,
        )
        stats.newton_iterations += check.iterations
        stats.jacobian_evaluations += check.jac_evaluations
        if not check.converged:
            return finish(PathStatus.FAILED, x, check.residual)
        x = check.x
        if recycle:
            re_jac = check.jacobian

        while t < 1.0:
            if stats.total_steps >= opts.max_steps:
                return finish(PathStatus.FAILED, x, float("inf"))
            dt = min(step, 1.0 - t)
            t_new = t + dt

            # --- predict
            with maybe_span(tel, "tangent", "predictor"):
                if re_jac is not None:
                    # recycled tangent solve: J_x is the corrector's
                    # final matrix at (x, t); only J_t is evaluated —
                    # the cheap eval-only route (no fused Jacobian pass)
                    tangent = _solve(re_jac, homotopy.jacobian_t(x, t))
                    stats.tangents_recycled += 1
                    if tel is not None:
                        tel.count("tracker.tangents_recycled")
                else:
                    tangent = self._tangent(homotopy, x, t)
                    stats.jacobian_evaluations += 1
                ok1 = np.array([tangent is not None])
                tan1 = (
                    np.zeros((1, x.size), dtype=complex)
                    if tangent is None
                    else tangent[None, :]
                )
                x_pred = pred.predict(
                    pstate, row, x[None, :], np.array([t]),
                    np.array([dt]), tan1, ok1,
                )[0]

            # --- correct
            with maybe_span(tel, "newton", "corrector"):
                corr = newton_correct(
                    homotopy,
                    x_pred,
                    t_new,
                    tol=opts.corrector_tol,
                    max_iterations=opts.corrector_iterations,
                    want_jacobian=recycle,
                    update_tol=update_tol,
                    loose_tol=loose_tol,
                    fail_fast=fail_fast,
                    frozen=frozen,
                )
            stats.newton_iterations += corr.iterations
            stats.jacobian_evaluations += corr.jac_evaluations
            accept = corr.converged
            err = 0.0
            if accept and pred.error_model:
                err = float(np.max(np.abs(corr.x - x_pred)))
                if err > opts.predictor_jump_factor * opts.predictor_target_error:
                    # suspected path jump: converged far beyond what the
                    # prediction's error model can explain — reject and
                    # retry at a smaller step (see BatchTracker)
                    accept = False
                    if tel is not None:
                        tel.count("tracker.jump_rejections")
            if tel is not None:
                tel.instant(
                    "step_accept" if accept else "step_reject",
                    "tracker",
                    path=int(path_id),
                    t=float(t_new),
                    dt=float(dt),
                    newton=int(corr.iterations),
                )
                tel.observe("step_size", float(dt))

            if accept:
                pred.accepted(pstate, row, x[None, :], np.array([t]), tan1, ok1)
                x, t = corr.x, t_new
                stats.steps_accepted += 1
                if recycle:
                    re_jac = corr.jacobian
                if pred.error_model:
                    # asymptotic error model: err ~ C dt^p, solve for
                    # the dt that would have hit the target error
                    if err > 0.0:
                        growth = np.minimum(
                            opts.predictor_max_growth,
                            opts.predictor_safety
                            * (opts.predictor_target_error / err)
                            ** (1.0 / pred.order),
                        )
                    else:
                        growth = np.float64(opts.predictor_max_growth)
                    step = float(
                        np.minimum(
                            np.maximum(dt * growth, opts.min_step),
                            opts.max_step,
                        )
                    )
                    if tel is not None:
                        tel.observe("predictor_error", float(err))
                else:
                    easy_streak += 1
                    if easy_streak >= opts.expand_after and corr.iterations <= 2:
                        step = min(step * opts.expand, opts.max_step)
                        easy_streak = 0
                norm = float(np.max(np.abs(x)))
                if norm > opts.divergence_bound:
                    return finish(PathStatus.DIVERGED, x, corr.residual)
            else:
                stats.steps_rejected += 1
                easy_streak = 0
                step *= opts.shrink
                if step < opts.min_step:
                    if float(np.max(np.abs(x))) > 1e3:
                        return finish(PathStatus.DIVERGED, x, corr.residual)
                    if t > 1.0 - self.endgame.operating_radius:
                        # stall inside the endgame's operating radius:
                        # hand the path over instead of failing it
                        if tel is not None:
                            tel.instant(
                                "endgame_handoff",
                                "tracker",
                                path=int(path_id),
                                reason="stalled",
                                t=float(t),
                            )
                        break
                    return finish(PathStatus.FAILED, x, corr.residual)

        # --- endgame: the terminal phase belongs to the strategy
        if tel is not None and t >= 1.0:
            tel.instant(
                "endgame_handoff", "tracker", path=int(path_id), reason="arrived"
            )
        with maybe_span(tel, "finish", "endgame"):
            out = self.endgame.finish(homotopy, x, t, opts)
        stats.newton_iterations += out.iterations
        result = finish(out.status, out.x, out.residual)
        result.endgame = self.endgame.name
        result.winding_number = out.winding_number
        result.multiplicity = out.multiplicity
        return result

    # ------------------------------------------------------------------
    def track_many(
        self,
        homotopy: HomotopyFunction,
        starts: Sequence[Sequence[complex]],
    ) -> list[PathResult]:
        """Track a batch of paths sequentially (the 1-CPU baseline)."""
        return [
            self.track(homotopy, start, path_id=i) for i, start in enumerate(starts)
        ]


def refine_solutions(system, results, tol: float = 1e-12):
    """Endgame helper: Newton-refine SUCCESS results against a target system."""
    out = []
    for r in results:
        if r.success:
            nr = newton_refine_system(system, r.solution, tol=tol)
            r.solution = nr.x
            r.residual = nr.residual
        out.append(r)
    return out
