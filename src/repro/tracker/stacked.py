"""Stacking distinct same-shape homotopies into one SoA batch.

PR 1's :class:`~repro.tracker.batch.BatchTracker` assumed every row of a
batch tracks the *same* homotopy from a different start point.  The Pieri
tree breaks that assumption: one tree level holds many edges, each with
its own determinant homotopy (its own localization pattern, gamma twists
and moving plane), but all of the *same shape* — level-``n`` edges all
have ``dim == n``.  :class:`StackedHomotopy` glues such a family into a
single :class:`~repro.tracker.interface.BatchHomotopy`: every path row is
*owned* by one member homotopy, and each batched call partitions the rows
by owner, delegates to the members, and scatters the answers back.

Members may implement the batch protocol natively (the vectorized
:class:`~repro.schubert.homotopy.PieriEdgeHomotopy`) or be plain scalar
homotopies — those fall back to
:class:`~repro.tracker.interface.ScalarBatchAdapter` via
:func:`~repro.tracker.interface.as_batch`, so stacking never changes the
arithmetic a member sees and scalar/batch tracking decisions stay
bit-identical per path.

Because the tracker culls finished paths from its active front, a batch
homotopy must be able to follow: :meth:`StackedHomotopy.restrict` returns
a view whose ownership vector is sliced to the surviving rows (the
default :meth:`~repro.tracker.interface.BatchHomotopy.restrict` is a
no-op because homogeneous batches are row-independent).

Track three paths of two different 1-dim homotopies in one front:

>>> import numpy as np
>>> from repro.tracker import BatchTracker, HomotopyFunction, StackedHomotopy
>>> class Line(HomotopyFunction):
...     '''H(x, t) = x - a t - 1: the single path is x(t) = 1 + a t.'''
...     def __init__(self, a): self.a = a
...     @property
...     def dim(self): return 1
...     def evaluate(self, x, t): return np.array([x[0] - self.a * t - 1.0])
...     def jacobian_x(self, x, t): return np.array([[1.0 + 0j]])
...     def jacobian_t(self, x, t): return np.array([-self.a + 0j])
>>> stack = StackedHomotopy([Line(2.0), Line(-1.0)], [0, 1, 1])
>>> stack.npaths, stack.dim, stack.restrict([2]).npaths
(3, 1, 1)
>>> results = BatchTracker().track_batch(stack, [[1.0], [1.0], [1.0]])
>>> all(r.success for r in results)
True
>>> np.allclose([r.solution[0] for r in results], [3.0, 0.0, 0.0])
True
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .interface import BatchHomotopy, _per_path_t, as_batch

__all__ = ["StackedHomotopy"]


class StackedHomotopy(BatchHomotopy):
    """A batch whose rows belong to distinct same-dimension homotopies.

    Parameters
    ----------
    members:
        The distinct homotopies (scalar or batch; scalars are wrapped by
        :func:`~repro.tracker.interface.as_batch`).  All must share one
        ``dim``.
    owners:
        For each path row, the index of the member that owns it.  Rows
        owned by the same member are evaluated in one delegated batch
        call, so grouping same-homotopy paths contiguously is natural
        but not required.
    """

    def __init__(self, members: Sequence, owners: Sequence[int]) -> None:
        if not members:
            raise ValueError("need at least one member homotopy")
        self.members: List[BatchHomotopy] = [as_batch(h) for h in members]
        dims = {h.dim for h in self.members}
        if len(dims) != 1:
            raise ValueError(
                f"stacked members must share one dim, got {sorted(dims)}"
            )
        owners = np.asarray(owners, dtype=np.int64)
        if owners.ndim != 1:
            raise ValueError("owners must be a 1-d sequence of member indices")
        if owners.size and (
            owners.min() < 0 or owners.max() >= len(self.members)
        ):
            raise ValueError("owner index out of range")
        self.owners = owners
        # rows grouped per member, computed once: the delegation pattern
        # of every batched call below
        self._groups: List[Tuple[int, np.ndarray]] = [
            (k, np.flatnonzero(owners == k)) for k in range(len(self.members))
        ]
        self._groups = [(k, rows) for k, rows in self._groups if rows.size]

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.members[0].dim

    @property
    def npaths(self) -> int:
        """Rows this stack expects (a fixed-width batch, unlike members)."""
        return int(self.owners.size)

    def restrict(self, rows) -> "StackedHomotopy":
        """The sub-stack owning the given rows (tracker culling support)."""
        view = object.__new__(StackedHomotopy)
        view.members = self.members
        owners = self.owners[np.asarray(rows, dtype=np.int64)]
        view.owners = owners
        groups = [
            (k, np.flatnonzero(owners == k)) for k in range(len(self.members))
        ]
        view._groups = [(k, r) for k, r in groups if r.size]
        return view

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=complex)
        if X.ndim != 2 or X.shape != (self.npaths, self.dim):
            raise ValueError(
                f"expected X of shape ({self.npaths}, {self.dim}), "
                f"got {X.shape}"
            )
        return X

    # ------------------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        out = np.empty_like(X)
        for k, rows in self._groups:
            out[rows] = self.members[k].evaluate_batch(X[rows], tt[rows])
        return out

    def jacobian_x_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        out = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        for k, rows in self._groups:
            out[rows] = self.members[k].jacobian_x_batch(X[rows], tt[rows])
        return out

    def jacobian_t_batch(self, X: np.ndarray, t) -> np.ndarray:
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        out = np.empty_like(X)
        for k, rows in self._groups:
            out[rows] = self.members[k].jacobian_t_batch(X[rows], tt[rows])
        return out

    def evaluate_and_jacobian_batch(self, X, t):
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        res = np.empty_like(X)
        jac = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        for k, rows in self._groups:
            res[rows], jac[rows] = self.members[k].evaluate_and_jacobian_batch(
                X[rows], tt[rows]
            )
        return res, jac

    def jacobians_batch(self, X, t):
        X = self._check(X)
        tt = _per_path_t(t, X.shape[0])
        jx = np.empty((X.shape[0], self.dim, self.dim), dtype=complex)
        jt = np.empty_like(X)
        for k, rows in self._groups:
            jx[rows], jt[rows] = self.members[k].jacobians_batch(
                X[rows], tt[rows]
            )
        return jx, jt

    def __repr__(self) -> str:
        return (
            f"StackedHomotopy({len(self.members)} members, "
            f"{self.npaths} paths, dim={self.dim})"
        )
